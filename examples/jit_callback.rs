//! Figure 11 / Figure 12: the JIT example — compiled assembly calling
//! back into interpreted F code, with the boundary-crossing trace.
//!
//! ```sh
//! cargo run --example jit_callback
//! ```

use funtal::figures::fig11_jit;
use funtal::machine::{run_fexpr, FtOutcome, RunCfg};
use funtal::typecheck;
use funtal_tal::trace::{Event, VecTracer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let e = fig11_jit();
    println!("Figure 11: e = (FT[...](mv r1, l; halt ..., H)) g\n");
    println!("type: {}", typecheck(&e)?);

    let mut tr = VecTracer::new();
    let out = run_fexpr(&e, RunCfg::with_fuel(1_000_000), &mut tr)?;

    println!("\ncontrol flow (Figure 12):");
    let mut depth = 1usize;
    for ev in &tr.events {
        match ev {
            Event::BoundaryEnter { ty } => {
                println!("{:indent$}FT[{ty}] {{", "", indent = depth * 2);
                depth += 1;
            }
            Event::BoundaryExit { .. } => {
                depth = depth.saturating_sub(1);
                println!("{:indent$}}} -> F", "", indent = depth * 2);
            }
            Event::ImportExit { rd } => {
                println!("{:indent$}import -> {rd}", "", indent = depth * 2)
            }
            Event::Call { to } => println!("{:indent$}call {to}", "", indent = depth * 2),
            Event::Jmp { to } => println!("{:indent$}jmp {to}", "", indent = depth * 2),
            Event::Ret { to, .. } => println!("{:indent$}ret {to}", "", indent = depth * 2),
            Event::FBeta => println!("{:indent$}beta (F)", "", indent = depth * 2),
            _ => {}
        }
    }
    match out {
        FtOutcome::Value(v) => println!("\nresult: {v}"),
        other => println!("\nunexpected outcome: {other:?}"),
    }
    Ok(())
}
