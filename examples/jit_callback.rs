//! Figure 11 / Figure 12: the JIT example — compiled assembly calling
//! back into interpreted F code, with the boundary-crossing trace
//! rendered by the pipeline's trace stage.
//!
//! ```sh
//! cargo run --example jit_callback
//! ```

use funtal::figures::fig11_jit;
use funtal::machine::FtOutcome;
use funtal_driver::{FunTalError, Pipeline};

fn main() -> Result<(), FunTalError> {
    let e = fig11_jit();
    println!("Figure 11: e = (FT[...](mv r1, l; halt ..., H)) g\n");

    let report = Pipeline::new().with_fuel(1_000_000).trace(&e)?;
    println!("type: {}", report.ty);

    println!("\ncontrol flow (Figure 12):");
    print!("{}", report.render());

    match &report.outcome {
        FtOutcome::Value(v) => println!("\nresult: {v}"),
        other => println!("\nunexpected outcome: {other:?}"),
    }
    Ok(())
}
