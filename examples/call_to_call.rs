//! Figure 3 / Figure 4: the paper's "Call to Call" T example, executed
//! through the pipeline with a control-flow trace that reproduces the
//! Figure 4 diagram.
//!
//! ```sh
//! cargo run --example call_to_call
//! ```

use funtal_driver::{FunTalError, Pipeline};
use funtal_syntax::build::fint;
use funtal_syntax::Component;
use funtal_tal::figures::fig3_call_to_call;

fn main() -> Result<(), FunTalError> {
    let prog = fig3_call_to_call();
    println!("Figure 3, component f:\n  {prog}\n");

    let report = Pipeline::new()
        .with_fuel(1_000)
        .trace_component(&Component::T(prog), Some(&fint()))?;
    println!("type-checks as a whole program halting with int\n");

    println!("control flow (Figure 4):");
    print!("{}", report.render());

    match &report.outcome {
        funtal::machine::FtOutcome::Halted(v) => println!("\nhalted with {v}"),
        other => println!("\nunexpected outcome: {other:?}"),
    }
    Ok(())
}
