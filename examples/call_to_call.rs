//! Figure 3 / Figure 4: the paper's "Call to Call" T example, executed
//! with a control-flow trace that reproduces the Figure 4 diagram.
//!
//! ```sh
//! cargo run --example call_to_call
//! ```

use funtal_tal::check::check_program;
use funtal_tal::figures::fig3_call_to_call;
use funtal_tal::machine::{run_program, Outcome};
use funtal_tal::trace::{Event, VecTracer};
use funtal_syntax::build::int;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let prog = fig3_call_to_call();
    println!("Figure 3, component f:\n  {prog}\n");

    check_program(&prog, &int())?;
    println!("type-checks as a whole program halting with int\n");

    let mut tr = VecTracer::new();
    let out = run_program(&prog, 1_000, &mut tr)?;

    println!("control flow (Figure 4):");
    println!("  f");
    for ev in tr.transfers() {
        match ev {
            Event::Call { to } => println!("  --call--> {to}"),
            Event::Jmp { to } => println!("  --jmp---> {to}"),
            Event::BnzTaken { to } => println!("  --bnz---> {to}"),
            Event::Ret { to, val } => println!("  --ret---> {to}   (result in {val})"),
            Event::Halt { reg } => println!("  --halt    ({reg})"),
            _ => {}
        }
    }
    match out {
        Outcome::Halted(v) => println!("\nhalted with {v}"),
        Outcome::OutOfFuel => println!("\nout of fuel"),
    }
    Ok(())
}
