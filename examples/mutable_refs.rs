//! The §4.2 mutable-reference library: stack-modifying lambdas give F
//! controlled access to a mutable stack cell.
//!
//! ```sh
//! cargo run --example mutable_refs
//! ```

use funtal::mutref::{cell_demo, free_cell, get_cell, new_cell, set_cell};
use funtal_driver::{FunTalError, Pipeline};

fn main() -> Result<(), FunTalError> {
    let pipeline = Pipeline::new().with_fuel(100_000);

    println!("the library (all stack-modifying lambdas):\n");
    for (name, f) in [
        ("new ", new_cell()),
        ("get ", get_cell()),
        ("set ", set_cell()),
        ("free", free_cell()),
    ] {
        println!("{name} : {}", pipeline.check(&f)?);
    }

    let demo = cell_demo(10, 5);
    println!("\ndemo program (new 10; set(get() + 5); get(); free):");
    println!("  {demo}\n");
    let report = pipeline.run(&demo)?;
    println!("type:  {}", report.ty);
    println!("value: {}", report.value()?);

    // The cell is invisible to the rest of the program: the whole
    // expression has type int on an empty stack.
    Ok(())
}
