//! The §4.2 mutable-reference library: stack-modifying lambdas give F
//! controlled access to a mutable stack cell.
//!
//! ```sh
//! cargo run --example mutable_refs
//! ```

use funtal::machine::eval_to_value;
use funtal::mutref::{cell_demo, free_cell, get_cell, new_cell, set_cell};
use funtal::typecheck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("the library (all stack-modifying lambdas):\n");
    for (name, f) in [
        ("new ", new_cell()),
        ("get ", get_cell()),
        ("set ", set_cell()),
        ("free", free_cell()),
    ] {
        println!("{name} : {}", typecheck(&f)?);
    }

    let demo = cell_demo(10, 5);
    println!("\ndemo program (new 10; set(get() + 5); get(); free):");
    println!("  {demo}\n");
    println!("type:  {}", typecheck(&demo)?);
    println!("value: {}", eval_to_value(&demo, 100_000)?);

    // The cell is invisible to the rest of the program: the whole
    // expression has type int on an empty stack.
    Ok(())
}
