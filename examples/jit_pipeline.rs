//! The §6 JIT pipeline: a MiniF program starts interpreted, gets hot,
//! and is replaced by compiled assembly — then, at twice the
//! threshold, the compiled T code is re-lowered onto the
//! direct-threaded bytecode tier. Per-invocation step counts show the
//! configuration changes (the counts themselves are identical on the
//! compiled and bytecode rungs — only the execution engine differs).
//!
//! ```sh
//! cargo run --example jit_pipeline
//! ```

use funtal_compile::codegen::CodegenOpts;
use funtal_compile::jit::{Jit, Mode};
use funtal_driver::{minif::parse_minif, FunTalError};

fn main() -> Result<(), FunTalError> {
    // The same factorial the CLI compiles from examples/fact.mf, here
    // parsed from MiniF concrete syntax and handed to the JIT runtime.
    let program = parse_minif("fn fact(n) = if0 n { 1 } { fact(n - 1) * n }")?;
    println!("source: fact(n) = if0 n {{ 1 }} {{ fact(n - 1) * n }}");
    println!(
        "reference: fact(8) = {}\n",
        program.eval("fact", &[8], 100)?
    );

    let mut jit = Jit::new(
        program,
        3,
        CodegenOpts {
            tail_call_opt: true,
        },
    );
    println!("threshold: 3 invocations (bytecode at 2x = 6)\n");
    println!("call | mode        | result | F steps | T instrs | crossings");
    println!("-----+-------------+--------+---------+----------+----------");
    for i in 1..=8 {
        let stats = jit
            .invoke("fact", &[8], 10_000_000)
            .map_err(FunTalError::Driver)?;
        println!(
            "{i:4} | {:<11} | {:>6} | {:>7} | {:>8} | {:>9}",
            match stats.mode {
                Mode::Interpreted => "interpreted",
                Mode::Compiled => "compiled",
                Mode::Bytecode => "bytecode",
            },
            stats.result,
            stats.f_steps,
            stats.t_instrs,
            stats.crossings,
        );
    }
    println!("\nafter the threshold the same source runs as T code behind a");
    println!("boundary (then on the bytecode VM at twice the threshold);");
    println!("§6's correctness condition (source ≈ compiled ≈ bytecode) is");
    println!("checked in crates/compile/tests/jit_correctness.rs.");
    Ok(())
}
