//! Figure 17: the functional factorial `factF` and the imperative
//! `factT`, run side by side through the pipeline, step-counted, and
//! checked equivalent with the bounded logical relation.
//!
//! ```sh
//! cargo run --example factorial_two_ways
//! ```

use funtal::figures::{fig17_fact_f, fig17_fact_t};
use funtal_driver::{FunTalError, Pipeline};
use funtal_equiv::EquivCfg;
use funtal_syntax::build::*;

fn main() -> Result<(), FunTalError> {
    let pipeline = Pipeline::new()
        .with_fuel(1_000_000)
        .with_equiv_cfg(EquivCfg {
            fuel: 4_000,
            samples: 10,
            depth: 2,
            seed: 42,
        });

    let ff = fig17_fact_f();
    let ft = fig17_fact_t();
    println!("factF : {}", pipeline.check(&ff)?);
    println!("factT : {}", pipeline.check(&ft)?);

    println!("\n n | factF | factT | steps (F) | steps (T)");
    println!("---+-------+-------+-----------+----------");
    for n in 0..=8 {
        let rf = pipeline.run(&app(ff.clone(), vec![fint_e(n)]))?;
        let rt = pipeline.run(&app(ft.clone(), vec![fint_e(n)]))?;
        let show = |r: &funtal_driver::RunReport| {
            r.value()
                .map(|v| v.to_string())
                .unwrap_or_else(|_| "-".to_string())
        };
        println!(
            "{n:2} | {:>5} | {:>5} | {:>9} | {:>8}",
            show(&rf),
            show(&rt),
            rf.counts.total_steps(),
            rt.counts.total_steps()
        );
    }

    println!("\nchecking factF ≈ factT with the bounded logical relation …");
    let (ty, verdict) = pipeline.equiv(&ff, &ft)?;
    println!("at type {ty}: {verdict}");
    Ok(())
}
