//! Figure 17: the functional factorial `factF` and the imperative
//! `factT`, run side by side, step-counted, and checked equivalent with
//! the bounded logical relation.
//!
//! ```sh
//! cargo run --example factorial_two_ways
//! ```

use funtal::figures::{fig17_fact_f, fig17_fact_t};
use funtal::machine::{run_fexpr, RunCfg};
use funtal::typecheck;
use funtal_equiv::{equivalent, EquivCfg};
use funtal_syntax::build::*;
use funtal_tal::trace::CountTracer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ff = fig17_fact_f();
    let ft = fig17_fact_t();
    println!("factF : {}", typecheck(&ff)?);
    println!("factT : {}", typecheck(&ft)?);

    println!("\n n | factF | factT | F-steps (F) | steps (T)");
    println!("---+-------+-------+-------------+----------");
    for n in 0..=8 {
        let mut cf = CountTracer::new();
        let mut ct = CountTracer::new();
        let vf = run_fexpr(
            &app(ff.clone(), vec![fint_e(n)]),
            RunCfg::with_fuel(1_000_000),
            &mut cf,
        )?;
        let vt = run_fexpr(
            &app(ft.clone(), vec![fint_e(n)]),
            RunCfg::with_fuel(1_000_000),
            &mut ct,
        )?;
        let show = |o: &funtal::machine::FtOutcome| match o {
            funtal::machine::FtOutcome::Value(v) => v.to_string(),
            _ => "-".to_string(),
        };
        println!(
            "{n:2} | {:>5} | {:>5} | {:>11} | {:>8}",
            show(&vf),
            show(&vt),
            cf.total_steps(),
            ct.total_steps()
        );
    }

    println!("\nchecking factF ≈ factT with the bounded logical relation …");
    let verdict = equivalent(
        &ff,
        &ft,
        &arrow(vec![fint()], fint()),
        &EquivCfg { fuel: 4_000, samples: 10, depth: 2, seed: 42 },
    );
    println!("verdict: {verdict}");
    Ok(())
}
