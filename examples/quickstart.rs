//! Quickstart: build a mixed F/T program three ways (builders, concrete
//! syntax, compiler) and push each through the unified
//! [`funtal_driver::Pipeline`].
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use funtal_driver::{FunTalError, Pipeline};
use funtal_syntax::build::*;

fn main() -> Result<(), FunTalError> {
    let pipeline = Pipeline::new().with_fuel(100_000);

    // 1. Builders: an F program with an embedded assembly component that
    //    squares its input.
    let square = lam_z(
        vec![("x", fint())],
        "zl",
        app(
            boundary(
                arrow(vec![fint()], fint()),
                tcomp(
                    seq(
                        vec![protect(vec![], "zp"), mv(r1(), loc("sq"))],
                        halt(
                            funtal::fty_to_tty(&arrow(vec![fint()], fint())),
                            zvar("zp"),
                            r1(),
                        ),
                    ),
                    vec![(
                        "sq",
                        code_block(
                            vec![d_stk("z"), d_ret("e")],
                            chi([(
                                ra(),
                                code_ty(vec![], chi([(r1(), int())]), zvar("z"), q_var("e")),
                            )]),
                            stack(vec![int()], zvar("z")),
                            q_reg(ra()),
                            seq(
                                vec![sld(r1(), 0), sfree(1), mul(r1(), r1(), reg(r1()))],
                                ret(ra(), r1()),
                            ),
                        ),
                    )],
                ),
            ),
            vec![var("x")],
        ),
    );
    let prog = app(square, vec![fint_e(12)]);
    let report = pipeline.run(&prog)?;
    println!("program: {prog}");
    println!("type:    {}", report.ty);
    println!("value:   {}", report.value()?);

    // 2. The same thing in concrete syntax, through the full
    //    lex → parse → check → run pipeline.
    let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
    let report = pipeline.run_source(src)?;
    println!("\nparsed `{src}`");
    println!("type:    {}", report.ty);
    println!("value:   {}", report.value()?);

    // 3. Compile a tiny first-order function to assembly (the MiniF
    //    stage) and call it from F.
    let bundle = pipeline.compile_minif_source("fn poly(x) = x * x + 1")?;
    println!(
        "\ncompiled poly(x) = x*x + 1, {} blocks",
        bundle.block_count()
    );
    let (_, _, ty) = &bundle.wrapped[0];
    println!("type:    {ty}");
    println!(
        "value:   {}",
        pipeline.run_compiled(&bundle, "poly", &[9])?.value()?
    );
    Ok(())
}
