//! Quickstart: build a mixed F/T program three ways (builders, concrete
//! syntax, compiler), type-check it, and run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use funtal::machine::eval_to_value;
use funtal::typecheck;
use funtal_parser::parse_fexpr;
use funtal_syntax::build::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Builders: an F program with an embedded assembly component that
    //    squares its input.
    let square = lam_z(
        vec![("x", fint())],
        "zl",
        app(
            boundary(
                arrow(vec![fint()], fint()),
                tcomp(
                    seq(
                        vec![protect(vec![], "zp"), mv(r1(), loc("sq"))],
                        halt(
                            funtal::fty_to_tty(&arrow(vec![fint()], fint())),
                            zvar("zp"),
                            r1(),
                        ),
                    ),
                    vec![(
                        "sq",
                        code_block(
                            vec![d_stk("z"), d_ret("e")],
                            chi([(
                                ra(),
                                code_ty(vec![], chi([(r1(), int())]), zvar("z"), q_var("e")),
                            )]),
                            stack(vec![int()], zvar("z")),
                            q_reg(ra()),
                            seq(
                                vec![sld(r1(), 0), sfree(1), mul(r1(), r1(), reg(r1()))],
                                ret(ra(), r1()),
                            ),
                        ),
                    )],
                ),
            ),
            vec![var("x")],
        ),
    );
    let prog = app(square, vec![fint_e(12)]);
    println!("program: {prog}");
    println!("type:    {}", typecheck(&prog)?);
    println!("value:   {}", eval_to_value(&prog, 100_000)?);

    // 2. The same thing in concrete syntax.
    let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
    let parsed = parse_fexpr(src)?;
    println!("\nparsed `{src}`");
    println!("type:    {}", typecheck(&parsed)?);
    println!("value:   {}", eval_to_value(&parsed, 1_000)?);

    // 3. Compile a tiny first-order function to assembly and call it
    //    from F.
    use funtal_compile::codegen::{compile_program, CodegenOpts};
    use funtal_compile::lang::{Def, MExpr, Program};
    use funtal_syntax::ArithOp;
    let p = Program::new([Def::new(
        "poly",
        &["x"],
        MExpr::bin(
            ArithOp::Add,
            MExpr::bin(ArithOp::Mul, MExpr::v("x"), MExpr::v("x")),
            MExpr::i(1),
        ),
    )])?;
    let compiled = compile_program(&p, CodegenOpts::default());
    let call = app(compiled.wrap("poly"), vec![fint_e(9)]);
    println!("\ncompiled poly(x) = x*x + 1, {} blocks", compiled.block_count());
    println!("type:    {}", typecheck(&call)?);
    println!("value:   {}", eval_to_value(&call, 100_000)?);
    Ok(())
}
