# Development entry points, mirroring .github/workflows/ci.yml.

# Build every crate in release mode (the tier-1 build gate).
build:
    cargo build --release

# Run the whole test suite (unit, integration, property, doc tests).
test:
    cargo test -q

# Run the benchmark suite; `just bench-baseline` refreshes the
# committed snapshot.
bench:
    cargo bench -p funtal-bench

bench-baseline:
    BENCH_OUTPUT={{justfile_directory()}}/BENCH_baseline.json cargo bench -p funtal-bench --bench compile

# Formatting + clippy, exactly as CI enforces them.
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings

# Apply formatting.
fmt:
    cargo fmt --all

# Everything CI runs, locally.
ci: build test lint bench
