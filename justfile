# Development entry points, mirroring .github/workflows/ci.yml.

# Build every crate in release mode (the tier-1 build gate).
build:
    cargo build --release

# Run the whole test suite (unit, integration, property, doc tests).
test:
    cargo test -q

# Run the benchmark suite; `just bench-snapshot` refreshes the
# committed snapshot (BENCH_pr10.json is the current gate; BENCH_pr6,
# BENCH_pr3, BENCH_pr2, and the PR-1 BENCH_baseline.json are kept for
# the historical trajectory).
bench:
    cargo bench -p funtal-bench

# The snapshot combines two bench binaries via the shim's append mode
# (one JSON row per line; bench_check parses both layouts).
bench-snapshot:
    rm -f {{justfile_directory()}}/BENCH_pr10.json
    BENCH_WARMUP_MS=50 BENCH_MEASURE_MS=400 BENCH_APPEND=1 \
        BENCH_OUTPUT={{justfile_directory()}}/BENCH_pr10.json \
        cargo bench -p funtal-bench --bench compile
    BENCH_WARMUP_MS=50 BENCH_MEASURE_MS=400 BENCH_APPEND=1 \
        BENCH_OUTPUT={{justfile_directory()}}/BENCH_pr10.json \
        cargo bench -p funtal-bench --bench batch

# Regression gate: re-measure the smoke benches and fail if any
# interpreted_vs_compiled / tail_call_ablation / fib_steady/bytecode/24
# / single-threaded batch_throughput median regressed >25% versus the
# committed BENCH_pr10.json, if the bytecode tier's headline speedup
# over the compiled cursor drops below 2.5x, or if the persistent
# store's cross-process warm start drops below 2x over cold (see
# PERFORMANCE.md). Rows whose medians are under the 10us noise floor
# are recorded but never fail.
# The 600ms measure budget matters: the slowest gated rows run ~15-45ms
# per iteration, and a median over only a handful of iterations can be
# poisoned by one background-CPU burst on a small runner.
bench-check:
    rm -f /tmp/funtal_bench_now.jsonl
    BENCH_WARMUP_MS=50 BENCH_MEASURE_MS=600 BENCH_APPEND=1 BENCH_OUTPUT=/tmp/funtal_bench_now.jsonl \
        cargo bench -p funtal-bench --bench compile
    BENCH_WARMUP_MS=50 BENCH_MEASURE_MS=600 BENCH_APPEND=1 BENCH_OUTPUT=/tmp/funtal_bench_now.jsonl \
        cargo bench -p funtal-bench --bench batch
    cargo run -q -p funtal-bench --bin bench_check -- \
        {{justfile_directory()}}/BENCH_pr10.json /tmp/funtal_bench_now.jsonl \
        --threshold 1.25 --min-abs-us 10 \
        --speedup fib_steady/compiled/24:fib_steady/bytecode/24:2.5 \
        --speedup store_warm_start/cold/24:store_warm_start/warm/24:2.0

# Refresh the CLI golden snapshots after an intentional output change
# (review the diff like any other code change).
golden:
    UPDATE_GOLDEN=1 cargo test -p funtal-driver --test golden

# Formatting + clippy, exactly as CI enforces them.
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings

# The static-analysis gate, exactly as CI runs it: every committed
# example must pass `funtal lint` clean at warning level. (The
# generated differential corpus is gated by the verify_props and
# fuel_bounds suites under `just test`.)
lint-gate:
    cargo run -q -p funtal-driver -- lint \
        examples/double_twice.ft examples/fact_t.ft \
        examples/fact.mf examples/poly.mf --deny warnings

# Evict the local persistent artifact store down to its size cap
# (default ~/.cache/funtal-store at 256 MiB; override DIR/CAP to match
# however you pointed --store-dir).
store-gc DIR="~/.cache/funtal-store" CAP="268435456":
    cargo run -q -p funtal-driver -- store gc \
        --store-dir {{DIR}} --store-cap {{CAP}}

# Apply formatting.
fmt:
    cargo fmt --all

# Everything CI runs, locally.
ci: build test lint lint-gate bench
