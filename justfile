# Development entry points, mirroring .github/workflows/ci.yml.

# Build every crate in release mode (the tier-1 build gate).
build:
    cargo build --release

# Run the whole test suite (unit, integration, property, doc tests).
test:
    cargo test -q

# Run the benchmark suite; `just bench-snapshot` refreshes the
# committed snapshot (BENCH_pr2.json is the current gate; the PR-1
# BENCH_baseline.json is kept for the historical trajectory).
bench:
    cargo bench -p funtal-bench

bench-snapshot:
    BENCH_OUTPUT={{justfile_directory()}}/BENCH_pr2.json cargo bench -p funtal-bench --bench compile

# Regression gate: re-measure the smoke benches and fail if any
# interpreted_vs_compiled / tail_call_ablation mean regressed >25%
# versus the committed BENCH_pr2.json (see PERFORMANCE.md).
bench-check:
    BENCH_WARMUP_MS=50 BENCH_MEASURE_MS=200 BENCH_OUTPUT=/tmp/funtal_bench_now.json \
        cargo bench -p funtal-bench --bench compile
    cargo run -q -p funtal-bench --bin bench_check -- \
        {{justfile_directory()}}/BENCH_pr2.json /tmp/funtal_bench_now.json --threshold 1.25

# Formatting + clippy, exactly as CI enforces them.
lint:
    cargo fmt --all --check
    cargo clippy --workspace --all-targets -- -D warnings

# Apply formatting.
fmt:
    cargo fmt --all

# Everything CI runs, locally.
ci: build test lint bench
