//! Cross-crate integration: the standalone F and T implementations must
//! agree with the FT semantics on pure programs, and the full
//! parse → check → run pipeline holds together.

use funtal::machine::{eval_to_value, run_fexpr, FtOutcome, RunCfg};
use funtal::{typecheck, typecheck_component};
use funtal_driver::{FunTalError, Pipeline};
use funtal_fun::{eval as feval, type_of, FOutcome};
use funtal_parser::parse_tcomp;
use funtal_syntax::build::*;
use funtal_syntax::{Component, FExpr};
use funtal_tal::trace::NullTracer;
use proptest::prelude::*;

// --- pure-F agreement -------------------------------------------------------

fn pure_f_programs() -> Vec<FExpr> {
    vec![
        fadd(fint_e(1), fmul(fint_e(2), fint_e(3))),
        if0(fint_e(0), fint_e(10), fint_e(20)),
        app(
            lam(vec![("x", fint()), ("y", fint())], fsub(var("x"), var("y"))),
            vec![fint_e(10), fint_e(4)],
        ),
        proj(2, ftuple(vec![fint_e(1), fadd(fint_e(2), fint_e(3))])),
        funfold(ffold(fmu("a", fint()), fint_e(7))),
        app(
            app(
                lam(
                    vec![("f", arrow(vec![fint()], fint()))],
                    lam_z(vec![("y", fint())], "z2", app(var("f"), vec![var("y")])),
                ),
                vec![lam(vec![("x", fint())], fmul(var("x"), fint_e(3)))],
            ),
            vec![fint_e(5)],
        ),
    ]
}

#[test]
fn ft_machine_agrees_with_pure_f_evaluator() {
    for e in pure_f_programs() {
        let pure = match feval(&e, 100_000).unwrap() {
            FOutcome::Value(v) => v,
            FOutcome::OutOfFuel(_) => panic!("pure F out of fuel on {e}"),
        };
        let mixed = eval_to_value(&e, 100_000).unwrap();
        assert_eq!(pure, mixed, "disagreement on {e}");
    }
}

#[test]
fn ft_checker_agrees_with_pure_f_checker() {
    for e in pure_f_programs() {
        let pure_ty = type_of(&Default::default(), &e).unwrap();
        let ft_ty = typecheck(&e).unwrap();
        assert!(
            funtal_syntax::alpha::alpha_eq_fty(&pure_ty, &ft_ty),
            "checker disagreement on {e}: {pure_ty} vs {ft_ty}"
        );
    }
}

// --- pure-T agreement ---------------------------------------------------------

#[test]
fn ft_machine_agrees_with_pure_t_machine_on_fig3() {
    let prog = funtal_tal::figures::fig3_call_to_call();
    // Pure T machine.
    let t_out = funtal_tal::machine::run_program(&prog, 1_000, &mut NullTracer).unwrap();
    // FT machine on the same component.
    let mut mem = funtal_tal::machine::Memory::new();
    let ft_out = funtal::machine::run(
        &mut mem,
        &Component::T(prog.clone()),
        RunCfg::with_fuel(1_000),
        &mut NullTracer,
    )
    .unwrap();
    match (t_out, ft_out) {
        (funtal_tal::machine::Outcome::Halted(a), FtOutcome::Halted(b)) => assert_eq!(a, b),
        other => panic!("disagreement: {other:?}"),
    }
    // And both checkers accept it.
    funtal_tal::check::check_program(&prog, &int()).unwrap();
    typecheck_component(&Component::T(prog), Some(&fint())).unwrap();
}

// --- parse → check → run through the driver pipeline ----------------------------

#[test]
fn parse_check_run_pipeline() {
    let src = r"
        // apply an embedded doubler twice: (2*10)*2 ... via F glue
        (lam[zl](f: (int) -> int). f(f(10)))(
            lam[zm](x: int). FT[int](
                protect ., zp;
                import r1, zi = zp, TF[int](x);
                add r1, r1, r1;
                halt int, zp {r1}))
    ";
    let report = Pipeline::new().with_fuel(100_000).run_source(src).unwrap();
    assert_eq!(report.ty, fint());
    assert_eq!(report.value().unwrap(), &fint_e(40));
    // Step accounting is live: the doubler crosses the boundary twice
    // and executes T instructions both times.
    assert!(report.counts.crossings >= 2, "{:?}", report.counts);
    assert!(report.counts.instrs > 0 && report.counts.f_steps > 0);
}

#[test]
fn pipeline_agrees_with_direct_calls() {
    // The pipeline is plumbing, not semantics: its answer must be
    // byte-identical to calling the layers directly.
    let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
    let e = funtal_parser::parse_fexpr(src).unwrap();
    let direct_ty = typecheck(&e).unwrap();
    let direct_val = eval_to_value(&e, 1_000).unwrap();

    let report = Pipeline::new().with_fuel(1_000).run_source(src).unwrap();
    assert_eq!(report.ty, direct_ty);
    assert_eq!(report.value().unwrap(), &direct_val);
}

#[test]
fn pipeline_unified_errors_carry_spans_and_stages() {
    let p = Pipeline::new();
    // Parse errors keep their source position.
    let err = p.run_source("lam[z](x: int). x +").unwrap_err();
    assert_eq!(err.stage(), "parse");
    let (line, col) = err.span().expect("parse errors have spans");
    assert!(line >= 1 && col >= 1);
    // Type errors come through the same enum.
    let err = p.run_source("1 + ()").unwrap_err();
    assert_eq!(err.stage(), "typecheck");
    assert!(err.span().is_none());
    // Fuel exhaustion is reported by the run stage, not silently.
    let fact = funtal::figures::fig17_fact_f();
    let spin = app(fact, vec![fint_e(25)]);
    let report = Pipeline::new().with_fuel(10).run(&spin).unwrap();
    assert!(matches!(
        report.value().unwrap_err(),
        FunTalError::OutOfFuel { fuel: 10 }
    ));
}

#[test]
fn pipeline_minif_stage_matches_reference_interpreter() {
    let p = Pipeline::new().with_fuel(5_000_000);
    let bundle = p
        .compile_minif_source("fn fact(n) = if0 n { 1 } { fact(n - 1) * n }")
        .unwrap();
    let reference = bundle.program.eval("fact", &[6], 100).unwrap();
    let compiled = p.run_compiled(&bundle, "fact", &[6]).unwrap();
    assert_eq!(compiled.value().unwrap(), &fint_e(reference));
}

#[test]
fn parse_check_run_pure_t() {
    let src = r"
        (mv ra, k; call body {*, end{int; *}},
         {body -> code[z: stk, e: ret]{ra: box forall[]{r1: int; z} e; z} ra.
             mv r1, 21; add r1, r1, r1; ret ra {r1};
          k -> code[]{r1: int; *} end{int; *}. halt int, * {r1}})
    ";
    let comp = parse_tcomp(src).unwrap();
    funtal_tal::check::check_program(&comp, &int()).unwrap();
    let out = funtal_tal::machine::run_program(&comp, 100, &mut NullTracer).unwrap();
    assert_eq!(
        out,
        funtal_tal::machine::Outcome::Halted(funtal_syntax::WordVal::Int(42))
    );
}

// --- type-safety properties (E11) -----------------------------------------------

/// A generator of well-typed closed pure-F integer expressions.
fn arb_int_expr(depth: u32) -> BoxedStrategy<FExpr> {
    let leaf = (-20i64..21).prop_map(fint_e).boxed();
    leaf.prop_recursive(depth, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fadd(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fmul(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fsub(a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| if0(c, t, e)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| app(
                lam(vec![("x", fint()), ("y", fint())], fadd(var("x"), var("y"))),
                vec![a, b],
            )),
            inner
                .clone()
                .prop_map(|a| proj(1, ftuple(vec![a, funit_e()]))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Progress + preservation, observationally: generated well-typed
    /// programs never get stuck, and the FT machine agrees with the
    /// pure evaluator.
    #[test]
    fn type_safety_generated_programs(e in arb_int_expr(4)) {
        prop_assert_eq!(typecheck(&e).unwrap(), fint());
        let pure = match feval(&e, 1_000_000).unwrap() {
            FOutcome::Value(v) => v,
            FOutcome::OutOfFuel(_) => unreachable!("arith programs terminate"),
        };
        let mixed = eval_to_value(&e, 1_000_000).unwrap();
        prop_assert_eq!(pure, mixed);
    }

    /// The dynamic guard never fires on well-typed mixed programs
    /// (fig16-shaped wrappers around generated arithmetic).
    #[test]
    fn guard_never_fires_on_well_typed(n in -50i64..50) {
        let f1 = funtal::figures::fig16_f1();
        let prog = app(f1, vec![fint_e(n)]);
        let out = run_fexpr(
            &prog,
            RunCfg { fuel: 100_000, guard: true, ..RunCfg::default() },
            &mut NullTracer,
        ).unwrap();
        prop_assert_eq!(out, FtOutcome::Value(fint_e(n + 2)));
    }
}

// --- ill-typed programs are rejected, and the guard catches tampering ------------

#[test]
fn guard_catches_ill_typed_jump() {
    // Hand-build a *wrong* program: jump to a block expecting an int in
    // r1 without setting it. The static checker rejects it; running
    // with the guard faults instead of silently misbehaving.
    let bad = tcomp(
        seq(vec![], jmp(loc("needs_r1"))),
        vec![(
            "needs_r1",
            code_block(
                vec![],
                chi([(r1(), int())]),
                nil(),
                q_end(int(), nil()),
                seq(vec![], halt(int(), nil(), r1())),
            ),
        )],
    );
    assert!(funtal_tal::check::check_program(&bad, &int()).is_err());
    let mut mem = funtal_tal::machine::Memory::new();
    let seq0 = mem.merge_fragment(&bad);
    let err = funtal_tal::machine::step_seq_opts(
        &mut mem,
        seq0,
        &mut NullTracer,
        funtal_tal::machine::MachineOpts { guard: true },
    )
    .unwrap_err();
    assert!(
        matches!(err, funtal_tal::RuntimeError::GuardViolation(_)),
        "{err}"
    );
}

#[test]
fn ill_typed_programs_rejected() {
    // A few mixed-language type errors across crates.
    let cases: Vec<FExpr> = vec![
        // boundary type lies about the halt type
        boundary(
            fint(),
            tcomp(
                seq(vec![mv(r1(), unit_v())], halt(unit(), nil(), r1())),
                vec![],
            ),
        ),
        // arithmetic on unit
        fadd(funit_e(), fint_e(1)),
        // projection out of range
        proj(3, ftuple(vec![fint_e(1)])),
        // application arity
        app(lam(vec![("x", fint())], var("x")), vec![]),
    ];
    for e in cases {
        assert!(typecheck(&e).is_err(), "should be ill-typed: {e}");
    }
}
