//! The pure-F call-by-value evaluator (small-step, substitution-based).
//!
//! Evaluation order follows the paper's evaluation contexts (Fig 5):
//! binop left-to-right, `if0` scrutinee first, application function then
//! arguments left-to-right, tuples left-to-right.

use std::collections::BTreeMap;
use std::fmt;

use funtal_syntax::subst::subst_fvars;
use funtal_syntax::FExpr;

/// A runtime error of pure F (well-typed programs never raise one).
#[derive(Clone, Debug, PartialEq)]
pub enum FEvalError {
    /// The expression is stuck (e.g. projecting from a non-tuple).
    Stuck(String),
    /// A free variable was reached.
    Unbound(String),
    /// A multi-language form reached the pure-F evaluator.
    MultiLanguage(&'static str),
}

impl fmt::Display for FEvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FEvalError::Stuck(s) => write!(f, "stuck: {s}"),
            FEvalError::Unbound(x) => write!(f, "unbound variable {x}"),
            FEvalError::MultiLanguage(w) => {
                write!(
                    f,
                    "multi-language form `{w}` not supported by the pure F evaluator"
                )
            }
        }
    }
}

impl std::error::Error for FEvalError {}

/// One small step, or the report that `e` is already a value.
#[derive(Clone, Debug, PartialEq)]
pub enum FStep {
    /// The expression stepped.
    Stepped(FExpr),
    /// The expression is a value.
    Value,
}

/// Performs one CBV step.
pub fn step(e: &FExpr) -> Result<FStep, FEvalError> {
    if e.is_value() {
        return Ok(FStep::Value);
    }
    Ok(FStep::Stepped(step_expr(e)?))
}

fn step_expr(e: &FExpr) -> Result<FExpr, FEvalError> {
    debug_assert!(!e.is_value());
    match e {
        FExpr::Var(x) => Err(FEvalError::Unbound(x.to_string())),
        FExpr::Unit | FExpr::Int(_) | FExpr::Lam(_) => unreachable!("values handled"),
        FExpr::Binop { op, lhs, rhs } => {
            if !lhs.is_value() {
                return Ok(FExpr::Binop {
                    op: *op,
                    lhs: Box::new(step_expr(lhs)?),
                    rhs: rhs.clone(),
                });
            }
            if !rhs.is_value() {
                return Ok(FExpr::Binop {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: Box::new(step_expr(rhs)?),
                });
            }
            let (FExpr::Int(a), FExpr::Int(b)) = (&**lhs, &**rhs) else {
                return Err(FEvalError::Stuck(format!("binop on non-integers: {e}")));
            };
            Ok(FExpr::Int(op.apply(*a, *b)))
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            if !cond.is_value() {
                return Ok(FExpr::If0 {
                    cond: Box::new(step_expr(cond)?),
                    then_branch: then_branch.clone(),
                    else_branch: else_branch.clone(),
                });
            }
            let FExpr::Int(n) = &**cond else {
                return Err(FEvalError::Stuck(format!("if0 on a non-integer: {e}")));
            };
            Ok(if *n == 0 {
                (**then_branch).clone()
            } else {
                (**else_branch).clone()
            })
        }
        FExpr::App { func, args } => {
            if !func.is_value() {
                return Ok(FExpr::App {
                    func: Box::new(step_expr(func)?),
                    args: args.clone(),
                });
            }
            if let Some(i) = args.iter().position(|a| !a.is_value()) {
                let mut args = args.clone();
                args[i] = step_expr(&args[i])?;
                return Ok(FExpr::App {
                    func: func.clone(),
                    args,
                });
            }
            let FExpr::Lam(lam) = &**func else {
                return Err(FEvalError::Stuck(format!(
                    "applying a non-function: {func}"
                )));
            };
            if !lam.is_plain() {
                return Err(FEvalError::MultiLanguage("stack-modifying lambda"));
            }
            if lam.params.len() != args.len() {
                return Err(FEvalError::Stuck(format!(
                    "arity mismatch: {} params, {} args",
                    lam.params.len(),
                    args.len()
                )));
            }
            let map: BTreeMap<_, _> = lam
                .params
                .iter()
                .map(|(x, _)| x.clone())
                .zip(args.iter().cloned())
                .collect();
            Ok(subst_fvars(&lam.body, &map))
        }
        FExpr::Fold { ann, body } => Ok(FExpr::Fold {
            ann: ann.clone(),
            body: Box::new(step_expr(body)?),
        }),
        FExpr::Unfold(body) => {
            if !body.is_value() {
                return Ok(FExpr::Unfold(Box::new(step_expr(body)?)));
            }
            let FExpr::Fold { body: inner, .. } = &**body else {
                return Err(FEvalError::Stuck(format!("unfold of a non-fold: {body}")));
            };
            Ok((**inner).clone())
        }
        FExpr::Tuple(es) => {
            let Some(i) = es.iter().position(|a| !a.is_value()) else {
                unreachable!("tuple of values is a value");
            };
            let mut es = es.clone();
            es[i] = step_expr(&es[i])?;
            Ok(FExpr::Tuple(es))
        }
        FExpr::Proj { idx, tuple } => {
            if !tuple.is_value() {
                return Ok(FExpr::Proj {
                    idx: *idx,
                    tuple: Box::new(step_expr(tuple)?),
                });
            }
            let FExpr::Tuple(vs) = &**tuple else {
                return Err(FEvalError::Stuck(format!(
                    "projection from a non-tuple: {tuple}"
                )));
            };
            if *idx == 0 || *idx > vs.len() {
                return Err(FEvalError::Stuck(format!("pi[{idx}] out of range")));
            }
            Ok(vs[*idx - 1].clone())
        }
        FExpr::Boundary { .. } => Err(FEvalError::MultiLanguage("boundary")),
    }
}

/// The outcome of fuel-bounded evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum FOutcome {
    /// Reached a value.
    Value(FExpr),
    /// Fuel ran out (possibly divergent).
    OutOfFuel(FExpr),
}

/// Evaluates `e` for at most `fuel` steps.
pub fn eval(e: &FExpr, fuel: u64) -> Result<FOutcome, FEvalError> {
    let mut cur = e.clone();
    for _ in 0..fuel {
        match step(&cur)? {
            FStep::Value => return Ok(FOutcome::Value(cur)),
            FStep::Stepped(next) => cur = next,
        }
    }
    if cur.is_value() {
        Ok(FOutcome::Value(cur))
    } else {
        Ok(FOutcome::OutOfFuel(cur))
    }
}

/// Evaluates and counts the steps taken.
pub fn eval_counting(e: &FExpr, fuel: u64) -> Result<(FOutcome, u64), FEvalError> {
    let mut cur = e.clone();
    for i in 0..fuel {
        match step(&cur)? {
            FStep::Value => return Ok((FOutcome::Value(cur), i)),
            FStep::Stepped(next) => cur = next,
        }
    }
    if cur.is_value() {
        Ok((FOutcome::Value(cur), fuel))
    } else {
        Ok((FOutcome::OutOfFuel(cur), fuel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::build::*;

    fn run(e: &FExpr) -> FExpr {
        match eval(e, 10_000).unwrap() {
            FOutcome::Value(v) => v,
            FOutcome::OutOfFuel(_) => panic!("out of fuel"),
        }
    }

    #[test]
    fn arithmetic_left_to_right() {
        let e = fadd(fmul(fint_e(2), fint_e(3)), fint_e(4));
        assert_eq!(run(&e), fint_e(10));
    }

    #[test]
    fn beta_reduction() {
        let inc = lam(vec![("x", fint())], fadd(var("x"), fint_e(1)));
        assert_eq!(run(&app(inc, vec![fint_e(41)])), fint_e(42));
    }

    #[test]
    fn multi_arg_application() {
        let subf = lam(vec![("x", fint()), ("y", fint())], fsub(var("x"), var("y")));
        assert_eq!(run(&app(subf, vec![fint_e(10), fint_e(3)])), fint_e(7));
    }

    #[test]
    fn if0_selects_branches() {
        assert_eq!(run(&if0(fint_e(0), fint_e(1), fint_e(2))), fint_e(1));
        assert_eq!(run(&if0(fint_e(5), fint_e(1), fint_e(2))), fint_e(2));
        assert_eq!(run(&if0(fint_e(-1), fint_e(1), fint_e(2))), fint_e(2));
    }

    #[test]
    fn tuples_and_projections() {
        let e = proj(2, ftuple(vec![fint_e(1), fadd(fint_e(2), fint_e(3))]));
        assert_eq!(run(&e), fint_e(5));
    }

    #[test]
    fn unfold_fold_cancels() {
        let v = ffold(fmu("a", fint()), fint_e(9));
        assert_eq!(run(&funfold(v)), fint_e(9));
    }

    #[test]
    fn factorial_via_self_application() {
        // The paper's factF (Fig 17): F = λf. λx. if0 x 1 ((unfold f) f (x−1)) * x
        let mu_ty = fmu("a", arrow(vec![fvar_ty("a"), fint()], fint()));
        let f_body = lam(
            vec![("f", mu_ty.clone()), ("x", fint())],
            if0(
                var("x"),
                fint_e(1),
                fmul(
                    app(funfold(var("f")), vec![var("f"), fsub(var("x"), fint_e(1))]),
                    var("x"),
                ),
            ),
        );
        let fact = |n: i64| {
            app(
                ffold(mu_ty.clone(), f_body.clone()).pipe_unfold(),
                vec![ffold(mu_ty.clone(), f_body.clone()), fint_e(n)],
            )
        };
        assert_eq!(run(&fact(0)), fint_e(1));
        assert_eq!(run(&fact(5)), fint_e(120));
        // Negative input diverges: fuel runs out.
        let neg = fact(-1);
        assert!(matches!(eval(&neg, 500).unwrap(), FOutcome::OutOfFuel(_)));
    }

    trait PipeUnfold {
        fn pipe_unfold(self) -> FExpr;
    }
    impl PipeUnfold for FExpr {
        fn pipe_unfold(self) -> FExpr {
            funfold(self)
        }
    }

    #[test]
    fn shadowing_respected() {
        // (λx. (λx. x)(2) + x)(40) = 42
        let inner = lam(vec![("x", fint())], var("x"));
        let outer = lam(
            vec![("x", fint())],
            fadd(app(inner, vec![fint_e(2)]), var("x")),
        );
        assert_eq!(run(&app(outer, vec![fint_e(40)])), fint_e(42));
    }

    #[test]
    fn step_counts() {
        let e = fadd(fint_e(1), fint_e(2));
        let (out, steps) = eval_counting(&e, 10).unwrap();
        assert_eq!(out, FOutcome::Value(fint_e(3)));
        assert_eq!(steps, 1);
    }
}
