//! The pure-F type system (Fig 5 of the paper): `Γ ⊢ e : τ`.
//!
//! This checker rejects multi-language forms (boundaries and
//! stack-modifying lambdas); they belong to FT (crate `funtal`). Having
//! a standalone checker lets integration tests cross-validate the FT
//! checker on pure programs.

use std::collections::BTreeMap;
use std::fmt;

use funtal_syntax::alpha::alpha_eq_fty;
use funtal_syntax::{FExpr, FTy, VarName};

/// A typing error of pure F.
#[derive(Clone, Debug, PartialEq)]
pub enum FTypeError {
    /// Unbound term variable.
    Unbound(VarName),
    /// Two types that had to agree differ.
    Mismatch {
        /// What was required.
        expected: String,
        /// What was found.
        found: String,
        /// Where.
        what: &'static str,
    },
    /// The expression has the wrong shape (e.g. applying a non-function).
    WrongForm {
        /// What was required.
        expected: &'static str,
        /// What was found.
        found: String,
    },
    /// Wrong number of arguments in an application.
    Arity {
        /// Parameters declared.
        expected: usize,
        /// Arguments given.
        found: usize,
    },
    /// A projection index out of range (projections are 1-indexed).
    BadProj {
        /// Index requested.
        idx: usize,
        /// Tuple width.
        width: usize,
    },
    /// A multi-language form reached the pure-F checker.
    MultiLanguage(&'static str),
}

impl fmt::Display for FTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTypeError::Unbound(x) => write!(f, "unbound variable {x}"),
            FTypeError::Mismatch {
                expected,
                found,
                what,
            } => {
                write!(f, "{what}: expected {expected}, found {found}")
            }
            FTypeError::WrongForm { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            FTypeError::Arity { expected, found } => {
                write!(f, "expected {expected} arguments, found {found}")
            }
            FTypeError::BadProj { idx, width } => {
                write!(f, "projection pi[{idx}] out of range for a {width}-tuple")
            }
            FTypeError::MultiLanguage(what) => {
                write!(f, "multi-language form `{what}` not allowed in pure F")
            }
        }
    }
}

impl std::error::Error for FTypeError {}

/// A typing environment `Γ`.
pub type Env = BTreeMap<VarName, FTy>;

fn expect(a: &FTy, b: &FTy, what: &'static str) -> Result<(), FTypeError> {
    if alpha_eq_fty(a, b) {
        Ok(())
    } else {
        Err(FTypeError::Mismatch {
            expected: a.to_string(),
            found: b.to_string(),
            what,
        })
    }
}

/// Checks that a type is pure F: no stack-modifying arrows (whose
/// prefixes mention T types).
pub fn pure_fty(t: &FTy) -> Result<(), FTypeError> {
    match t {
        FTy::Var(_) | FTy::Unit | FTy::Int => Ok(()),
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            if !phi_in.is_empty() || !phi_out.is_empty() {
                return Err(FTypeError::MultiLanguage("stack-modifying arrow"));
            }
            params.iter().try_for_each(pure_fty)?;
            pure_fty(ret)
        }
        FTy::Rec(_, body) => pure_fty(body),
        FTy::Tuple(ts) => ts.iter().try_for_each(pure_fty),
    }
}

/// Infers the type of a pure-F expression (`Γ ⊢ e : τ`).
pub fn type_of(env: &Env, e: &FExpr) -> Result<FTy, FTypeError> {
    match e {
        FExpr::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| FTypeError::Unbound(x.clone())),
        FExpr::Unit => Ok(FTy::Unit),
        FExpr::Int(_) => Ok(FTy::Int),
        FExpr::Binop { lhs, rhs, .. } => {
            expect(&FTy::Int, &type_of(env, lhs)?, "left operand")?;
            expect(&FTy::Int, &type_of(env, rhs)?, "right operand")?;
            Ok(FTy::Int)
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            expect(&FTy::Int, &type_of(env, cond)?, "if0 condition")?;
            let t1 = type_of(env, then_branch)?;
            let t2 = type_of(env, else_branch)?;
            expect(&t1, &t2, "if0 branches")?;
            Ok(t1)
        }
        FExpr::Lam(lam) => {
            if !lam.is_plain() {
                return Err(FTypeError::MultiLanguage("stack-modifying lambda"));
            }
            let mut inner = env.clone();
            for (x, t) in &lam.params {
                pure_fty(t)?;
                inner.insert(x.clone(), t.clone());
            }
            let ret = type_of(&inner, &lam.body)?;
            Ok(FTy::arrow(
                lam.params.iter().map(|(_, t)| t.clone()).collect(),
                ret,
            ))
        }
        FExpr::App { func, args } => {
            let tf = type_of(env, func)?;
            let FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            } = &tf
            else {
                return Err(FTypeError::WrongForm {
                    expected: "a function",
                    found: tf.to_string(),
                });
            };
            if !phi_in.is_empty() || !phi_out.is_empty() {
                return Err(FTypeError::MultiLanguage("stack-modifying application"));
            }
            if params.len() != args.len() {
                return Err(FTypeError::Arity {
                    expected: params.len(),
                    found: args.len(),
                });
            }
            for (p, a) in params.iter().zip(args) {
                expect(p, &type_of(env, a)?, "argument")?;
            }
            Ok((**ret).clone())
        }
        FExpr::Fold { ann, body } => {
            pure_fty(ann)?;
            let FTy::Rec(a, inner) = ann else {
                return Err(FTypeError::WrongForm {
                    expected: "a recursive-type annotation",
                    found: ann.to_string(),
                });
            };
            let unrolled = subst_fty_var(inner, a, ann);
            expect(&unrolled, &type_of(env, body)?, "fold body")?;
            Ok(ann.clone())
        }
        FExpr::Unfold(body) => {
            let t = type_of(env, body)?;
            let FTy::Rec(a, inner) = &t else {
                return Err(FTypeError::WrongForm {
                    expected: "a value of recursive type",
                    found: t.to_string(),
                });
            };
            Ok(subst_fty_var(inner, a, &t))
        }
        FExpr::Tuple(es) => {
            let ts: Result<Vec<FTy>, FTypeError> = es.iter().map(|e| type_of(env, e)).collect();
            Ok(FTy::Tuple(ts?))
        }
        FExpr::Proj { idx, tuple } => {
            let t = type_of(env, tuple)?;
            let FTy::Tuple(ts) = &t else {
                return Err(FTypeError::WrongForm {
                    expected: "a tuple",
                    found: t.to_string(),
                });
            };
            if *idx == 0 || *idx > ts.len() {
                return Err(FTypeError::BadProj {
                    idx: *idx,
                    width: ts.len(),
                });
            }
            Ok(ts[*idx - 1].clone())
        }
        FExpr::Boundary { .. } => Err(FTypeError::MultiLanguage("boundary")),
    }
}

/// Substitutes an F type for a type variable in an F type
/// (capture-avoiding, via the shared substitution on a renamed
/// variable).
///
/// F recursive types unroll with F types, which the kinded `Subst`
/// cannot carry; this helper handles the F-only case directly.
pub fn subst_fty_var(body: &FTy, var: &funtal_syntax::TyVar, replacement: &FTy) -> FTy {
    match body {
        FTy::Var(v) if v == var => replacement.clone(),
        FTy::Var(_) | FTy::Unit | FTy::Int => body.clone(),
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => FTy::Arrow {
            params: params
                .iter()
                .map(|t| subst_fty_var(t, var, replacement))
                .collect(),
            phi_in: phi_in.clone(),
            phi_out: phi_out.clone(),
            ret: Box::new(subst_fty_var(ret, var, replacement)),
        },
        FTy::Rec(v, inner) => {
            if v == var {
                body.clone()
            } else if funtal_syntax::free::ftv_fty(replacement).contains(v) {
                // Rename the binder to avoid capture.
                let fresh = funtal_syntax::ids::fresh_tyvar(v, |cand| {
                    funtal_syntax::free::ftv_fty(replacement).contains(cand)
                        || funtal_syntax::free::ftv_fty(inner).contains(cand)
                });
                let renamed = subst_fty_var(inner, v, &FTy::Var(fresh.clone()));
                FTy::Rec(fresh, Box::new(subst_fty_var(&renamed, var, replacement)))
            } else {
                FTy::Rec(v.clone(), Box::new(subst_fty_var(inner, var, replacement)))
            }
        }
        FTy::Tuple(ts) => FTy::Tuple(
            ts.iter()
                .map(|t| subst_fty_var(t, var, replacement))
                .collect(),
        ),
    }
}

/// Checks a closed pure-F program against an expected type.
pub fn check_closed(e: &FExpr, expected: &FTy) -> Result<(), FTypeError> {
    let t = type_of(&Env::new(), e)?;
    expect(expected, &t, "program result")
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::build::*;

    #[test]
    fn arithmetic() {
        assert_eq!(
            type_of(&Env::new(), &fadd(fint_e(1), fint_e(2))),
            Ok(FTy::Int)
        );
        assert!(type_of(&Env::new(), &fadd(funit_e(), fint_e(2))).is_err());
    }

    #[test]
    fn lambda_and_app() {
        let id = lam(vec![("x", fint())], var("x"));
        assert_eq!(
            type_of(&Env::new(), &id),
            Ok(FTy::arrow(vec![FTy::Int], FTy::Int))
        );
        assert_eq!(
            type_of(&Env::new(), &app(id.clone(), vec![fint_e(3)])),
            Ok(FTy::Int)
        );
        assert!(matches!(
            type_of(&Env::new(), &app(id.clone(), vec![])),
            Err(FTypeError::Arity { .. })
        ));
        assert!(type_of(&Env::new(), &app(id, vec![funit_e()])).is_err());
    }

    #[test]
    fn if0_branches_must_agree() {
        let good = if0(fint_e(0), fint_e(1), fint_e(2));
        assert_eq!(type_of(&Env::new(), &good), Ok(FTy::Int));
        let bad = if0(fint_e(0), fint_e(1), funit_e());
        assert!(type_of(&Env::new(), &bad).is_err());
    }

    #[test]
    fn tuples_and_projection() {
        let t = ftuple(vec![fint_e(1), funit_e()]);
        assert_eq!(
            type_of(&Env::new(), &t),
            Ok(FTy::Tuple(vec![FTy::Int, FTy::Unit]))
        );
        assert_eq!(type_of(&Env::new(), &proj(1, t.clone())), Ok(FTy::Int));
        assert_eq!(type_of(&Env::new(), &proj(2, t.clone())), Ok(FTy::Unit));
        assert!(type_of(&Env::new(), &proj(0, t.clone())).is_err());
        assert!(type_of(&Env::new(), &proj(3, t)).is_err());
    }

    #[test]
    fn fold_unfold() {
        // µa.(a) → int — the self-application type of Fig 17.
        let mu_ty = fmu("a", arrow(vec![fvar_ty("a")], fint()));
        let f = lam(vec![("f", mu_ty.clone())], fint_e(0));
        let folded = ffold(mu_ty.clone(), f);
        assert_eq!(type_of(&Env::new(), &folded), Ok(mu_ty.clone()));
        let unfolded = funfold(folded);
        assert_eq!(
            type_of(&Env::new(), &unfolded),
            Ok(arrow(vec![mu_ty], fint()))
        );
    }

    #[test]
    fn boundaries_rejected() {
        let b = boundary(
            fint(),
            tcomp(
                seq(vec![mv(r1(), int_v(1))], halt(int(), nil(), r1())),
                vec![],
            ),
        );
        assert!(matches!(
            type_of(&Env::new(), &b),
            Err(FTypeError::MultiLanguage(_))
        ));
    }

    #[test]
    fn stack_lambdas_rejected() {
        let l = lam_sm(vec![("x", fint())], "z", vec![], vec![int()], var("x"));
        assert!(matches!(
            type_of(&Env::new(), &l),
            Err(FTypeError::MultiLanguage(_))
        ));
    }
}
