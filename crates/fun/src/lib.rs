//! **F**: the simply-typed, call-by-value functional language of
//! *"FunTAL: Reasonably Mixing a Functional Language with Assembly"*
//! (PLDI 2017), §4.1 — iso-recursive types, conditional branching,
//! tuples, integers and unit.
//!
//! This crate implements *pure* F: the type checker ([`check`]) and
//! evaluator ([`eval`]) reject the multi-language forms (boundaries,
//! stack-modifying lambdas), which belong to the `funtal` crate. The
//! standalone implementation exists so integration tests can
//! cross-validate the FT semantics against a simpler reference on pure
//! programs.
//!
//! # Example
//!
//! ```
//! use funtal_syntax::build::*;
//! use funtal_fun::{check::type_of, eval::{eval, FOutcome}};
//!
//! let inc = lam(vec![("x", fint())], fadd(var("x"), fint_e(1)));
//! let prog = app(inc, vec![fint_e(41)]);
//! assert_eq!(type_of(&Default::default(), &prog)?, fint());
//! assert_eq!(eval(&prog, 100)?, FOutcome::Value(fint_e(42)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod eval;

pub use check::{check_closed, type_of, Env, FTypeError};
pub use eval::{eval, eval_counting, step, FEvalError, FOutcome, FStep};
