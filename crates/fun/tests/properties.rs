//! Property-based tests for pure F: progress + preservation
//! (observationally), and determinism of the small-step relation.

use funtal_fun::check::type_of;
use funtal_fun::eval::{eval_counting, step, FOutcome, FStep};
use funtal_syntax::alpha::alpha_eq_fty;
use funtal_syntax::build::*;
use funtal_syntax::FExpr;
use proptest::prelude::*;

/// Well-typed closed integer expressions.
fn arb_int_expr(depth: u32) -> BoxedStrategy<FExpr> {
    let leaf = (-8i64..9).prop_map(fint_e).boxed();
    leaf.prop_recursive(depth, 48, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fadd(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fsub(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| fmul(a, b)),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, e)| if0(c, t, e)),
            inner
                .clone()
                .prop_map(|a| app(lam(vec![("x", fint())], fadd(var("x"), var("x"))), vec![a])),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| proj(2, ftuple(vec![a, b]))),
            inner
                .clone()
                .prop_map(|a| funfold(ffold(fmu("r", fint()), a))),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Progress: a well-typed term is a value or steps. Preservation:
    /// every intermediate term stays well-typed at the same type.
    #[test]
    fn progress_and_preservation(e in arb_int_expr(4)) {
        let ty = type_of(&Default::default(), &e).unwrap();
        let mut cur = e;
        for _ in 0..100_000u32 {
            // Preservation at each step.
            let t2 = type_of(&Default::default(), &cur).unwrap();
            prop_assert!(alpha_eq_fty(&ty, &t2), "type changed: {} vs {}", ty, t2);
            match step(&cur).unwrap() {
                FStep::Value => return Ok(()),
                FStep::Stepped(next) => cur = next,
            }
        }
        prop_assert!(false, "did not terminate");
    }

    /// The step relation is a function: re-stepping the same term gives
    /// the same result (determinism of evaluation contexts).
    #[test]
    fn step_is_deterministic(e in arb_int_expr(3)) {
        let a = step(&e).unwrap();
        let b = step(&e).unwrap();
        match (a, b) {
            (FStep::Value, FStep::Value) => {}
            (FStep::Stepped(x), FStep::Stepped(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "nondeterministic"),
        }
    }

    /// Step counting is consistent with the fuel bound.
    #[test]
    fn counting_matches(e in arb_int_expr(3)) {
        let (out, steps) = eval_counting(&e, 1_000_000).unwrap();
        prop_assert!(matches!(out, FOutcome::Value(_)));
        // Re-running with exactly that much fuel still finishes.
        let (out2, steps2) = eval_counting(&e, steps + 1).unwrap();
        prop_assert!(matches!(out2, FOutcome::Value(_)));
        prop_assert_eq!(steps, steps2);
    }
}

#[test]
fn stuck_terms_report_errors() {
    // These are ill-typed; the evaluator reports stuckness rather than
    // panicking.
    use funtal_fun::eval::eval;
    let cases = vec![
        fadd(funit_e(), fint_e(1)),
        app(fint_e(3), vec![fint_e(1)]),
        proj(1, fint_e(3)),
        funfold(fint_e(3)),
        if0(funit_e(), fint_e(1), fint_e(2)),
    ];
    for e in cases {
        assert!(eval(&e, 100).is_err(), "expected stuck: {e}");
    }
}
