//! `funtal lint`: deterministic, span-attributed diagnostics over
//! source programs and their lowered bytecode.
//!
//! Six rules, three layers:
//!
//! - **source** (the F term and embedded T components):
//!   `shadowed-binder` (a lambda parameter hides an enclosing one) and
//!   `unused-heap-fragment` (a heap label no instruction or heap value
//!   ever mentions);
//! - **lowered IR** (per [`BcModule`], instantiating the worklist
//!   framework a second way — backward register liveness over basic
//!   blocks, next to the verifier's forward initialization):
//!   `dead-register-write` (a pure write no path reads),
//!   `unreachable-block` (a region neither jumped to nor escaping as
//!   data), and `constant-import` (a boundary crossing whose
//!   marshalled value is statically constant);
//! - **whole program**: `static-fuel-bound` reports the certified
//!   fuel bound when [`crate::infer_fuel`] commits to one.
//!
//! Findings are [`normalize`]d — sorted by `(file, span, rule,
//! message)` and deduplicated — so renderings are byte-stable
//! regardless of rule order or worker count.

use funtal_analysis::{normalize, solve, Analysis, BitSet, Cfg, Diagnostic, Direction, Severity};
use funtal_syntax::span::Span;
use funtal_syntax::{
    FExpr, HeapVal, Instr, InstrSeq, Label, SmallVal, TComp, Terminator, VarName, WordVal,
};

use crate::bc_verify::{effects, module_regions, Eff, ModuleRegions, REG_FILE};
use crate::cost::{infer_fuel, FuelBound};
use crate::machine_bc::{BcModule, BcOp, BcTarget, LoweredProgram};
use crate::machine_fast::ridx;

/// Lints `expr` (as parsed from `file`) and its lowering `lp`,
/// returning findings in canonical order. Spans come from the
/// modules' lower-time span tables: lower with
/// [`crate::prelower_spanned`] to get source positions, or accept
/// synthetic spans from [`crate::prelower`].
pub fn lint_program(file: &str, expr: &FExpr, lp: &LoweredProgram) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    shadowed_binders(file, expr, &mut Vec::new(), &mut diags);
    for (comp, m) in &lp.modules {
        lint_module(file, comp, m, &mut diags);
    }
    if let FuelBound::Exact(n) = infer_fuel(lp) {
        diags.push(Diagnostic::new(
            file,
            Span::SYNTH,
            "static-fuel-bound",
            Severity::Note,
            format!("program has a certified static fuel bound of {n} steps"),
        ));
    }
    normalize(&mut diags);
    diags
}

// ---------------------------------------------------------------------
// Source layer
// ---------------------------------------------------------------------

/// Walks the F term (and the F expressions embedded in `import`
/// instructions) with the binder stack, flagging parameters that hide
/// an enclosing binder of the same name.
fn shadowed_binders(file: &str, e: &FExpr, scope: &mut Vec<VarName>, diags: &mut Vec<Diagnostic>) {
    match e {
        FExpr::Var(_) | FExpr::Unit | FExpr::Int(_) => {}
        FExpr::Binop { lhs, rhs, .. } => {
            shadowed_binders(file, lhs, scope, diags);
            shadowed_binders(file, rhs, scope, diags);
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            shadowed_binders(file, cond, scope, diags);
            shadowed_binders(file, then_branch, scope, diags);
            shadowed_binders(file, else_branch, scope, diags);
        }
        FExpr::Lam(lam) => {
            let depth = scope.len();
            for (x, _) in &lam.params {
                if scope.contains(x) {
                    diags.push(Diagnostic::new(
                        file,
                        Span::SYNTH,
                        "shadowed-binder",
                        Severity::Note,
                        format!("binder `{x}` shadows an enclosing binder of the same name"),
                    ));
                }
                scope.push(x.clone());
            }
            shadowed_binders(file, &lam.body, scope, diags);
            scope.truncate(depth);
        }
        FExpr::App { func, args } => {
            shadowed_binders(file, func, scope, diags);
            for a in args {
                shadowed_binders(file, a, scope, diags);
            }
        }
        FExpr::Fold { body, .. } | FExpr::Unfold(body) | FExpr::Proj { tuple: body, .. } => {
            shadowed_binders(file, body, scope, diags);
        }
        FExpr::Tuple(es) => {
            for x in es {
                shadowed_binders(file, x, scope, diags);
            }
        }
        FExpr::Boundary { comp, .. } => {
            shadowed_comp(file, comp, scope, diags);
        }
    }
}

fn shadowed_comp(file: &str, comp: &TComp, scope: &mut Vec<VarName>, diags: &mut Vec<Diagnostic>) {
    shadowed_seq(file, &comp.seq, scope, diags);
    for hv in comp.heap.0.values() {
        if let HeapVal::Code(block) = &**hv {
            shadowed_seq(file, &block.body, scope, diags);
        }
    }
}

fn shadowed_seq(file: &str, seq: &InstrSeq, scope: &mut Vec<VarName>, diags: &mut Vec<Diagnostic>) {
    for i in &seq.instrs {
        if let Instr::Import { body, .. } = i {
            shadowed_binders(file, body, scope, diags);
        }
    }
}

/// Flags heap labels of a component that no instruction operand, jump
/// target, or other heap value ever mentions: the fragment is merged
/// at every boundary crossing but nothing can reach it.
fn unused_fragments(file: &str, comp: &TComp, m: &BcModule, diags: &mut Vec<Diagnostic>) {
    let mut used: Vec<&Label> = Vec::new();
    seq_labels(&comp.seq, &mut used);
    for hv in comp.heap.0.values() {
        match &**hv {
            HeapVal::Code(block) => seq_labels(&block.body, &mut used),
            HeapVal::Tuple { fields, .. } => {
                for w in fields {
                    word_labels(w, &mut used);
                }
            }
        }
    }
    for label in comp.heap.0.keys() {
        if !used.contains(&label) {
            diags.push(Diagnostic::new(
                file,
                span_of_label(m, label),
                "unused-heap-fragment",
                Severity::Warning,
                format!("heap fragment `{label}` is never referenced"),
            ));
        }
    }
}

fn seq_labels<'a>(seq: &'a InstrSeq, out: &mut Vec<&'a Label>) {
    for i in &seq.instrs {
        match i {
            Instr::Arith { src, .. }
            | Instr::Bnz { target: src, .. }
            | Instr::Mv { src, .. }
            | Instr::Unpack { src, .. }
            | Instr::Unfold { src, .. } => small_labels(src, out),
            Instr::Ld { .. }
            | Instr::St { .. }
            | Instr::Ralloc { .. }
            | Instr::Balloc { .. }
            | Instr::Salloc(_)
            | Instr::Sfree(_)
            | Instr::Sld { .. }
            | Instr::Sst { .. }
            | Instr::Protect { .. }
            | Instr::Import { .. } => {}
        }
    }
    match &seq.term {
        Terminator::Jmp(u) | Terminator::Call { target: u, .. } => small_labels(u, out),
        Terminator::Ret { .. } | Terminator::Halt { .. } => {}
    }
}

fn small_labels<'a>(u: &'a SmallVal, out: &mut Vec<&'a Label>) {
    match u {
        SmallVal::Reg(_) => {}
        SmallVal::Word(w) => word_labels(w, out),
        SmallVal::Pack { body, .. } | SmallVal::Fold { body, .. } | SmallVal::Inst { body, .. } => {
            small_labels(body, out)
        }
    }
}

fn word_labels<'a>(w: &'a WordVal, out: &mut Vec<&'a Label>) {
    match w {
        WordVal::Unit | WordVal::Int(_) => {}
        WordVal::Loc(l) => out.push(l),
        WordVal::Pack { body, .. } | WordVal::Fold { body, .. } | WordVal::Inst { body, .. } => {
            word_labels(body, out)
        }
    }
}

// ---------------------------------------------------------------------
// Lowered-IR layer
// ---------------------------------------------------------------------

/// The source span of fragment ordinal `ord` (the entry sequence for
/// `None`).
fn span_of_region(m: &BcModule, ord: Option<u32>) -> Span {
    match ord {
        None => m.entry_span,
        Some(o) => m.spans[o as usize].1,
    }
}

fn label_of_region(m: &BcModule, ord: Option<u32>) -> &str {
    match ord {
        None => "<entry>",
        Some(o) => m.spans[o as usize].0.as_ref(),
    }
}

fn span_of_label(m: &BcModule, label: &Label) -> Span {
    m.spans
        .iter()
        .find(|(l, _)| l == label)
        .map(|&(_, s)| s)
        .unwrap_or(Span::SYNTH)
}

fn lint_module(
    file: &str,
    comp: &std::sync::Arc<TComp>,
    m: &BcModule,
    diags: &mut Vec<Diagnostic>,
) {
    let regions = match module_regions(m) {
        Ok(r) => r,
        Err(e) => {
            // The lowerer never produces this (the prelower hook
            // panics first under debug assertions), but a cached or
            // hand-built module could.
            diags.push(Diagnostic::new(
                file,
                m.entry_span,
                "verifier",
                Severity::Error,
                format!("module rejected by the bytecode verifier: {e}"),
            ));
            return;
        }
    };

    unused_fragments(file, comp, m, diags);
    unreachable_blocks(file, m, &regions, diags);
    dead_register_writes(file, m, &regions, diags);
    constant_imports(file, m, &regions, diags);
}

/// Regions with no path from the entry or any enterable block, over
/// the verifier's region CFG.
fn unreachable_blocks(
    file: &str,
    m: &BcModule,
    regions: &ModuleRegions,
    diags: &mut Vec<Diagnostic>,
) {
    let roots: Vec<usize> = enterable_roots(regions);
    let reach = regions.cfg.reachable_from(&roots);
    for (r, ok) in reach.iter().enumerate() {
        if !ok {
            let ord = regions.region_ord[r];
            diags.push(Diagnostic::new(
                file,
                span_of_region(m, ord),
                "unreachable-block",
                Severity::Warning,
                format!(
                    "code block `{}` is unreachable: no jump targets it and its label never \
                     escapes as data",
                    label_of_region(m, ord)
                ),
            ));
        }
    }
}

fn enterable_roots(regions: &ModuleRegions) -> Vec<usize> {
    (0..regions.enterable.len())
        .filter(|&r| regions.enterable[r])
        .collect()
}

/// `import` ops whose F body is a literal: the boundary crossing
/// marshals a statically constant value every time it executes.
fn constant_imports(
    file: &str,
    m: &BcModule,
    regions: &ModuleRegions,
    diags: &mut Vec<Diagnostic>,
) {
    use funtal_syntax::intern::IKind;
    for r in 0..regions.cfg.node_count() {
        let range = regions.range(r, m.ops.len());
        for (off, op) in m.ops[range.clone()].iter().enumerate() {
            if let BcOp::Import { body, .. } = op {
                let constant = match body.kind() {
                    IKind::Int(n) => Some(n.to_string()),
                    IKind::Unit => Some("()".to_string()),
                    _ => None,
                };
                if let Some(c) = constant {
                    let ord = regions.region_ord[r];
                    diags.push(Diagnostic::new(
                        file,
                        span_of_region(m, ord),
                        "constant-import",
                        Severity::Note,
                        format!(
                            "import at op {} of `{}` marshals the constant {c} across the \
                             boundary on every execution",
                            range.start + off,
                            label_of_region(m, ord)
                        ),
                    ));
                }
            }
        }
    }
}

// --- backward register liveness over basic blocks --------------------

/// A basic block for liveness: a maximal straight-line op range. Ops
/// with static targets can only be the last op of a block (`bnz` opens
/// a new block after itself; every other transfer terminates its
/// region), so facts merge only at block edges.
struct LiveBlocks {
    /// Per block: op range plus owning region.
    blocks: Vec<(std::ops::Range<usize>, usize)>,
    cfg: Cfg,
    /// Per block: live-at-exit registers forced by a dynamic transfer
    /// (`ret`/`call`/`jmp` through a register: the continuation is
    /// unknown, assume everything is read). `None` for static exits.
    boundary: Vec<Option<BitSet>>,
}

fn live_blocks(m: &BcModule, regions: &ModuleRegions) -> LiveBlocks {
    let n_regions = regions.cfg.node_count();
    let mut blocks: Vec<(std::ops::Range<usize>, usize)> = Vec::new();
    let mut block_at: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for r in 0..n_regions {
        let range = regions.range(r, m.ops.len());
        let mut start = range.start;
        for at in range.clone() {
            // `bnz` is the only non-terminator with a control edge:
            // close the block after it.
            let closes = matches!(m.ops[at], BcOp::Bnz { .. }) || at + 1 == range.end;
            if closes {
                block_at.insert(start, blocks.len());
                blocks.push((start..at + 1, r));
                start = at + 1;
            }
        }
    }

    let region_start_block = |r: usize| block_at[&(regions.starts[r] as usize)];
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut boundary: Vec<Option<BitSet>> = vec![None; blocks.len()];
    for (b, (range, _)) in blocks.iter().enumerate() {
        let last = &m.ops[range.end - 1];
        let static_edge = |t: &BcTarget, edges: &mut Vec<(usize, usize)>| -> bool {
            if let BcTarget::Static { ord, .. } = t {
                let tr = (0..n_regions)
                    .find(|&r| regions.region_ord[r] == Some(*ord))
                    .expect("verified static ordinal");
                edges.push((b, region_start_block(tr)));
                true
            } else {
                false
            }
        };
        match last {
            BcOp::Bnz { t, .. } => {
                if !static_edge(t, &mut edges) {
                    boundary[b] = Some(BitSet::full(REG_FILE));
                }
                // Fall through into the next block of the same region.
                edges.push((b, b + 1));
            }
            BcOp::Jmp(t) | BcOp::PushJmp { t, .. } | BcOp::Call { t, .. } => {
                if !static_edge(t, &mut edges) {
                    boundary[b] = Some(BitSet::full(REG_FILE));
                }
            }
            BcOp::Ret { .. } | BcOp::PopRet { .. } => {
                boundary[b] = Some(BitSet::full(REG_FILE));
            }
            // `halt` reads its value register (an ordinary effect) and
            // nothing executes after it: live-out is empty.
            BcOp::Halt { .. } => {}
            // Region ends without a terminator cannot happen (verified);
            // any other last op means the region continues — impossible
            // since only `bnz` closes a block mid-region.
            _ => unreachable!("block ends in a non-transfer op"),
        }
    }

    LiveBlocks {
        cfg: Cfg::new(blocks.len(), 0, edges),
        blocks,
        boundary,
    }
}

struct Liveness<'a> {
    m: &'a BcModule,
    lb: &'a LiveBlocks,
}

impl Liveness<'_> {
    /// live-in = gen ∪ (live-out ∖ kill), applied op by op in reverse.
    fn walk(&self, b: usize, fact: BitSet) -> BitSet {
        let mut live = fact;
        let mut effs = Vec::new();
        for op in self.m.ops[self.lb.blocks[b].0.clone()].iter().rev() {
            effs.clear();
            effects(op, &mut effs);
            for e in effs.iter().rev() {
                match e {
                    Eff::W(r) => live.remove(ridx(*r)),
                    Eff::R(r) => live.insert(ridx(*r)),
                }
            }
        }
        live
    }
}

impl Analysis for Liveness<'_> {
    type Fact = BitSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn init_fact(&self) -> BitSet {
        BitSet::EMPTY
    }

    fn boundary_fact(&self, b: usize) -> Option<BitSet> {
        self.lb.boundary[b]
    }

    fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
        let next = into.union(*from);
        let changed = next != *into;
        *into = next;
        changed
    }

    fn transfer(&self, block: usize, fact: &BitSet) -> BitSet {
        self.walk(block, *fact)
    }
}

/// True for ops worth flagging when their write is dead: register
/// moves and arithmetic with no memory, stack, or control effect.
fn pure_write(op: &BcOp) -> bool {
    matches!(
        op,
        BcOp::ArithRR { .. }
            | BcOp::ArithRI { .. }
            | BcOp::MvInt { .. }
            | BcOp::MvUnit { .. }
            | BcOp::MvReg { .. }
            | BcOp::MvLbl { .. }
            | BcOp::MvWord { .. }
    )
}

fn dead_register_writes(
    file: &str,
    m: &BcModule,
    regions: &ModuleRegions,
    diags: &mut Vec<Diagnostic>,
) {
    let lb = live_blocks(m, regions);
    let analysis = Liveness { m, lb: &lb };
    let sol = solve(&analysis, &lb.cfg);

    // Report only inside blocks the machine can actually reach —
    // unreachable ones already get their own diagnostic, and their
    // all-empty live sets would flag every write.
    let region_reach = regions.cfg.reachable_from(&enterable_roots(regions));
    let mut effs = Vec::new();
    for (b, (range, r)) in lb.blocks.iter().enumerate() {
        if !region_reach[*r] {
            continue;
        }
        // `inputs` of a backward problem are block-exit facts.
        let mut live = sol.inputs[b];
        if let Some(bf) = lb.boundary[b] {
            live = live.union(bf);
        }
        for (off, op) in m.ops[range.clone()].iter().enumerate().rev() {
            effs.clear();
            effects(op, &mut effs);
            for e in effs.iter().rev() {
                match e {
                    Eff::W(reg) => {
                        if !live.contains(ridx(*reg)) && pure_write(op) {
                            let ord = regions.region_ord[*r];
                            diags.push(Diagnostic::new(
                                file,
                                span_of_region(m, ord),
                                "dead-register-write",
                                Severity::Warning,
                                format!(
                                    "write to {reg} at op {} of `{}` is never read",
                                    range.start + off,
                                    label_of_region(m, ord)
                                ),
                            ));
                        }
                        live.remove(ridx(*reg));
                    }
                    Eff::R(reg) => live.insert(ridx(*reg)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_bc::prelower;
    use funtal_syntax::build::*;

    fn lint(e: &FExpr) -> Vec<Diagnostic> {
        lint_program("test.ft", e, &prelower(e))
    }

    fn rules(diags: &[Diagnostic], rule: &str) -> usize {
        diags.iter().filter(|d| d.rule == rule).count()
    }

    #[test]
    fn shadowed_binder_is_reported() {
        let e = lam(vec![("x", fint())], lam(vec![("x", fint())], var("x")));
        let diags = lint(&e);
        assert_eq!(rules(&diags, "shadowed-binder"), 1);
        assert!(diags
            .iter()
            .all(|d| d.severity != Severity::Warning && d.severity != Severity::Error));
    }

    #[test]
    fn dead_register_write_is_reported() {
        // `mv r1, 5` is clobbered by `mv r1, 7` before any read.
        let e = boundary(
            fint(),
            tcomp(
                seq(
                    vec![mv(r1(), int_v(5)), mv(r1(), int_v(7))],
                    halt(int(), nil(), r1()),
                ),
                vec![],
            ),
        );
        let diags = lint(&e);
        assert_eq!(rules(&diags, "dead-register-write"), 1);
        assert!(diags[0].message.contains("op 0"), "{:?}", diags);
    }

    #[test]
    fn live_write_is_not_reported() {
        let e = boundary(
            fint(),
            tcomp(
                seq(vec![mv(r1(), int_v(7))], halt(int(), nil(), r1())),
                vec![],
            ),
        );
        assert_eq!(rules(&lint(&e), "dead-register-write"), 0);
    }

    #[test]
    fn unreachable_and_unused_fragment_are_reported() {
        // `ldead` is a code block nothing jumps to and whose label
        // never escapes.
        let dead = code_block(
            vec![d_stk("z")],
            chi([(r1(), int())]),
            zvar("z"),
            q_end(int(), zvar("z")),
            seq(vec![], halt(int(), zvar("z"), r1())),
        );
        let e = boundary(
            fint(),
            tcomp(
                seq(vec![mv(r1(), int_v(1))], halt(int(), nil(), r1())),
                vec![("ldead", dead)],
            ),
        );
        let diags = lint(&e);
        assert_eq!(rules(&diags, "unreachable-block"), 1);
        assert_eq!(rules(&diags, "unused-heap-fragment"), 1);
    }

    #[test]
    fn constant_import_is_reported() {
        let e = boundary(
            fint(),
            tcomp(
                seq(
                    vec![import(r1(), "z", nil(), fint(), fint_e(3))],
                    halt(int(), nil(), r1()),
                ),
                vec![],
            ),
        );
        let diags = lint(&e);
        assert_eq!(rules(&diags, "constant-import"), 1);
    }

    #[test]
    fn figures_lint_deterministically() {
        let figs: Vec<(&str, FExpr)> = vec![
            ("fig16_f1", crate::figures::fig16_f1()),
            ("fig16_f2", crate::figures::fig16_f2()),
            ("factF", crate::figures::fig17_fact_f()),
            ("factT", crate::figures::fig17_fact_t()),
            ("fig11_jit", crate::figures::fig11_jit()),
            ("push7", crate::figures::push7()),
        ];
        for (name, e) in figs {
            let a = lint(&e);
            let b = lint(&e);
            assert_eq!(a, b, "{name}: lint output is not deterministic");
            // The paper's own figures are lint-clean at warning level:
            // every register write is read and every fragment used.
            for d in &a {
                assert!(
                    d.severity < Severity::Warning,
                    "{name}: unexpected {} finding: {}",
                    d.severity,
                    d.message
                );
            }
        }
    }
}
