//! Static fuel-bound inference by abstract interpretation.
//!
//! [`infer_fuel`] predicts, *without running the program*, exactly how
//! much fuel a pre-lowered program will consume. It walks the program
//! with its own evaluator — structurally a copy of the mixed CEK
//! machine, but charging cost from the shared table
//! ([`BcOp::fuel_cost`]) instead of decrementing fuel, and refusing
//! any T module whose static control-flow graph has a back edge
//! (data-dependent loop trip counts are not statically bounded).
//! Because FT is deterministic and programs are closed, the
//! collecting semantics of a loop-free program is a single trace, so
//! the abstract domain can stay concrete: the inference either
//! produces [`FuelBound::Exact`] — certified equal to the dynamic
//! measurement — or gives up with [`FuelBound::Unknown`].
//!
//! The tick model mirrors `machine_fast.rs` site for site: boundary
//! entry charges one step only when a heap fragment is merged;
//! binop/if0/β/unfold/projection charge one step when they fire; an
//! import's round-trip charges two on the F value's return (translate,
//! then the rewritten `mv`); `halt` charges one (boundary exit or
//! top-level); every T instruction charges [`BcOp::fuel_cost`] — so
//! fused superinstructions charge exactly their expansions. F-side
//! recursion is evaluated (unrolled) under a global abstract-step
//! budget; exceeding it also yields `Unknown`.
//!
//! `tests/fuel_bounds.rs` certifies the inference against the span
//! profiler: for every loop-free figure and example, the inferred
//! bound must equal `Profiler::total()` *exactly*.

use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use funtal_syntax::intern::{IExpr, IKind};
use funtal_syntax::{HeapVal, Mutability, Reg, SmallVal, TComp, WordVal};
use funtal_tal::machine::Memory;

use crate::bc_verify::module_regions;
use crate::machine_bc::{
    lower_comp, lower_renamed, single_block_module, BcModule, BcOp, BcTarget, LoweredProgram,
    NOT_CODE,
};
use crate::machine_fast::{
    f_to_t_fast, lam_parts, peel_count, t_to_f_fast, Closure, Env, FastHeapVal, FastMem, FastOp,
    FastVal, TWord,
};

/// A statically inferred fuel bound for a whole program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuelBound {
    /// The program consumes exactly this much fuel (certified against
    /// the profiler's dynamic measurement by the test suite).
    Exact(u64),
    /// No bound: the program enters a T module with a static loop,
    /// exceeds the abstract-step budget, or would fault at runtime.
    Unknown,
}

/// Infers the exact fuel consumption of a pre-lowered program, or
/// [`FuelBound::Unknown`] if any reachable T module has a static back
/// edge (or the abstract-step budget runs out). Inference never
/// executes the program through the real machine — it is a lower-time
/// analysis, independent of the dispatch loop it predicts.
pub fn infer_fuel(lp: &LoweredProgram) -> FuelBound {
    let mut m = AbsMachine::new(lp);
    match m.run(AbsCtrl::Eval(lp.iexpr.clone(), Env::default())) {
        Ok(()) => FuelBound::Exact(m.cost),
        Err(Stop) => FuelBound::Unknown,
    }
}

/// Abstract interpretation gave up (loop, budget, or a program that
/// would fault dynamically). All causes collapse to one outcome:
/// no certified bound.
struct Stop;

type AResult<T> = Result<T, Stop>;

/// Abstract evaluation steps before giving up. Generously above any
/// loop-free program in the suite; recursion through F closures can
/// legitimately reach it.
const STEP_BUDGET: u64 = 1_000_000;

/// A module bound into the abstract memory (the analogue of
/// `BcInstance`).
struct AbsInst {
    module: Arc<BcModule>,
    /// Fragment ordinal → flat-heap index.
    labels: Vec<u32>,
    /// The F environment `import` bodies close over.
    env: Env,
}

/// Where a heap cell's code enters (the analogue of `BcCell`).
struct Binding {
    inst: Rc<AbsInst>,
    off: u32,
    arity: usize,
}

enum AbsCtrl {
    Eval(IExpr, Env),
    Ret(FastVal),
    T(Rc<AbsInst>, u32),
}

enum Flow {
    Next(AbsCtrl),
    Done,
}

/// Mirror of `Frame` for the abstract machine.
enum AbsFrame {
    BinopL {
        op: funtal_syntax::ArithOp,
        rhs: IExpr,
        env: Env,
    },
    BinopR {
        op: funtal_syntax::ArithOp,
        lhs: FastVal,
    },
    If0 {
        then_branch: IExpr,
        else_branch: IExpr,
        env: Env,
    },
    AppFunc {
        args: Arc<[IExpr]>,
        env: Env,
    },
    AppArg {
        func: FastVal,
        done: Vec<FastVal>,
        args: Arc<[IExpr]>,
        env: Env,
    },
    FoldF {
        ann: Arc<funtal_syntax::FTy>,
    },
    UnfoldF,
    TupleF {
        done: Vec<FastVal>,
        es: Arc<[IExpr]>,
        env: Env,
    },
    ProjF {
        idx: usize,
    },
    BoundaryT {
        ty: Arc<funtal_syntax::FTy>,
    },
    ImportF {
        rd: Reg,
        ty: Arc<funtal_syntax::FTy>,
        saved: (Rc<AbsInst>, u32),
    },
}

struct AbsMachine<'a> {
    mem: FastMem,
    frames: Vec<AbsFrame>,
    /// Accumulated fuel charges.
    cost: u64,
    /// Remaining abstract steps.
    steps: u64,
    /// Pre-lowered modules by component identity (the analogue of the
    /// bytecode tier's seeded module table).
    seeded: HashMap<usize, (&'a Arc<TComp>, Arc<BcModule>)>,
    /// Heap index → binding for merged and lazily entered cells.
    bound: HashMap<u32, Binding>,
    /// Loop-freeness memo by module identity.
    loop_free: HashMap<usize, bool>,
}

impl<'a> AbsMachine<'a> {
    fn new(lp: &'a LoweredProgram) -> AbsMachine<'a> {
        AbsMachine {
            mem: FastMem::from_memory(&Memory::new()),
            frames: Vec::new(),
            cost: 0,
            steps: STEP_BUDGET,
            seeded: lp
                .modules
                .iter()
                .map(|(c, m)| (Arc::as_ptr(c) as usize, (c, m.clone())))
                .collect(),
            bound: HashMap::new(),
            loop_free: HashMap::new(),
        }
    }

    fn charge(&mut self, n: u64) {
        self.cost += n;
    }

    fn budget(&mut self) -> AResult<()> {
        if self.steps == 0 {
            return Err(Stop);
        }
        self.steps -= 1;
        Ok(())
    }

    /// A module may be entered only if its static CFG — rooted at the
    /// entry region and every externally enterable block — has no back
    /// edge. Memoized per module.
    fn require_loop_free(&mut self, m: &Arc<BcModule>) -> AResult<()> {
        let key = Arc::as_ptr(m) as usize;
        let ok = match self.loop_free.get(&key) {
            Some(&ok) => ok,
            None => {
                let ok = match module_regions(m) {
                    Ok(r) => {
                        let roots: Vec<usize> =
                            (0..r.enterable.len()).filter(|&i| r.enterable[i]).collect();
                        r.cfg.is_loop_free_from(&roots)
                    }
                    Err(_) => false,
                };
                self.loop_free.insert(key, ok);
                ok
            }
        };
        if ok {
            Ok(())
        } else {
            Err(Stop)
        }
    }

    fn module_for(&mut self, comp: &Arc<TComp>) -> Arc<BcModule> {
        let key = Arc::as_ptr(comp) as usize;
        if let Some((c, m)) = self.seeded.get(&key) {
            if Arc::ptr_eq(c, comp) {
                return m.clone();
            }
        }
        Arc::new(lower_comp(comp))
    }

    fn bind(&mut self, inst: &Rc<AbsInst>) {
        for (ord, &idx) in inst.labels.iter().enumerate() {
            let (off, arity) = inst.module.blocks[ord];
            if arity == NOT_CODE {
                continue;
            }
            self.bound.insert(
                idx,
                Binding {
                    inst: inst.clone(),
                    off,
                    arity,
                },
            );
        }
    }

    fn run(&mut self, mut ctrl: AbsCtrl) -> AResult<()> {
        loop {
            self.budget()?;
            let flow = match ctrl {
                AbsCtrl::Eval(e, env) => self.eval(e, env)?,
                AbsCtrl::Ret(v) => self.ret(v)?,
                AbsCtrl::T(inst, pc) => self.step_t(inst, pc)?,
            };
            match flow {
                Flow::Next(next) => ctrl = next,
                Flow::Done => return Ok(()),
            }
        }
    }

    // --- the F side (tick placement mirrors `Machine::eval`/`ret`) ---

    fn eval(&mut self, e: IExpr, env: Env) -> AResult<Flow> {
        let next = match e.kind() {
            IKind::Var(x) => match env.lookup(x) {
                Some(v) => AbsCtrl::Ret(v.clone()),
                None => return Err(Stop),
            },
            IKind::Unit => AbsCtrl::Ret(FastVal::Unit),
            IKind::Int(n) => AbsCtrl::Ret(FastVal::Int(*n)),
            IKind::Lam { .. } => AbsCtrl::Ret(FastVal::Clos(Rc::new(Closure {
                lam: e.clone(),
                env,
            }))),
            IKind::Binop { op, lhs, rhs } => {
                self.frames.push(AbsFrame::BinopL {
                    op: *op,
                    rhs: rhs.clone(),
                    env: env.clone(),
                });
                AbsCtrl::Eval(lhs.clone(), env)
            }
            IKind::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                self.frames.push(AbsFrame::If0 {
                    then_branch: then_branch.clone(),
                    else_branch: else_branch.clone(),
                    env: env.clone(),
                });
                AbsCtrl::Eval(cond.clone(), env)
            }
            IKind::App { func, args } => {
                self.frames.push(AbsFrame::AppFunc {
                    args: args.clone(),
                    env: env.clone(),
                });
                AbsCtrl::Eval(func.clone(), env)
            }
            IKind::Fold { ann, body } => {
                self.frames.push(AbsFrame::FoldF { ann: ann.clone() });
                AbsCtrl::Eval(body.clone(), env)
            }
            IKind::Unfold(body) => {
                self.frames.push(AbsFrame::UnfoldF);
                AbsCtrl::Eval(body.clone(), env)
            }
            IKind::Tuple(es) => {
                if es.is_empty() {
                    AbsCtrl::Ret(FastVal::Tuple(Rc::new(Vec::new())))
                } else {
                    self.frames.push(AbsFrame::TupleF {
                        done: Vec::with_capacity(es.len()),
                        es: es.clone(),
                        env: env.clone(),
                    });
                    AbsCtrl::Eval(es[0].clone(), env)
                }
            }
            IKind::Proj { idx, tuple } => {
                self.frames.push(AbsFrame::ProjF { idx: *idx });
                AbsCtrl::Eval(tuple.clone(), env)
            }
            IKind::Boundary { ty, comp, .. } => {
                // Fig 8: the fragment merge is one machine step (only
                // when there is a fragment to merge).
                let merge = if comp.heap.is_empty() {
                    Default::default()
                } else {
                    self.charge(1);
                    self.mem.merge_fragment(comp, &env)
                };
                let merge: crate::machine_fast::MergeOutcome = merge;
                let module = match &merge.renamed_entry {
                    Some(entry) => Arc::new(lower_renamed(&self.mem, entry, &merge.indices)),
                    None => self.module_for(comp),
                };
                self.require_loop_free(&module)?;
                let inst = Rc::new(AbsInst {
                    module,
                    labels: merge.indices,
                    env: env.clone(),
                });
                self.bind(&inst);
                self.frames.push(AbsFrame::BoundaryT { ty: ty.clone() });
                AbsCtrl::T(inst, 0)
            }
        };
        Ok(Flow::Next(next))
    }

    fn ret(&mut self, v: FastVal) -> AResult<Flow> {
        let Some(frame) = self.frames.pop() else {
            // `ret` with no frames: the program is an F value — done,
            // no further charge.
            return Ok(Flow::Done);
        };
        let next = match frame {
            AbsFrame::BinopL { op, rhs, env } => {
                self.frames.push(AbsFrame::BinopR { op, lhs: v });
                AbsCtrl::Eval(rhs, env)
            }
            AbsFrame::BinopR { op, lhs } => {
                let (FastVal::Int(a), FastVal::Int(b)) = (&lhs, &v) else {
                    return Err(Stop);
                };
                self.charge(1);
                AbsCtrl::Ret(FastVal::Int(op.apply(*a, *b)))
            }
            AbsFrame::If0 {
                then_branch,
                else_branch,
                env,
            } => {
                let FastVal::Int(n) = v else {
                    return Err(Stop);
                };
                self.charge(1);
                AbsCtrl::Eval(if n == 0 { then_branch } else { else_branch }, env)
            }
            AbsFrame::AppFunc { args, env } => {
                if args.is_empty() {
                    return self.beta(v, Vec::new());
                }
                self.frames.push(AbsFrame::AppArg {
                    func: v,
                    done: Vec::with_capacity(args.len()),
                    args: args.clone(),
                    env: env.clone(),
                });
                AbsCtrl::Eval(args[0].clone(), env)
            }
            AbsFrame::AppArg {
                func,
                mut done,
                args,
                env,
            } => {
                done.push(v);
                if done.len() < args.len() {
                    let next = args[done.len()].clone();
                    self.frames.push(AbsFrame::AppArg {
                        func,
                        done,
                        args,
                        env: env.clone(),
                    });
                    AbsCtrl::Eval(next, env)
                } else {
                    return self.beta(func, done);
                }
            }
            AbsFrame::FoldF { ann } => AbsCtrl::Ret(FastVal::Fold {
                ann,
                body: Rc::new(v),
            }),
            AbsFrame::UnfoldF => {
                let FastVal::Fold { body, .. } = &v else {
                    return Err(Stop);
                };
                self.charge(1);
                AbsCtrl::Ret((**body).clone())
            }
            AbsFrame::TupleF { mut done, es, env } => {
                done.push(v);
                if done.len() < es.len() {
                    let next = es[done.len()].clone();
                    self.frames.push(AbsFrame::TupleF {
                        done,
                        es,
                        env: env.clone(),
                    });
                    AbsCtrl::Eval(next, env)
                } else {
                    AbsCtrl::Ret(FastVal::Tuple(Rc::new(done)))
                }
            }
            AbsFrame::ProjF { idx } => {
                let FastVal::Tuple(vs) = &v else {
                    return Err(Stop);
                };
                if idx == 0 || idx > vs.len() {
                    return Err(Stop);
                }
                self.charge(1);
                AbsCtrl::Ret(vs[idx - 1].clone())
            }
            AbsFrame::BoundaryT { .. } => return Err(Stop),
            AbsFrame::ImportF { rd, ty, saved } => {
                // The import-of-a-value rewrite (translate), then the
                // rewritten `mv` — two machine steps.
                self.charge(1);
                let w = f_to_t_fast(&mut self.mem, &v, &ty).map_err(|_| Stop)?;
                self.charge(1);
                self.mem.set_reg(rd, w);
                AbsCtrl::T(saved.0, saved.1)
            }
        };
        Ok(Flow::Next(next))
    }

    fn beta(&mut self, func: FastVal, args: Vec<FastVal>) -> AResult<Flow> {
        let FastVal::Clos(c) = &func else {
            return Err(Stop);
        };
        let (params, _, _, _, body) = lam_parts(&c.lam);
        if params.len() != args.len() {
            return Err(Stop);
        }
        self.charge(1);
        let env = c.env.extend(params.clone(), args);
        Ok(Flow::Next(AbsCtrl::Eval(body.clone(), env)))
    }

    // --- the T side (cost per op from the shared table) --------------

    fn step_t(&mut self, t: Rc<AbsInst>, start: u32) -> AResult<Flow> {
        let mut inst = t;
        let mut pc = start;
        'instance: loop {
            let module = inst.module.clone();
            let ops = &module.ops[..];
            loop {
                self.budget()?;
                let op = ops.get(pc as usize).ok_or(Stop)?;
                self.charge(op.fuel_cost());
                match op {
                    BcOp::ArithRR { op, rd, rs, rt } => {
                        let a = self.int_reg(*rs)?;
                        let b = self.int_reg(*rt)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        pc += 1;
                    }
                    BcOp::ArithRI { op, rd, rs, imm } => {
                        let a = self.int_reg(*rs)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, *imm)));
                        pc += 1;
                    }
                    BcOp::ArithDyn { op, rd, rs, src } => {
                        let a = self.int_reg(*rs)?;
                        let w = self.eval_op(src)?;
                        let b = self.mem.as_int(&w).map_err(|_| Stop)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        pc += 1;
                    }
                    BcOp::MvInt { rd, imm } => {
                        self.mem.set_reg(*rd, TWord::Int(*imm));
                        pc += 1;
                    }
                    BcOp::MvUnit { rd } => {
                        self.mem.set_reg(*rd, TWord::Unit);
                        pc += 1;
                    }
                    BcOp::MvReg { rd, rs } => {
                        let w = self.reg(*rs)?;
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::MvLbl { rd, ord } => {
                        let idx = *inst.labels.get(*ord as usize).ok_or(Stop)?;
                        self.mem.set_reg(*rd, TWord::Loc(idx));
                        pc += 1;
                    }
                    BcOp::MvWord { rd, w } => {
                        self.mem.set_reg(*rd, w.clone());
                        pc += 1;
                    }
                    BcOp::MvDyn { rd, src } => {
                        let w = self.eval_op(src)?;
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::Ld { rd, rs, idx } => {
                        let w = self.reg(*rs)?;
                        let i = self.mem.loc_of(&w).map_err(|_| Stop)?;
                        let FastHeapVal::Tuple { fields, .. } = &self.mem.heap[i as usize] else {
                            return Err(Stop);
                        };
                        let w = fields.get(*idx).ok_or(Stop)?.clone();
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::St { rd, idx, rs } => {
                        let wd = self.reg(*rd)?;
                        let i = self.mem.loc_of(&wd).map_err(|_| Stop)?;
                        let w = self.reg(*rs)?;
                        let FastHeapVal::Tuple { mutability, fields } =
                            &mut self.mem.heap[i as usize]
                        else {
                            return Err(Stop);
                        };
                        if *mutability != Mutability::Ref {
                            return Err(Stop);
                        }
                        *fields.get_mut(*idx).ok_or(Stop)? = w;
                        pc += 1;
                    }
                    BcOp::Ralloc { rd, n } | BcOp::Balloc { rd, n } => {
                        let fields = self.mem.stack_pop_n(*n).map_err(|_| Stop)?;
                        let mutability = if matches!(op, BcOp::Ralloc { .. }) {
                            Mutability::Ref
                        } else {
                            Mutability::Boxed
                        };
                        let i = self
                            .mem
                            .alloc("t", FastHeapVal::Tuple { mutability, fields });
                        self.mem.set_reg(*rd, TWord::Loc(i));
                        pc += 1;
                    }
                    BcOp::Salloc(n) => {
                        let len = self.mem.stack.len();
                        self.mem.stack.resize(len + *n, TWord::Unit);
                        pc += 1;
                    }
                    BcOp::Sfree(n) => {
                        self.mem.stack_drop_n(*n).map_err(|_| Stop)?;
                        pc += 1;
                    }
                    BcOp::Sld { rd, idx } => {
                        let w = self.mem.stack_get(*idx).map_err(|_| Stop)?.clone();
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::Sst { idx, rs } => {
                        let w = self.reg(*rs)?;
                        self.mem.stack_set(*idx, w).map_err(|_| Stop)?;
                        pc += 1;
                    }
                    BcOp::Unpack { rd, src } => {
                        let w = self.eval_op(src)?;
                        let TWord::Big(b) = &w else { return Err(Stop) };
                        let WordVal::Pack { body, .. } = &**b else {
                            return Err(Stop);
                        };
                        let inner = self.mem.tword_of_word(body);
                        self.mem.set_reg(*rd, inner);
                        pc += 1;
                    }
                    BcOp::Unfold { rd, src } => {
                        let w = self.eval_op(src)?;
                        let TWord::Big(b) = &w else { return Err(Stop) };
                        let WordVal::Fold { body, .. } = &**b else {
                            return Err(Stop);
                        };
                        let inner = self.mem.tword_of_word(body);
                        self.mem.set_reg(*rd, inner);
                        pc += 1;
                    }
                    BcOp::Protect => {
                        pc += 1;
                    }
                    BcOp::Import { rd, ty, body } => {
                        self.frames.push(AbsFrame::ImportF {
                            rd: *rd,
                            ty: ty.clone(),
                            saved: (inst.clone(), pc + 1),
                        });
                        return Ok(Flow::Next(AbsCtrl::Eval(body.clone(), inst.env.clone())));
                    }
                    BcOp::Bnz { r, t } => {
                        if self.int_reg(*r)? != 0 {
                            let (next, off) = self.take_target(t, 0)?;
                            pc = off;
                            if let Some(n) = next {
                                inst = n;
                                continue 'instance;
                            }
                        } else {
                            pc += 1;
                        }
                    }
                    BcOp::Jmp(t) => {
                        let (next, off) = self.take_target(t, 0)?;
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::Call { t, .. } => {
                        let (next, off) = self.take_target(t, 2)?;
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::Ret { target, .. } => {
                        let w = self.reg(*target)?;
                        let (next, off) = self.enter(&w, 0)?;
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::Halt { val } => return self.halt(*val),
                    BcOp::Push { rs } => {
                        let w = self.reg(*rs)?;
                        self.mem.stack.push(w);
                        pc += 1;
                    }
                    BcOp::PushJmp { rs, t } => {
                        let w = self.reg(*rs)?;
                        self.mem.stack.push(w);
                        let (next, off) = self.take_target(t, 0)?;
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::SldPush { rd, idx } => {
                        let w = self.mem.stack_get(*idx).map_err(|_| Stop)?.clone();
                        self.mem.set_reg(*rd, w.clone());
                        self.mem.stack.push(w);
                        pc += 1;
                    }
                    BcOp::PopArith { op, pr, rd, rs, rt } => {
                        let w = self.mem.stack.pop().ok_or(Stop)?;
                        self.mem.set_reg(*pr, w);
                        let a = self.int_reg(*rs)?;
                        let b = self.int_reg(*rt)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        pc += 1;
                    }
                    BcOp::PopArithPush { op, pr, rd, rs, rt } => {
                        let w = self.mem.stack.pop().ok_or(Stop)?;
                        self.mem.set_reg(*pr, w);
                        let a = self.int_reg(*rs)?;
                        let b = self.int_reg(*rt)?;
                        let r = TWord::Int(op.apply(a, b));
                        self.mem.set_reg(*rd, r.clone());
                        self.mem.stack.push(r);
                        pc += 1;
                    }
                    BcOp::SldSfree { rd, idx, n } => {
                        let w = self.mem.stack_get(*idx).map_err(|_| Stop)?.clone();
                        self.mem.set_reg(*rd, w);
                        self.mem.stack_drop_n(*n).map_err(|_| Stop)?;
                        pc += 1;
                    }
                    BcOp::PopRet { ra, n, val: _ } => {
                        let len = self.mem.stack.len();
                        if len == 0 || len < *n {
                            return Err(Stop);
                        }
                        let w = self.mem.stack.pop().ok_or(Stop)?;
                        self.mem.stack.truncate(len - *n);
                        let tr = self.enter(&w, 0)?;
                        self.mem.set_reg(*ra, w);
                        pc = tr.1;
                        if let Some(next) = tr.0 {
                            inst = next;
                            continue 'instance;
                        }
                    }
                }
            }
        }
    }

    fn halt(&mut self, val: Reg) -> AResult<Flow> {
        match self.frames.last() {
            Some(AbsFrame::BoundaryT { .. }) => {
                // Fig 8: a boundary around a halt value translates —
                // one machine step.
                self.charge(1);
                let Some(AbsFrame::BoundaryT { ty }) = self.frames.pop() else {
                    unreachable!()
                };
                let w = self.reg(val)?;
                let v = t_to_f_fast(&mut self.mem, &w, &ty).map_err(|_| Stop)?;
                Ok(Flow::Next(AbsCtrl::Ret(v)))
            }
            None => {
                // Top-level T halt.
                self.charge(1);
                let _ = self.reg(val)?;
                Ok(Flow::Done)
            }
            Some(_) => Err(Stop),
        }
    }

    fn reg(&self, r: Reg) -> AResult<TWord> {
        self.mem.reg(r).cloned().map_err(|_| Stop)
    }

    fn int_reg(&self, r: Reg) -> AResult<i64> {
        self.mem.int_reg(r).map_err(|_| Stop)
    }

    fn eval_op(&self, op: &FastOp) -> AResult<TWord> {
        match op {
            FastOp::Reg(r) => self.reg(*r),
            FastOp::Word(w) => Ok(w.clone()),
            FastOp::Dyn(u) => Ok(TWord::Big(Arc::new(self.eval_small(u)?))),
        }
    }

    fn eval_small(&self, u: &SmallVal) -> AResult<WordVal> {
        match u {
            SmallVal::Reg(r) => Ok(self.mem.reify_word(&self.reg(*r)?)),
            SmallVal::Word(w) => Ok(w.clone()),
            SmallVal::Pack { hidden, body, ann } => Ok(WordVal::Pack {
                hidden: hidden.clone(),
                body: Box::new(self.eval_small(body)?),
                ann: ann.clone(),
            }),
            SmallVal::Fold { ann, body } => Ok(WordVal::Fold {
                ann: ann.clone(),
                body: Box::new(self.eval_small(body)?),
            }),
            SmallVal::Inst { body, args } => Ok(self.eval_small(body)?.instantiate(args.clone())),
        }
    }

    fn take_target(&mut self, t: &BcTarget, extra: usize) -> AResult<(Option<Rc<AbsInst>>, u32)> {
        match t {
            BcTarget::Static { off, .. } => Ok((None, *off)),
            BcTarget::Dyn(op) => {
                let w = self.eval_op(op)?;
                self.enter(&w, extra)
            }
        }
    }

    /// Resolves a jump-target word and enters its block, lazily
    /// lowering (loop-free-checked) single-block modules for cells no
    /// merged instance claims — the analogue of `enter_bc`.
    fn enter(&mut self, w: &TWord, extra: usize) -> AResult<(Option<Rc<AbsInst>>, u32)> {
        let (idx, n_insts) = self.resolve(w)?;
        if let Some(b) = self.bound.get(&idx) {
            if b.arity != n_insts + extra {
                return Err(Stop);
            }
            return Ok((Some(b.inst.clone()), b.off));
        }
        let (hv, benv) = match &self.mem.heap[idx as usize] {
            FastHeapVal::Code { hv, env, .. } => (hv.clone(), env.clone()),
            FastHeapVal::Tuple { .. } => return Err(Stop),
        };
        let HeapVal::Code(block) = &*hv else {
            return Err(Stop);
        };
        if block.delta.len() != n_insts + extra {
            return Err(Stop);
        }
        let module = single_block_module(&hv);
        self.require_loop_free(&module)?;
        let inst = Rc::new(AbsInst {
            module,
            labels: Vec::new(),
            env: benv,
        });
        self.bound.insert(
            idx,
            Binding {
                inst: inst.clone(),
                off: 0,
                arity: block.delta.len(),
            },
        );
        Ok((Some(inst), 0))
    }

    fn resolve(&self, w: &TWord) -> AResult<(u32, usize)> {
        match w {
            TWord::Loc(i) => Ok((*i, 0)),
            TWord::Big(b) => {
                let (base, n) = peel_count(b);
                if let WordVal::Loc(l) = base {
                    if let Some(&i) = self.mem.index.get(l) {
                        return Ok((i, n));
                    }
                }
                Err(Stop)
            }
            _ => Err(Stop),
        }
    }
}
