//! The bytecode tier: a direct-threaded VM below the compiled cursor.
//!
//! The cursor tier of [`crate::machine_fast`] walks one compiled
//! [`InstrSeq`] at a time and re-resolves every control transfer
//! through the heap (hash lookup on labels, arity check, inline-cache
//! probes). This tier lowers a whole T component — entry sequence plus
//! every block of its heap fragment — into **one flat instruction
//! stream** ([`BcModule`]):
//!
//! - operands are constant-folded at lower time ([`lower_op`]), and
//!   the common shapes get their own decoded opcodes (`ArithRR`,
//!   `ArithRI`, `MvInt`, …) so the dispatch loop runs one `match` per
//!   instruction over a dense register file;
//! - jump/call targets whose peeled base is a fragment-local label are
//!   resolved to **absolute instruction-stream offsets** at lower time
//!   ([`BcTarget::Static`]) — taken branches are a program-counter
//!   assignment, with the arity check discharged once during lowering;
//! - cross-fragment entries go through a per-heap-cell inline cache
//!   ([`BcCell`]): after the first entry, re-entering a block costs a
//!   pointer compare and a bounds-checked offset load.
//!
//! Fuel, events, fresh labels, and error behavior mirror the cursor
//! tier op for op (which in turn mirrors the Fig 8 substitution
//! oracle), so all three strategies agree on outcomes *and* exact step
//! counts; `tests/strategy_equiv.rs` and the driver's differential
//! suite enforce this. The F side is shared outright: the bytecode VM
//! plugs into the same CEK machine through the
//! [`Tier`](crate::machine_fast::Tier) trait.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Arc, Weak};

use funtal_syntax::intern::{IExpr, IKind};
use funtal_syntax::span::{Span, SpanTable};
use funtal_syntax::subst::Subst;
use funtal_syntax::{
    ArithOp, Component, FExpr, FTy, HeapFrag, HeapVal, Inst, Instr, InstrSeq, Label, Mutability,
    Reg, RetMarker, StackTy, TComp, Terminator, WordVal,
};
use funtal_tal::error::{RResult, RuntimeError};
use funtal_tal::machine::Memory;
use funtal_tal::trace::{Event, Tracer};

use crate::machine::{FtOutcome, RunCfg};
use crate::machine_fast::{
    ambient_root, ambient_span, lower_op, peel_count, Ctrl, Env, FastHeapVal, FastMem, FastOp,
    Frame, Machine, MergeOutcome, SpanScope, Step, TWord, Tier,
};

// ---------------------------------------------------------------------
// The linear IR
// ---------------------------------------------------------------------

/// A control-transfer operand of the linear IR.
#[derive(Clone, Debug)]
pub(crate) enum BcTarget {
    /// A fragment-local constant target, resolved at lower time: `off`
    /// is the absolute instruction-stream offset of the block body,
    /// `ord` the block's fragment ordinal (indexing the instance's
    /// label table for events), and `w` the original constant word for
    /// the guarded slow path. The instantiation-arity check was
    /// discharged during lowering.
    Static { off: u32, ord: u32, w: TWord },
    /// Anything else: evaluated and resolved through the heap at
    /// runtime, exactly as the cursor tier does.
    Dyn(FastOp),
}

/// One decoded instruction of the linear IR. Hot operand shapes are
/// specialized so the dispatch loop is a single match with no nested
/// operand interpretation.
#[derive(Clone, Debug)]
pub(crate) enum BcOp {
    /// `rd := rs op rt`.
    ArithRR {
        op: ArithOp,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `rd := rs op imm` (constant-folded operand).
    ArithRI {
        op: ArithOp,
        rd: Reg,
        rs: Reg,
        imm: i64,
    },
    /// Arith with a rare operand shape.
    ArithDyn {
        op: ArithOp,
        rd: Reg,
        rs: Reg,
        src: FastOp,
    },
    /// `rd := n`.
    MvInt {
        rd: Reg,
        imm: i64,
    },
    /// `rd := ()`.
    MvUnit {
        rd: Reg,
    },
    /// `rd := rs`.
    MvReg {
        rd: Reg,
        rs: Reg,
    },
    /// `rd := loc(labels[ord])` — a bare fragment-local location
    /// literal, pre-resolved to a heap index through the instance's
    /// label table.
    MvLbl {
        rd: Reg,
        ord: u32,
    },
    /// `rd := w` for any other constant word (shared, never rebuilt).
    MvWord {
        rd: Reg,
        w: TWord,
    },
    /// `rd := eval(src)` for the rare symbolic shapes.
    MvDyn {
        rd: Reg,
        src: FastOp,
    },
    Ld {
        rd: Reg,
        rs: Reg,
        idx: usize,
    },
    St {
        rd: Reg,
        idx: usize,
        rs: Reg,
    },
    Ralloc {
        rd: Reg,
        n: usize,
    },
    Balloc {
        rd: Reg,
        n: usize,
    },
    Salloc(usize),
    Sfree(usize),
    Sld {
        rd: Reg,
        idx: usize,
    },
    Sst {
        idx: usize,
        rs: Reg,
    },
    Unpack {
        rd: Reg,
        src: FastOp,
    },
    Unfold {
        rd: Reg,
        src: FastOp,
    },
    Protect,
    Import {
        rd: Reg,
        ty: Arc<FTy>,
        body: IExpr,
    },
    Bnz {
        r: Reg,
        t: BcTarget,
    },
    Jmp(BcTarget),
    Call {
        t: BcTarget,
        sigma: Arc<StackTy>,
        q: Arc<RetMarker>,
    },
    Ret {
        target: Reg,
        val: Reg,
    },
    Halt {
        val: Reg,
    },
    // Superinstructions: the codegen's hot stack idioms, fused by
    // `fuse_segment` into one dispatch each. Every constituent step
    // still ticks fuel and emits its own trace event, so step counts,
    // event streams, and out-of-fuel boundaries are exactly those of
    // the unfused sequence.
    /// `salloc 1; sst 0, rs` (2 steps) — push a register.
    Push {
        rs: Reg,
    },
    /// `salloc 1; sst 0, rs; jmp t` (3 steps) — the call-entry stanza.
    PushJmp {
        rs: Reg,
        t: BcTarget,
    },
    /// `sld rd, idx; salloc 1; sst 0, rd` (3 steps) — copy a slot up.
    SldPush {
        rd: Reg,
        idx: usize,
    },
    /// `sld pr, 0; sfree 1; arith rd, rs, rt` (3 steps) — pop+combine
    /// (`pr` is the register the popped word lands in; `rs`/`rt` may
    /// alias it).
    PopArith {
        op: ArithOp,
        pr: Reg,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// [`BcOp::PopArith`] followed by `salloc 1; sst 0, rd` (5 steps).
    PopArithPush {
        op: ArithOp,
        pr: Reg,
        rd: Reg,
        rs: Reg,
        rt: Reg,
    },
    /// `sld rd, idx; sfree n` (2 steps) — load a slot, drop a frame.
    SldSfree {
        rd: Reg,
        idx: usize,
        n: usize,
    },
    /// `sld ra, 0; sfree n; ret ra, val` (3 steps) — the full return
    /// epilogue: pop the return address and jump through it.
    PopRet {
        ra: Reg,
        n: usize,
        val: Reg,
    },
}

impl BcOp {
    /// Fuel charged by [`BcOp::Push`] (`salloc; sst`).
    pub(crate) const PUSH_COST: u64 = 2;
    /// Fuel charged by [`BcOp::PushJmp`] (`salloc; sst; jmp`).
    pub(crate) const PUSH_JMP_COST: u64 = 3;
    /// Fuel charged by [`BcOp::SldPush`] (`sld; salloc; sst`).
    pub(crate) const SLD_PUSH_COST: u64 = 3;
    /// Fuel charged by [`BcOp::PopArith`] (`sld; sfree; arith`).
    pub(crate) const POP_ARITH_COST: u64 = 3;
    /// Fuel charged by [`BcOp::PopArithPush`]
    /// (`sld; sfree; arith; salloc; sst`).
    pub(crate) const POP_ARITH_PUSH_COST: u64 = 5;
    /// Fuel charged by [`BcOp::SldSfree`] (`sld; sfree`).
    pub(crate) const SLD_SFREE_COST: u64 = 2;
    /// Fuel charged by [`BcOp::PopRet`] (`sld; sfree; ret`).
    pub(crate) const POP_RET_COST: u64 = 3;

    /// Fuel this opcode charges when dispatched — the shared cost
    /// table. Plain ops tick once; superinstructions charge exactly
    /// the fuel of the constituent steps they fuse (the dispatch loop
    /// reads the same constants, and `bc_verify` cross-checks each
    /// fused cost against an independently enumerated expansion).
    /// `Import` charges nothing at the suspension itself — the two
    /// ticks of the import round-trip (translate, then `mv rd`) are
    /// charged by the CEK machine when the F value returns. `Halt`
    /// charges nothing at dispatch; `halt()` ticks once.
    pub(crate) const fn fuel_cost(&self) -> u64 {
        match self {
            BcOp::Import { .. } | BcOp::Halt { .. } => 0,
            BcOp::Push { .. } => Self::PUSH_COST,
            BcOp::PushJmp { .. } => Self::PUSH_JMP_COST,
            BcOp::SldPush { .. } => Self::SLD_PUSH_COST,
            BcOp::PopArith { .. } => Self::POP_ARITH_COST,
            BcOp::PopArithPush { .. } => Self::POP_ARITH_PUSH_COST,
            BcOp::SldSfree { .. } => Self::SLD_SFREE_COST,
            BcOp::PopRet { .. } => Self::POP_RET_COST,
            _ => 1,
        }
    }
}

/// Sentinel arity for fragment ordinals that are not code blocks
/// (tuples): never a valid instantiation count, so no static target or
/// cell binding is ever created for them.
pub(crate) const NOT_CODE: usize = usize::MAX;

/// A lowered module: the component's entry sequence at offset 0
/// followed by every fragment block, as one flat op stream. Shared and
/// immutable (cached per component, reusable across runs and threads).
#[derive(Debug)]
pub(crate) struct BcModule {
    pub(crate) ops: Vec<BcOp>,
    /// Per-fragment-ordinal `(offset, instantiation arity)`; tuples get
    /// [`NOT_CODE`].
    pub(crate) blocks: Vec<(u32, usize)>,
    /// Source region of the entry sequence (the ambient root span at
    /// lower time; synthetic for generated entries).
    pub(crate) entry_span: Span,
    /// Per-fragment-ordinal label and source region, resolved through
    /// the ambient [`SpanScope`] at lower time.
    pub(crate) spans: Vec<(Label, Span)>,
}

/// A module bound to one merged fragment in one memory: the shared
/// lowered code plus the flat-heap index of each fragment ordinal and
/// the F environment `import` bodies close over.
#[derive(Debug)]
pub(crate) struct BcInstance {
    pub(crate) module: Arc<BcModule>,
    /// Fragment ordinal → flat-heap index.
    pub(crate) labels: Vec<u32>,
    pub(crate) env: Env,
}

/// The per-heap-cell inline cache for cross-fragment entry: which
/// instance the cell's block belongs to, where its body starts, and
/// its instantiation arity (checked against the entering word's
/// pending instantiations).
#[derive(Clone, Debug)]
pub(crate) struct BcCell {
    pub(crate) inst: Rc<BcInstance>,
    pub(crate) off: u32,
    pub(crate) arity: u32,
}

/// A suspended bytecode execution: an instance and a program counter.
#[derive(Clone, Debug)]
pub(crate) struct BcCtrl {
    inst: Rc<BcInstance>,
    pc: u32,
}

// ---------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------

/// A fragment cell as the lowerer sees it: label plus the shared block
/// (`None` for tuples, which occupy an ordinal but lower to nothing).
type FragCell = (Label, Option<Arc<HeapVal>>);

fn lower_target(
    u: &funtal_syntax::SmallVal,
    extra_insts: usize,
    label_ord: &HashMap<Label, u32>,
    arities: &[usize],
) -> BcTarget {
    let op = lower_op(u);
    if let FastOp::Word(tw) = &op {
        if let TWord::Big(b) = tw {
            let (base, count) = peel_count(b);
            if let WordVal::Loc(l) = base {
                if let Some(&ord) = label_ord.get(l) {
                    if arities[ord as usize] == count + extra_insts {
                        return BcTarget::Static {
                            off: 0, // patched after all blocks are lowered
                            ord,
                            w: tw.clone(),
                        };
                    }
                }
            }
        }
    }
    BcTarget::Dyn(op)
}

fn lower_mv(rd: Reg, src: &funtal_syntax::SmallVal, label_ord: &HashMap<Label, u32>) -> BcOp {
    match lower_op(src) {
        FastOp::Reg(rs) => BcOp::MvReg { rd, rs },
        FastOp::Word(TWord::Int(imm)) => BcOp::MvInt { rd, imm },
        FastOp::Word(TWord::Unit) => BcOp::MvUnit { rd },
        FastOp::Word(w) => {
            if let TWord::Big(b) = &w {
                if let WordVal::Loc(l) = &**b {
                    if let Some(&ord) = label_ord.get(l) {
                        return BcOp::MvLbl { rd, ord };
                    }
                }
            }
            BcOp::MvWord { rd, w }
        }
        src => BcOp::MvDyn { rd, src },
    }
}

fn lower_seq(
    ops: &mut Vec<BcOp>,
    seq: &InstrSeq,
    label_ord: &HashMap<Label, u32>,
    arities: &[usize],
) {
    for i in &seq.instrs {
        let op = match i {
            Instr::Arith { op, rd, rs, src } => match lower_op(src) {
                FastOp::Reg(rt) => BcOp::ArithRR {
                    op: *op,
                    rd: *rd,
                    rs: *rs,
                    rt,
                },
                FastOp::Word(TWord::Int(imm)) => BcOp::ArithRI {
                    op: *op,
                    rd: *rd,
                    rs: *rs,
                    imm,
                },
                src => BcOp::ArithDyn {
                    op: *op,
                    rd: *rd,
                    rs: *rs,
                    src,
                },
            },
            Instr::Bnz { r, target } => BcOp::Bnz {
                r: *r,
                t: lower_target(target, 0, label_ord, arities),
            },
            Instr::Ld { rd, rs, idx } => BcOp::Ld {
                rd: *rd,
                rs: *rs,
                idx: *idx,
            },
            Instr::St { rd, idx, rs } => BcOp::St {
                rd: *rd,
                idx: *idx,
                rs: *rs,
            },
            Instr::Ralloc { rd, n } => BcOp::Ralloc { rd: *rd, n: *n },
            Instr::Balloc { rd, n } => BcOp::Balloc { rd: *rd, n: *n },
            Instr::Mv { rd, src } => lower_mv(*rd, src, label_ord),
            Instr::Salloc(n) => BcOp::Salloc(*n),
            Instr::Sfree(n) => BcOp::Sfree(*n),
            Instr::Sld { rd, idx } => BcOp::Sld { rd: *rd, idx: *idx },
            Instr::Sst { idx, rs } => BcOp::Sst { idx: *idx, rs: *rs },
            Instr::Unpack { rd, src, .. } => BcOp::Unpack {
                rd: *rd,
                src: lower_op(src),
            },
            Instr::Unfold { rd, src } => BcOp::Unfold {
                rd: *rd,
                src: lower_op(src),
            },
            Instr::Protect { .. } => BcOp::Protect,
            Instr::Import { rd, ty, body, .. } => BcOp::Import {
                rd: *rd,
                ty: Arc::new(ty.clone()),
                body: IExpr::from_fexpr(body),
            },
        };
        ops.push(op);
    }
    let term = match &seq.term {
        Terminator::Jmp(u) => BcOp::Jmp(lower_target(u, 0, label_ord, arities)),
        Terminator::Call { target, sigma, q } => BcOp::Call {
            // A call's target is instantiated with two extra
            // instantiations (stack + return marker) at entry.
            t: lower_target(target, 2, label_ord, arities),
            sigma: Arc::new(sigma.clone()),
            q: Arc::new(q.clone()),
        },
        Terminator::Ret { target, val } => BcOp::Ret {
            target: *target,
            val: *val,
        },
        Terminator::Halt { val, .. } => BcOp::Halt { val: *val },
    };
    ops.push(term);
}

/// Peephole pass over one straight-line segment (`ops[from..]`). Safe
/// because no control transfer ever lands inside a segment — jumps,
/// calls, and returns always target block starts, and fusion runs
/// before offsets are recorded. Longest pattern wins.
fn fuse_segment(ops: &mut Vec<BcOp>, from: usize) {
    let seg = ops.split_off(from);
    let mut i = 0;
    while i < seg.len() {
        match &seg[i..] {
            [BcOp::Sld { rd: pr, idx: 0 }, BcOp::Sfree(1), BcOp::ArithRR { op, rd, rs, rt }, BcOp::Salloc(1), BcOp::Sst { idx: 0, rs: rs2 }, ..]
                if rs2 == rd =>
            {
                ops.push(BcOp::PopArithPush {
                    op: *op,
                    pr: *pr,
                    rd: *rd,
                    rs: *rs,
                    rt: *rt,
                });
                i += 5;
            }
            [BcOp::Sld { rd: pr, idx: 0 }, BcOp::Sfree(1), BcOp::ArithRR { op, rd, rs, rt }, ..] => {
                ops.push(BcOp::PopArith {
                    op: *op,
                    pr: *pr,
                    rd: *rd,
                    rs: *rs,
                    rt: *rt,
                });
                i += 3;
            }
            [BcOp::Sld { rd: ra, idx: 0 }, BcOp::Sfree(n), BcOp::Ret { target, val }, ..]
                if target == ra && *n >= 1 =>
            {
                ops.push(BcOp::PopRet {
                    ra: *ra,
                    n: *n,
                    val: *val,
                });
                i += 3;
            }
            [BcOp::Sld { rd, idx }, BcOp::Salloc(1), BcOp::Sst { idx: 0, rs }, ..] if rs == rd => {
                ops.push(BcOp::SldPush { rd: *rd, idx: *idx });
                i += 3;
            }
            [BcOp::Salloc(1), BcOp::Sst { idx: 0, rs }, BcOp::Jmp(t), ..] => {
                ops.push(BcOp::PushJmp {
                    rs: *rs,
                    t: t.clone(),
                });
                i += 3;
            }
            [BcOp::Sld { rd, idx }, BcOp::Sfree(n), ..] => {
                ops.push(BcOp::SldSfree {
                    rd: *rd,
                    idx: *idx,
                    n: *n,
                });
                i += 2;
            }
            [BcOp::Salloc(1), BcOp::Sst { idx: 0, rs }, ..] => {
                ops.push(BcOp::Push { rs: *rs });
                i += 2;
            }
            rest => {
                ops.push(rest[0].clone());
                i += 1;
            }
        }
    }
}

/// Lowers an entry sequence plus its fragment blocks into one module:
/// entry at offset 0, blocks appended in fragment (label) order, then
/// a patch pass resolves every static target to its absolute offset.
fn lower_module(entry: &InstrSeq, frag: &[FragCell]) -> BcModule {
    let arities: Vec<usize> = frag
        .iter()
        .map(|(_, hv)| match hv.as_deref() {
            Some(HeapVal::Code(b)) => b.delta.len(),
            _ => NOT_CODE,
        })
        .collect();
    let label_ord: HashMap<Label, u32> = frag
        .iter()
        .enumerate()
        .map(|(i, (l, _))| (l.clone(), i as u32))
        .collect();
    let mut ops = Vec::new();
    let mut offsets = vec![0u32; frag.len()];
    lower_seq(&mut ops, entry, &label_ord, &arities);
    fuse_segment(&mut ops, 0);
    for (ord, (_, hv)) in frag.iter().enumerate() {
        offsets[ord] = ops.len() as u32;
        if let Some(HeapVal::Code(b)) = hv.as_deref() {
            let from = ops.len();
            lower_seq(&mut ops, &b.body, &label_ord, &arities);
            fuse_segment(&mut ops, from);
        }
    }
    for op in &mut ops {
        if let BcOp::Jmp(t) | BcOp::Bnz { t, .. } | BcOp::Call { t, .. } | BcOp::PushJmp { t, .. } =
            op
        {
            if let BcTarget::Static { off, ord, .. } = t {
                *off = offsets[*ord as usize];
            }
        }
    }
    let blocks = offsets.into_iter().zip(arities).collect();
    let spans = frag
        .iter()
        .map(|(l, _)| (l.clone(), ambient_span(l.as_str())))
        .collect();
    BcModule {
        ops,
        blocks,
        entry_span: ambient_root(),
        spans,
    }
}

fn frag_cells(heap: &HeapFrag) -> Vec<FragCell> {
    heap.iter_shared()
        .map(|(l, hv)| {
            let cell = match &**hv {
                HeapVal::Code(_) => Some(hv.clone()),
                HeapVal::Tuple { .. } => None,
            };
            (l.clone(), cell)
        })
        .collect()
}

pub(crate) fn lower_comp(comp: &TComp) -> BcModule {
    lower_module(&comp.seq, &frag_cells(&comp.heap))
}

/// Lowers a renamed merge: the module is instance-specific (its labels
/// embed the collision-renamed names), built from the already-renamed
/// cells the merge left in the flat heap.
pub(crate) fn lower_renamed(mem: &FastMem, entry: &InstrSeq, indices: &[u32]) -> BcModule {
    let frag: Vec<FragCell> = indices
        .iter()
        .map(|&i| {
            let l = mem.names[i as usize].clone();
            let hv = match &mem.heap[i as usize] {
                FastHeapVal::Code { hv, .. } => Some(hv.clone()),
                FastHeapVal::Tuple { .. } => None,
            };
            (l, hv)
        })
        .collect();
    lower_module(entry, &frag)
}

// Lazily lowered single-block modules for cells entered across
// fragments (translation-allocated closures, `ℓend` blocks, blocks of
// the initial memory). Keyed by block identity and validated by weak
// upgrade, like the cursor tier's `SEQ_CACHE`. All targets are dynamic:
// the same shared block can be bound under different cell names, so no
// label may be resolved at lower time.
type BlockModCache = HashMap<usize, (Weak<HeapVal>, Arc<BcModule>)>;

thread_local! {
    static BC_BLOCK_CACHE: RefCell<BlockModCache> = RefCell::new(HashMap::new());
}

pub(crate) fn single_block_module(hv: &Arc<HeapVal>) -> Arc<BcModule> {
    let key = Arc::as_ptr(hv) as usize;
    BC_BLOCK_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((weak, m)) = cache.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, hv) {
                    return m.clone();
                }
            }
        }
        let HeapVal::Code(block) = &**hv else {
            unreachable!("single_block_module called on a tuple")
        };
        let m = Arc::new(lower_module(&block.body, &[]));
        if cache.len() >= 4096 {
            cache.retain(|_, (w, _)| w.upgrade().is_some());
        }
        cache.insert(key, (Arc::downgrade(hv), m.clone()));
        m
    })
}

// ---------------------------------------------------------------------
// The tier
// ---------------------------------------------------------------------

/// The bytecode T tier: a per-run table of lowered modules keyed by
/// component identity (seeded from a [`LoweredProgram`] when the driver
/// pre-lowered the program).
#[derive(Debug, Default)]
pub(crate) struct BcTier {
    modules: HashMap<usize, (Weak<TComp>, Arc<BcModule>)>,
    /// Direct-mapped cache of resolved `Big`-word jump targets (return
    /// addresses are the hot case: the same shared `Arc<WordVal>` is
    /// moved into a register on every call). Keyed by `Arc` identity;
    /// holding the strong `Arc` rules out ABA reuse of the address.
    /// Label→index bindings are append-only within a run, so a hit can
    /// never go stale.
    big_cache: [Option<(Arc<WordVal>, u32, u32)>; 4],
}

impl BcTier {
    fn module_for(&mut self, comp: &Arc<TComp>) -> Arc<BcModule> {
        let key = Arc::as_ptr(comp) as usize;
        if let Some((weak, m)) = self.modules.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, comp) {
                    return m.clone();
                }
            }
        }
        let m = Arc::new(lower_comp(comp));
        self.modules.insert(key, (Arc::downgrade(comp), m.clone()));
        m
    }

    fn seeded(mods: &[(Arc<TComp>, Arc<BcModule>)]) -> BcTier {
        BcTier {
            modules: mods
                .iter()
                .map(|(c, m)| (Arc::as_ptr(c) as usize, (Arc::downgrade(c), m.clone())))
                .collect(),
            big_cache: Default::default(),
        }
    }

    fn cache_slot(b: &Arc<WordVal>) -> usize {
        (Arc::as_ptr(b) as usize >> 4) & 3
    }
}

/// Creates the instance for a freshly merged fragment and binds every
/// merged code cell's inline cache to it.
fn bind_instance(
    mem: &mut FastMem,
    module: Arc<BcModule>,
    indices: Vec<u32>,
    env: Env,
) -> Rc<BcInstance> {
    let inst = Rc::new(BcInstance {
        module,
        labels: indices,
        env,
    });
    for (ord, &idx) in inst.labels.iter().enumerate() {
        let (off, arity) = inst.module.blocks[ord];
        if arity == NOT_CODE {
            continue;
        }
        if let FastHeapVal::Code { bc, .. } = &mut mem.heap[idx as usize] {
            *bc = Some(BcCell {
                inst: inst.clone(),
                off,
                arity: arity as u32,
            });
        }
    }
    inst
}

impl Tier for BcTier {
    type TCtrl = BcCtrl;

    fn boundary_ctrl(
        m: &mut Machine<'_, Self>,
        comp: &Arc<TComp>,
        env: &Env,
        merge: MergeOutcome,
    ) -> BcCtrl {
        let module = match &merge.renamed_entry {
            Some(entry) => Arc::new(lower_renamed(&m.mem, entry, &merge.indices)),
            None => m.tier.module_for(comp),
        };
        let inst = bind_instance(&mut m.mem, module, merge.indices, env.clone());
        BcCtrl { inst, pc: 0 }
    }

    fn step_t(m: &mut Machine<'_, Self>, t: BcCtrl) -> RResult<Step<Self>> {
        m.step_bc(t)
    }
}

/// What a control transfer resolved to: a new instance (or `None` when
/// staying in the current one), the offset to jump to, and the target
/// cell's heap index (for the event label).
type Transfer = (Option<Rc<BcInstance>>, u32, u32);

impl Machine<'_, BcTier> {
    /// The dispatch loop entry: monomorphizes on the trace flag so the
    /// untraced instantiation — the perf-critical one — carries no
    /// tracer code at all (every `if TRACED` block folds away, and the
    /// superinstruction arms reduce to their net-effect routes).
    fn step_bc(&mut self, t: BcCtrl) -> RResult<Step<BcTier>> {
        if self.trace {
            self.step_bc_loop::<true>(t)
        } else {
            self.step_bc_loop::<false>(t)
        }
    }

    /// The dispatch loop. Runs until control leaves T (import, halt,
    /// boundary exit), an error, or fuel exhaustion — never returning
    /// to the outer CEK loop for intra-T transfers.
    fn step_bc_loop<const TRACED: bool>(&mut self, t: BcCtrl) -> RResult<Step<BcTier>> {
        let BcCtrl { mut inst, mut pc } = t;
        // Fuel lives in a local for the duration of the loop (a
        // register instead of a load+store per op). It is synced back
        // on every `Ok` exit; error exits are terminal, so the
        // machine's fuel is never observed after them.
        let mut fuel = self.fuel;
        macro_rules! tickl {
            () => {
                if fuel == 0 {
                    self.fuel = 0;
                    return Ok(Step::Done(FtOutcome::OutOfFuel));
                }
                fuel -= 1;
            };
        }
        'instance: loop {
            let module = inst.module.clone();
            let ops = &module.ops[..];
            loop {
                #[cfg(feature = "bc-profile")]
                profile::count(&ops[pc as usize]);
                match &ops[pc as usize] {
                    BcOp::ArithRR { op, rd, rs, rt } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let a = self.mem.int_reg(*rs)?;
                        let b = self.mem.int_reg(*rt)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        pc += 1;
                    }
                    BcOp::ArithRI { op, rd, rs, imm } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let a = self.mem.int_reg(*rs)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, *imm)));
                        pc += 1;
                    }
                    BcOp::ArithDyn { op, rd, rs, src } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let a = self.mem.int_reg(*rs)?;
                        let b = self.mem.as_int(&self.eval_op(src)?)?;
                        self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        pc += 1;
                    }
                    BcOp::MvInt { rd, imm } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        self.mem.set_reg(*rd, TWord::Int(*imm));
                        pc += 1;
                    }
                    BcOp::MvUnit { rd } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        self.mem.set_reg(*rd, TWord::Unit);
                        pc += 1;
                    }
                    BcOp::MvReg { rd, rs } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.mem.reg(*rs)?.clone();
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::MvLbl { rd, ord } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let idx = inst.labels[*ord as usize];
                        self.mem.set_reg(*rd, TWord::Loc(idx));
                        pc += 1;
                    }
                    BcOp::MvWord { rd, w } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        self.mem.set_reg(*rd, w.clone());
                        pc += 1;
                    }
                    BcOp::MvDyn { rd, src } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.eval_op(src)?;
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::Ld { rd, rs, idx } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let i = self.mem.loc_of(self.mem.reg(*rs)?)?;
                        let FastHeapVal::Tuple { fields, .. } = &self.mem.heap[i as usize] else {
                            return Err(RuntimeError::NotTuple(format!(
                                "{} is code",
                                self.mem.names[i as usize]
                            )));
                        };
                        let w = fields
                            .get(*idx)
                            .ok_or(RuntimeError::BadFieldIndex(*idx))?
                            .clone();
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::St { rd, idx, rs } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let i = self.mem.loc_of(self.mem.reg(*rd)?)?;
                        let w = self.mem.reg(*rs)?.clone();
                        let name = self.mem.names[i as usize].clone();
                        let FastHeapVal::Tuple { mutability, fields } =
                            &mut self.mem.heap[i as usize]
                        else {
                            return Err(RuntimeError::NotTuple(format!("{name} is code")));
                        };
                        if *mutability != Mutability::Ref {
                            return Err(RuntimeError::ImmutableStore(name));
                        }
                        let slot = fields
                            .get_mut(*idx)
                            .ok_or(RuntimeError::BadFieldIndex(*idx))?;
                        *slot = w;
                        pc += 1;
                    }
                    BcOp::Ralloc { rd, n } | BcOp::Balloc { rd, n } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let fields = self.mem.stack_pop_n(*n)?;
                        let mutability = if matches!(&ops[pc as usize], BcOp::Ralloc { .. }) {
                            Mutability::Ref
                        } else {
                            Mutability::Boxed
                        };
                        let i = self
                            .mem
                            .alloc("t", FastHeapVal::Tuple { mutability, fields });
                        self.mem.set_reg(*rd, TWord::Loc(i));
                        pc += 1;
                    }
                    BcOp::Salloc(n) => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let len = self.mem.stack.len();
                        self.mem.stack.resize(len + *n, TWord::Unit);
                        pc += 1;
                    }
                    BcOp::Sfree(n) => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        self.mem.stack_drop_n(*n)?;
                        pc += 1;
                    }
                    BcOp::Sld { rd, idx } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.mem.stack_get(*idx)?.clone();
                        self.mem.set_reg(*rd, w);
                        pc += 1;
                    }
                    BcOp::Sst { idx, rs } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.mem.reg(*rs)?.clone();
                        self.mem.stack_set(*idx, w)?;
                        pc += 1;
                    }
                    BcOp::Unpack { rd, src } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.eval_op(src)?;
                        let TWord::Big(b) = &w else {
                            return Err(RuntimeError::NotPack(self.mem.reify_word(&w).to_string()));
                        };
                        let WordVal::Pack { body, .. } = &**b else {
                            return Err(RuntimeError::NotPack(self.mem.reify_word(&w).to_string()));
                        };
                        let inner = self.mem.tword_of_word(body);
                        self.mem.set_reg(*rd, inner);
                        pc += 1;
                    }
                    BcOp::Unfold { rd, src } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.eval_op(src)?;
                        let TWord::Big(b) = &w else {
                            return Err(RuntimeError::NotFold(self.mem.reify_word(&w).to_string()));
                        };
                        let WordVal::Fold { body, .. } = &**b else {
                            return Err(RuntimeError::NotFold(self.mem.reify_word(&w).to_string()));
                        };
                        let inner = self.mem.tword_of_word(body);
                        self.mem.set_reg(*rd, inner);
                        pc += 1;
                    }
                    BcOp::Protect => {
                        // Typing-only; still one machine step, charged
                        // as a plain instruction so every tick has
                        // exactly one charging event (the profiler's
                        // invariant).
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        pc += 1;
                    }
                    BcOp::Import { rd, ty, body } => {
                        self.frames.push(Frame::ImportF {
                            rd: *rd,
                            ty: ty.clone(),
                            saved: BcCtrl {
                                inst: inst.clone(),
                                pc: pc + 1,
                            },
                        });
                        self.fuel = fuel;
                        return Ok(Step::Continue(Ctrl::Eval(body.clone(), inst.env.clone())));
                    }
                    BcOp::Bnz { r, t } => {
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        if self.mem.int_reg(*r)? != 0 {
                            let (next, off, idx) = self.take_target(&inst, t, 0, None)?;
                            if TRACED {
                                self.tracer.event(&Event::BnzTaken {
                                    to: self.mem.names[idx as usize].clone(),
                                });
                            }
                            pc = off;
                            if let Some(n) = next {
                                inst = n;
                                continue 'instance;
                            }
                        } else {
                            pc += 1;
                        }
                    }
                    BcOp::Jmp(t) => {
                        tickl!();
                        let (next, off, idx) = self.take_target(&inst, t, 0, None)?;
                        if TRACED {
                            self.tracer.event(&Event::Jmp {
                                to: self.mem.names[idx as usize].clone(),
                            });
                        }
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::Call { t, sigma, q } => {
                        tickl!();
                        let (next, off, idx) = self.take_target(&inst, t, 2, Some((sigma, q)))?;
                        if TRACED {
                            self.tracer.event(&Event::Call {
                                to: self.mem.names[idx as usize].clone(),
                            });
                        }
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::Ret { target, val } => {
                        tickl!();
                        let w = self.mem.reg(*target)?.clone();
                        let (next, off, idx) = self.enter_bc(&inst, &w, 0, None)?;
                        if TRACED {
                            self.tracer.event(&Event::Ret {
                                to: self.mem.names[idx as usize].clone(),
                                val: *val,
                            });
                        }
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::Halt { val } => {
                        self.fuel = fuel;
                        return self.halt(*val);
                    }
                    // Superinstructions. Each arm has two routes with
                    // identical observable behaviour:
                    //  - the *net-effect* route, taken when no event can
                    //    be emitted (`!trace`) and no step can exhaust
                    //    fuel (`fuel >= k` for a k-step op): one batched
                    //    fuel debit, effects applied in constituent
                    //    order, errors propagated exactly as the
                    //    expansion would raise them (errors are
                    //    terminal, so post-error memory and fuel are
                    //    unobservable);
                    //  - the *faithful* route otherwise: every
                    //    constituent step ticks, traces, and takes
                    //    effect in the original order, so fuel
                    //    exhaustion and event streams land on exactly
                    //    the same machine state as the unfused sequence.
                    BcOp::Push { rs } => {
                        if !TRACED && fuel >= BcOp::PUSH_COST {
                            fuel -= BcOp::PUSH_COST;
                            let w = self.mem.reg(*rs)?.clone();
                            self.mem.stack.push(w);
                        } else {
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack.push(TWord::Unit);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let w = self.mem.reg(*rs)?.clone();
                            *self.mem.stack.last_mut().expect("just pushed") = w;
                        }
                        pc += 1;
                    }
                    BcOp::PushJmp { rs, t } => {
                        if let (false, false, BcTarget::Static { off, .. }) =
                            (TRACED, self.guard, t)
                        {
                            if fuel >= BcOp::PUSH_JMP_COST {
                                fuel -= BcOp::PUSH_JMP_COST;
                                let w = self.mem.reg(*rs)?.clone();
                                self.mem.stack.push(w);
                                pc = *off;
                                continue;
                            }
                        }
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        self.mem.stack.push(TWord::Unit);
                        tickl!();
                        if TRACED {
                            self.tracer.event(&Event::Instr);
                        }
                        let w = self.mem.reg(*rs)?.clone();
                        *self.mem.stack.last_mut().expect("just pushed") = w;
                        tickl!();
                        let (next, off, idx) = self.take_target(&inst, t, 0, None)?;
                        if TRACED {
                            self.tracer.event(&Event::Jmp {
                                to: self.mem.names[idx as usize].clone(),
                            });
                        }
                        pc = off;
                        if let Some(n) = next {
                            inst = n;
                            continue 'instance;
                        }
                    }
                    BcOp::SldPush { rd, idx } => {
                        if !TRACED && fuel >= BcOp::SLD_PUSH_COST {
                            fuel -= BcOp::SLD_PUSH_COST;
                            let w = self.mem.stack_get(*idx)?.clone();
                            self.mem.set_reg(*rd, w.clone());
                            self.mem.stack.push(w);
                        } else {
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let w = self.mem.stack_get(*idx)?.clone();
                            self.mem.set_reg(*rd, w.clone());
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack.push(TWord::Unit);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            *self.mem.stack.last_mut().expect("just pushed") = w;
                        }
                        pc += 1;
                    }
                    BcOp::PopArith { op, pr, rd, rs, rt } => {
                        if !TRACED && fuel >= BcOp::POP_ARITH_COST {
                            fuel -= BcOp::POP_ARITH_COST;
                            if self.mem.stack.is_empty() {
                                self.mem.stack_get(0)?;
                            }
                            let w = self.mem.stack.pop().expect("checked non-empty");
                            self.mem.set_reg(*pr, w);
                            let a = self.mem.int_reg(*rs)?;
                            let b = self.mem.int_reg(*rt)?;
                            self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        } else {
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let w = self.mem.stack_get(0)?.clone();
                            self.mem.set_reg(*pr, w);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack.pop().expect("sld 0 checked depth");
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let a = self.mem.int_reg(*rs)?;
                            let b = self.mem.int_reg(*rt)?;
                            self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
                        }
                        pc += 1;
                    }
                    BcOp::PopArithPush { op, pr, rd, rs, rt } => {
                        if !TRACED && fuel >= BcOp::POP_ARITH_PUSH_COST {
                            fuel -= BcOp::POP_ARITH_PUSH_COST;
                            if self.mem.stack.is_empty() {
                                self.mem.stack_get(0)?;
                            }
                            let w = self.mem.stack.pop().expect("checked non-empty");
                            self.mem.set_reg(*pr, w);
                            let a = self.mem.int_reg(*rs)?;
                            let b = self.mem.int_reg(*rt)?;
                            let r = TWord::Int(op.apply(a, b));
                            self.mem.set_reg(*rd, r.clone());
                            self.mem.stack.push(r);
                        } else {
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let w = self.mem.stack_get(0)?.clone();
                            self.mem.set_reg(*pr, w);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack.pop().expect("sld 0 checked depth");
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let a = self.mem.int_reg(*rs)?;
                            let b = self.mem.int_reg(*rt)?;
                            let r = TWord::Int(op.apply(a, b));
                            self.mem.set_reg(*rd, r.clone());
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack.push(TWord::Unit);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            *self.mem.stack.last_mut().expect("just pushed") = r;
                        }
                        pc += 1;
                    }
                    BcOp::SldSfree { rd, idx, n } => {
                        if !TRACED && fuel >= BcOp::SLD_SFREE_COST {
                            fuel -= BcOp::SLD_SFREE_COST;
                            let w = self.mem.stack_get(*idx)?.clone();
                            self.mem.set_reg(*rd, w);
                            self.mem.stack_drop_n(*n)?;
                        } else {
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let w = self.mem.stack_get(*idx)?.clone();
                            self.mem.set_reg(*rd, w);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack_drop_n(*n)?;
                        }
                        pc += 1;
                    }
                    BcOp::PopRet { ra, n, val } => {
                        let (next, off, _idx) = if !TRACED && fuel >= BcOp::POP_RET_COST {
                            fuel -= BcOp::POP_RET_COST;
                            let len = self.mem.stack.len();
                            if len == 0 {
                                self.mem.stack_get(0)?;
                            }
                            if len < *n {
                                self.mem.stack_drop_n(*n)?;
                            }
                            // Move the return address out of the stack
                            // (no refcount traffic), resolve it, then
                            // park it in `ra` — the register state the
                            // expansion's `sld` leaves behind.
                            let w = self.mem.stack.pop().expect("checked non-empty");
                            self.mem.stack.truncate(len - *n);
                            let tr = self.enter_bc(&inst, &w, 0, None)?;
                            self.mem.set_reg(*ra, w);
                            tr
                        } else {
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            let w = self.mem.stack_get(0)?.clone();
                            self.mem.set_reg(*ra, w);
                            tickl!();
                            if TRACED {
                                self.tracer.event(&Event::Instr);
                            }
                            self.mem.stack_drop_n(*n)?;
                            tickl!();
                            let w = self.mem.reg(*ra)?.clone();
                            let tr = self.enter_bc(&inst, &w, 0, None)?;
                            if TRACED {
                                self.tracer.event(&Event::Ret {
                                    to: self.mem.names[tr.2 as usize].clone(),
                                    val: *val,
                                });
                            }
                            tr
                        };
                        pc = off;
                        if let Some(nx) = next {
                            inst = nx;
                            continue 'instance;
                        }
                    }
                }
            }
        }
    }

    fn take_target(
        &mut self,
        cur: &Rc<BcInstance>,
        t: &BcTarget,
        extra_insts: usize,
        call_extra: Option<(&Arc<StackTy>, &Arc<RetMarker>)>,
    ) -> RResult<Transfer> {
        match t {
            BcTarget::Static { off, ord, w } => {
                if self.guard {
                    // The guard needs the instantiation contents, so
                    // static targets take the full entry path.
                    self.enter_bc(cur, w, extra_insts, call_extra)
                } else {
                    Ok((None, *off, cur.labels[*ord as usize]))
                }
            }
            BcTarget::Dyn(op) => {
                let w = self.eval_op(op)?;
                self.enter_bc(cur, &w, extra_insts, call_extra)
            }
        }
    }

    /// Resolves a jump-target word through the heap, mirroring the
    /// cursor tier's `enter` (same resolution, same arity check, same
    /// guard) but yielding an instance + offset, with the per-cell
    /// [`BcCell`] as the inline cache.
    fn enter_bc(
        &mut self,
        cur: &Rc<BcInstance>,
        w: &TWord,
        extra_insts: usize,
        call_extra: Option<(&Arc<StackTy>, &Arc<RetMarker>)>,
    ) -> RResult<Transfer> {
        let (idx, n_insts, insts) = if self.guard {
            self.resolve_code(w)?
        } else if let TWord::Big(b) = w {
            // Hot Big words (return addresses) resolve through the
            // direct-mapped cache instead of re-hashing the label.
            let slot = BcTier::cache_slot(b);
            match &self.tier.big_cache[slot] {
                Some((cb, idx, count)) if Arc::ptr_eq(cb, b) => (*idx, *count as usize, None),
                _ => {
                    let r = self.resolve_code(w)?;
                    self.tier.big_cache[slot] = Some((b.clone(), r.0, r.1 as u32));
                    r
                }
            }
        } else {
            self.resolve_code(w)?
        };
        // Fast path: the cell is bound — a compare, an arity check,
        // and at most one refcount bump.
        if !self.guard {
            if let FastHeapVal::Code { bc: Some(cell), .. } = &self.mem.heap[idx as usize] {
                if cell.arity as usize != n_insts + extra_insts {
                    return Err(RuntimeError::BadInstantiation {
                        expected: cell.arity as usize,
                        provided: n_insts + extra_insts,
                    });
                }
                let off = cell.off;
                if Rc::ptr_eq(&cell.inst, cur) {
                    return Ok((None, off, idx));
                }
                return Ok((Some(cell.inst.clone()), off, idx));
            }
        }
        let (hv, benv, cached) = match &self.mem.heap[idx as usize] {
            FastHeapVal::Code { hv, env, bc, .. } => (hv.clone(), env.clone(), bc.clone()),
            FastHeapVal::Tuple { .. } => {
                return Err(RuntimeError::NotCode(format!(
                    "{} is a tuple",
                    self.mem.names[idx as usize]
                )))
            }
        };
        let HeapVal::Code(block) = &*hv else {
            unreachable!()
        };
        if block.delta.len() != n_insts + extra_insts {
            return Err(RuntimeError::BadInstantiation {
                expected: block.delta.len(),
                provided: n_insts + extra_insts,
            });
        }
        let (inst2, off) = match cached {
            Some(cell) => (cell.inst.clone(), cell.off),
            None => {
                // First cross-fragment entry into an unbound cell:
                // lower (or fetch) its single-block module and bind.
                let module = single_block_module(&hv);
                let inst2 = Rc::new(BcInstance {
                    module,
                    labels: Vec::new(),
                    env: benv,
                });
                if let FastHeapVal::Code { bc, .. } = &mut self.mem.heap[idx as usize] {
                    *bc = Some(BcCell {
                        inst: inst2.clone(),
                        off: 0,
                        arity: block.delta.len() as u32,
                    });
                }
                (inst2, 0)
            }
        };
        if self.guard {
            let mut all_insts = insts.unwrap_or_default();
            if let Some((sigma, q)) = call_extra {
                all_insts.push(Inst::Stack((**sigma).clone()));
                all_insts.push(Inst::Ret((**q).clone()));
            }
            let subst = Subst::from_pairs(
                block
                    .delta
                    .iter()
                    .zip(&all_insts)
                    .map(|(d, i)| (d.var.clone(), i.clone())),
            );
            self.guard_entry(
                &self.mem.names[idx as usize].clone(),
                &subst.chi(&block.chi),
                &subst.stack(&block.sigma),
            )?;
        }
        if Rc::ptr_eq(&inst2, cur) {
            Ok((None, off, idx))
        } else {
            Ok((Some(inst2), off, idx))
        }
    }
}

// ---------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------

/// Runs an FT component with the bytecode tier, reading the initial
/// state from `mem` and writing the final state back — observably
/// identical (outcomes, events, fuel, final memory, fresh labels) to
/// [`crate::machine_fast::run_fast`] and the substitution oracle.
pub fn run_bc(
    mem: &mut Memory,
    comp: &Component,
    cfg: RunCfg,
    tracer: &mut dyn Tracer,
) -> RResult<FtOutcome> {
    let fmem = FastMem::from_memory(mem);
    let mut machine = Machine {
        mem: fmem,
        frames: Vec::new(),
        fuel: cfg.fuel,
        guard: cfg.guard,
        trace: tracer.enabled(),
        tracer,
        tier: BcTier::default(),
    };
    let ctrl = match comp {
        Component::F(e) => Ctrl::Eval(IExpr::from_fexpr(e), Env::default()),
        Component::T(c) => {
            // The merge happens before the step loop (no fuel), as in
            // the substitution machine's `run`.
            let merge = machine.mem.merge_fragment(c, &Env::default());
            let module = match &merge.renamed_entry {
                Some(entry) => Arc::new(lower_renamed(&machine.mem, entry, &merge.indices)),
                None => Arc::new(lower_comp(c)),
            };
            let inst = bind_instance(&mut machine.mem, module, merge.indices, Env::default());
            Ctrl::T(BcCtrl { inst, pc: 0 })
        }
    };
    let result = machine.run(ctrl);
    machine.mem.write_back(mem);
    result
}

// ---------------------------------------------------------------------
// Pre-lowered programs (the driver's cacheable artifact)
// ---------------------------------------------------------------------

/// A program lowered ahead of time: the interned expression plus the
/// bytecode module of every embedded T component (including components
/// nested inside `import` bodies). Shareable across threads and runs —
/// the driver caches these so warm batch runs skip re-lowering.
#[derive(Debug)]
pub struct LoweredProgram {
    pub(crate) iexpr: IExpr,
    pub(crate) modules: Vec<(Arc<TComp>, Arc<BcModule>)>,
}

impl LoweredProgram {
    /// How many distinct T components were lowered.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    /// Every lowered code block's label and the source region it maps
    /// back to, module by module in lowering order. Each module is
    /// preceded by its entry sequence as `("<entry>", root span)`.
    /// Spans are synthetic unless the program was lowered via
    /// [`prelower_spanned`] (or under an explicit [`SpanScope`]).
    pub fn block_spans(&self) -> Vec<(String, Span)> {
        let mut out = Vec::new();
        for (_, module) in &self.modules {
            out.push(("<entry>".to_owned(), module.entry_span));
            for ((label, span), &(_, arity)) in module.spans.iter().zip(&module.blocks) {
                if arity != NOT_CODE {
                    out.push((label.to_string(), *span));
                }
            }
        }
        out
    }
}

fn collect_modules(
    e: &IExpr,
    seen: &mut HashSet<usize>,
    out: &mut Vec<(Arc<TComp>, Arc<BcModule>)>,
) {
    match e.kind() {
        IKind::Var(_) | IKind::Unit | IKind::Int(_) => {}
        IKind::Binop { lhs, rhs, .. } => {
            collect_modules(lhs, seen, out);
            collect_modules(rhs, seen, out);
        }
        IKind::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            collect_modules(cond, seen, out);
            collect_modules(then_branch, seen, out);
            collect_modules(else_branch, seen, out);
        }
        IKind::Lam { body, .. } => collect_modules(body, seen, out),
        IKind::App { func, args } => {
            collect_modules(func, seen, out);
            for a in args.iter() {
                collect_modules(a, seen, out);
            }
        }
        IKind::Fold { body, .. } => collect_modules(body, seen, out),
        IKind::Unfold(body) => collect_modules(body, seen, out),
        IKind::Tuple(es) => {
            for e in es.iter() {
                collect_modules(e, seen, out);
            }
        }
        IKind::Proj { tuple, .. } => collect_modules(tuple, seen, out),
        IKind::Boundary { comp, .. } => {
            if seen.insert(Arc::as_ptr(comp) as usize) {
                let module = Arc::new(lower_comp(comp));
                // Import bodies may embed further boundaries; their
                // components were freshly shared during lowering, so
                // walk the lowered ops to reach them.
                for op in &module.ops {
                    if let BcOp::Import { body, .. } = op {
                        collect_modules(body, seen, out);
                    }
                }
                out.push((comp.clone(), module));
            }
        }
    }
}

/// Lowers a closed F expression ahead of time: interns it and lowers
/// every embedded T component to bytecode. The result is `Send + Sync`
/// and reusable across runs and worker threads.
pub fn prelower(e: &FExpr) -> LoweredProgram {
    let iexpr = IExpr::from_fexpr(e);
    let mut seen = HashSet::new();
    let mut modules = Vec::new();
    collect_modules(&iexpr, &mut seen, &mut modules);
    let lp = LoweredProgram { iexpr, modules };
    // Debug builds verify every module the lowerer emits; release
    // builds stay verification-free here so lowering cost is
    // unchanged (callers opt in via `bc_verify::verify_lowered`).
    #[cfg(debug_assertions)]
    if let Err(e) = crate::bc_verify::verify_lowered(&lp) {
        panic!("prelower produced a module the verifier rejects: {e}");
    }
    lp
}

/// [`prelower`] under a span scope: every lowered block records the
/// source region its label resolves to in `table`, retrievable through
/// [`LoweredProgram::block_spans`].
pub fn prelower_spanned(e: &FExpr, table: Arc<SpanTable>) -> LoweredProgram {
    let _scope = SpanScope::install(table);
    prelower(e)
}

/// Runs a pre-lowered program in a fresh memory with the bytecode
/// tier, seeding the module table so no component is re-lowered.
/// Observably identical to running the original expression through
/// [`crate::machine::run_fexpr`] under any strategy.
pub fn run_prelowered(
    lp: &LoweredProgram,
    cfg: RunCfg,
    tracer: &mut dyn Tracer,
) -> RResult<FtOutcome> {
    let mem = Memory::new();
    let fmem = FastMem::from_memory(&mem);
    let mut machine = Machine {
        mem: fmem,
        frames: Vec::new(),
        fuel: cfg.fuel,
        guard: cfg.guard,
        trace: tracer.enabled(),
        tracer,
        tier: BcTier::seeded(&lp.modules),
    };
    machine.run(Ctrl::Eval(lp.iexpr.clone(), Env::default()))
}

#[cfg(feature = "bc-profile")]
pub mod profile {
    //! Temporary opcode histogram (feature-gated, off by default).
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static COUNTS: RefCell<HashMap<&'static str, u64>> = RefCell::new(HashMap::new());
    }
    pub(crate) fn count(op: &super::BcOp) {
        let name: &'static str = match op {
            super::BcOp::ArithRR { .. } => "ArithRR",
            super::BcOp::ArithRI { .. } => "ArithRI",
            super::BcOp::ArithDyn { .. } => "ArithDyn",
            super::BcOp::MvInt { .. } => "MvInt",
            super::BcOp::MvUnit { .. } => "MvUnit",
            super::BcOp::MvReg { .. } => "MvReg",
            super::BcOp::MvLbl { .. } => "MvLbl",
            super::BcOp::MvWord { .. } => "MvWord",
            super::BcOp::MvDyn { .. } => "MvDyn",
            super::BcOp::Ld { .. } => "Ld",
            super::BcOp::St { .. } => "St",
            super::BcOp::Ralloc { .. } => "Ralloc",
            super::BcOp::Balloc { .. } => "Balloc",
            super::BcOp::Salloc(_) => "Salloc",
            super::BcOp::Sfree(_) => "Sfree",
            super::BcOp::Sld { .. } => "Sld",
            super::BcOp::Sst { .. } => "Sst",
            super::BcOp::Unpack { .. } => "Unpack",
            super::BcOp::Unfold { .. } => "Unfold",
            super::BcOp::Protect => "Protect",
            super::BcOp::Import { .. } => "Import",
            super::BcOp::Bnz { .. } => "Bnz",
            super::BcOp::Jmp(_) => "Jmp",
            super::BcOp::Call { .. } => "Call",
            super::BcOp::Ret { .. } => "Ret",
            super::BcOp::Halt { .. } => "Halt",
            super::BcOp::Push { .. } => "Push",
            super::BcOp::PushJmp { .. } => "PushJmp",
            super::BcOp::SldPush { .. } => "SldPush",
            super::BcOp::PopArith { .. } => "PopArith",
            super::BcOp::PopArithPush { .. } => "PopArithPush",
            super::BcOp::SldSfree { .. } => "SldSfree",
            super::BcOp::PopRet { .. } => "PopRet",
        };
        COUNTS.with(|c| *c.borrow_mut().entry(name).or_insert(0) += 1);
    }
    /// Prints every lowered module of a program (dev profiling).
    pub fn dump_modules(lp: &super::LoweredProgram) {
        for (i, (_, m)) in lp.modules.iter().enumerate() {
            eprintln!("module {i}: blocks {:?}", m.blocks);
            for (off, op) in m.ops.iter().enumerate() {
                eprintln!("  {off:4}: {op:?}");
            }
        }
    }

    /// Dumps and clears the histogram.
    pub fn dump() {
        COUNTS.with(|c| {
            let mut v: Vec<_> = c.borrow().iter().map(|(k, n)| (*n, *k)).collect();
            v.sort_unstable_by(|a, b| b.cmp(a));
            let total: u64 = v.iter().map(|(n, _)| n).sum();
            eprintln!("total ops: {total}");
            for (n, k) in v {
                eprintln!("{k:>10} {n:>10} ({:.1}%)", 100.0 * n as f64 / total as f64);
            }
            c.borrow_mut().clear();
        });
    }
}
