//! The FT multi-language type system (Fig 7 of the paper):
//! `Ψ; ∆; Γ; χ; σ; q ⊢ e : τ; σ'`.
//!
//! F expressions are typed at the `out` marker with the stack typing
//! threaded through in evaluation order; T components are typed by the
//! `funtal-tal` rules extended (via the hook mechanism) with the
//! multi-language instructions `protect` and `import` and the boundary
//! rule.

use std::collections::BTreeMap;

use funtal_fun::check::subst_fty_var;
use funtal_syntax::alpha::{alpha_eq_fty, alpha_eq_stack, alpha_eq_tty};
use funtal_syntax::{
    Component, FExpr, FTy, HeapTyping, Instr, Kind, RegFileTy, RetMarker, StackTail, StackTy,
    TComp, TTy, TyVarDecl, VarName,
};
use funtal_tal::check::{check_component_with, TCtx};
use funtal_tal::error::{TResult, TypeError};
use funtal_tal::wf::{wf_fty, wf_stack, Delta};

use crate::translate::fty_to_tty;

/// The F typing environment `Γ`.
pub type Gamma = BTreeMap<VarName, FTy>;

/// The FT static context for F expressions (the marker is implicitly
/// `out`).
#[derive(Clone, Debug)]
pub struct FtCtx {
    /// Heap typing `Ψ`.
    pub psi: HeapTyping,
    /// Type environment `∆`.
    pub delta: Delta,
    /// Term environment `Γ`.
    pub gamma: Gamma,
    /// Register-file typing `χ` (threaded unchanged through F rules, as
    /// in Fig 7; boundaries reset it).
    pub chi: RegFileTy,
    /// Stack typing `σ`.
    pub sigma: StackTy,
}

impl FtCtx {
    /// A context for a closed, whole program: empty everything, empty
    /// concrete stack.
    pub fn top() -> Self {
        FtCtx {
            psi: HeapTyping::new(),
            delta: Delta::new(),
            gamma: Gamma::new(),
            chi: RegFileTy::new(),
            sigma: StackTy::nil(),
        }
    }

    fn with_sigma(&self, sigma: StackTy) -> Self {
        FtCtx {
            sigma,
            ..self.clone()
        }
    }
}

fn expect_fty(want: &FTy, got: &FTy, what: &'static str) -> TResult<()> {
    if alpha_eq_fty(want, got) {
        Ok(())
    } else {
        Err(TypeError::mismatch(what, want, got))
    }
}

/// Splits `sigma` as `exposed ++ suffix`, returning the exposed prefix.
///
/// The tails must be literally equal (both `•` or the same variable) and
/// the suffix's visible prefix must be a suffix of `sigma`'s.
fn split_suffix(sigma: &StackTy, suffix: &StackTy) -> TResult<Vec<TTy>> {
    if sigma.tail != suffix.tail {
        return Err(TypeError::StackShape {
            need: format!("a stack ending in {suffix}"),
            found: sigma.clone(),
        });
    }
    let n = sigma.prefix.len();
    let k = suffix.prefix.len();
    if k > n {
        return Err(TypeError::StackShape {
            need: format!("a stack ending in {suffix}"),
            found: sigma.clone(),
        });
    }
    let (front, back) = sigma.prefix.split_at(n - k);
    for (a, b) in back.iter().zip(&suffix.prefix) {
        if !alpha_eq_tty(a, b) {
            return Err(TypeError::StackShape {
                need: format!("a stack ending in {suffix}"),
                found: sigma.clone(),
            });
        }
    }
    Ok(front.to_vec())
}

/// Infers the type and output stack of an F expression:
/// `Ψ; ∆; Γ; χ; σ; out ⊢ e : τ; σ'`.
pub fn type_of_fexpr(ctx: &FtCtx, e: &FExpr) -> TResult<(FTy, StackTy)> {
    match e {
        FExpr::Var(x) => {
            let t = ctx
                .gamma
                .get(x)
                .cloned()
                .ok_or_else(|| TypeError::UnboundVar(x.to_string()))?;
            Ok((t, ctx.sigma.clone()))
        }
        FExpr::Unit => Ok((FTy::Unit, ctx.sigma.clone())),
        FExpr::Int(_) => Ok((FTy::Int, ctx.sigma.clone())),
        FExpr::Binop { lhs, rhs, .. } => {
            let (tl, s1) = type_of_fexpr(ctx, lhs)?;
            expect_fty(&FTy::Int, &tl, "left operand")?;
            let (tr, s2) = type_of_fexpr(&ctx.with_sigma(s1), rhs)?;
            expect_fty(&FTy::Int, &tr, "right operand")?;
            Ok((FTy::Int, s2))
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            let (tc, s0) = type_of_fexpr(ctx, cond)?;
            expect_fty(&FTy::Int, &tc, "if0 condition")?;
            let branch_ctx = ctx.with_sigma(s0);
            let (t1, sa) = type_of_fexpr(&branch_ctx, then_branch)?;
            let (t2, sb) = type_of_fexpr(&branch_ctx, else_branch)?;
            expect_fty(&t1, &t2, "if0 branches")?;
            if !alpha_eq_stack(&sa, &sb) {
                return Err(TypeError::mismatch("if0 branch stacks", &sa, &sb));
            }
            Ok((t1, sa))
        }
        FExpr::Lam(lam) => {
            if ctx.delta.lookup(&lam.zeta).is_some() {
                return Err(TypeError::DuplicateTyVar(lam.zeta.clone()));
            }
            let inner_delta = ctx.delta.extended(TyVarDecl::stack(lam.zeta.clone()));
            for (_, t) in &lam.params {
                wf_fty(&ctx.delta, t)?;
            }
            for t in lam.phi_in.iter().chain(&lam.phi_out) {
                funtal_tal::wf::wf_tty(&inner_delta, t)?;
            }
            let mut gamma = ctx.gamma.clone();
            for (x, t) in &lam.params {
                gamma.insert(x.clone(), t.clone());
            }
            let body_sigma = StackTy {
                prefix: lam.phi_in.clone(),
                tail: StackTail::Var(lam.zeta.clone()),
            };
            let body_ctx = FtCtx {
                psi: ctx.psi.clone(),
                delta: inner_delta,
                gamma,
                chi: ctx.chi.clone(),
                sigma: body_sigma,
            };
            let (ret, out_sigma) = type_of_fexpr(&body_ctx, &lam.body)?;
            let want_out = StackTy {
                prefix: lam.phi_out.clone(),
                tail: StackTail::Var(lam.zeta.clone()),
            };
            if !alpha_eq_stack(&out_sigma, &want_out) {
                return Err(TypeError::mismatch(
                    "lambda body output stack",
                    &want_out,
                    &out_sigma,
                ));
            }
            Ok((
                FTy::Arrow {
                    params: lam.params.iter().map(|(_, t)| t.clone()).collect(),
                    phi_in: lam.phi_in.clone(),
                    phi_out: lam.phi_out.clone(),
                    ret: Box::new(ret),
                },
                ctx.sigma.clone(),
            ))
        }
        FExpr::App { func, args } => {
            let (tf, mut s) = type_of_fexpr(ctx, func)?;
            let FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            } = &tf
            else {
                return Err(TypeError::wrong_form("a function", &tf));
            };
            if params.len() != args.len() {
                return Err(TypeError::Other(format!(
                    "application expects {} arguments, got {}",
                    params.len(),
                    args.len()
                )));
            }
            for (p, a) in params.iter().zip(args) {
                let (ta, s2) = type_of_fexpr(&ctx.with_sigma(s), a)?;
                expect_fty(p, &ta, "argument")?;
                s = s2;
            }
            // The stack must expose φi on top at application time.
            let (front, rest) = s.split(phi_in.len()).ok_or_else(|| TypeError::StackShape {
                need: format!("prefix {}", funtal_syntax::display::PrefixDisplay(phi_in)),
                found: s.clone(),
            })?;
            for (have, want) in front.iter().zip(phi_in) {
                if !alpha_eq_tty(have, want) {
                    return Err(TypeError::mismatch("application stack prefix", want, have));
                }
            }
            Ok(((**ret).clone(), rest.cons_prefix(phi_out)))
        }
        FExpr::Fold { ann, body } => {
            wf_fty(&ctx.delta, ann)?;
            let FTy::Rec(a, inner) = ann else {
                return Err(TypeError::wrong_form("a recursive-type annotation", ann));
            };
            let unrolled = subst_fty_var(inner, a, ann);
            let (tb, s) = type_of_fexpr(ctx, body)?;
            expect_fty(&unrolled, &tb, "fold body")?;
            Ok((ann.clone(), s))
        }
        FExpr::Unfold(body) => {
            let (t, s) = type_of_fexpr(ctx, body)?;
            let FTy::Rec(a, inner) = &t else {
                return Err(TypeError::wrong_form("a value of recursive type", &t));
            };
            Ok((subst_fty_var(inner, a, &t), s))
        }
        FExpr::Tuple(es) => {
            let mut tys = Vec::with_capacity(es.len());
            let mut s = ctx.sigma.clone();
            for e in es {
                let (t, s2) = type_of_fexpr(&ctx.with_sigma(s), e)?;
                tys.push(t);
                s = s2;
            }
            Ok((FTy::Tuple(tys), s))
        }
        FExpr::Proj { idx, tuple } => {
            let (t, s) = type_of_fexpr(ctx, tuple)?;
            let FTy::Tuple(ts) = &t else {
                return Err(TypeError::wrong_form("a tuple", &t));
            };
            if *idx == 0 || *idx > ts.len() {
                return Err(TypeError::BadFieldIndex {
                    idx: *idx,
                    width: ts.len(),
                });
            }
            Ok((ts[*idx - 1].clone(), s))
        }
        FExpr::Boundary {
            ty,
            sigma_out,
            comp,
        } => {
            wf_fty(&ctx.delta, ty)?;
            let sigma_prime = sigma_out.clone().unwrap_or_else(|| ctx.sigma.clone());
            wf_stack(&ctx.delta, &sigma_prime)?;
            let t_ty = fty_to_tty(ty);
            // Fig 7: the component is checked under an *empty* register
            // file (embedded assembly may assume nothing about
            // registers) at marker end{τ𝒯; σ'}.
            let tctx = TCtx::new(
                ctx.psi.clone(),
                ctx.delta.clone(),
                RegFileTy::new(),
                ctx.sigma.clone(),
                RetMarker::end(t_ty, sigma_prime.clone()),
            );
            check_tcomp(&tctx, &ctx.gamma, comp)?;
            Ok((ty.clone(), sigma_prime))
        }
    }
}

/// Checks the `protect φ, ζ` instruction (Fig 7).
fn check_protect(tctx: &TCtx, phi: &[TTy], zeta: &funtal_syntax::TyVar) -> TResult<TCtx> {
    if tctx.delta.lookup(zeta).is_some() {
        return Err(TypeError::DuplicateTyVar(zeta.clone()));
    }
    let (front, rest) = tctx
        .sigma
        .split(phi.len())
        .ok_or_else(|| TypeError::StackShape {
            need: format!(
                "visible prefix {}",
                funtal_syntax::display::PrefixDisplay(phi)
            ),
            found: tctx.sigma.clone(),
        })?;
    for (have, want) in front.iter().zip(phi) {
        if !alpha_eq_tty(have, want) {
            return Err(TypeError::mismatch("protect prefix", want, have));
        }
    }
    // Transform the marker: a stack marker may not be hidden; an end
    // marker whose stack ends in the protected tail is re-expressed in
    // terms of ζ.
    let q = match &tctx.q {
        RetMarker::Stack(i) => {
            if *i >= phi.len() {
                return Err(TypeError::ClobbersMarker(
                    "protect would hide the marker slot",
                ));
            }
            RetMarker::Stack(*i)
        }
        RetMarker::End { ty, sigma } => {
            let exposed = split_suffix(sigma, &rest).map_err(|_| TypeError::StackShape {
                need: format!("an end-marker stack ending in the protected tail {rest}"),
                found: sigma.clone(),
            })?;
            RetMarker::End {
                ty: ty.clone(),
                sigma: StackTy {
                    prefix: exposed,
                    tail: StackTail::Var(zeta.clone()),
                },
            }
        }
        other => other.clone(),
    };
    Ok(TCtx {
        psi: tctx.psi.clone(),
        delta: tctx.delta.extended(TyVarDecl::stack(zeta.clone())),
        chi: tctx.chi.clone(),
        sigma: StackTy {
            prefix: front,
            tail: StackTail::Var(zeta.clone()),
        },
        q,
    })
}

/// Checks the `import rd, ζ = σ0, TF[τ](e)` instruction (Fig 7).
fn check_import(
    tctx: &TCtx,
    gamma: &Gamma,
    rd: funtal_syntax::Reg,
    zeta: &funtal_syntax::TyVar,
    protected: &StackTy,
    ty: &FTy,
    body: &FExpr,
) -> TResult<TCtx> {
    if tctx.delta.lookup(zeta).is_some() {
        return Err(TypeError::DuplicateTyVar(zeta.clone()));
    }
    wf_fty(&tctx.delta, ty)?;
    wf_stack(&tctx.delta, protected)?;
    let exposed = split_suffix(&tctx.sigma, protected)?;
    // The marker must live inside the protected tail (or be end{..}):
    // "we must be sure that q cannot be clobbered by T code embedded in
    // e" (§4.2).
    match &tctx.q {
        RetMarker::Stack(i) => {
            if *i < exposed.len() {
                return Err(TypeError::BadMarker {
                    found: tctx.q.clone(),
                    need: "import requires the marker inside the protected tail",
                });
            }
        }
        RetMarker::End { .. } => {}
        other => {
            return Err(TypeError::BadMarker {
                found: other.clone(),
                need: "import requires a stack or end{τ;σ} marker",
            })
        }
    }
    let inner_delta = tctx.delta.extended(TyVarDecl::stack(zeta.clone()));
    let body_ctx = FtCtx {
        psi: tctx.psi.clone(),
        delta: inner_delta,
        gamma: gamma.clone(),
        chi: tctx.chi.clone(),
        sigma: StackTy {
            prefix: exposed.clone(),
            tail: StackTail::Var(zeta.clone()),
        },
    };
    let (tb, out_sigma) = type_of_fexpr(&body_ctx, body)?;
    if !alpha_eq_fty(&tb, ty) {
        return Err(TypeError::mismatch("import body type", ty, &tb));
    }
    if out_sigma.tail != StackTail::Var(zeta.clone()) {
        return Err(TypeError::StackShape {
            need: format!("an import body preserving the abstract tail {zeta}"),
            found: out_sigma,
        });
    }
    let out_prefix = out_sigma.prefix;
    let delta_len = out_prefix.len() as isize - exposed.len() as isize;
    // Fig 7: the result register file is exactly {rd : τ𝒯} — embedded F
    // evaluation may clobber every register.
    let chi = RegFileTy::from_pairs([(rd, fty_to_tty(ty))]);
    // Splice the protected tail back under the body's output prefix:
    // σ' = φ' :: σ0.
    let mut prefix = out_prefix;
    prefix.extend(protected.prefix.iter().cloned());
    let sigma = StackTy {
        prefix,
        tail: protected.tail.clone(),
    };
    Ok(TCtx {
        psi: tctx.psi.clone(),
        delta: tctx.delta.clone(),
        chi,
        sigma,
        q: tctx.q.shifted_by(delta_len),
    })
}

/// Checks a T component under the FT rules (Fig 2's component rule with
/// Fig 7's `import`/`protect` extensions), returning `τ; σ'` from
/// `ret-type`.
pub fn check_tcomp(tctx: &TCtx, gamma: &Gamma, comp: &TComp) -> TResult<(TTy, StackTy)> {
    let gamma = gamma.clone();
    let mut hook = |c: &TCtx, instr: &Instr| match instr {
        Instr::Protect { phi, zeta } => Some(check_protect(c, phi, zeta)),
        Instr::Import {
            rd,
            zeta,
            protected,
            ty,
            body,
        } => Some(check_import(c, &gamma, *rd, zeta, protected, ty, body)),
        _ => None,
    };
    check_component_with(tctx, comp, &mut hook)
}

/// Type-checks a closed FT component as a whole program.
///
/// - `Component::F(e)`: returns the F type of `e`, checked on the empty
///   concrete stack.
/// - `Component::T(c)`: checks the component at marker
///   `end{τ𝒯; •}` for the provided expected type.
pub fn typecheck_component(comp: &Component, expected: Option<&FTy>) -> TResult<FTy> {
    match comp {
        Component::F(e) => {
            let (t, s) = type_of_fexpr(&FtCtx::top(), e)?;
            if !alpha_eq_stack(&s, &StackTy::nil()) {
                return Err(TypeError::StackShape {
                    need: "a whole program leaving the stack empty".to_string(),
                    found: s,
                });
            }
            if let Some(want) = expected {
                expect_fty(want, &t, "program type")?;
            }
            Ok(t)
        }
        Component::T(c) => {
            let want = expected.ok_or_else(|| {
                TypeError::Other(
                    "checking a top-level T component requires an expected type".to_string(),
                )
            })?;
            let t_ty = fty_to_tty(want);
            let tctx = TCtx::new(
                HeapTyping::new(),
                Delta::new(),
                RegFileTy::new(),
                StackTy::nil(),
                RetMarker::end(t_ty, StackTy::nil()),
            );
            check_tcomp(&tctx, &Gamma::new(), c)?;
            Ok(want.clone())
        }
    }
}

/// Convenience: type-check a closed F expression as a whole program.
pub fn typecheck(e: &FExpr) -> TResult<FTy> {
    typecheck_component(&Component::F(e.clone()), None)
}

/// Re-exported kind marker to keep the public surface tidy.
#[allow(dead_code)]
type _Kind = Kind;
