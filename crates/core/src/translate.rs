//! The boundary translations of the FT multi-language:
//!
//! - the **type translation** `τ𝒯` (Fig 9), mapping F types to T value
//!   types — functions become code pointers following the stack calling
//!   convention with an `ra` continuation and an abstract return marker;
//! - the **value translations** (Fig 10): `ᵗℱ𝒯(v, M)` turning F values
//!   into T word values (allocating glue code for lambdas) and
//!   `τℱ𝒯(w, M)` turning T word values into F values (wrapping code
//!   pointers in lambdas that push arguments and `call`).
//!
//! ## Deviations D3/D4 (see DESIGN.md)
//!
//! As printed, Fig 10's λ→code glue stores the return continuation at
//! stack slot 0 and `import`s with the continuation *outside* the
//! protected tail, which violates Fig 7's side condition that the marker
//! live inside the protected tail. Following the paper's own remark for
//! the stack-modifying case ("re-arrange the stack to put the protected
//! value past the exposed stack prefix"), our glue rotates the
//! continuation *below* the exposed cells. One uniform scheme covers
//! ordinary and stack-modifying lambdas:
//!
//! ```text
//! h = code[z: stk, e: ret]{ra: box ∀[].{r1: τ'𝒯; φo :: z} e; τ̄𝒯 :: φi :: z} ra.
//!     salloc 1;                       // junk cell on top
//!     sld r2, k+1; sst k, r2  (k = 0 .. m-1, m = n + |φi|)
//!                                     // shift args and φi up one slot
//!     sst m, ra;                      // continuation below them; q := m
//!     import r1, zi = (cont :: z), TF[τ'](e_body);
//!     sld ra, |φo|;                   // q := ra
//!     sld r2, k; sst k+1, r2  (k = |φo|-1 .. 0)
//!                                     // slide φo down over the cont cell
//!     sfree 1;
//!     ret ra {r1}
//! ```
//!
//! where `e_body` binds the translated arguments with a stack-modifying
//! administrative lambda, pops the argument cells with an embedded
//! `sfree n` boundary so the callee sees exactly `φi`, and applies the
//! original lambda:
//!
//! ```text
//! e_body = (λ[zo; τ̄𝒯::φi; φo](x̄: τ̄).
//!             (λ[zp; φi; φo](d: unit). v x̄) popper) fetch₁ … fetchₙ
//! popper  = FT[unit; φi::zo](mv r3, (); sfree n; halt unit, φi::zo {r3})
//! fetchᵢ  = FT[τᵢ](sld r1, n−i; halt τᵢ𝒯, τ̄𝒯::φi::zi {r1})
//! ```

use funtal_syntax::build as b;
use funtal_syntax::free::{ftv_fty, ftv_tty};
use funtal_syntax::{
    CodeBlock, FExpr, FTy, HeapVal, InstrSeq, Lam, Mutability, RegFileTy, RetMarker, StackTail,
    StackTy, TComp, TTy, Terminator, TyVar, VarName, WordVal,
};
use funtal_tal::error::{RResult, RuntimeError};
use funtal_tal::machine::Memory;

/// The type translation `τ𝒯` of Fig 9.
///
/// - `α𝒯 = α`, `unit𝒯 = unit`, `int𝒯 = int`, `µα.τ𝒯 = µα.(τ𝒯)`,
///   `⟨τ̄⟩𝒯 = box ⟨τ̄𝒯⟩`;
/// - `(τ̄) → τ'` and `(τ̄) φi;φo → τ'` become
///   `box ∀[ζ, ε].{ra: box ∀[].{r1: τ'𝒯; φo :: ζ} ε; τn𝒯 :: … :: τ1𝒯 :: φi :: ζ} ra`.
pub fn fty_to_tty(t: &FTy) -> TTy {
    match t {
        FTy::Var(v) => TTy::Var(v.clone()),
        FTy::Unit => TTy::Unit,
        FTy::Int => TTy::Int,
        FTy::Rec(a, body) => TTy::Rec(a.clone(), Box::new(fty_to_tty(body))),
        FTy::Tuple(ts) => TTy::boxed_tuple(ts.iter().map(fty_to_tty).collect()),
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            // Prefer parseable names for the generated binders (`z`,
            // `e`, then `z1`, `e1`, …), so translated types appearing in
            // static annotations survive a print/parse round trip.
            let avoid = ftv_fty(t);
            let z = pick_name("z", |v| avoid.contains(v));
            let e = pick_name("e", |v| avoid.contains(v) || *v == z);
            arrow_code_ty(params, phi_in, phi_out, ret, &z, &e)
        }
    }
}

/// Picks the first name among `base`, `base1`, `base2`, … not rejected
/// by `avoid`.
fn pick_name(base: &str, avoid: impl Fn(&TyVar) -> bool) -> TyVar {
    let bare = TyVar::new(base);
    if !avoid(&bare) {
        return bare;
    }
    let mut i = 1u32;
    loop {
        let cand = TyVar::new(format!("{base}{i}"));
        if !avoid(&cand) {
            return cand;
        }
        i += 1;
    }
}

/// The code type of a translated arrow with explicit `ζ`/`ε` names.
pub fn arrow_code_ty(
    params: &[FTy],
    phi_in: &[TTy],
    phi_out: &[TTy],
    ret: &FTy,
    z: &TyVar,
    e: &TyVar,
) -> TTy {
    let cont = arrow_cont_ty(phi_out, ret, z, e);
    // Stack: τn𝒯 :: … :: τ1𝒯 :: φi :: ζ (slot 0 = last argument).
    let mut prefix: Vec<TTy> = params.iter().rev().map(fty_to_tty).collect();
    prefix.extend(phi_in.iter().cloned());
    TTy::code(
        vec![
            funtal_syntax::TyVarDecl::stack(z.clone()),
            funtal_syntax::TyVarDecl::ret(e.clone()),
        ],
        RegFileTy::from_pairs([(b::ra(), cont)]),
        StackTy {
            prefix,
            tail: StackTail::Var(z.clone()),
        },
        RetMarker::Reg(b::ra()),
    )
}

/// The continuation type `box ∀[].{r1: τ'𝒯; φo :: ζ} ε` of a translated
/// arrow.
pub fn arrow_cont_ty(phi_out: &[TTy], ret: &FTy, z: &TyVar, e: &TyVar) -> TTy {
    TTy::code(
        vec![],
        RegFileTy::from_pairs([(b::r1(), fty_to_tty(ret))]),
        StackTy {
            prefix: phi_out.to_vec(),
            tail: StackTail::Var(z.clone()),
        },
        RetMarker::Var(e.clone()),
    )
}

/// Unrolls an F recursive type by one step: `τ[µα.τ/α]`.
fn unroll_fty(rec: &FTy) -> Option<FTy> {
    let FTy::Rec(a, body) = rec else { return None };
    Some(funtal_fun::check::subst_fty_var(body, a, rec))
}

/// `ᵗℱ𝒯(v, M)`: translates an F value to a T word value at type `ty`,
/// possibly allocating heap cells (tuples, lambda glue code) in `mem`.
///
/// # Errors
///
/// Fails when `v` is not a value of shape `ty` (well-typed boundaries
/// never hit this).
pub fn f_to_t(mem: &mut Memory, v: &FExpr, ty: &FTy) -> RResult<WordVal> {
    match (v, ty) {
        (FExpr::Int(n), FTy::Int) => Ok(WordVal::Int(*n)),
        (FExpr::Unit, FTy::Unit) => Ok(WordVal::Unit),
        (FExpr::Fold { body, .. }, FTy::Rec(..)) => {
            let inner_ty = unroll_fty(ty).expect("checked Rec");
            let w = f_to_t(mem, body, &inner_ty)?;
            Ok(WordVal::Fold {
                ann: fty_to_tty(ty),
                body: Box::new(w),
            })
        }
        (FExpr::Tuple(vs), FTy::Tuple(ts)) => {
            if vs.len() != ts.len() {
                return Err(RuntimeError::Stuck(format!(
                    "tuple/type width mismatch at boundary: {v} vs {ty}"
                )));
            }
            let mut fields = Vec::with_capacity(vs.len());
            for (v, t) in vs.iter().zip(ts) {
                fields.push(f_to_t(mem, v, t)?);
            }
            let l = mem.alloc(
                "tup",
                HeapVal::Tuple {
                    mutability: Mutability::Boxed,
                    fields,
                },
            );
            Ok(WordVal::Loc(l))
        }
        (
            FExpr::Lam(lam),
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            },
        ) => {
            if lam.params.len() != params.len() {
                return Err(RuntimeError::Stuck(format!(
                    "lambda arity does not match boundary type: {v} vs {ty}"
                )));
            }
            let block = lambda_glue_block(v.clone(), params, phi_in, phi_out, ret);
            let l = mem.alloc("clos", HeapVal::Code(block));
            Ok(WordVal::Loc(l))
        }
        _ => Err(RuntimeError::Stuck(format!(
            "cannot translate F value {v} at type {ty}"
        ))),
    }
}

/// Builds the λ→code glue block (deviations D3/D4; see the module docs
/// for the scheme).
pub fn lambda_glue_block(
    lam_value: FExpr,
    params: &[FTy],
    phi_in: &[TTy],
    phi_out: &[TTy],
    ret: &FTy,
) -> CodeBlock {
    let n = params.len();
    let m = n + phi_in.len();
    let z = TyVar::new("z");
    let e = TyVar::new("e");
    let zi = TyVar::new("zi");
    let cont = arrow_cont_ty(phi_out, ret, &z, &e);

    // Entry stack τ̄𝒯 :: φi :: z.
    let mut entry_prefix: Vec<TTy> = params.iter().rev().map(fty_to_tty).collect();
    entry_prefix.extend(phi_in.iter().cloned());
    let entry_sigma = StackTy {
        prefix: entry_prefix.clone(),
        tail: StackTail::Var(z.clone()),
    };

    // e_body = (λ[zo; τ̄𝒯::φi; φo](x̄). (λ[zp; φi; φo](d). v x̄) popper)
    //          fetch₁ … fetchₙ
    let xs: Vec<VarName> = (1..=n).map(|i| VarName::new(format!("x{i}"))).collect();
    let zo = TyVar::new("zo");
    let zp = TyVar::new("zp");

    let popper = FExpr::Boundary {
        ty: FTy::Unit,
        sigma_out: Some(StackTy {
            prefix: phi_in.to_vec(),
            tail: StackTail::Var(zo.clone()),
        }),
        comp: Box::new(TComp::bare(InstrSeq::new(
            vec![b::mv(b::r3(), b::unit_v()), b::sfree(n)],
            Terminator::Halt {
                ty: TTy::Unit,
                sigma: StackTy {
                    prefix: phi_in.to_vec(),
                    tail: StackTail::Var(zo.clone()),
                },
                val: b::r3(),
            },
        ))),
    };

    let inner_app = FExpr::app(
        lam_value,
        xs.iter().map(|x| FExpr::Var(x.clone())).collect(),
    );
    let middle = FExpr::Lam(Box::new(Lam {
        params: vec![(VarName::new("d"), FTy::Unit)],
        zeta: zp,
        phi_in: phi_in.to_vec(),
        phi_out: phi_out.to_vec(),
        body: inner_app,
    }));
    let mut outer_phi_in: Vec<TTy> = params.iter().rev().map(fty_to_tty).collect();
    outer_phi_in.extend(phi_in.iter().cloned());
    let outer = FExpr::Lam(Box::new(Lam {
        params: xs
            .iter()
            .zip(params)
            .map(|(x, t)| (x.clone(), t.clone()))
            .collect(),
        zeta: zo,
        phi_in: outer_phi_in,
        phi_out: phi_out.to_vec(),
        body: FExpr::app(middle, vec![popper]),
    }));

    // fetchᵢ reads argument i from slot n−i of the exposed prefix.
    let fetch_sigma = StackTy {
        prefix: entry_prefix.clone(),
        tail: StackTail::Var(zi.clone()),
    };
    let fetchers: Vec<FExpr> = (1..=n)
        .map(|i| FExpr::Boundary {
            ty: params[i - 1].clone(),
            sigma_out: None,
            comp: Box::new(TComp::bare(InstrSeq::new(
                vec![b::sld(b::r1(), n - i)],
                Terminator::Halt {
                    ty: fty_to_tty(&params[i - 1]),
                    sigma: fetch_sigma.clone(),
                    val: b::r1(),
                },
            ))),
        })
        .collect();
    let e_body = FExpr::app(outer, fetchers);

    // The glue instruction sequence.
    let mut instrs = vec![b::salloc(1)];
    for k in 0..m {
        instrs.push(b::sld(b::r2(), k + 1));
        instrs.push(b::sst(k, b::r2()));
    }
    instrs.push(b::sst(m, b::ra()));
    instrs.push(funtal_syntax::Instr::Import {
        rd: b::r1(),
        zeta: zi,
        protected: StackTy {
            prefix: vec![cont.clone()],
            tail: StackTail::Var(z.clone()),
        },
        ty: ret.clone(),
        body: Box::new(e_body),
    });
    instrs.push(b::sld(b::ra(), phi_out.len()));
    for k in (0..phi_out.len()).rev() {
        instrs.push(b::sld(b::r2(), k));
        instrs.push(b::sst(k + 1, b::r2()));
    }
    instrs.push(b::sfree(1));

    CodeBlock {
        delta: vec![
            funtal_syntax::TyVarDecl::stack(z.clone()),
            funtal_syntax::TyVarDecl::ret(e),
        ],
        chi: RegFileTy::from_pairs([(b::ra(), cont)]),
        sigma: entry_sigma,
        q: RetMarker::Reg(b::ra()),
        body: InstrSeq::new(
            instrs,
            Terminator::Ret {
                target: b::ra(),
                val: b::r1(),
            },
        ),
    }
}

/// `τℱ𝒯(w, M)`: translates a T word value to an F value at type `ty`.
///
/// For arrows this builds the Fig 10 wrapper: a lambda that imports each
/// argument, pushes it, installs a fresh halting continuation block
/// `ℓend` in `ra`, and `call`s the code pointer.
pub fn t_to_f(mem: &mut Memory, w: &WordVal, ty: &FTy) -> RResult<FExpr> {
    match (w, ty) {
        (WordVal::Int(n), FTy::Int) => Ok(FExpr::Int(*n)),
        (WordVal::Unit, FTy::Unit) => Ok(FExpr::Unit),
        (WordVal::Fold { body, .. }, FTy::Rec(..)) => {
            let inner_ty = unroll_fty(ty).expect("checked Rec");
            let v = t_to_f(mem, body, &inner_ty)?;
            Ok(FExpr::Fold {
                ann: ty.clone(),
                body: Box::new(v),
            })
        }
        (WordVal::Loc(l), FTy::Tuple(ts)) => {
            let HeapVal::Tuple { fields, .. } = mem.heap_get(l)?.clone() else {
                return Err(RuntimeError::NotTuple(format!("{l} is code")));
            };
            if fields.len() != ts.len() {
                return Err(RuntimeError::Stuck(format!(
                    "tuple width mismatch translating {l} at {ty}"
                )));
            }
            let mut out = Vec::with_capacity(ts.len());
            for (f, t) in fields.iter().zip(ts) {
                out.push(t_to_f(mem, f, t)?);
            }
            Ok(FExpr::Tuple(out))
        }
        (
            _,
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            },
        ) => {
            // Any code-pointer-shaped word (a location, possibly under
            // pending instantiations) can be wrapped.
            wrap_code_as_lambda(mem, w.clone(), params, phi_in, phi_out, ret)
        }
        _ => Err(RuntimeError::Stuck(format!(
            "cannot translate T value {w} at type {ty}"
        ))),
    }
}

/// Checks that an arrow's stack prefixes are closed, a precondition of
/// the code→λ wrapper (shared by both evaluation strategies).
pub(crate) fn check_wrappable(phi_in: &[TTy], phi_out: &[TTy]) -> RResult<()> {
    let free_prefix: bool = phi_out.iter().any(|t| !ftv_tty(t).is_empty())
        || phi_in.iter().any(|t| !ftv_tty(t).is_empty());
    if free_prefix {
        return Err(RuntimeError::Stuck(
            "cannot wrap a code pointer whose arrow prefixes have free type variables".to_string(),
        ));
    }
    Ok(())
}

/// Builds the `ℓend` halting block of the Fig 10 code→λ wrapper:
/// `code[z2: stk]{r1: τ'𝒯; φo :: z2} end{…}. halt τ'𝒯, φo :: z2 {r1}`.
pub(crate) fn end_block(ret_tty: &TTy, phi_out: &[TTy]) -> CodeBlock {
    let z2 = TyVar::new("z2");
    let end_sigma = StackTy {
        prefix: phi_out.to_vec(),
        tail: StackTail::Var(z2.clone()),
    };
    CodeBlock {
        delta: vec![funtal_syntax::TyVarDecl::stack(z2)],
        chi: RegFileTy::from_pairs([(b::r1(), ret_tty.clone())]),
        sigma: end_sigma.clone(),
        q: RetMarker::end(ret_tty.clone(), end_sigma.clone()),
        body: InstrSeq::just(Terminator::Halt {
            ty: ret_tty.clone(),
            sigma: end_sigma,
            val: b::r1(),
        }),
    }
}

/// Builds the wrapper lambda of Fig 10 around a code-pointer word,
/// given the already-allocated `ℓend` label (shared by both evaluation
/// strategies).
pub(crate) fn wrapper_lambda(
    w: WordVal,
    lend: &funtal_syntax::Label,
    params: &[FTy],
    phi_in: &[TTy],
    phi_out: &[TTy],
    ret: &FTy,
) -> FExpr {
    let ret_tty = fty_to_tty(ret);
    let z = TyVar::new("z");

    // Body component: import and push each argument, set ra, call w.
    let mut instrs = Vec::new();
    let mut cur_stack = StackTy {
        prefix: phi_in.to_vec(),
        tail: StackTail::Var(z.clone()),
    };
    for (i, t) in params.iter().enumerate() {
        let x = VarName::new(format!("x{}", i + 1));
        instrs.push(funtal_syntax::Instr::Import {
            rd: b::r1(),
            zeta: TyVar::new(format!("zi{}", i + 1)),
            protected: cur_stack.clone(),
            ty: t.clone(),
            body: Box::new(FExpr::Var(x)),
        });
        instrs.push(b::salloc(1));
        instrs.push(b::sst(0, b::r1()));
        cur_stack = cur_stack.cons(fty_to_tty(t));
    }
    instrs.push(b::mv(
        b::ra(),
        funtal_syntax::SmallVal::loc(lend.as_str())
            .instantiate(vec![funtal_syntax::Inst::Stack(StackTy::var(z.clone()))]),
    ));
    let out_sigma = StackTy {
        prefix: phi_out.to_vec(),
        tail: StackTail::Var(z.clone()),
    };
    let comp = TComp::bare(InstrSeq::new(
        instrs,
        Terminator::Call {
            target: funtal_syntax::SmallVal::Word(w),
            sigma: StackTy::var(z.clone()),
            q: RetMarker::end(ret_tty, out_sigma.clone()),
        },
    ));

    let body = FExpr::Boundary {
        ty: ret.clone(),
        sigma_out: if phi_out == phi_in && phi_out.is_empty() {
            None
        } else {
            Some(out_sigma)
        },
        comp: Box::new(comp),
    };
    FExpr::Lam(Box::new(Lam {
        params: (1..=params.len())
            .map(|i| (VarName::new(format!("x{i}")), params[i - 1].clone()))
            .collect(),
        zeta: z,
        phi_in: phi_in.to_vec(),
        phi_out: phi_out.to_vec(),
        body,
    }))
}

/// Builds the code→λ wrapper of Fig 10 (uniformly covering
/// stack-modifying arrows) and allocates its `ℓend` halting block.
fn wrap_code_as_lambda(
    mem: &mut Memory,
    w: WordVal,
    params: &[FTy],
    phi_in: &[TTy],
    phi_out: &[TTy],
    ret: &FTy,
) -> RResult<FExpr> {
    check_wrappable(phi_in, phi_out)?;
    let ret_tty = fty_to_tty(ret);
    let lend = mem.alloc("lend", HeapVal::Code(end_block(&ret_tty, phi_out)));
    Ok(wrapper_lambda(w, &lend, params, phi_in, phi_out, ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use funtal_syntax::alpha::alpha_eq_tty;
    use funtal_syntax::build::*;

    #[test]
    fn fig9_base_types() {
        assert_eq!(fty_to_tty(&fint()), int());
        assert_eq!(fty_to_tty(&funit()), unit());
        assert_eq!(fty_to_tty(&fvar_ty("a")), tvar("a"));
    }

    #[test]
    fn fig9_mu_and_tuples() {
        assert_eq!(
            fty_to_tty(&fmu("a", ftuple_ty(vec![fint(), fvar_ty("a")]))),
            mu("a", box_tuple(vec![int(), tvar("a")]))
        );
    }

    #[test]
    fn fig9_plain_arrow() {
        // (int, unit) → int becomes
        // box ∀[z,e].{ra: box∀[].{r1:int; z}e; unit :: int :: z} ra
        let got = fty_to_tty(&arrow(vec![fint(), funit()], fint()));
        let want = code_ty(
            vec![d_stk("z"), d_ret("e")],
            chi([(
                ra(),
                code_ty(vec![], chi([(r1(), int())]), zvar("z"), q_var("e")),
            )]),
            stack(vec![unit(), int()], zvar("z")),
            q_reg(ra()),
        );
        assert!(alpha_eq_tty(&got, &want), "got {got}");
    }

    #[test]
    fn fig9_stack_modifying_arrow() {
        // (int)[.; int :: .] → unit: the push-7 type.
        let got = fty_to_tty(&arrow_sm(vec![fint()], vec![], vec![int()], funit()));
        let want = code_ty(
            vec![d_stk("z"), d_ret("e")],
            chi([(
                ra(),
                code_ty(
                    vec![],
                    chi([(r1(), unit())]),
                    stack(vec![int()], zvar("z")),
                    q_var("e"),
                ),
            )]),
            stack(vec![int()], zvar("z")),
            q_reg(ra()),
        );
        assert!(alpha_eq_tty(&got, &want), "got {got}");
    }

    #[test]
    fn fig9_avoids_capture() {
        // An arrow mentioning a free variable named z must not capture it
        // in the generated ∀[z, e].
        let t = arrow(vec![fvar_ty("z")], fint());
        let got = fty_to_tty(&t);
        let c = got.as_code().unwrap();
        assert_eq!(c.delta[0].var.as_str(), "z1");
        // The argument slot still refers to the free z.
        assert_eq!(c.sigma.prefix[0], tvar("z"));
    }

    #[test]
    fn fig10_base_round_trip() {
        let mut mem = Memory::new();
        let w = f_to_t(&mut mem, &fint_e(42), &fint()).unwrap();
        assert_eq!(w, WordVal::Int(42));
        let v = t_to_f(&mut mem, &w, &fint()).unwrap();
        assert_eq!(v, fint_e(42));
    }

    #[test]
    fn fig10_tuple_round_trip() {
        let mut mem = Memory::new();
        let ty = ftuple_ty(vec![fint(), ftuple_ty(vec![funit()])]);
        let v = ftuple(vec![fint_e(1), ftuple(vec![funit_e()])]);
        let w = f_to_t(&mut mem, &v, &ty).unwrap();
        assert!(matches!(w, WordVal::Loc(_)));
        let back = t_to_f(&mut mem, &w, &ty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn fig10_fold_round_trip() {
        let mut mem = Memory::new();
        let ty = fmu("a", fint());
        let v = ffold(ty.clone(), fint_e(7));
        let w = f_to_t(&mut mem, &v, &ty).unwrap();
        match &w {
            WordVal::Fold { body, .. } => assert_eq!(**body, WordVal::Int(7)),
            _ => panic!("expected fold"),
        }
        let back = t_to_f(&mut mem, &w, &ty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn fig10_lambda_allocates_glue() {
        let mut mem = Memory::new();
        let v = lam(vec![("x", fint())], fadd(var("x"), fint_e(1)));
        let w = f_to_t(&mut mem, &v, &arrow(vec![fint()], fint())).unwrap();
        let WordVal::Loc(l) = &w else {
            panic!("expected a location")
        };
        assert!(matches!(mem.heap_get(l).unwrap(), HeapVal::Code(_)));
    }

    #[test]
    fn fig10_code_wraps_as_lambda() {
        let mut mem = Memory::new();
        let w = WordVal::Loc(funtal_syntax::Label::new("somecode"));
        let v = t_to_f(&mut mem, &w, &arrow(vec![fint()], fint())).unwrap();
        let FExpr::Lam(lam) = &v else {
            panic!("expected a lambda")
        };
        assert_eq!(lam.params.len(), 1);
        // ℓend was allocated.
        assert_eq!(mem.heap.len(), 1);
    }

    #[test]
    fn translation_mismatch_errors() {
        let mut mem = Memory::new();
        assert!(f_to_t(&mut mem, &fint_e(1), &funit()).is_err());
        assert!(t_to_f(&mut mem, &WordVal::Int(1), &funit()).is_err());
    }
}
