//! The paper's mixed-language example programs (Figures 11, 16, 17 and
//! the §4.2 push-7 example), reconstructed as syntax trees.
//!
//! Deviation (D11, see DESIGN.md): Figures 16 and 17 end blocks with
//! `ret ra {r7}`-style returns whose continuation type expects the
//! result in `r1` (the calling convention of Fig 9). The `ret` rule of
//! Fig 2 requires the instruction's register to be the continuation's
//! register, so we move results into `r1` before returning.

use funtal_syntax::build::*;
use funtal_syntax::{FExpr, FTy, HeapVal, TTy};

use crate::translate::fty_to_tty;

/// The continuation type `box ∀[].{r1: int; ζ} ε` shared by the figure
/// blocks.
pub fn int_cont_ty(z: &str, e: &str) -> TTy {
    code_ty(vec![], chi([(r1(), int())]), zvar(z), q_var(e))
}

/// A block signature `code[ζ: stk, ε: ret]{ra: box∀[].{r1:int;ζ}ε, …; int::ζ} ra`
/// — the translated type of `(int) → int` (Fig 9).
fn int_to_int_block(
    extra_chi: Vec<(funtal_syntax::Reg, TTy)>,
    body: funtal_syntax::InstrSeq,
) -> HeapVal {
    let mut pairs = vec![(ra(), int_cont_ty("z", "e"))];
    pairs.extend(extra_chi);
    code_block(
        vec![d_stk("z"), d_ret("e")],
        chi(pairs),
        stack(vec![int()], zvar("z")),
        q_reg(ra()),
        body,
    )
}

/// Figure 16, `f1`: one basic block that adds 1 twice.
pub fn fig16_f1() -> FExpr {
    let arrow_ty = arrow(vec![fint()], fint());
    let t_arrow = fty_to_tty(&arrow_ty);
    let block = int_to_int_block(
        vec![],
        seq(
            vec![
                sld(r1(), 0),
                add(r1(), r1(), int_v(1)),
                add(r1(), r1(), int_v(1)),
                sfree(1),
            ],
            ret(ra(), r1()),
        ),
    );
    lam_z(
        vec![("x", fint())],
        "zl",
        app(
            boundary(
                arrow_ty,
                tcomp(
                    seq(
                        vec![protect(vec![], "zp"), mv(r1(), loc("l"))],
                        halt(t_arrow, zvar("zp"), r1()),
                    ),
                    vec![("l", block)],
                ),
            ),
            vec![var("x")],
        ),
    )
}

/// Figure 16, `f2`: the same function split across two basic blocks,
/// with the intermediate value passed through the stack.
pub fn fig16_f2() -> FExpr {
    let arrow_ty = arrow(vec![fint()], fint());
    let t_arrow = fty_to_tty(&arrow_ty);
    let block1 = int_to_int_block(
        vec![],
        seq(
            vec![sld(r1(), 0), add(r1(), r1(), int_v(1)), sst(0, r1())],
            jmp(loc_i("l2", vec![i_stk(zvar("z")), i_ret(q_var("e"))])),
        ),
    );
    let block2 = int_to_int_block(
        vec![],
        seq(
            vec![sld(r1(), 0), add(r1(), r1(), int_v(1)), sfree(1)],
            ret(ra(), r1()),
        ),
    );
    lam_z(
        vec![("x", fint())],
        "zl",
        app(
            boundary(
                arrow_ty,
                tcomp(
                    seq(
                        vec![protect(vec![], "zp"), mv(r1(), loc("l"))],
                        halt(t_arrow, zvar("zp"), r1()),
                    ),
                    vec![("l", block1), ("l2", block2)],
                ),
            ),
            vec![var("x")],
        ),
    )
}

/// The recursive-type self-application type used by `factF`:
/// `µa.(a, int) → int`.
pub fn fact_mu_ty() -> FTy {
    fmu("a", arrow(vec![fvar_ty("a"), fint()], fint()))
}

/// Figure 17, `factF`: the standard recursive functional factorial via
/// iso-recursive self-application.
pub fn fig17_fact_f() -> FExpr {
    let mu_ty = fact_mu_ty();
    let big_f = lam_z(
        vec![("f", mu_ty.clone()), ("x", fint())],
        "zf",
        if0(
            var("x"),
            fint_e(1),
            fmul(
                app(funfold(var("f")), vec![var("f"), fsub(var("x"), fint_e(1))]),
                var("x"),
            ),
        ),
    );
    lam_z(
        vec![("x", fint())],
        "zx",
        app(big_f.clone(), vec![ffold(mu_ty, big_f), var("x")]),
    )
}

/// Figure 17, `factT`: the imperative factorial computed in registers
/// with a two-block loop.
pub fn fig17_fact_t() -> FExpr {
    let arrow_ty = arrow(vec![fint()], fint());
    let t_arrow = fty_to_tty(&arrow_ty);
    // H(ℓfact): load the argument, set the accumulator, branch to the
    // loop if non-zero.
    let lfact = int_to_int_block(
        vec![],
        seq(
            vec![
                sld(r3(), 0),
                mv(r7(), int_v(1)),
                bnz(
                    r3(),
                    loc_i("lloop", vec![i_stk(zvar("z")), i_ret(q_var("e"))]),
                ),
                sfree(1),
                mv(r1(), reg(r7())),
            ],
            ret(ra(), r1()),
        ),
    );
    // H(ℓloop): multiply, decrement, loop.
    let lloop = int_to_int_block(
        vec![(r3(), int()), (r7(), int())],
        seq(
            vec![
                mul(r7(), r7(), reg(r3())),
                sub(r3(), r3(), int_v(1)),
                bnz(
                    r3(),
                    loc_i("lloop", vec![i_stk(zvar("z")), i_ret(q_var("e"))]),
                ),
                sfree(1),
                mv(r1(), reg(r7())),
            ],
            ret(ra(), r1()),
        ),
    );
    lam_z(
        vec![("x", fint())],
        "zl",
        app(
            boundary(
                arrow_ty,
                tcomp(
                    seq(
                        vec![protect(vec![], "zp"), mv(r1(), loc("lfact"))],
                        halt(t_arrow, zvar("zp"), r1()),
                    ),
                    vec![("lfact", lfact), ("lloop", lloop)],
                ),
            ),
            vec![var("x")],
        ),
    )
}

/// Figure 11: the JIT example. `f` and `h` have been compiled to the
/// blocks `ℓ` and `ℓh`; `g` remains an F function; the program is
/// `e = f g` and evaluates to 2.
pub fn fig11_jit() -> FExpr {
    let int_arrow = arrow(vec![fint()], fint());
    let tau_g = arrow(vec![int_arrow.clone()], fint());
    let tau_f = arrow(vec![tau_g.clone()], fint());
    let tau_g_t = fty_to_tty(&tau_g);

    // g = λ(h : (int)→int). h 1
    let g = lam_z(vec![("h", int_arrow)], "zg", app(var("h"), vec![fint_e(1)]));

    // H(ℓ): load g off the stack, push ℓh as its argument, save the
    // continuation on the stack, install ℓgret, and call back into F.
    let l = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(ra(), int_cont_ty("z", "e"))]),
        stack(vec![tau_g_t], zvar("z")),
        q_reg(ra()),
        seq(
            vec![
                sld(r1(), 0),
                salloc(1),
                mv(r2(), loc("lh")),
                sst(0, r2()),
                sst(1, ra()),
                mv(
                    ra(),
                    loc_i("lgret", vec![i_stk(zvar("z")), i_ret(q_var("e"))]),
                ),
            ],
            call(
                reg(r1()),
                stack(vec![int_cont_ty("z", "e")], zvar("z")),
                q_i(0),
            ),
        ),
    );

    // H(ℓh): doubles its argument — the compiled h.
    let lh = int_to_int_block(
        vec![],
        seq(
            vec![sld(r1(), 0), sfree(1), mul(r1(), r1(), int_v(2))],
            ret(ra(), r1()),
        ),
    );

    // H(ℓgret): the shim that recovers the saved continuation.
    let lgret = code_block(
        vec![d_stk("z"), d_ret("e")],
        chi([(r1(), int())]),
        stack(vec![int_cont_ty("z", "e")], zvar("z")),
        q_i(0),
        seq(vec![sld(ra(), 0), sfree(1)], ret(ra(), r1())),
    );

    // e = (intFT (mv r1, ℓ; halt (τ)→int𝒯, • {r1}, H)) g
    let t_tau_f = fty_to_tty(&tau_f);
    app(
        boundary(
            tau_f,
            tcomp(
                seq(vec![mv(r1(), loc("l"))], halt(t_tau_f, nil(), r1())),
                vec![("l", l), ("lh", lh), ("lgret", lgret)],
            ),
        ),
        vec![g],
    )
}

/// The §4.2 example: a stack-modifying lambda that pushes 7 onto the
/// stack using embedded assembly.
pub fn push7() -> FExpr {
    lam_sm(
        vec![("x", fint())],
        "z",
        vec![],
        vec![int()],
        boundary_out(
            funit(),
            stack(vec![int()], zvar("z")),
            tcomp(
                seq(
                    vec![
                        protect(vec![], "z2"),
                        mv(r1(), int_v(7)),
                        salloc(1),
                        sst(0, r1()),
                        mv(r1(), unit_v()),
                    ],
                    halt(unit(), stack(vec![int()], zvar("z2")), r1()),
                ),
                vec![],
            ),
        ),
    )
}
