//! The environment-passing FT machine: an evaluator for the same
//! semantics as [`crate::machine`] (Fig 8) that never rebuilds terms.
//!
//! The substitution machine re-walks the expression to find the redex
//! and deep-clones subterms at every β-reduction; this machine instead
//! keeps
//!
//! - an explicit **continuation stack** ([`Frame`]) and a **value
//!   environment** ([`Env`]) for F — a CEK-style machine over the
//!   [`IExpr`] interned terms of `funtal-syntax`;
//! - a **cursor** (`Rc<FastSeq>` + program counter) over pre-compiled
//!   instruction sequences for T, a register file held in a fixed
//!   array, and a flat `Vec`-indexed heap with a label-interning table
//!   ([`FastMem`]) — jumps are reference bumps, not block-body clones.
//!
//! Fuel is consumed at exactly the reduction points of the
//! substitution machine and the same [`Event`] stream is emitted, so
//! the two strategies agree step-for-step: the differential suite
//! (`tests/strategy_equiv.rs`) checks outcome equality *and* that the
//! minimal sufficient fuel coincides. Fresh-label generation mirrors
//! [`Memory`] word for word, so even heap labels in outcomes match.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::{Arc, Weak};

use funtal_syntax::intern::{IExpr, IKind};
use funtal_syntax::rename::{rename_heap_val, rename_seq};
use funtal_syntax::span::{Span, SpanTable};
use funtal_syntax::subst::{subst_fvars, Subst};
use funtal_syntax::{
    ArithOp, Component, FExpr, FTy, HeapVal, Inst, Instr, InstrSeq, Label, Lam, Mutability, Reg,
    SmallVal, StackTail, StackTy, TComp, TTy, Terminator, TyVar, VarName, WordVal,
};
use funtal_tal::error::{RResult, RuntimeError};
use funtal_tal::machine::Memory;
use funtal_tal::trace::{Event, Tracer};

use crate::machine::{FtOutcome, RunCfg};
use crate::translate::{check_wrappable, end_block, fty_to_tty, lambda_glue_block, wrapper_lambda};

// ---------------------------------------------------------------------
// Words and memory
// ---------------------------------------------------------------------

/// A T word as the fast machine holds it: immediates inline, heap
/// locations as indices into the flat heap, and everything else (packs,
/// folds, instantiated words) behind a shared, interned [`WordVal`] so
/// moves never deep-clone.
#[derive(Clone, Debug)]
pub enum TWord {
    /// `()`.
    Unit,
    /// An integer.
    Int(i64),
    /// A heap location, resolved to its flat-heap index.
    Loc(u32),
    /// Any other word (pack/fold/inst shapes, or a location literal
    /// whose label is resolved on use), shared.
    Big(Arc<WordVal>),
}

/// A heap cell of the flat heap.
#[derive(Debug)]
pub(crate) enum FastHeapVal {
    /// A code block, shared with the syntax tree; `seq` caches its
    /// compiled form after first entry (cursor tier), `bc` caches the
    /// lowered bytecode entry point (bytecode tier), and `env` is the F
    /// environment captured when the block was merged (the substitution
    /// machine substitutes those values into `import` bodies at β time;
    /// the environment machine defers the lookup to execution).
    Code {
        hv: Arc<HeapVal>,
        seq: Option<Rc<FastSeq>>,
        env: Env,
        bc: Option<crate::machine_bc::BcCell>,
    },
    /// A tuple of fast words (`st` mutates in place).
    Tuple {
        mutability: Mutability,
        fields: Vec<TWord>,
    },
}

/// The fast memory: flat heap + interning table, array register file,
/// and a plain `Vec` stack. Mirrors [`Memory`]'s fresh-label naming
/// exactly so both strategies allocate identical labels.
#[derive(Debug, Default)]
pub struct FastMem {
    pub(crate) heap: Vec<FastHeapVal>,
    pub(crate) index: HashMap<Label, u32>,
    pub(crate) names: Vec<Label>,
    pub(crate) regs: [Option<TWord>; 8],
    pub(crate) stack: Vec<TWord>,
    pub(crate) next_fresh: u64,
    /// Unique per instance (per thread); validates the inline caches
    /// baked into shared compiled sequences.
    pub(crate) id: u64,
}

thread_local! {
    static MEM_IDS: Cell<u64> = const { Cell::new(0) };
}

fn next_mem_id() -> u64 {
    MEM_IDS.with(|c| {
        let id = c.get() + 1;
        c.set(id);
        id
    })
}

// ---------------------------------------------------------------------
// Ambient span scope
// ---------------------------------------------------------------------

// The span table of the program currently being lowered, if any. An
// ambient (thread-local) scope rather than a parameter because lowering
// happens lazily at block entry, deep inside the step loop — threading
// a table through every signature would touch every tier for a purely
// diagnostic concern.
thread_local! {
    static AMBIENT_SPANS: RefCell<Option<Arc<SpanTable>>> = const { RefCell::new(None) };
}

/// Installs a [`SpanTable`] as the ambient source map for all lowering
/// on this thread; the previous scope is restored on drop.
///
/// While a scope is installed, every block compiled by the cursor tier
/// and every module lowered by the bytecode tier records the source
/// span of its label. Caveat: compiled blocks are cached across runs
/// (keyed by shared-`Arc` identity), so a block's span is baked at
/// *first* compile — profile attribution does not read these spans (it
/// resolves labels through the table directly) and is unaffected.
pub struct SpanScope {
    prev: Option<Arc<SpanTable>>,
}

impl SpanScope {
    /// Installs `table`, returning the guard that scopes it.
    pub fn install(table: Arc<SpanTable>) -> SpanScope {
        let prev = AMBIENT_SPANS.with(|c| c.borrow_mut().replace(table));
        SpanScope { prev }
    }
}

impl Drop for SpanScope {
    fn drop(&mut self) {
        AMBIENT_SPANS.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// The span of `label` under the ambient scope (synthetic outside one).
pub(crate) fn ambient_span(label: &str) -> Span {
    AMBIENT_SPANS.with(|c| {
        c.borrow()
            .as_ref()
            .map(|t| t.resolve(label))
            .unwrap_or(Span::SYNTH)
    })
}

/// The root span of the ambient scope (synthetic outside one).
pub(crate) fn ambient_root() -> Span {
    AMBIENT_SPANS.with(|c| c.borrow().as_ref().map(|t| t.root).unwrap_or(Span::SYNTH))
}

pub(crate) fn ridx(r: Reg) -> usize {
    r as usize
}

impl FastMem {
    pub(crate) fn from_memory(mem: &Memory) -> FastMem {
        let mut fm = FastMem {
            next_fresh: mem.fresh_counter(),
            id: next_mem_id(),
            ..FastMem::default()
        };
        // Two passes: intern every label first, then convert values
        // (tuple fields may reference labels in any order).
        for (l, _) in mem.heap.iter() {
            fm.intern(l.clone());
        }
        for (l, hv) in mem.heap.iter() {
            let idx = fm.index[l] as usize;
            let converted = fm.convert_heap_val(hv, &Env::default());
            fm.heap[idx] = converted;
        }
        for (r, w) in mem.regs.iter() {
            fm.regs[ridx(*r)] = Some(fm.tword_of_word(w));
        }
        let mut bottom_first: Vec<&WordVal> = mem.stack.iter_top_first().collect();
        bottom_first.reverse();
        for w in bottom_first {
            let tw = fm.tword_of_word(w);
            fm.stack.push(tw);
        }
        fm
    }

    pub(crate) fn write_back(&self, mem: &mut Memory) {
        mem.heap = self
            .names
            .iter()
            .zip(&self.heap)
            .map(|(l, hv)| {
                let shared = match hv {
                    // The substitution machine β-substitutes into a
                    // component's `import` bodies *before* merging, so
                    // a block whose imports close over the captured
                    // environment must be written back in substituted
                    // form — otherwise the final heap would diverge
                    // from the oracle and a later run on this memory
                    // would see free variables.
                    FastHeapVal::Code { hv, env, .. } if env.is_empty() => hv.clone(),
                    FastHeapVal::Code { hv, env, .. } => {
                        let free = funtal_syntax::free::fv_heap_val(hv);
                        let map: BTreeMap<VarName, FExpr> = free
                            .iter()
                            .filter_map(|x| env.lookup(x).map(|v| (x.clone(), reify_val(v))))
                            .collect();
                        if map.is_empty() {
                            hv.clone()
                        } else {
                            let HeapVal::Code(block) = &**hv else {
                                unreachable!("fv_heap_val found vars in a tuple")
                            };
                            Arc::new(HeapVal::Code(funtal_syntax::CodeBlock {
                                body: funtal_syntax::subst::subst_fvars_seq(&block.body, &map),
                                ..block.clone()
                            }))
                        }
                    }
                    FastHeapVal::Tuple { mutability, fields } => Arc::new(HeapVal::Tuple {
                        mutability: *mutability,
                        fields: fields.iter().map(|w| self.reify_word(w)).collect(),
                    }),
                };
                (l.clone(), shared)
            })
            .collect();
        mem.regs = Reg::ALL
            .iter()
            .filter_map(|r| {
                self.regs[ridx(*r)]
                    .as_ref()
                    .map(|w| (*r, self.reify_word(w)))
            })
            .collect();
        let mut stack = funtal_tal::machine::Stack::new();
        for w in &self.stack {
            stack.push(self.reify_word(w));
        }
        mem.stack = stack;
        mem.set_fresh_counter(self.next_fresh);
    }

    /// Registers a label, returning its index. Pre-existing labels keep
    /// their slot.
    pub(crate) fn intern(&mut self, l: Label) -> u32 {
        if let Some(i) = self.index.get(&l) {
            return *i;
        }
        let i = self.heap.len() as u32;
        self.heap.push(FastHeapVal::Tuple {
            mutability: Mutability::Boxed,
            fields: Vec::new(),
        });
        self.names.push(l.clone());
        self.index.insert(l, i);
        i
    }

    fn convert_heap_val(&self, hv: &Arc<HeapVal>, env: &Env) -> FastHeapVal {
        match &**hv {
            HeapVal::Code(_) => FastHeapVal::Code {
                hv: hv.clone(),
                seq: None,
                env: env.clone(),
                bc: None,
            },
            HeapVal::Tuple { mutability, fields } => FastHeapVal::Tuple {
                mutability: *mutability,
                fields: fields.iter().map(|w| self.tword_of_word(w)).collect(),
            },
        }
    }

    /// Converts a syntax-level word, resolving known labels to indices.
    pub(crate) fn tword_of_word(&self, w: &WordVal) -> TWord {
        match w {
            WordVal::Unit => TWord::Unit,
            WordVal::Int(n) => TWord::Int(*n),
            WordVal::Loc(l) => match self.index.get(l) {
                Some(i) => TWord::Loc(*i),
                None => TWord::Big(Arc::new(w.clone())),
            },
            _ => TWord::Big(Arc::new(w.clone())),
        }
    }

    /// Reifies a fast word back to the syntax-level form.
    pub(crate) fn reify_word(&self, w: &TWord) -> WordVal {
        match w {
            TWord::Unit => WordVal::Unit,
            TWord::Int(n) => WordVal::Int(*n),
            TWord::Loc(i) => WordVal::Loc(self.names[*i as usize].clone()),
            TWord::Big(w) => (**w).clone(),
        }
    }

    pub(crate) fn reg(&self, r: Reg) -> RResult<&TWord> {
        self.regs[ridx(r)]
            .as_ref()
            .ok_or(RuntimeError::UnboundReg(r))
    }

    pub(crate) fn set_reg(&mut self, r: Reg, w: TWord) {
        self.regs[ridx(r)] = Some(w);
    }

    /// Mirrors [`Memory::fresh_label`] exactly.
    pub(crate) fn fresh_label(&mut self, hint: &str) -> Label {
        let n = self.next_fresh;
        self.next_fresh += 1;
        Label::new(format!("{hint}${n}"))
    }

    pub(crate) fn alloc(&mut self, hint: &str, hv: FastHeapVal) -> u32 {
        let l = self.fresh_label(hint);
        let i = self.intern(l);
        self.heap[i as usize] = hv;
        i
    }

    pub(crate) fn loc_of(&self, w: &TWord) -> RResult<u32> {
        match w {
            TWord::Loc(i) => Ok(*i),
            TWord::Big(b) => match &**b {
                WordVal::Loc(l) => self
                    .index
                    .get(l)
                    .copied()
                    .ok_or_else(|| RuntimeError::UnboundLabel(l.clone())),
                other => Err(RuntimeError::NotTuple(other.to_string())),
            },
            other => Err(RuntimeError::NotTuple(self.reify_word(other).to_string())),
        }
    }

    /// Reads a register that must hold an integer without cloning the
    /// word — the bytecode tier's arithmetic fast path.
    pub(crate) fn int_reg(&self, r: Reg) -> RResult<i64> {
        match &self.regs[ridx(r)] {
            Some(TWord::Int(n)) => Ok(*n),
            Some(w) => Err(RuntimeError::NotInt(self.reify_word(w).to_string())),
            None => Err(RuntimeError::UnboundReg(r)),
        }
    }

    pub(crate) fn as_int(&self, w: &TWord) -> RResult<i64> {
        match w {
            TWord::Int(n) => Ok(*n),
            other => Err(RuntimeError::NotInt(self.reify_word(other).to_string())),
        }
    }

    pub(crate) fn stack_pop_n(&mut self, n: usize) -> RResult<Vec<TWord>> {
        if self.stack.len() < n {
            return Err(RuntimeError::StackUnderflow {
                need: n,
                have: self.stack.len(),
            });
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.stack.pop().expect("length checked"));
        }
        Ok(out)
    }

    /// Pops `n` words without materializing them — `sfree`'s fast path
    /// (no intermediate `Vec`).
    pub(crate) fn stack_drop_n(&mut self, n: usize) -> RResult<()> {
        if self.stack.len() < n {
            return Err(RuntimeError::StackUnderflow {
                need: n,
                have: self.stack.len(),
            });
        }
        self.stack.truncate(self.stack.len() - n);
        Ok(())
    }

    pub(crate) fn stack_get(&self, i: usize) -> RResult<&TWord> {
        let len = self.stack.len();
        if i < len {
            Ok(&self.stack[len - 1 - i])
        } else {
            Err(RuntimeError::BadStackIndex(i))
        }
    }

    pub(crate) fn stack_set(&mut self, i: usize, w: TWord) -> RResult<()> {
        let len = self.stack.len();
        if i < len {
            self.stack[len - 1 - i] = w;
            Ok(())
        } else {
            Err(RuntimeError::BadStackIndex(i))
        }
    }

    /// Merges a fragment's blocks into the flat heap, mirroring
    /// [`Memory::merge_fragment`] (same collision detection, same
    /// fresh names, same sharing of untouched blocks). The outcome
    /// carries the renamed entry sequence when a label collided
    /// (`renamed_entry: None` means the entry is `comp.seq` verbatim,
    /// so the caller can reuse a cached compilation) plus the flat-heap
    /// index of each merged block in fragment order, which the bytecode
    /// tier uses to bind lower-time block ordinals to this instance.
    pub(crate) fn merge_fragment(&mut self, comp: &TComp, env: &Env) -> MergeOutcome {
        if comp.heap.is_empty() {
            return MergeOutcome::default();
        }
        let colliding: Vec<Label> = comp
            .heap
            .iter()
            .filter(|(l, _)| self.index.contains_key(*l))
            .map(|(l, _)| l.clone())
            .collect();
        let renaming: BTreeMap<Label, Label> = colliding
            .into_iter()
            .map(|l| {
                let fresh = self.fresh_label(l.as_str());
                (l, fresh)
            })
            .collect();
        let mut indices = Vec::with_capacity(comp.heap.0.len());
        for (l, hv) in comp.heap.iter_shared() {
            let shared = if renaming.is_empty() {
                hv.clone()
            } else {
                Arc::new(rename_heap_val(hv, &renaming))
            };
            let target = renaming.get(l).cloned().unwrap_or_else(|| l.clone());
            let idx = self.intern(target);
            let converted = self.convert_heap_val(&shared, env);
            self.heap[idx as usize] = converted;
            indices.push(idx);
        }
        let renamed_entry = if renaming.is_empty() {
            None
        } else {
            Some(rename_seq(&comp.seq, &renaming))
        };
        MergeOutcome {
            renamed_entry,
            indices,
        }
    }
}

/// What merging a fragment did: the renamed entry sequence (when a
/// label collided) and the flat-heap index of every merged block, in
/// fragment order.
#[derive(Debug, Default)]
pub(crate) struct MergeOutcome {
    pub(crate) renamed_entry: Option<InstrSeq>,
    pub(crate) indices: Vec<u32>,
}

// ---------------------------------------------------------------------
// Pre-compiled instruction sequences
// ---------------------------------------------------------------------

/// An operand, pre-lowered so the hot path never traverses
/// [`SmallVal`]: registers and literal words are immediate (literal
/// conversion shares one interned word per instruction), and only the
/// rare pack/fold/inst shapes stay symbolic.
#[derive(Clone, Debug)]
pub(crate) enum FastOp {
    Reg(Reg),
    Word(TWord),
    Dyn(Arc<SmallVal>),
}

#[derive(Debug)]
enum FastInstr {
    Arith {
        op: ArithOp,
        rd: Reg,
        rs: Reg,
        src: FastOp,
    },
    Bnz {
        r: Reg,
        target: FastTarget,
    },
    Ld {
        rd: Reg,
        rs: Reg,
        idx: usize,
    },
    St {
        rd: Reg,
        idx: usize,
        rs: Reg,
    },
    Ralloc {
        rd: Reg,
        n: usize,
    },
    Balloc {
        rd: Reg,
        n: usize,
    },
    Mv {
        rd: Reg,
        src: FastOp,
    },
    Salloc(usize),
    Sfree(usize),
    Sld {
        rd: Reg,
        idx: usize,
    },
    Sst {
        idx: usize,
        rs: Reg,
    },
    Unpack {
        rd: Reg,
        src: FastOp,
    },
    Unfold {
        rd: Reg,
        src: FastOp,
    },
    Protect,
    Import {
        rd: Reg,
        ty: Arc<FTy>,
        body: IExpr,
    },
}

/// A jump-target operand with an inline cache: after the first
/// resolution in a given memory, constant targets skip the label hash
/// and arity check entirely. The cache is validated against the
/// memory's unique id, so sequences shared across runs stay correct.
#[derive(Debug)]
struct FastTarget {
    op: FastOp,
    ic: Cell<(u64, u32)>,
}

impl FastTarget {
    fn new(u: &SmallVal) -> FastTarget {
        FastTarget {
            op: lower_op(u),
            ic: Cell::new((0, 0)),
        }
    }
}

#[derive(Debug)]
enum FastTerm {
    Jmp(FastTarget),
    Call {
        target: FastTarget,
        sigma: Arc<StackTy>,
        q: Arc<funtal_syntax::RetMarker>,
    },
    Ret {
        target: Reg,
        val: Reg,
    },
    Halt {
        val: Reg,
    },
}

/// A compiled instruction sequence: straight-line [`FastInstr`]s plus a
/// terminator, independent of any particular memory (so it is cached
/// per code block, across runs).
#[derive(Debug)]
pub(crate) struct FastSeq {
    instrs: Vec<FastInstr>,
    term: FastTerm,
    /// Source region of the block this sequence was compiled from
    /// (resolved through the ambient [`SpanScope`] at compile time;
    /// synthetic for generated code or outside a scope).
    span: Span,
}

impl FastSeq {
    /// The source region this sequence maps back to.
    pub(crate) fn span(&self) -> Span {
        self.span
    }
}

/// Evaluates a small value that mentions no registers to its word form
/// (the common case for jump targets and instantiated continuations),
/// so the hot path shares one interned word instead of rebuilding the
/// instantiation spine on every execution.
pub(crate) fn const_small(u: &SmallVal) -> Option<WordVal> {
    match u {
        SmallVal::Reg(_) => None,
        SmallVal::Word(w) => Some(w.clone()),
        SmallVal::Pack { hidden, body, ann } => Some(WordVal::Pack {
            hidden: hidden.clone(),
            body: Box::new(const_small(body)?),
            ann: ann.clone(),
        }),
        SmallVal::Fold { ann, body } => Some(WordVal::Fold {
            ann: ann.clone(),
            body: Box::new(const_small(body)?),
        }),
        SmallVal::Inst { body, args } => Some(const_small(body)?.instantiate(args.clone())),
    }
}

pub(crate) fn lower_op(u: &SmallVal) -> FastOp {
    match u {
        SmallVal::Reg(r) => FastOp::Reg(*r),
        other => match const_small(other) {
            Some(WordVal::Unit) => FastOp::Word(TWord::Unit),
            Some(WordVal::Int(n)) => FastOp::Word(TWord::Int(n)),
            Some(w) => FastOp::Word(TWord::Big(Arc::new(w))),
            None => FastOp::Dyn(Arc::new(other.clone())),
        },
    }
}

fn compile_seq(seq: &InstrSeq, span: Span) -> FastSeq {
    let instrs = seq
        .instrs
        .iter()
        .map(|i| match i {
            Instr::Arith { op, rd, rs, src } => FastInstr::Arith {
                op: *op,
                rd: *rd,
                rs: *rs,
                src: lower_op(src),
            },
            Instr::Bnz { r, target } => FastInstr::Bnz {
                r: *r,
                target: FastTarget::new(target),
            },
            Instr::Ld { rd, rs, idx } => FastInstr::Ld {
                rd: *rd,
                rs: *rs,
                idx: *idx,
            },
            Instr::St { rd, idx, rs } => FastInstr::St {
                rd: *rd,
                idx: *idx,
                rs: *rs,
            },
            Instr::Ralloc { rd, n } => FastInstr::Ralloc { rd: *rd, n: *n },
            Instr::Balloc { rd, n } => FastInstr::Balloc { rd: *rd, n: *n },
            Instr::Mv { rd, src } => FastInstr::Mv {
                rd: *rd,
                src: lower_op(src),
            },
            Instr::Salloc(n) => FastInstr::Salloc(*n),
            Instr::Sfree(n) => FastInstr::Sfree(*n),
            Instr::Sld { rd, idx } => FastInstr::Sld { rd: *rd, idx: *idx },
            Instr::Sst { idx, rs } => FastInstr::Sst { idx: *idx, rs: *rs },
            Instr::Unpack { rd, src, .. } => FastInstr::Unpack {
                rd: *rd,
                src: lower_op(src),
            },
            Instr::Unfold { rd, src } => FastInstr::Unfold {
                rd: *rd,
                src: lower_op(src),
            },
            Instr::Protect { .. } => FastInstr::Protect,
            Instr::Import { rd, ty, body, .. } => FastInstr::Import {
                rd: *rd,
                ty: Arc::new(ty.clone()),
                body: IExpr::from_fexpr(body),
            },
        })
        .collect();
    let term = match &seq.term {
        Terminator::Jmp(u) => FastTerm::Jmp(FastTarget::new(u)),
        Terminator::Call { target, sigma, q } => FastTerm::Call {
            target: FastTarget::new(target),
            sigma: Arc::new(sigma.clone()),
            q: Arc::new(q.clone()),
        },
        Terminator::Ret { target, val } => FastTerm::Ret {
            target: *target,
            val: *val,
        },
        Terminator::Halt { val, .. } => FastTerm::Halt { val: *val },
    };
    FastSeq { instrs, term, span }
}

// A process-wide (per-thread) cache of compiled block bodies keyed by
// heap-value identity, so steady-state workloads that re-enter the
// same shared blocks in fresh memories skip recompilation. Entries are
// validated by upgrading the stored weak handle and comparing
// pointers, so a recycled allocation can never alias a stale entry.
type SeqCache = HashMap<usize, (Weak<HeapVal>, Rc<FastSeq>)>;

thread_local! {
    static SEQ_CACHE: RefCell<SeqCache> = RefCell::new(HashMap::new());
}

// Compiled boundary entry sequences keyed by shared-component
// identity, validated like `SEQ_CACHE`.
type EntryCache = HashMap<usize, (Weak<TComp>, Rc<FastSeq>)>;

thread_local! {
    static ENTRY_CACHE: RefCell<EntryCache> = RefCell::new(HashMap::new());
}

fn compiled_entry(comp: &Arc<TComp>) -> Rc<FastSeq> {
    let key = Arc::as_ptr(comp) as usize;
    ENTRY_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((weak, seq)) = cache.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, comp) {
                    return seq.clone();
                }
            }
        }
        let seq = Rc::new(compile_seq(&comp.seq, ambient_root()));
        if cache.len() >= 4096 {
            cache.retain(|_, (w, _)| w.upgrade().is_some());
        }
        cache.insert(key, (Arc::downgrade(comp), seq.clone()));
        seq
    })
}

// Memoized Fig 10 code→λ wrappers: (code word, ℓend label, arrow type)
// → (ℓend block, interned wrapper). Checked by value equality, so it
// is exact; bounded by wholesale clearing.
// The ℓend label is determined by the fresh counter at translation
// time, so the counter value keys the cache (an integer compare
// rejects mismatches before the deeper word/type comparisons).
type WrapperCache = Vec<(u64, WordVal, FTy, Arc<HeapVal>, IExpr)>;

thread_local! {
    static WRAPPER_CACHE: RefCell<WrapperCache> = const { RefCell::new(Vec::new()) };
}

fn compiled_block(hv: &Arc<HeapVal>, label: &Label) -> Rc<FastSeq> {
    let key = Arc::as_ptr(hv) as usize;
    SEQ_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((weak, seq)) = cache.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, hv) {
                    return seq.clone();
                }
            }
        }
        let HeapVal::Code(block) = &**hv else {
            unreachable!("compiled_block called on a tuple")
        };
        let seq = Rc::new(compile_seq(&block.body, ambient_span(label.as_str())));
        if cache.len() >= 4096 {
            cache.retain(|_, (w, _)| w.upgrade().is_some());
        }
        cache.insert(key, (Arc::downgrade(hv), seq.clone()));
        seq
    })
}

/// Compiles every shared code block of `comp` (warming the per-thread
/// cache) and reports the source span each block maps back to under
/// the ambient [`SpanScope`] — the cursor-tier analogue of
/// [`crate::machine_bc::LoweredProgram::block_spans`]. Blocks already
/// cached from an earlier compile keep the span they were first
/// attributed.
pub fn compiled_comp_spans(comp: &TComp) -> Vec<(String, Span)> {
    comp.heap
        .iter_shared()
        .filter_map(|(l, hv)| match &**hv {
            HeapVal::Code(_) => Some((l.to_string(), compiled_block(hv, l).span())),
            HeapVal::Tuple { .. } => None,
        })
        .collect()
}

// ---------------------------------------------------------------------
// F values, environments, frames
// ---------------------------------------------------------------------

/// A machine-level F value. Tuples and fold bodies are shared (`Rc`:
/// values never leave the evaluation thread) so projection and unfold
/// are O(1).
#[derive(Clone, Debug)]
pub enum FastVal {
    /// `()`.
    Unit,
    /// An integer.
    Int(i64),
    /// A tuple of values.
    Tuple(Rc<Vec<FastVal>>),
    /// `fold_{µα.τ} v`.
    Fold {
        /// The recursive type annotation.
        ann: Arc<FTy>,
        /// The folded value.
        body: Rc<FastVal>,
    },
    /// A closure: a lambda node plus its captured environment.
    Clos(Rc<Closure>),
}

/// A closure: the interned `IKind::Lam` node plus the environment its
/// free variables are looked up in.
#[derive(Debug)]
pub struct Closure {
    pub(crate) lam: IExpr,
    pub(crate) env: Env,
}

#[derive(Debug)]
struct EnvFrame {
    params: Arc<[(VarName, FTy)]>,
    vals: Vec<FastVal>,
    parent: Env,
}

/// A persistent environment: a chain of frames, cloned by reference.
#[derive(Clone, Debug, Default)]
pub(crate) struct Env(Option<Rc<EnvFrame>>);

impl Env {
    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    pub(crate) fn lookup(&self, x: &VarName) -> Option<&FastVal> {
        let frame = self.0.as_ref()?;
        // Later parameters shadow earlier ones (matching the
        // last-wins map the substitution machine builds).
        if let Some(i) = frame.params.iter().rposition(|(p, _)| p == x) {
            return Some(&frame.vals[i]);
        }
        frame.parent.lookup(x)
    }

    pub(crate) fn extend(&self, params: Arc<[(VarName, FTy)]>, vals: Vec<FastVal>) -> Env {
        Env(Some(Rc::new(EnvFrame {
            params,
            vals,
            parent: self.clone(),
        })))
    }
}

/// A suspended cursor-tier T execution: a compiled sequence plus a
/// program counter.
#[derive(Clone, Debug)]
pub(crate) struct TCtrl {
    seq: Rc<FastSeq>,
    pc: usize,
    /// The F environment `import` bodies in this sequence close over.
    env: Env,
}

/// A T execution tier: how the shared F-side machine represents and
/// steps suspended T code. The cursor tier ([`CursorTier`]) walks
/// per-block compiled sequences; the bytecode tier
/// ([`crate::machine_bc::BcTier`]) dispatches over a flat lowered
/// instruction stream. Both plug into the same CEK machine, so the
/// F side — and with it fuel accounting, events, and boundary
/// translation — is identical by construction.
pub(crate) trait Tier: Sized {
    /// A suspended T execution for this tier.
    type TCtrl;

    /// Builds the T control for a boundary entry. `merge` is the
    /// result of merging the component's heap fragment (already
    /// performed, and already ticked/traced, by the shared machine).
    fn boundary_ctrl(
        m: &mut Machine<'_, Self>,
        comp: &Arc<TComp>,
        env: &Env,
        merge: MergeOutcome,
    ) -> Self::TCtrl;

    /// Runs T code until control leaves the tier (an import, a halt,
    /// an error, or fuel exhaustion).
    fn step_t(m: &mut Machine<'_, Self>, t: Self::TCtrl) -> RResult<Step<Self>>;
}

/// One continuation frame of the mixed machine.
pub(crate) enum Frame<T: Tier> {
    BinopL {
        op: ArithOp,
        rhs: IExpr,
        env: Env,
    },
    BinopR {
        op: ArithOp,
        lhs: FastVal,
    },
    If0 {
        then_branch: IExpr,
        else_branch: IExpr,
        env: Env,
    },
    AppFunc {
        args: Arc<[IExpr]>,
        env: Env,
    },
    AppArg {
        func: FastVal,
        done: Vec<FastVal>,
        args: Arc<[IExpr]>,
        env: Env,
    },
    FoldF {
        ann: Arc<FTy>,
    },
    UnfoldF,
    TupleF {
        done: Vec<FastVal>,
        es: Arc<[IExpr]>,
        env: Env,
    },
    ProjF {
        idx: usize,
    },
    /// T code is running under a boundary of this type.
    BoundaryT {
        ty: Arc<FTy>,
    },
    /// An `import` body is being evaluated; `saved` resumes the
    /// enclosing T sequence after the translated value lands in `rd`.
    ImportF {
        rd: Reg,
        ty: Arc<FTy>,
        saved: T::TCtrl,
    },
}

pub(crate) enum Ctrl<T: Tier> {
    Eval(IExpr, Env),
    Ret(FastVal),
    T(T::TCtrl),
}

// ---------------------------------------------------------------------
// Value translation (Fig 10) over the fast memory
// ---------------------------------------------------------------------

fn unroll_fty(rec: &FTy) -> Option<FTy> {
    let FTy::Rec(a, body) = rec else { return None };
    Some(funtal_fun::check::subst_fty_var(body, a, rec))
}

type LamParts<'a> = (
    &'a Arc<[(VarName, FTy)]>,
    &'a TyVar,
    &'a Arc<[TTy]>,
    &'a Arc<[TTy]>,
    &'a IExpr,
);

pub(crate) fn lam_parts(lam: &IExpr) -> LamParts<'_> {
    let IKind::Lam {
        params,
        zeta,
        phi_in,
        phi_out,
        body,
    } = lam.kind()
    else {
        unreachable!("closure holds a non-lambda")
    };
    (params, zeta, phi_in, phi_out, body)
}

/// Reifies a machine value back to a closed F expression — the shape
/// the substitution machine would have produced, since β there is just
/// the eager form of this lazy substitution.
fn reify_val(v: &FastVal) -> FExpr {
    match v {
        FastVal::Unit => FExpr::Unit,
        FastVal::Int(n) => FExpr::Int(*n),
        FastVal::Tuple(vs) => FExpr::Tuple(vs.iter().map(reify_val).collect()),
        FastVal::Fold { ann, body } => FExpr::Fold {
            ann: (**ann).clone(),
            body: Box::new(reify_val(body)),
        },
        FastVal::Clos(c) => reify_closure(c),
    }
}

fn reify_closure(c: &Closure) -> FExpr {
    let (params, zeta, phi_in, phi_out, body) = lam_parts(&c.lam);
    let mut map: BTreeMap<VarName, FExpr> = BTreeMap::new();
    for x in body.free_vars() {
        if params.iter().any(|(p, _)| p == x) {
            continue;
        }
        if let Some(v) = c.env.lookup(x) {
            map.insert(x.clone(), reify_val(v));
        }
    }
    let body_f = subst_fvars(&body.to_fexpr(), &map);
    FExpr::Lam(Box::new(Lam {
        params: params.to_vec(),
        zeta: zeta.clone(),
        phi_in: phi_in.to_vec(),
        phi_out: phi_out.to_vec(),
        body: body_f,
    }))
}

/// `ᵗℱ𝒯(v, M)` over the fast memory, mirroring
/// [`crate::translate::f_to_t`] (including allocation order, so labels
/// coincide between strategies).
pub(crate) fn f_to_t_fast(mem: &mut FastMem, v: &FastVal, ty: &FTy) -> RResult<TWord> {
    match (v, ty) {
        (FastVal::Int(n), FTy::Int) => Ok(TWord::Int(*n)),
        (FastVal::Unit, FTy::Unit) => Ok(TWord::Unit),
        (FastVal::Fold { body, .. }, FTy::Rec(..)) => {
            let inner_ty = unroll_fty(ty).expect("checked Rec");
            let w = f_to_t_fast(mem, body, &inner_ty)?;
            Ok(TWord::Big(Arc::new(WordVal::Fold {
                ann: fty_to_tty(ty),
                body: Box::new(mem.reify_word(&w)),
            })))
        }
        (FastVal::Tuple(vs), FTy::Tuple(ts)) => {
            if vs.len() != ts.len() {
                return Err(RuntimeError::Stuck(format!(
                    "tuple/type width mismatch at boundary: {} vs {ty}",
                    reify_val(v)
                )));
            }
            let mut fields = Vec::with_capacity(vs.len());
            for (v, t) in vs.iter().zip(ts) {
                fields.push(f_to_t_fast(mem, v, t)?);
            }
            let i = mem.alloc(
                "tup",
                FastHeapVal::Tuple {
                    mutability: Mutability::Boxed,
                    fields,
                },
            );
            Ok(TWord::Loc(i))
        }
        (
            FastVal::Clos(c),
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            },
        ) => {
            let (cparams, ..) = lam_parts(&c.lam);
            if cparams.len() != params.len() {
                return Err(RuntimeError::Stuck(format!(
                    "lambda arity does not match boundary type: {} vs {ty}",
                    reify_val(v)
                )));
            }
            let block = lambda_glue_block(reify_closure(c), params, phi_in, phi_out, ret);
            let i = mem.alloc(
                "clos",
                FastHeapVal::Code {
                    hv: Arc::new(HeapVal::Code(block)),
                    seq: None,
                    env: Env::default(),
                    bc: None,
                },
            );
            Ok(TWord::Loc(i))
        }
        _ => Err(RuntimeError::Stuck(format!(
            "cannot translate F value {} at type {ty}",
            reify_val(v)
        ))),
    }
}

/// `τℱ𝒯(w, M)` over the fast memory, mirroring
/// [`crate::translate::t_to_f`].
pub(crate) fn t_to_f_fast(mem: &mut FastMem, w: &TWord, ty: &FTy) -> RResult<FastVal> {
    match (w, ty) {
        (TWord::Int(n), FTy::Int) => Ok(FastVal::Int(*n)),
        (TWord::Unit, FTy::Unit) => Ok(FastVal::Unit),
        (TWord::Big(b), FTy::Rec(..)) if matches!(&**b, WordVal::Fold { .. }) => {
            let WordVal::Fold { body, .. } = &**b else {
                unreachable!()
            };
            let inner_ty = unroll_fty(ty).expect("checked Rec");
            let inner = mem.tword_of_word(body);
            let v = t_to_f_fast(mem, &inner, &inner_ty)?;
            Ok(FastVal::Fold {
                ann: Arc::new(ty.clone()),
                body: Rc::new(v),
            })
        }
        // Syntactic locations only, as in the oracle's `(Loc, Tuple)`
        // arm: wrapped words at tuple type fall through to the
        // catch-all below.
        (TWord::Loc(_), FTy::Tuple(ts)) | (TWord::Big(_), FTy::Tuple(ts))
            if matches!(w, TWord::Loc(_))
                || matches!(w, TWord::Big(b) if matches!(&**b, WordVal::Loc(_))) =>
        {
            let i = mem.loc_of(w)?;
            let FastHeapVal::Tuple { fields, .. } = &mem.heap[i as usize] else {
                return Err(RuntimeError::NotTuple(format!(
                    "{} is code",
                    mem.names[i as usize]
                )));
            };
            if fields.len() != ts.len() {
                return Err(RuntimeError::Stuck(format!(
                    "tuple width mismatch translating {} at {ty}",
                    mem.names[i as usize]
                )));
            }
            let fields = fields.clone();
            let mut out = Vec::with_capacity(ts.len());
            for (f, t) in fields.iter().zip(ts) {
                out.push(t_to_f_fast(mem, f, t)?);
            }
            Ok(FastVal::Tuple(Rc::new(out)))
        }
        (
            _,
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            },
        ) => {
            check_wrappable(phi_in, phi_out)?;
            let word = mem.reify_word(w);
            // The wrapper (and its ℓend block) is a pure function of
            // (fresh-counter state, code word, arrow type) — the
            // counter determines the embedded ℓend label. Steady-state
            // workloads re-translate the same pointer at the same type
            // with the same counter state every run, so memoize.
            let counter = mem.next_fresh;
            let lend = mem.fresh_label("lend");
            let (end_hv, lam) = WRAPPER_CACHE.with(|cache| {
                let mut cache = cache.borrow_mut();
                if let Some((_, _, _, end_hv, lam)) = cache
                    .iter()
                    .find(|(cc, cw, cty, _, _)| *cc == counter && cw == &word && cty == ty)
                {
                    return (end_hv.clone(), lam.clone());
                }
                let ret_tty = fty_to_tty(ret);
                let end_hv = Arc::new(HeapVal::Code(end_block(&ret_tty, phi_out)));
                let lam = IExpr::from_fexpr(&wrapper_lambda(
                    word.clone(),
                    &lend,
                    params,
                    phi_in,
                    phi_out,
                    ret,
                ));
                if cache.len() >= 64 {
                    // Evict the oldest half; evicted entries simply
                    // repopulate on their next miss.
                    cache.drain(..32);
                }
                cache.push((
                    counter,
                    word.clone(),
                    ty.clone(),
                    end_hv.clone(),
                    lam.clone(),
                ));
                (end_hv, lam)
            });
            let lend_idx = mem.intern(lend);
            mem.heap[lend_idx as usize] = FastHeapVal::Code {
                hv: end_hv,
                seq: None,
                env: Env::default(),
                bc: None,
            };
            Ok(FastVal::Clos(Rc::new(Closure {
                lam,
                env: Env::default(),
            })))
        }
        _ => Err(RuntimeError::Stuck(format!(
            "cannot translate T value {} at type {ty}",
            mem.reify_word(w)
        ))),
    }
}

// ---------------------------------------------------------------------
// The machine
// ---------------------------------------------------------------------

pub(crate) struct Machine<'t, T: Tier> {
    pub(crate) mem: FastMem,
    pub(crate) frames: Vec<Frame<T>>,
    pub(crate) fuel: u64,
    pub(crate) guard: bool,
    /// Cached `tracer.enabled()`: lets the hot loops skip event
    /// construction (label clones) when nobody is listening.
    pub(crate) trace: bool,
    pub(crate) tracer: &'t mut dyn Tracer,
    /// Tier-local state (e.g. the bytecode tier's module table).
    pub(crate) tier: T,
}

macro_rules! tick {
    ($self:ident) => {
        if $self.fuel == 0 {
            return Ok(Step::Done(FtOutcome::OutOfFuel));
        }
        $self.fuel -= 1;
    };
}

pub(crate) enum Step<T: Tier> {
    Continue(Ctrl<T>),
    Done(FtOutcome),
}

/// The coarse value shape the dynamic guard compares against types.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Shape {
    Unit,
    Int,
    Loc,
    Other,
}

impl<T: Tier> Machine<'_, T> {
    pub(crate) fn run(&mut self, mut ctrl: Ctrl<T>) -> RResult<FtOutcome> {
        loop {
            let step = match ctrl {
                Ctrl::Eval(e, env) => self.eval(e, env)?,
                Ctrl::Ret(v) => self.ret(v)?,
                Ctrl::T(t) => T::step_t(self, t)?,
            };
            match step {
                Step::Continue(next) => ctrl = next,
                Step::Done(out) => return Ok(out),
            }
        }
    }

    fn eval(&mut self, e: IExpr, env: Env) -> RResult<Step<T>> {
        let next = match e.kind() {
            IKind::Var(x) => match env.lookup(x) {
                Some(v) => Ctrl::Ret(v.clone()),
                None => return Err(RuntimeError::Stuck(format!("free variable {x}"))),
            },
            IKind::Unit => Ctrl::Ret(FastVal::Unit),
            IKind::Int(n) => Ctrl::Ret(FastVal::Int(*n)),
            IKind::Lam { .. } => Ctrl::Ret(FastVal::Clos(Rc::new(Closure {
                lam: e.clone(),
                env,
            }))),
            IKind::Binop { op, lhs, rhs } => {
                self.frames.push(Frame::BinopL {
                    op: *op,
                    rhs: rhs.clone(),
                    env: env.clone(),
                });
                Ctrl::Eval(lhs.clone(), env)
            }
            IKind::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                self.frames.push(Frame::If0 {
                    then_branch: then_branch.clone(),
                    else_branch: else_branch.clone(),
                    env: env.clone(),
                });
                Ctrl::Eval(cond.clone(), env)
            }
            IKind::App { func, args } => {
                self.frames.push(Frame::AppFunc {
                    args: args.clone(),
                    env: env.clone(),
                });
                Ctrl::Eval(func.clone(), env)
            }
            IKind::Fold { ann, body } => {
                self.frames.push(Frame::FoldF { ann: ann.clone() });
                Ctrl::Eval(body.clone(), env)
            }
            IKind::Unfold(body) => {
                self.frames.push(Frame::UnfoldF);
                Ctrl::Eval(body.clone(), env)
            }
            IKind::Tuple(es) => {
                if es.is_empty() {
                    Ctrl::Ret(FastVal::Tuple(Rc::new(Vec::new())))
                } else {
                    self.frames.push(Frame::TupleF {
                        done: Vec::with_capacity(es.len()),
                        es: es.clone(),
                        env: env.clone(),
                    });
                    Ctrl::Eval(es[0].clone(), env)
                }
            }
            IKind::Proj { idx, tuple } => {
                self.frames.push(Frame::ProjF { idx: *idx });
                Ctrl::Eval(tuple.clone(), env)
            }
            IKind::Boundary { ty, comp, .. } => {
                // Fig 8: the fragment merge is one machine step.
                let merge = if comp.heap.is_empty() {
                    MergeOutcome::default()
                } else {
                    tick!(self);
                    if self.trace {
                        self.tracer
                            .event(&Event::BoundaryEnter { ty: (**ty).clone() });
                    }
                    self.mem.merge_fragment(comp, &env)
                };
                let t = T::boundary_ctrl(self, comp, &env, merge);
                self.frames.push(Frame::BoundaryT { ty: ty.clone() });
                Ctrl::T(t)
            }
        };
        Ok(Step::Continue(next))
    }

    fn ret(&mut self, v: FastVal) -> RResult<Step<T>> {
        let Some(frame) = self.frames.pop() else {
            return Ok(Step::Done(FtOutcome::Value(reify_val(&v))));
        };
        let next = match frame {
            Frame::BinopL { op, rhs, env } => {
                self.frames.push(Frame::BinopR { op, lhs: v });
                Ctrl::Eval(rhs, env)
            }
            Frame::BinopR { op, lhs } => {
                let (FastVal::Int(a), FastVal::Int(b)) = (&lhs, &v) else {
                    return Err(RuntimeError::Stuck(format!(
                        "binop on non-integers: {} {} {}",
                        reify_val(&lhs),
                        op.symbol(),
                        reify_val(&v)
                    )));
                };
                tick!(self);
                if self.trace {
                    self.tracer.event(&Event::FStep);
                }
                Ctrl::Ret(FastVal::Int(op.apply(*a, *b)))
            }
            Frame::If0 {
                then_branch,
                else_branch,
                env,
            } => {
                let FastVal::Int(n) = v else {
                    return Err(RuntimeError::Stuck(format!(
                        "if0 on a non-integer: {}",
                        reify_val(&v)
                    )));
                };
                tick!(self);
                if self.trace {
                    self.tracer.event(&Event::FStep);
                }
                Ctrl::Eval(if n == 0 { then_branch } else { else_branch }, env)
            }
            Frame::AppFunc { args, env } => {
                if args.is_empty() {
                    return self.beta(v, Vec::new());
                }
                self.frames.push(Frame::AppArg {
                    func: v,
                    done: Vec::with_capacity(args.len()),
                    args: args.clone(),
                    env: env.clone(),
                });
                Ctrl::Eval(args[0].clone(), env)
            }
            Frame::AppArg {
                func,
                mut done,
                args,
                env,
            } => {
                done.push(v);
                if done.len() < args.len() {
                    let next = args[done.len()].clone();
                    self.frames.push(Frame::AppArg {
                        func,
                        done,
                        args,
                        env: env.clone(),
                    });
                    Ctrl::Eval(next, env)
                } else {
                    return self.beta(func, done);
                }
            }
            Frame::FoldF { ann } => Ctrl::Ret(FastVal::Fold {
                ann,
                body: Rc::new(v),
            }),
            Frame::UnfoldF => {
                let FastVal::Fold { body, .. } = &v else {
                    return Err(RuntimeError::Stuck(format!(
                        "unfold of a non-fold: {}",
                        reify_val(&v)
                    )));
                };
                tick!(self);
                if self.trace {
                    self.tracer.event(&Event::FStep);
                }
                Ctrl::Ret((**body).clone())
            }
            Frame::TupleF { mut done, es, env } => {
                done.push(v);
                if done.len() < es.len() {
                    let next = es[done.len()].clone();
                    self.frames.push(Frame::TupleF {
                        done,
                        es,
                        env: env.clone(),
                    });
                    Ctrl::Eval(next, env)
                } else {
                    Ctrl::Ret(FastVal::Tuple(Rc::new(done)))
                }
            }
            Frame::ProjF { idx } => {
                let FastVal::Tuple(vs) = &v else {
                    return Err(RuntimeError::Stuck(format!(
                        "projection from non-tuple: {}",
                        reify_val(&v)
                    )));
                };
                if idx == 0 || idx > vs.len() {
                    return Err(RuntimeError::Stuck(format!("pi[{idx}] out of range")));
                }
                tick!(self);
                if self.trace {
                    self.tracer.event(&Event::FStep);
                }
                Ctrl::Ret(vs[idx - 1].clone())
            }
            Frame::BoundaryT { .. } => {
                unreachable!("F value returned to a T frame")
            }
            Frame::ImportF { rd, ty, saved } => {
                // The import-of-a-value rewrite step (translate +
                // ImportExit), then the rewritten `mv` itself.
                tick!(self);
                let w = f_to_t_fast(&mut self.mem, &v, &ty)?;
                if self.trace {
                    self.tracer.event(&Event::ImportExit { rd });
                }
                tick!(self);
                if self.trace {
                    self.tracer.event(&Event::Instr);
                }
                self.mem.set_reg(rd, w);
                Ctrl::T(saved)
            }
        };
        Ok(Step::Continue(next))
    }

    fn beta(&mut self, func: FastVal, args: Vec<FastVal>) -> RResult<Step<T>> {
        let FastVal::Clos(c) = &func else {
            return Err(RuntimeError::Stuck(format!(
                "applying a non-function: {}",
                reify_val(&func)
            )));
        };
        let (params, _, _, _, body) = lam_parts(&c.lam);
        if params.len() != args.len() {
            return Err(RuntimeError::Stuck(format!(
                "arity mismatch: {} params, {} args",
                params.len(),
                args.len()
            )));
        }
        tick!(self);
        if self.trace {
            self.tracer.event(&Event::FBeta);
        }
        let env = c.env.extend(params.clone(), args);
        Ok(Step::Continue(Ctrl::Eval(body.clone(), env)))
    }

    // --- the T executor (cursor tier) -------------------------------------

    fn step_t(&mut self, t: TCtrl) -> RResult<Step<T>>
    where
        T: Tier<TCtrl = TCtrl>,
    {
        let TCtrl { seq, mut pc, env } = t;
        // Straight-line instructions loop here without re-entering the
        // dispatcher; control effects fall out to the match below.
        while pc < seq.instrs.len() {
            match &seq.instrs[pc] {
                FastInstr::Protect => {
                    // Typing-only; still one machine step, charged as
                    // a plain instruction so every tick has exactly
                    // one charging event (the profiler's invariant).
                    tick!(self);
                    if self.trace {
                        self.tracer.event(&Event::Instr);
                    }
                    pc += 1;
                }
                FastInstr::Import { rd, ty, body } => {
                    self.frames.push(Frame::ImportF {
                        rd: *rd,
                        ty: ty.clone(),
                        saved: TCtrl {
                            seq: seq.clone(),
                            pc: pc + 1,
                            env: env.clone(),
                        },
                    });
                    return Ok(Step::Continue(Ctrl::Eval(body.clone(), env.clone())));
                }
                FastInstr::Bnz { r, target } => {
                    tick!(self);
                    if self.trace {
                        self.tracer.event(&Event::Instr);
                    }
                    let n = self.mem.as_int(self.mem.reg(*r)?)?;
                    if n != 0 {
                        let (body, benv, to) = self.enter_target(target, 0, None)?;
                        if self.trace {
                            self.tracer.event(&Event::BnzTaken {
                                to: self.mem.names[to as usize].clone(),
                            });
                        }
                        return Ok(Step::Continue(Ctrl::T(TCtrl {
                            seq: body,
                            pc: 0,
                            env: benv,
                        })));
                    }
                    pc += 1;
                }
                instr => {
                    tick!(self);
                    if self.trace {
                        self.tracer.event(&Event::Instr);
                    }
                    self.exec(instr)?;
                    pc += 1;
                }
            }
        }
        match &seq.term {
            FastTerm::Jmp(u) => {
                tick!(self);
                let (body, benv, to) = self.enter_target(u, 0, None)?;
                if self.trace {
                    self.tracer.event(&Event::Jmp {
                        to: self.mem.names[to as usize].clone(),
                    });
                }
                Ok(Step::Continue(Ctrl::T(TCtrl {
                    seq: body,
                    pc: 0,
                    env: benv,
                })))
            }
            FastTerm::Call { target, sigma, q } => {
                tick!(self);
                let (body, benv, to) = self.enter_target(target, 2, Some((sigma, q)))?;
                if self.trace {
                    self.tracer.event(&Event::Call {
                        to: self.mem.names[to as usize].clone(),
                    });
                }
                Ok(Step::Continue(Ctrl::T(TCtrl {
                    seq: body,
                    pc: 0,
                    env: benv,
                })))
            }
            FastTerm::Ret { target, val } => {
                tick!(self);
                let w = self.mem.reg(*target)?.clone();
                let (body, benv, to) = self.enter(&w, 0, None)?;
                if self.trace {
                    self.tracer.event(&Event::Ret {
                        to: self.mem.names[to as usize].clone(),
                        val: *val,
                    });
                }
                Ok(Step::Continue(Ctrl::T(TCtrl {
                    seq: body,
                    pc: 0,
                    env: benv,
                })))
            }
            FastTerm::Halt { val } => self.halt(*val),
        }
    }

    pub(crate) fn halt(&mut self, val: Reg) -> RResult<Step<T>> {
        match self.frames.last() {
            Some(Frame::BoundaryT { .. }) => {
                // Fig 8: a boundary around a halt value translates —
                // one machine step.
                tick!(self);
                let Some(Frame::BoundaryT { ty }) = self.frames.pop() else {
                    unreachable!()
                };
                let w = self.mem.reg(val)?.clone();
                let v = t_to_f_fast(&mut self.mem, &w, &ty)?;
                if self.trace {
                    self.tracer
                        .event(&Event::BoundaryExit { ty: (*ty).clone() });
                }
                Ok(Step::Continue(Ctrl::Ret(v)))
            }
            None => {
                // Top-level T halt: detection costs the same loop
                // iteration the substitution machine spends on it.
                tick!(self);
                let w = self.mem.reg(val)?.clone();
                if self.trace {
                    self.tracer.event(&Event::Halt { reg: val });
                }
                Ok(Step::Done(FtOutcome::Halted(self.mem.reify_word(&w))))
            }
            Some(_) => Err(RuntimeError::Stuck(
                "halt reached inside step_ft_seq (caller should have handled it)".to_string(),
            )),
        }
    }

    pub(crate) fn eval_op(&self, op: &FastOp) -> RResult<TWord> {
        match op {
            FastOp::Reg(r) => self.mem.reg(*r).cloned(),
            FastOp::Word(w) => Ok(w.clone()),
            FastOp::Dyn(u) => {
                let w = self.eval_small(u)?;
                Ok(TWord::Big(Arc::new(w)))
            }
        }
    }

    /// The generic small-value evaluator for the rare wrapped operand
    /// shapes, mirroring [`funtal_tal::machine::eval_small`].
    fn eval_small(&self, u: &SmallVal) -> RResult<WordVal> {
        match u {
            SmallVal::Reg(r) => Ok(self.mem.reify_word(self.mem.reg(*r)?)),
            SmallVal::Word(w) => Ok(w.clone()),
            SmallVal::Pack { hidden, body, ann } => Ok(WordVal::Pack {
                hidden: hidden.clone(),
                body: Box::new(self.eval_small(body)?),
                ann: ann.clone(),
            }),
            SmallVal::Fold { ann, body } => Ok(WordVal::Fold {
                ann: ann.clone(),
                body: Box::new(self.eval_small(body)?),
            }),
            SmallVal::Inst { body, args } => Ok(self.eval_small(body)?.instantiate(args.clone())),
        }
    }

    /// [`Machine::enter`] through a [`FastTarget`]'s inline cache:
    /// a hit skips operand evaluation, label hashing, and the arity
    /// check (all fixed per constant target per memory).
    fn enter_target(
        &mut self,
        t: &FastTarget,
        extra_insts: usize,
        call_extra: Option<(&Arc<StackTy>, &Arc<funtal_syntax::RetMarker>)>,
    ) -> RResult<(Rc<FastSeq>, Env, u32)> {
        if !self.guard {
            let (mem_id, idx) = t.ic.get();
            if mem_id == self.mem.id {
                if let FastHeapVal::Code {
                    seq: Some(s), env, ..
                } = &self.mem.heap[idx as usize]
                {
                    return Ok((s.clone(), env.clone(), idx));
                }
            }
        }
        let w = self.eval_op(&t.op)?;
        let out = self.enter(&w, extra_insts, call_extra)?;
        if !self.guard && matches!(t.op, FastOp::Word(_)) {
            t.ic.set((self.mem.id, out.2));
        }
        Ok(out)
    }

    /// Resolves a jump-target word to its flat-heap index, counting
    /// pending instantiations (and collecting them when the dynamic
    /// guard needs their content). Shared by every tier's block entry.
    pub(crate) fn resolve_code(&self, w: &TWord) -> RResult<(u32, usize, Option<Vec<Inst>>)> {
        match w {
            TWord::Loc(i) => Ok((*i, 0, None)),
            TWord::Big(b) => {
                let (base, count) = peel_count(b);
                match base {
                    WordVal::Loc(l) => {
                        let i = self
                            .mem
                            .index
                            .get(l)
                            .copied()
                            .ok_or_else(|| RuntimeError::UnboundLabel(l.clone()))?;
                        let insts = self.guard.then(|| b.peel_insts().1);
                        Ok((i, count, insts))
                    }
                    other => Err(RuntimeError::NotCode(other.to_string())),
                }
            }
            other => Err(RuntimeError::NotCode(
                self.mem.reify_word(other).to_string(),
            )),
        }
    }

    /// Resolves a jump-target word to a block, arity-checks its
    /// instantiation, optionally runs the dynamic guard, and returns
    /// the compiled body plus the target label.
    fn enter(
        &mut self,
        w: &TWord,
        extra_insts: usize,
        call_extra: Option<(&Arc<StackTy>, &Arc<funtal_syntax::RetMarker>)>,
    ) -> RResult<(Rc<FastSeq>, Env, u32)> {
        let (idx, n_insts, insts) = self.resolve_code(w)?;
        // Fast path: the block is already compiled — two refcount
        // bumps and an arity check, no allocation.
        match &self.mem.heap[idx as usize] {
            FastHeapVal::Code {
                hv,
                seq: Some(s),
                env,
                ..
            } if !self.guard => {
                let HeapVal::Code(block) = &**hv else {
                    unreachable!()
                };
                if block.delta.len() != n_insts + extra_insts {
                    return Err(RuntimeError::BadInstantiation {
                        expected: block.delta.len(),
                        provided: n_insts + extra_insts,
                    });
                }
                return Ok((s.clone(), env.clone(), idx));
            }
            _ => {}
        }
        let (hv, cached, benv) = match &self.mem.heap[idx as usize] {
            FastHeapVal::Code { hv, seq, env, .. } => (hv.clone(), seq.clone(), env.clone()),
            FastHeapVal::Tuple { .. } => {
                return Err(RuntimeError::NotCode(format!(
                    "{} is a tuple",
                    self.mem.names[idx as usize]
                )))
            }
        };
        let HeapVal::Code(block) = &*hv else {
            unreachable!()
        };
        if block.delta.len() != n_insts + extra_insts {
            return Err(RuntimeError::BadInstantiation {
                expected: block.delta.len(),
                provided: n_insts + extra_insts,
            });
        }
        let compiled = match cached {
            Some(s) => s,
            None => {
                let s = compiled_block(&hv, &self.mem.names[idx as usize]);
                if let FastHeapVal::Code { seq, .. } = &mut self.mem.heap[idx as usize] {
                    *seq = Some(s.clone());
                }
                s
            }
        };
        if self.guard {
            let mut all_insts = insts.unwrap_or_default();
            if let Some((sigma, q)) = call_extra {
                all_insts.push(Inst::Stack((**sigma).clone()));
                all_insts.push(Inst::Ret((**q).clone()));
            }
            let subst = Subst::from_pairs(
                block
                    .delta
                    .iter()
                    .zip(&all_insts)
                    .map(|(d, i)| (d.var.clone(), i.clone())),
            );
            self.guard_entry(
                &self.mem.names[idx as usize].clone(),
                &subst.chi(&block.chi),
                &subst.stack(&block.sigma),
            )?;
        }
        Ok((compiled, benv, idx))
    }

    /// The dynamic type-safety guard over fast words, mirroring the
    /// shape checks of the substitution machine.
    pub(crate) fn guard_entry(
        &self,
        label: &Label,
        chi: &funtal_syntax::RegFileTy,
        sigma: &StackTy,
    ) -> RResult<()> {
        for (r, want) in chi.iter() {
            let Some(w) = self.regs_shape(r) else {
                return Err(RuntimeError::GuardViolation(format!(
                    "entering {label}: register {r} required at {want} but uninitialized"
                )));
            };
            let ok = match (want, w) {
                (TTy::Int, Shape::Int) => true,
                (TTy::Unit, Shape::Unit) => true,
                (TTy::Ref(_) | TTy::Boxed(_), Shape::Loc) => true,
                (TTy::Int | TTy::Unit, _) => false,
                _ => true,
            };
            if !ok {
                return Err(RuntimeError::GuardViolation(format!(
                    "entering {label}: register {r} required at {want}, holds {}",
                    self.mem.reify_word(self.mem.reg(r).expect("shape checked"))
                )));
            }
        }
        let depth = self.mem.stack.len();
        let visible = sigma.visible_len();
        let ok = match sigma.tail {
            StackTail::Empty => depth == visible,
            StackTail::Var(_) => depth >= visible,
        };
        if !ok {
            return Err(RuntimeError::GuardViolation(format!(
                "entering {label}: stack typed {sigma} but has depth {depth}"
            )));
        }
        Ok(())
    }

    fn regs_shape(&self, r: Reg) -> Option<Shape> {
        let w = self.mem.regs[ridx(r)].as_ref()?;
        Some(match w {
            TWord::Unit => Shape::Unit,
            TWord::Int(_) => Shape::Int,
            TWord::Loc(_) => Shape::Loc,
            TWord::Big(b) => match b.peel_insts().0 {
                WordVal::Unit => Shape::Unit,
                WordVal::Int(_) => Shape::Int,
                WordVal::Loc(_) => Shape::Loc,
                _ => Shape::Other,
            },
        })
    }

    fn exec(&mut self, instr: &FastInstr) -> RResult<()> {
        match instr {
            FastInstr::Arith { op, rd, rs, src } => {
                let a = self.mem.as_int(self.mem.reg(*rs)?)?;
                let b = self.mem.as_int(&self.eval_op(src)?)?;
                self.mem.set_reg(*rd, TWord::Int(op.apply(a, b)));
            }
            FastInstr::Ld { rd, rs, idx } => {
                let i = self.mem.loc_of(self.mem.reg(*rs)?)?;
                let FastHeapVal::Tuple { fields, .. } = &self.mem.heap[i as usize] else {
                    return Err(RuntimeError::NotTuple(format!(
                        "{} is code",
                        self.mem.names[i as usize]
                    )));
                };
                let w = fields
                    .get(*idx)
                    .ok_or(RuntimeError::BadFieldIndex(*idx))?
                    .clone();
                self.mem.set_reg(*rd, w);
            }
            FastInstr::St { rd, idx, rs } => {
                let i = self.mem.loc_of(self.mem.reg(*rd)?)?;
                let w = self.mem.reg(*rs)?.clone();
                let name = self.mem.names[i as usize].clone();
                let FastHeapVal::Tuple { mutability, fields } = &mut self.mem.heap[i as usize]
                else {
                    return Err(RuntimeError::NotTuple(format!("{name} is code")));
                };
                if *mutability != Mutability::Ref {
                    return Err(RuntimeError::ImmutableStore(name));
                }
                let slot = fields
                    .get_mut(*idx)
                    .ok_or(RuntimeError::BadFieldIndex(*idx))?;
                *slot = w;
            }
            FastInstr::Ralloc { rd, n } | FastInstr::Balloc { rd, n } => {
                let fields = self.mem.stack_pop_n(*n)?;
                let mutability = if matches!(instr, FastInstr::Ralloc { .. }) {
                    Mutability::Ref
                } else {
                    Mutability::Boxed
                };
                let i = self
                    .mem
                    .alloc("t", FastHeapVal::Tuple { mutability, fields });
                self.mem.set_reg(*rd, TWord::Loc(i));
            }
            FastInstr::Mv { rd, src } => {
                let w = self.eval_op(src)?;
                self.mem.set_reg(*rd, w);
            }
            FastInstr::Salloc(n) => {
                let len = self.mem.stack.len();
                self.mem.stack.resize(len + *n, TWord::Unit);
            }
            FastInstr::Sfree(n) => {
                self.mem.stack_drop_n(*n)?;
            }
            FastInstr::Sld { rd, idx } => {
                let w = self.mem.stack_get(*idx)?.clone();
                self.mem.set_reg(*rd, w);
            }
            FastInstr::Sst { idx, rs } => {
                let w = self.mem.reg(*rs)?.clone();
                self.mem.stack_set(*idx, w)?;
            }
            FastInstr::Unpack { rd, src } => {
                let w = self.eval_op(src)?;
                let TWord::Big(b) = &w else {
                    return Err(RuntimeError::NotPack(self.mem.reify_word(&w).to_string()));
                };
                let WordVal::Pack { body, .. } = &**b else {
                    return Err(RuntimeError::NotPack(self.mem.reify_word(&w).to_string()));
                };
                let inner = self.mem.tword_of_word(body);
                self.mem.set_reg(*rd, inner);
            }
            FastInstr::Unfold { rd, src } => {
                let w = self.eval_op(src)?;
                let TWord::Big(b) = &w else {
                    return Err(RuntimeError::NotFold(self.mem.reify_word(&w).to_string()));
                };
                let WordVal::Fold { body, .. } = &**b else {
                    return Err(RuntimeError::NotFold(self.mem.reify_word(&w).to_string()));
                };
                let inner = self.mem.tword_of_word(body);
                self.mem.set_reg(*rd, inner);
            }
            FastInstr::Protect | FastInstr::Import { .. } | FastInstr::Bnz { .. } => {
                unreachable!("handled by the sequence stepper")
            }
        }
        Ok(())
    }
}

/// Counts pending instantiations without cloning them; the machine is
/// type-erasing, so their content matters only to the (opt-in) dynamic
/// guard.
pub(crate) fn peel_count(w: &WordVal) -> (&WordVal, usize) {
    match w {
        WordVal::Inst { body, args } => {
            let (base, n) = peel_count(body);
            (base, n + args.len())
        }
        other => (other, 0),
    }
}

// ---------------------------------------------------------------------
// The cursor tier
// ---------------------------------------------------------------------

/// The compiled-cursor T tier: per-block [`FastSeq`]s entered through
/// the heap, with inline caches on constant jump targets.
pub(crate) struct CursorTier;

impl Tier for CursorTier {
    type TCtrl = TCtrl;

    fn boundary_ctrl(
        _m: &mut Machine<'_, Self>,
        comp: &Arc<TComp>,
        env: &Env,
        merge: MergeOutcome,
    ) -> TCtrl {
        // When no label was renamed the entry is the shared
        // component's own sequence: reuse its cached compile.
        let seq = match merge.renamed_entry {
            Some(entry) => Rc::new(compile_seq(&entry, ambient_root())),
            None => compiled_entry(comp),
        };
        TCtrl {
            seq,
            pc: 0,
            env: env.clone(),
        }
    }

    fn step_t(m: &mut Machine<'_, Self>, t: TCtrl) -> RResult<Step<Self>> {
        m.step_t(t)
    }
}

/// Runs an FT component with the environment-passing machine, reading
/// the initial state from `mem` and writing the final state back, so
/// callers observe exactly what the substitution machine would leave
/// behind.
pub fn run_fast(
    mem: &mut Memory,
    comp: &Component,
    cfg: RunCfg,
    tracer: &mut dyn Tracer,
) -> RResult<FtOutcome> {
    let fmem = FastMem::from_memory(mem);
    let mut machine = Machine {
        mem: fmem,
        frames: Vec::new(),
        fuel: cfg.fuel,
        guard: cfg.guard,
        trace: tracer.enabled(),
        tracer,
        tier: CursorTier,
    };
    let ctrl = match comp {
        Component::F(e) => Ctrl::Eval(IExpr::from_fexpr(e), Env::default()),
        Component::T(c) => {
            // The merge happens before the step loop (no fuel), as in
            // the substitution machine's `run`.
            let entry = machine
                .mem
                .merge_fragment(c, &Env::default())
                .renamed_entry
                .unwrap_or_else(|| c.seq.clone());
            Ctrl::T(TCtrl {
                seq: Rc::new(compile_seq(&entry, ambient_root())),
                pc: 0,
                env: Env::default(),
            })
        }
    };
    let result = machine.run(ctrl);
    machine.mem.write_back(mem);
    result
}
