//! The FT abstract machine (Fig 8 of the paper): mixed-language
//! small-step evaluation with boundary reductions.
//!
//! The two boundary rules are:
//!
//! ```text
//! ⟨M | E[τFT (halt τ𝒯, σ {r}, ·)]⟩ ↦ ⟨M' | E[v]⟩   if τℱ𝒯(R(r), M) = (v, M')
//! ⟨M | E[import rd, σ' TFτ v; I]⟩ ↦ ⟨M' | E[mv rd, w; I]⟩   if ᵗℱ𝒯(v, M) = (w, M')
//! ```
//!
//! Everything else is either an F reduction (performed structurally on
//! the expression) or a T step (delegated to the `funtal-tal` machine).

use std::collections::BTreeMap;

use funtal_syntax::subst::subst_fvars;
use funtal_syntax::{Component, FExpr, Instr, InstrSeq, SmallVal, TComp, Terminator, WordVal};
use funtal_tal::error::{RResult, RuntimeError};
use funtal_tal::machine::{step_seq_opts, MachineOpts, Memory, TStep};
use funtal_tal::trace::{Event, Tracer};

use crate::translate::{f_to_t, t_to_f};

/// How the machine evaluates: the paper-literal substitution semantics
/// or the environment-passing machine that computes the same thing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Term-rewriting small steps exactly as in Fig 8: every reduction
    /// rebuilds the term, β-reduction substitutes. The executable
    /// specification, kept as the differential-testing oracle.
    Substitution,
    /// The CEK-style machine of [`crate::machine_fast`]: explicit
    /// continuation stack + value environment for F, compiled-cursor
    /// execution with a flat heap for T. Observably identical
    /// (including fuel accounting, events, and fresh labels), much
    /// faster. The default.
    #[default]
    Environment,
    /// The direct-threaded bytecode VM of [`crate::machine_bc`]: each T
    /// component is lowered whole to a flat linear IR with jump targets
    /// resolved to absolute offsets, sharing the environment machine's
    /// F side. Observably identical to both other strategies; the
    /// fastest tier for T-heavy programs.
    Bytecode,
}

/// The execution-tier vocabulary the driver exposes (`--tier`): each
/// tier is an evaluation strategy of the same observable machine.
pub type ExecTier = EvalStrategy;

/// Configuration for a run.
#[derive(Clone, Copy, Debug)]
pub struct RunCfg {
    /// Maximum number of steps.
    pub fuel: u64,
    /// Enable the dynamic type-safety guard at every T jump.
    pub guard: bool,
    /// Which evaluator runs the program.
    pub strategy: EvalStrategy,
}

impl Default for RunCfg {
    fn default() -> Self {
        RunCfg {
            fuel: 1_000_000,
            guard: false,
            strategy: EvalStrategy::default(),
        }
    }
}

impl RunCfg {
    /// A configuration with the given fuel.
    pub fn with_fuel(fuel: u64) -> Self {
        RunCfg {
            fuel,
            ..Self::default()
        }
    }

    /// The same configuration under a different strategy.
    pub fn with_strategy(self, strategy: EvalStrategy) -> Self {
        RunCfg { strategy, ..self }
    }

    fn opts(&self) -> MachineOpts {
        MachineOpts { guard: self.guard }
    }
}

// The batch engine (`funtal-driver`) runs one machine per worker
// thread over artifacts shared via `Arc`. Everything a worker receives
// (configuration, programs, memories) and everything it sends back
// (outcomes) must therefore be `Send + Sync`; the fast machine's `Rc`
// values and thread-local compiled-block caches are per-worker
// internals and never cross threads. These assertions are the
// compile-time contract — adding an `Rc` or `Cell` to any shared type
// fails the build here, not intermittently at runtime.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<RunCfg>();
    require_send_sync::<EvalStrategy>();
    require_send_sync::<FtOutcome>();
    require_send_sync::<FExpr>();
    require_send_sync::<Component>();
    require_send_sync::<Memory>();
    require_send_sync::<RuntimeError>();
    // Pre-lowered bytecode is a shared batch artifact: workers run the
    // same lowered program concurrently.
    require_send_sync::<crate::machine_bc::LoweredProgram>();
};

/// The final outcome of running an FT component.
#[derive(Clone, Debug, PartialEq)]
pub enum FtOutcome {
    /// An F program reduced to a value.
    Value(FExpr),
    /// A top-level T program halted with a word value.
    Halted(WordVal),
    /// Fuel ran out.
    OutOfFuel,
}

impl FtOutcome {
    /// The F value, if this outcome is one.
    pub fn as_value(&self) -> Option<&FExpr> {
        match self {
            FtOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

enum FStepOut {
    Value,
    Next(FExpr),
}

/// Steps an F expression once. Boundaries and imports recurse into the
/// T machine and back.
fn step_fexpr(
    mem: &mut Memory,
    e: &FExpr,
    tracer: &mut dyn Tracer,
    opts: MachineOpts,
) -> RResult<FStepOut> {
    if e.is_value() {
        return Ok(FStepOut::Value);
    }
    Ok(FStepOut::Next(step_redex(mem, e, tracer, opts)?))
}

fn step_redex(
    mem: &mut Memory,
    e: &FExpr,
    tracer: &mut dyn Tracer,
    opts: MachineOpts,
) -> RResult<FExpr> {
    debug_assert!(!e.is_value());
    match e {
        FExpr::Var(x) => Err(RuntimeError::Stuck(format!("free variable {x}"))),
        FExpr::Unit | FExpr::Int(_) | FExpr::Lam(_) => unreachable!("values"),
        FExpr::Binop { op, lhs, rhs } => {
            if !lhs.is_value() {
                return Ok(FExpr::Binop {
                    op: *op,
                    lhs: Box::new(step_redex(mem, lhs, tracer, opts)?),
                    rhs: rhs.clone(),
                });
            }
            if !rhs.is_value() {
                return Ok(FExpr::Binop {
                    op: *op,
                    lhs: lhs.clone(),
                    rhs: Box::new(step_redex(mem, rhs, tracer, opts)?),
                });
            }
            let (FExpr::Int(a), FExpr::Int(b)) = (&**lhs, &**rhs) else {
                return Err(RuntimeError::Stuck(format!("binop on non-integers: {e}")));
            };
            tracer.event(&Event::FStep);
            Ok(FExpr::Int(op.apply(*a, *b)))
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            if !cond.is_value() {
                return Ok(FExpr::If0 {
                    cond: Box::new(step_redex(mem, cond, tracer, opts)?),
                    then_branch: then_branch.clone(),
                    else_branch: else_branch.clone(),
                });
            }
            let FExpr::Int(n) = &**cond else {
                return Err(RuntimeError::Stuck(format!("if0 on a non-integer: {e}")));
            };
            tracer.event(&Event::FStep);
            Ok(if *n == 0 {
                (**then_branch).clone()
            } else {
                (**else_branch).clone()
            })
        }
        FExpr::App { func, args } => {
            if !func.is_value() {
                return Ok(FExpr::App {
                    func: Box::new(step_redex(mem, func, tracer, opts)?),
                    args: args.clone(),
                });
            }
            if let Some(i) = args.iter().position(|a| !a.is_value()) {
                let mut args = args.clone();
                args[i] = step_redex(mem, &args[i], tracer, opts)?;
                return Ok(FExpr::App {
                    func: func.clone(),
                    args,
                });
            }
            let FExpr::Lam(lam) = &**func else {
                return Err(RuntimeError::Stuck(format!(
                    "applying a non-function: {func}"
                )));
            };
            if lam.params.len() != args.len() {
                return Err(RuntimeError::Stuck(format!(
                    "arity mismatch: {} params, {} args",
                    lam.params.len(),
                    args.len()
                )));
            }
            let map: BTreeMap<_, _> = lam
                .params
                .iter()
                .map(|(x, _)| x.clone())
                .zip(args.iter().cloned())
                .collect();
            tracer.event(&Event::FBeta);
            Ok(subst_fvars(&lam.body, &map))
        }
        FExpr::Fold { ann, body } => Ok(FExpr::Fold {
            ann: ann.clone(),
            body: Box::new(step_redex(mem, body, tracer, opts)?),
        }),
        FExpr::Unfold(body) => {
            if !body.is_value() {
                return Ok(FExpr::Unfold(Box::new(step_redex(
                    mem, body, tracer, opts,
                )?)));
            }
            let FExpr::Fold { body: inner, .. } = &**body else {
                return Err(RuntimeError::Stuck(format!("unfold of a non-fold: {body}")));
            };
            tracer.event(&Event::FStep);
            Ok((**inner).clone())
        }
        FExpr::Tuple(es) => {
            let Some(i) = es.iter().position(|a| !a.is_value()) else {
                unreachable!("tuple of values is a value")
            };
            let mut es = es.clone();
            es[i] = step_redex(mem, &es[i], tracer, opts)?;
            Ok(FExpr::Tuple(es))
        }
        FExpr::Proj { idx, tuple } => {
            if !tuple.is_value() {
                return Ok(FExpr::Proj {
                    idx: *idx,
                    tuple: Box::new(step_redex(mem, tuple, tracer, opts)?),
                });
            }
            let FExpr::Tuple(vs) = &**tuple else {
                return Err(RuntimeError::Stuck(format!(
                    "projection from non-tuple: {tuple}"
                )));
            };
            if *idx == 0 || *idx > vs.len() {
                return Err(RuntimeError::Stuck(format!("pi[{idx}] out of range")));
            }
            tracer.event(&Event::FStep);
            Ok(vs[*idx - 1].clone())
        }
        FExpr::Boundary {
            ty,
            sigma_out,
            comp,
        } => {
            // Merge the local heap fragment on first contact.
            if !comp.heap.is_empty() {
                tracer.event(&Event::BoundaryEnter { ty: ty.clone() });
                let seq = mem.merge_fragment(comp);
                return Ok(FExpr::Boundary {
                    ty: ty.clone(),
                    sigma_out: sigma_out.clone(),
                    comp: Box::new(TComp::bare(seq)),
                });
            }
            // Fig 8: boundary around a halt value translates.
            if comp.seq.is_halt_value() {
                let Terminator::Halt { val, .. } = &comp.seq.term else {
                    unreachable!()
                };
                let w = mem.reg(*val)?.clone();
                let v = t_to_f(mem, &w, ty)?;
                tracer.event(&Event::BoundaryExit { ty: ty.clone() });
                return Ok(v);
            }
            let seq = step_ft_seq(mem, comp.seq.clone(), tracer, opts)?;
            Ok(FExpr::Boundary {
                ty: ty.clone(),
                sigma_out: sigma_out.clone(),
                comp: Box::new(TComp::bare(seq)),
            })
        }
    }
}

/// Steps a T instruction sequence once, handling the multi-language
/// instructions and delegating everything else to the T machine.
///
/// The sequence must not be a bare halt (the caller translates or
/// reports those).
fn step_ft_seq(
    mem: &mut Memory,
    mut seq: InstrSeq,
    tracer: &mut dyn Tracer,
    opts: MachineOpts,
) -> RResult<InstrSeq> {
    match seq.instrs.first() {
        Some(Instr::Protect { .. }) => {
            // protect is typing-only, but still one machine step —
            // emit `Instr` so every fuel tick has exactly one charging
            // event (the profiler's invariant, identical in all tiers).
            tracer.event(&Event::Instr);
            seq.instrs.remove(0);
            Ok(seq)
        }
        Some(Instr::Import {
            rd,
            zeta,
            protected,
            ty,
            body,
        }) => {
            if body.is_value() {
                // Fig 8: import of a value becomes mv rd, w.
                let w = f_to_t(mem, body, ty)?;
                tracer.event(&Event::ImportExit { rd: *rd });
                let rd = *rd;
                seq.instrs.remove(0);
                seq.instrs.insert(
                    0,
                    Instr::Mv {
                        rd,
                        src: SmallVal::Word(w),
                    },
                );
                Ok(seq)
            } else {
                let next = step_redex(mem, body, tracer, opts)?;
                let new_head = Instr::Import {
                    rd: *rd,
                    zeta: zeta.clone(),
                    protected: protected.clone(),
                    ty: ty.clone(),
                    body: Box::new(next),
                };
                seq.instrs[0] = new_head;
                Ok(seq)
            }
        }
        _ => match step_seq_opts(mem, seq, tracer, opts)? {
            TStep::Next(next) => Ok(next),
            TStep::Halted { .. } => Err(RuntimeError::Stuck(
                "halt reached inside step_ft_seq (caller should have handled it)".to_string(),
            )),
        },
    }
}

/// Runs an FT component to completion (or until the fuel bound),
/// dispatching on the configured [`EvalStrategy`].
pub fn run(
    mem: &mut Memory,
    comp: &Component,
    cfg: RunCfg,
    tracer: &mut dyn Tracer,
) -> RResult<FtOutcome> {
    match cfg.strategy {
        EvalStrategy::Environment => crate::machine_fast::run_fast(mem, comp, cfg, tracer),
        EvalStrategy::Bytecode => crate::machine_bc::run_bc(mem, comp, cfg, tracer),
        EvalStrategy::Substitution => run_subst(mem, comp, cfg, tracer),
    }
}

/// The substitution-strategy runner (the Fig 8 oracle).
fn run_subst(
    mem: &mut Memory,
    comp: &Component,
    cfg: RunCfg,
    tracer: &mut dyn Tracer,
) -> RResult<FtOutcome> {
    match comp {
        Component::F(e) => {
            let mut cur = e.clone();
            for _ in 0..cfg.fuel {
                match step_fexpr(mem, &cur, tracer, cfg.opts())? {
                    FStepOut::Value => return Ok(FtOutcome::Value(cur)),
                    FStepOut::Next(next) => cur = next,
                }
            }
            if cur.is_value() {
                Ok(FtOutcome::Value(cur))
            } else {
                Ok(FtOutcome::OutOfFuel)
            }
        }
        Component::T(c) => {
            let mut seq = mem.merge_fragment(c);
            for _ in 0..cfg.fuel {
                if seq.is_halt_value() {
                    let Terminator::Halt { val, .. } = &seq.term else {
                        unreachable!()
                    };
                    let w = mem.reg(*val)?.clone();
                    tracer.event(&Event::Halt { reg: *val });
                    return Ok(FtOutcome::Halted(w));
                }
                seq = step_ft_seq(mem, seq, tracer, cfg.opts())?;
            }
            Ok(FtOutcome::OutOfFuel)
        }
    }
}

/// Runs a closed F expression in a fresh memory.
pub fn run_fexpr(e: &FExpr, cfg: RunCfg, tracer: &mut dyn Tracer) -> RResult<FtOutcome> {
    let mut mem = Memory::new();
    run(&mut mem, &Component::F(e.clone()), cfg, tracer)
}

/// Runs a closed F expression on a dedicated thread with a large stack.
///
/// The stepper recurses over the evaluation context, whose depth can
/// grow without bound in divergent programs (e.g. `factF(-1)` from Fig
/// 17 nests one multiplication frame per recursive call). Use this entry
/// point when probing divergence with large fuel bounds; plain
/// [`run_fexpr`] is fine for convergent programs, whose context depth is
/// proportional to the program's own nesting.
pub fn run_fexpr_threaded<T: Tracer + Send + 'static>(
    e: &FExpr,
    cfg: RunCfg,
    mut tracer: T,
) -> RResult<(FtOutcome, T)> {
    const STACK_BYTES: usize = 512 * 1024 * 1024;
    let e = e.clone();
    std::thread::Builder::new()
        .stack_size(STACK_BYTES)
        .spawn(move || {
            let out = run_fexpr(&e, cfg, &mut tracer);
            out.map(|o| (o, tracer))
        })
        .expect("spawning the evaluation thread")
        .join()
        .expect("evaluation thread panicked")
}

/// Runs a closed F expression with defaults and expects a value.
///
/// # Errors
///
/// Propagates machine errors; returns `Stuck` if fuel runs out.
pub fn eval_to_value(e: &FExpr, fuel: u64) -> RResult<FExpr> {
    match run_fexpr(
        e,
        RunCfg::with_fuel(fuel),
        &mut funtal_tal::trace::NullTracer,
    )? {
        FtOutcome::Value(v) => Ok(v),
        FtOutcome::Halted(w) => Err(RuntimeError::Stuck(format!(
            "expected an F value, program halted in T with {w}"
        ))),
        FtOutcome::OutOfFuel => Err(RuntimeError::Stuck("out of fuel".to_string())),
    }
}
