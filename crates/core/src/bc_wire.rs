//! Binary codecs for the bytecode tier's lowered artifacts.
//!
//! A [`LoweredProgram`] is two things: an interned term and the
//! per-component [`BcModule`]s keyed by *pointer identity* of the
//! term's `Arc<TComp>`s (the dispatch loop's module table is a
//! pointer-keyed map). Pointer identity obviously doesn't serialize,
//! so the encoding fixes a deterministic traversal instead:
//!
//! - the term is encoded as its plain [`FExpr`] tree;
//! - modules follow in **outer-first boundary order** — a depth-first
//!   walk of the term that, at each `Boundary`, emits that component's
//!   module and then recurses into the module's `Import` bodies
//!   (where nested boundaries live after lowering).
//!
//! Decoding re-interns the term (`IExpr::from_fexpr`, which never
//! shares components, so the walk is purely structural), replays the
//! same walk, and attaches the `i`-th decoded module to the `i`-th
//! boundary it visits. A count mismatch is a decode error. This
//! deliberately does *not* reuse `collect_modules`' inner-first order,
//! which cannot be replayed before the modules exist.
//!
//! Byte-level corruption is caught by the store container's checksum
//! before these codecs ever run; semantic staleness is caught by
//! running `verify_lowered` on the decoded program (the caller's
//! verify-on-load obligation).

use std::collections::HashMap;
use std::sync::Arc;

use funtal_store::{Reader, Wire, WireError, Writer};
use funtal_syntax::intern::{IExpr, IKind};
use funtal_syntax::{FExpr, Label, Span, TComp};

use crate::machine_bc::{lower_comp, BcModule, BcOp, BcTarget, LoweredProgram};
use crate::machine_fast::{FastOp, TWord};

impl Wire for TWord {
    fn encode(&self, w: &mut Writer) {
        match self {
            TWord::Unit => w.u8(0),
            TWord::Int(n) => {
                w.u8(1);
                w.i64(*n);
            }
            TWord::Loc(idx) => {
                w.u8(2);
                w.u32(*idx);
            }
            TWord::Big(v) => {
                w.u8(3);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(TWord::Unit),
            1 => Ok(TWord::Int(r.i64()?)),
            2 => Ok(TWord::Loc(r.u32()?)),
            3 => Ok(TWord::Big(Wire::decode(r)?)),
            tag => Err(WireError::BadTag { what: "TWord", tag }),
        }
    }
}

impl Wire for FastOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            FastOp::Reg(r) => {
                w.u8(0);
                r.encode(w);
            }
            FastOp::Word(v) => {
                w.u8(1);
                v.encode(w);
            }
            FastOp::Dyn(v) => {
                w.u8(2);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(FastOp::Reg(Wire::decode(r)?)),
            1 => Ok(FastOp::Word(TWord::decode(r)?)),
            2 => Ok(FastOp::Dyn(Wire::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "FastOp",
                tag,
            }),
        }
    }
}

impl Wire for BcTarget {
    fn encode(&self, w: &mut Writer) {
        match self {
            BcTarget::Static { off, ord, w: word } => {
                w.u8(0);
                w.u32(*off);
                w.u32(*ord);
                word.encode(w);
            }
            BcTarget::Dyn(op) => {
                w.u8(1);
                op.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BcTarget::Static {
                off: r.u32()?,
                ord: r.u32()?,
                w: TWord::decode(r)?,
            }),
            1 => Ok(BcTarget::Dyn(FastOp::decode(r)?)),
            tag => Err(WireError::BadTag {
                what: "BcTarget",
                tag,
            }),
        }
    }
}

impl Wire for BcOp {
    fn encode(&self, w: &mut Writer) {
        match self {
            BcOp::ArithRR { op, rd, rs, rt } => {
                w.u8(0);
                op.encode(w);
                rd.encode(w);
                rs.encode(w);
                rt.encode(w);
            }
            BcOp::ArithRI { op, rd, rs, imm } => {
                w.u8(1);
                op.encode(w);
                rd.encode(w);
                rs.encode(w);
                w.i64(*imm);
            }
            BcOp::ArithDyn { op, rd, rs, src } => {
                w.u8(2);
                op.encode(w);
                rd.encode(w);
                rs.encode(w);
                src.encode(w);
            }
            BcOp::MvInt { rd, imm } => {
                w.u8(3);
                rd.encode(w);
                w.i64(*imm);
            }
            BcOp::MvUnit { rd } => {
                w.u8(4);
                rd.encode(w);
            }
            BcOp::MvReg { rd, rs } => {
                w.u8(5);
                rd.encode(w);
                rs.encode(w);
            }
            BcOp::MvLbl { rd, ord } => {
                w.u8(6);
                rd.encode(w);
                w.u32(*ord);
            }
            BcOp::MvWord { rd, w: word } => {
                w.u8(7);
                rd.encode(w);
                word.encode(w);
            }
            BcOp::MvDyn { rd, src } => {
                w.u8(8);
                rd.encode(w);
                src.encode(w);
            }
            BcOp::Ld { rd, rs, idx } => {
                w.u8(9);
                rd.encode(w);
                rs.encode(w);
                idx.encode(w);
            }
            BcOp::St { rd, idx, rs } => {
                w.u8(10);
                rd.encode(w);
                idx.encode(w);
                rs.encode(w);
            }
            BcOp::Ralloc { rd, n } => {
                w.u8(11);
                rd.encode(w);
                n.encode(w);
            }
            BcOp::Balloc { rd, n } => {
                w.u8(12);
                rd.encode(w);
                n.encode(w);
            }
            BcOp::Salloc(n) => {
                w.u8(13);
                n.encode(w);
            }
            BcOp::Sfree(n) => {
                w.u8(14);
                n.encode(w);
            }
            BcOp::Sld { rd, idx } => {
                w.u8(15);
                rd.encode(w);
                idx.encode(w);
            }
            BcOp::Sst { idx, rs } => {
                w.u8(16);
                idx.encode(w);
                rs.encode(w);
            }
            BcOp::Unpack { rd, src } => {
                w.u8(17);
                rd.encode(w);
                src.encode(w);
            }
            BcOp::Unfold { rd, src } => {
                w.u8(18);
                rd.encode(w);
                src.encode(w);
            }
            BcOp::Protect => w.u8(19),
            BcOp::Import { rd, ty, body } => {
                w.u8(20);
                rd.encode(w);
                ty.encode(w);
                body.to_fexpr().encode(w);
            }
            BcOp::Bnz { r, t } => {
                w.u8(21);
                r.encode(w);
                t.encode(w);
            }
            BcOp::Jmp(t) => {
                w.u8(22);
                t.encode(w);
            }
            BcOp::Call { t, sigma, q } => {
                w.u8(23);
                t.encode(w);
                sigma.encode(w);
                q.encode(w);
            }
            BcOp::Ret { target, val } => {
                w.u8(24);
                target.encode(w);
                val.encode(w);
            }
            BcOp::Halt { val } => {
                w.u8(25);
                val.encode(w);
            }
            BcOp::Push { rs } => {
                w.u8(26);
                rs.encode(w);
            }
            BcOp::PushJmp { rs, t } => {
                w.u8(27);
                rs.encode(w);
                t.encode(w);
            }
            BcOp::SldPush { rd, idx } => {
                w.u8(28);
                rd.encode(w);
                idx.encode(w);
            }
            BcOp::PopArith { op, pr, rd, rs, rt } => {
                w.u8(29);
                op.encode(w);
                pr.encode(w);
                rd.encode(w);
                rs.encode(w);
                rt.encode(w);
            }
            BcOp::PopArithPush { op, pr, rd, rs, rt } => {
                w.u8(30);
                op.encode(w);
                pr.encode(w);
                rd.encode(w);
                rs.encode(w);
                rt.encode(w);
            }
            BcOp::SldSfree { rd, idx, n } => {
                w.u8(31);
                rd.encode(w);
                idx.encode(w);
                n.encode(w);
            }
            BcOp::PopRet { ra, n, val } => {
                w.u8(32);
                ra.encode(w);
                n.encode(w);
                val.encode(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.u8()? {
            0 => Ok(BcOp::ArithRR {
                op: Wire::decode(r)?,
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
                rt: Wire::decode(r)?,
            }),
            1 => Ok(BcOp::ArithRI {
                op: Wire::decode(r)?,
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
                imm: r.i64()?,
            }),
            2 => Ok(BcOp::ArithDyn {
                op: Wire::decode(r)?,
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
                src: FastOp::decode(r)?,
            }),
            3 => Ok(BcOp::MvInt {
                rd: Wire::decode(r)?,
                imm: r.i64()?,
            }),
            4 => Ok(BcOp::MvUnit {
                rd: Wire::decode(r)?,
            }),
            5 => Ok(BcOp::MvReg {
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
            }),
            6 => Ok(BcOp::MvLbl {
                rd: Wire::decode(r)?,
                ord: r.u32()?,
            }),
            7 => Ok(BcOp::MvWord {
                rd: Wire::decode(r)?,
                w: TWord::decode(r)?,
            }),
            8 => Ok(BcOp::MvDyn {
                rd: Wire::decode(r)?,
                src: FastOp::decode(r)?,
            }),
            9 => Ok(BcOp::Ld {
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
                idx: Wire::decode(r)?,
            }),
            10 => Ok(BcOp::St {
                rd: Wire::decode(r)?,
                idx: Wire::decode(r)?,
                rs: Wire::decode(r)?,
            }),
            11 => Ok(BcOp::Ralloc {
                rd: Wire::decode(r)?,
                n: Wire::decode(r)?,
            }),
            12 => Ok(BcOp::Balloc {
                rd: Wire::decode(r)?,
                n: Wire::decode(r)?,
            }),
            13 => Ok(BcOp::Salloc(Wire::decode(r)?)),
            14 => Ok(BcOp::Sfree(Wire::decode(r)?)),
            15 => Ok(BcOp::Sld {
                rd: Wire::decode(r)?,
                idx: Wire::decode(r)?,
            }),
            16 => Ok(BcOp::Sst {
                idx: Wire::decode(r)?,
                rs: Wire::decode(r)?,
            }),
            17 => Ok(BcOp::Unpack {
                rd: Wire::decode(r)?,
                src: FastOp::decode(r)?,
            }),
            18 => Ok(BcOp::Unfold {
                rd: Wire::decode(r)?,
                src: FastOp::decode(r)?,
            }),
            19 => Ok(BcOp::Protect),
            20 => {
                let rd = Wire::decode(r)?;
                let ty = Wire::decode(r)?;
                let body = FExpr::decode(r)?;
                Ok(BcOp::Import {
                    rd,
                    ty,
                    body: IExpr::from_fexpr(&body),
                })
            }
            21 => Ok(BcOp::Bnz {
                r: Wire::decode(r)?,
                t: BcTarget::decode(r)?,
            }),
            22 => Ok(BcOp::Jmp(BcTarget::decode(r)?)),
            23 => Ok(BcOp::Call {
                t: BcTarget::decode(r)?,
                sigma: Wire::decode(r)?,
                q: Wire::decode(r)?,
            }),
            24 => Ok(BcOp::Ret {
                target: Wire::decode(r)?,
                val: Wire::decode(r)?,
            }),
            25 => Ok(BcOp::Halt {
                val: Wire::decode(r)?,
            }),
            26 => Ok(BcOp::Push {
                rs: Wire::decode(r)?,
            }),
            27 => Ok(BcOp::PushJmp {
                rs: Wire::decode(r)?,
                t: BcTarget::decode(r)?,
            }),
            28 => Ok(BcOp::SldPush {
                rd: Wire::decode(r)?,
                idx: Wire::decode(r)?,
            }),
            29 => Ok(BcOp::PopArith {
                op: Wire::decode(r)?,
                pr: Wire::decode(r)?,
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
                rt: Wire::decode(r)?,
            }),
            30 => Ok(BcOp::PopArithPush {
                op: Wire::decode(r)?,
                pr: Wire::decode(r)?,
                rd: Wire::decode(r)?,
                rs: Wire::decode(r)?,
                rt: Wire::decode(r)?,
            }),
            31 => Ok(BcOp::SldSfree {
                rd: Wire::decode(r)?,
                idx: Wire::decode(r)?,
                n: Wire::decode(r)?,
            }),
            32 => Ok(BcOp::PopRet {
                ra: Wire::decode(r)?,
                n: Wire::decode(r)?,
                val: Wire::decode(r)?,
            }),
            tag => Err(WireError::BadTag { what: "BcOp", tag }),
        }
    }
}

impl Wire for BcModule {
    fn encode(&self, w: &mut Writer) {
        self.ops.encode(w);
        self.blocks.encode(w);
        self.entry_span.encode(w);
        self.spans.encode(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(BcModule {
            ops: Wire::decode(r)?,
            blocks: Vec::<(u32, usize)>::decode(r)?,
            entry_span: Span::decode(r)?,
            spans: Vec::<(Label, Span)>::decode(r)?,
        })
    }
}

/// Walks `e` depth-first, calling `visit` at each `Boundary` with its
/// component; `visit` returns the boundary's module, and the walk then
/// descends into that module's `Import` bodies (where nested
/// boundaries live once lowered).
fn walk_boundaries<F>(e: &IExpr, visit: &mut F) -> Result<(), WireError>
where
    F: FnMut(&Arc<TComp>) -> Result<Arc<BcModule>, WireError>,
{
    match e.kind() {
        IKind::Var(_) | IKind::Unit | IKind::Int(_) => Ok(()),
        IKind::Binop { lhs, rhs, .. } => {
            walk_boundaries(lhs, visit)?;
            walk_boundaries(rhs, visit)
        }
        IKind::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_boundaries(cond, visit)?;
            walk_boundaries(then_branch, visit)?;
            walk_boundaries(else_branch, visit)
        }
        IKind::Lam { body, .. } => walk_boundaries(body, visit),
        IKind::App { func, args } => {
            walk_boundaries(func, visit)?;
            for a in args.iter() {
                walk_boundaries(a, visit)?;
            }
            Ok(())
        }
        IKind::Fold { body, .. } => walk_boundaries(body, visit),
        IKind::Unfold(body) => walk_boundaries(body, visit),
        IKind::Tuple(es) => {
            for e in es.iter() {
                walk_boundaries(e, visit)?;
            }
            Ok(())
        }
        IKind::Proj { tuple, .. } => walk_boundaries(tuple, visit),
        IKind::Boundary { comp, .. } => {
            let module = visit(comp)?;
            for op in &module.ops {
                if let BcOp::Import { body, .. } = op {
                    walk_boundaries(body, visit)?;
                }
            }
            Ok(())
        }
    }
}

/// Encodes a lowered program (term + modules in outer-first boundary
/// order) for the persistent store.
pub fn encode_lowered(lp: &LoweredProgram) -> Vec<u8> {
    let mut w = Writer::new();
    lp.iexpr.to_fexpr().encode(&mut w);
    let by_ptr: HashMap<*const TComp, Arc<BcModule>> = lp
        .modules
        .iter()
        .map(|(c, m)| (Arc::as_ptr(c), m.clone()))
        .collect();
    let mut mods: Vec<Arc<BcModule>> = Vec::new();
    walk_boundaries(&lp.iexpr, &mut |comp| {
        // Every boundary has a module by `collect_modules`' invariant;
        // re-lower defensively rather than fail if one is missing.
        let m = by_ptr
            .get(&Arc::as_ptr(comp))
            .cloned()
            .unwrap_or_else(|| Arc::new(lower_comp(comp)));
        mods.push(m.clone());
        Ok(m)
    })
    .expect("encode walk is total");
    mods.encode(&mut w);
    w.into_vec()
}

/// Decodes a lowered program, re-interning the term and re-attaching
/// each module to its boundary by replaying the encode-time walk.
///
/// This restores the structure only; callers serving decoded programs
/// to the dispatch loop must still run
/// [`verify_lowered`](crate::verify_lowered) on the result
/// (verify-on-load).
pub fn decode_lowered(bytes: &[u8]) -> Result<LoweredProgram, WireError> {
    let mut r = Reader::new(bytes);
    let fe = FExpr::decode(&mut r)?;
    let decoded: Vec<Arc<BcModule>> = Wire::decode(&mut r)?;
    r.finish()?;
    let iexpr = IExpr::from_fexpr(&fe);
    let mut queue = decoded.into_iter();
    let mut modules: Vec<(Arc<TComp>, Arc<BcModule>)> = Vec::new();
    walk_boundaries(&iexpr, &mut |comp| {
        let m = queue.next().ok_or(WireError::Invalid {
            what: "fewer modules than boundaries",
        })?;
        modules.push((comp.clone(), m.clone()));
        Ok(m)
    })?;
    if queue.next().is_some() {
        return Err(WireError::Invalid {
            what: "more modules than boundaries",
        });
    }
    Ok(LoweredProgram { iexpr, modules })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine_bc::prelower;
    use crate::verify_lowered;
    use funtal_syntax::build::*;

    fn round_trip(e: &FExpr) -> LoweredProgram {
        let lp = prelower(e);
        let bytes = encode_lowered(&lp);
        let back = decode_lowered(&bytes).expect("decode");
        assert_eq!(back.iexpr.to_fexpr(), lp.iexpr.to_fexpr());
        assert_eq!(back.module_count(), lp.module_count());
        verify_lowered(&back).expect("decoded program verifies");
        back
    }

    #[test]
    fn plain_f_program_round_trips() {
        round_trip(&app(
            lam(vec![("x", fint())], fadd(var("x"), fint_e(1))),
            vec![fint_e(41)],
        ));
    }

    #[test]
    fn boundary_programs_round_trip() {
        use crate::figures;
        // (name, program, whether it contains T boundaries)
        let figs: Vec<(&str, FExpr, bool)> = vec![
            ("fig16_f1", figures::fig16_f1(), true),
            ("fig16_f2", figures::fig16_f2(), true),
            (
                "fig17_fact_f",
                FExpr::app(figures::fig17_fact_f(), vec![fint_e(5)]),
                false, // the pure-F factorial: no boundary, no modules
            ),
            (
                "fig17_fact_t",
                FExpr::app(figures::fig17_fact_t(), vec![fint_e(6)]),
                true,
            ),
            ("fig11_jit", figures::fig11_jit(), true),
            ("push7", figures::push7(), true),
        ];
        for (name, fig, has_boundaries) in figs {
            let lp = round_trip(&fig);
            assert_eq!(
                lp.module_count() > 0,
                has_boundaries,
                "{name} module coverage"
            );
        }
    }

    #[test]
    fn truncated_lowered_bytes_reject() {
        let lp = prelower(&fadd(fint_e(1), fint_e(2)));
        let bytes = encode_lowered(&lp);
        for cut in 0..bytes.len() {
            assert!(decode_lowered(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn surplus_modules_reject() {
        let lp = prelower(&fint_e(1));
        let mut bytes = encode_lowered(&lp);
        // The trailing module vector is empty (no boundaries); claim one.
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&1u64.to_le_bytes());
        assert!(decode_lowered(&bytes).is_err());
    }
}
