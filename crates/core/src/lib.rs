//! **FunTAL** — the FT multi-language of *"FunTAL: Reasonably Mixing a
//! Functional Language with Assembly"* (Patterson, Perconti, Dimoulas,
//! Ahmed; PLDI 2017).
//!
//! FT embeds the typed assembly language **T** (crate `funtal-tal`) in
//! the functional language **F** (crate `funtal-fun`) and vice versa:
//!
//! - boundaries `τFT e` use a T component as an F expression of type
//!   `τ` (Fig 6);
//! - the `import` instruction evaluates an F expression from inside
//!   assembly and places the translated value in a register;
//! - `protect` abstracts the stack tail so embedded code cannot touch
//!   it;
//! - stack-modifying lambdas `λ^{φi}_{φo}(x̄:τ̄).e` expose controlled
//!   stack effects to F.
//!
//! This crate provides the FT type system ([`check`], Fig 7), the
//! boundary type/value translations ([`translate`], Figs 9–10), the
//! mixed-language machine ([`machine`], Fig 8), the paper's mixed
//! examples ([`figures`]: the JIT example of Fig 11, the two-block
//! equivalence of Fig 16, the two factorials of Fig 17, and the push-7
//! stack-modifying lambda of §4.2), and the §4.2 mutable-reference
//! library ([`mutref`]).
//!
//! # Example
//!
//! Type-check and run the paper's JIT example (Fig 11), which calls
//! compiled assembly that calls back into an interpreted F function:
//!
//! ```
//! use funtal::check::typecheck;
//! use funtal::figures::fig11_jit;
//! use funtal::machine::eval_to_value;
//! use funtal_syntax::build::*;
//!
//! let e = fig11_jit();
//! assert_eq!(typecheck(&e)?, fint());
//! assert_eq!(eval_to_value(&e, 100_000)?, fint_e(2));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bc_verify;
pub mod bc_wire;
pub mod check;
pub mod cost;
pub mod figures;
pub mod lint;
pub mod machine;
pub mod machine_bc;
pub mod machine_fast;
pub mod mutref;
pub mod translate;

pub use bc_verify::{verify_lowered, BcVerifyError, ModuleVerifyError};
pub use bc_wire::{decode_lowered, encode_lowered};
pub use check::{type_of_fexpr, typecheck, typecheck_component, FtCtx, Gamma};
pub use cost::{infer_fuel, FuelBound};
pub use funtal_analysis::diag::{normalize, Diagnostic, Severity};
pub use lint::lint_program;
pub use machine::{eval_to_value, run, run_fexpr, EvalStrategy, ExecTier, FtOutcome, RunCfg};
pub use machine_bc::{prelower, prelower_spanned, run_prelowered, LoweredProgram};
pub use machine_fast::SpanScope;
pub use translate::{f_to_t, fty_to_tty, t_to_f};
