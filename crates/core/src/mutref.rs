//! A very basic mutable-reference library built from stack-modifying
//! lambdas, as sketched in §4.2 of the paper ("we use this feature to
//! implement a very basic mutable reference library").
//!
//! A "cell" is an `int` slot kept on the T stack. The library exposes
//! four stack-modifying combinators:
//!
//! | operation | type |
//! |-----------|------|
//! | [`new_cell`]  | `(int)[·; int::·] → unit` — push a cell   |
//! | [`get_cell`]  | `(unit)[int::·; int::·] → int` — read it  |
//! | [`set_cell`]  | `(int)[int::·; int::·] → unit` — write it |
//! | [`free_cell`] | `(unit)[int::·; ·] → unit` — pop it       |
//!
//! F code cannot observe or forge the cell except through these
//! combinators — exactly the kind of local, type-mediated side channel
//! the paper's §6 discussion contemplates.

use funtal_syntax::build::*;
use funtal_syntax::FExpr;

/// `(int)[·; int::·] → unit`: allocates a stack cell holding the
/// argument.
pub fn new_cell() -> FExpr {
    lam_sm(
        vec![("x", fint())],
        "z",
        vec![],
        vec![int()],
        boundary_out(
            funit(),
            stack(vec![int()], zvar("z")),
            tcomp(
                seq(
                    vec![
                        protect(vec![], "z2"),
                        import(r1(), "z3", zvar("z2"), fint(), var("x")),
                        salloc(1),
                        sst(0, r1()),
                        mv(r1(), unit_v()),
                    ],
                    halt(unit(), stack(vec![int()], zvar("z2")), r1()),
                ),
                vec![],
            ),
        ),
    )
}

/// `(unit)[int::·; int::·] → int`: reads the cell.
pub fn get_cell() -> FExpr {
    lam_sm(
        vec![("d", funit())],
        "z",
        vec![int()],
        vec![int()],
        boundary(
            fint(),
            tcomp(
                seq(
                    vec![protect(vec![int()], "z2"), sld(r1(), 0)],
                    halt(int(), stack(vec![int()], zvar("z2")), r1()),
                ),
                vec![],
            ),
        ),
    )
}

/// `(int)[int::·; int::·] → unit`: overwrites the cell.
pub fn set_cell() -> FExpr {
    lam_sm(
        vec![("x", fint())],
        "z",
        vec![int()],
        vec![int()],
        boundary(
            funit(),
            tcomp(
                seq(
                    vec![
                        protect(vec![int()], "z2"),
                        import(r1(), "z3", zvar("z2"), fint(), var("x")),
                        sst(0, r1()),
                        mv(r1(), unit_v()),
                    ],
                    halt(unit(), stack(vec![int()], zvar("z2")), r1()),
                ),
                vec![],
            ),
        ),
    )
}

/// `(unit)[int::·; ·] → unit`: frees the cell.
pub fn free_cell() -> FExpr {
    lam_sm(
        vec![("d", funit())],
        "z",
        vec![int()],
        vec![],
        boundary_out(
            funit(),
            zvar("z"),
            tcomp(
                seq(
                    vec![protect(vec![int()], "z2"), sfree(1), mv(r1(), unit_v())],
                    halt(unit(), zvar("z2"), r1()),
                ),
                vec![],
            ),
        ),
    )
}

/// A complete program using the library: allocate a cell holding
/// `init`, add `delta` to it through the cell, read the result, free
/// the cell, and return the read value.
///
/// Evaluates to `init + delta` (and leaves the stack empty).
pub fn cell_demo(init: i64, delta: i64) -> FExpr {
    // set(get(()) + delta) then get(()) — sequenced through a
    // stack-modifying lambda that keeps the cell exposed.
    let read_after_set = app(
        lam_sm(
            vec![("d", funit())],
            "zs",
            vec![int()],
            vec![int()],
            app(get_cell(), vec![funit_e()]),
        ),
        vec![app(
            set_cell(),
            vec![fadd(app(get_cell(), vec![funit_e()]), fint_e(delta))],
        )],
    );
    // Ordinary lambda sequencing: the stack is back to the ambient tail
    // after free_cell, so a plain lambda can collect the result.
    app(
        lam_z(
            vec![("d0", funit()), ("res", fint()), ("d1", funit())],
            "zz",
            var("res"),
        ),
        vec![
            app(new_cell(), vec![fint_e(init)]),
            read_after_set,
            app(free_cell(), vec![funit_e()]),
        ],
    )
}

#[cfg(test)]
mod tests {
    use crate::check::typecheck;
    use crate::machine::{eval_to_value, run_fexpr, FtOutcome, RunCfg};
    use funtal_syntax::build::*;
    use funtal_tal::trace::NullTracer;

    #[test]
    fn cell_demo_typechecks() {
        let t = typecheck(&super::cell_demo(10, 5)).unwrap();
        assert_eq!(t, fint());
    }

    #[test]
    fn cell_demo_runs() {
        let v = eval_to_value(&super::cell_demo(10, 5), 10_000).unwrap();
        assert_eq!(v, fint_e(15));
        let v = eval_to_value(&super::cell_demo(-3, 3), 10_000).unwrap();
        assert_eq!(v, fint_e(0));
    }

    #[test]
    fn cell_demo_runs_under_guard() {
        let cfg = RunCfg {
            fuel: 10_000,
            guard: true,
            ..RunCfg::default()
        };
        let out = run_fexpr(&super::cell_demo(7, 1), cfg, &mut NullTracer).unwrap();
        assert_eq!(out, FtOutcome::Value(fint_e(8)));
    }
}
