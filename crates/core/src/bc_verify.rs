//! The bytecode verifier: static well-formedness for [`BcModule`]s.
//!
//! The lowerer ([`crate::machine_bc`]) is trusted by the dispatch loop
//! to produce streams it can execute blindly — static jump offsets
//! land on block starts, fused superinstructions charge exactly the
//! fuel of the steps they fuse, and the register file is only read
//! where some write must have happened first. This module discharges
//! that trust statically, instruction by instruction:
//!
//! - **region structure**: block offsets are strictly increasing and
//!   in range, every region (entry sequence or block body) ends in a
//!   terminator, and no terminator appears mid-region;
//! - **static targets**: every [`BcTarget::Static`] points at the
//!   recorded offset of a *code* ordinal and its discharged
//!   instantiation-arity check matches the block table;
//! - **cost table**: every opcode's [`BcOp::fuel_cost`] equals the
//!   length of its independently enumerated expansion, so the fuel
//!   the dispatch loop charges is exactly what the unfused sequence
//!   would have charged (the profiler's certification hinges on this);
//! - **definite initialization**: a forward must-analysis over the
//!   region graph (via [`funtal_analysis`]) proves no register is
//!   read before every path to the read has written it. Fig 7 types
//!   T components under an *empty* register file, so the entry region
//!   starts from ∅; blocks whose label escapes as a first-class value
//!   can be entered from unknown contexts and start from ⊤.
//!
//! Debug builds run the verifier on everything [`prelower`] emits
//! (see `machine_bc.rs`); release callers opt in via
//! [`verify_lowered`] — verification is lower-time-only and never
//! touches the dispatch loop.
//!
//! [`prelower`]: crate::machine_bc::prelower

use std::collections::{HashMap, HashSet};
use std::fmt;

use funtal_analysis::{solve, Analysis, BitSet, Cfg, Direction};
use funtal_syntax::{Label, Reg, SmallVal, WordVal};

use crate::machine_bc::{BcModule, BcOp, BcTarget, LoweredProgram, NOT_CODE};
use crate::machine_fast::{peel_count, ridx, FastOp, TWord};

/// Size of the dense register file (`r1..r7`, `ra`).
pub(crate) const REG_FILE: usize = 8;

// The init-analysis bitsets index registers by `ridx`; keep the two
// in lock step.
const _: () = assert!(REG_FILE == Reg::ALL.len());

/// Why one [`BcModule`] failed verification. Offsets (`at`) index the
/// module's flat op stream; `ord` is a fragment ordinal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BcVerifyError {
    /// The op stream is empty (even an empty entry lowers to a
    /// terminator).
    EmptyModule,
    /// A code block's recorded offset points outside the op stream.
    BlockOffsetOutOfRange {
        /// The block's fragment ordinal.
        ord: usize,
        /// Its recorded offset.
        off: u32,
        /// The op-stream length.
        len: usize,
    },
    /// Code block offsets must be strictly increasing (each region
    /// non-empty, entry region first).
    BlockOffsetNotIncreasing {
        /// The offending block's fragment ordinal.
        ord: usize,
        /// Its recorded offset.
        off: u32,
        /// The previous code block's offset (0 for the entry).
        prev: u32,
    },
    /// A region's last instruction is not a terminator — control
    /// would fall off its end into the next block's body.
    MissingTerminator {
        /// The region's start offset.
        region_start: u32,
    },
    /// A terminator appears in the middle of a region, where no
    /// control transfer can reach the ops behind it.
    MidRegionTerminator {
        /// The terminator's offset.
        at: u32,
    },
    /// A static target names an ordinal that is out of range or a
    /// tuple.
    BadStaticOrdinal {
        /// The op's offset.
        at: u32,
        /// The target ordinal.
        ord: u32,
    },
    /// A static target's pre-resolved offset disagrees with the block
    /// table — the jump would land mid-stream.
    BadStaticOffset {
        /// The op's offset.
        at: u32,
        /// The target ordinal.
        ord: u32,
        /// The offset baked into the target.
        off: u32,
        /// The block table's offset for that ordinal.
        expected: u32,
    },
    /// A static target's instantiation count disagrees with the
    /// block's arity: the check the lowerer claims to have discharged
    /// does not hold.
    BadStaticArity {
        /// The op's offset.
        at: u32,
        /// The target ordinal.
        ord: u32,
        /// The block's instantiation arity.
        expected: usize,
        /// What the target word (plus call extras) provides.
        provided: usize,
    },
    /// An `MvLbl` references an ordinal outside the block table.
    BadLabelOrdinal {
        /// The op's offset.
        at: u32,
        /// The referenced ordinal.
        ord: u32,
    },
    /// A register is read on some path before any write reaches it.
    UninitializedRead {
        /// The reading op's offset.
        at: u32,
        /// The register read.
        reg: Reg,
    },
    /// An opcode's charged fuel differs from the length of its
    /// expansion into single-step instructions.
    BadFusedCost {
        /// The op's offset.
        at: u32,
        /// What [`BcOp::fuel_cost`] charges.
        charged: u64,
        /// The expansion's step count.
        expansion: u64,
    },
}

impl fmt::Display for BcVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BcVerifyError::EmptyModule => write!(f, "empty op stream"),
            BcVerifyError::BlockOffsetOutOfRange { ord, off, len } => write!(
                f,
                "block #{ord} offset {off} is outside the op stream (len {len})"
            ),
            BcVerifyError::BlockOffsetNotIncreasing { ord, off, prev } => write!(
                f,
                "block #{ord} offset {off} does not follow the previous region (at {prev})"
            ),
            BcVerifyError::MissingTerminator { region_start } => write!(
                f,
                "region starting at {region_start} does not end in a terminator"
            ),
            BcVerifyError::MidRegionTerminator { at } => {
                write!(f, "terminator at {at} in the middle of a region")
            }
            BcVerifyError::BadStaticOrdinal { at, ord } => write!(
                f,
                "static target at {at} names ordinal #{ord}, which is not a code block"
            ),
            BcVerifyError::BadStaticOffset {
                at,
                ord,
                off,
                expected,
            } => write!(
                f,
                "static target at {at} jumps to {off}, but block #{ord} starts at {expected}"
            ),
            BcVerifyError::BadStaticArity {
                at,
                ord,
                expected,
                provided,
            } => write!(
                f,
                "static target at {at} instantiates block #{ord} with {provided} \
                 arguments; it takes {expected}"
            ),
            BcVerifyError::BadLabelOrdinal { at, ord } => {
                write!(
                    f,
                    "mv at {at} references ordinal #{ord}, which does not exist"
                )
            }
            BcVerifyError::UninitializedRead { at, reg } => {
                write!(f, "op at {at} reads {reg} before it is initialized")
            }
            BcVerifyError::BadFusedCost {
                at,
                charged,
                expansion,
            } => write!(
                f,
                "op at {at} charges {charged} fuel but expands to {expansion} steps"
            ),
        }
    }
}

impl std::error::Error for BcVerifyError {}

/// A verification failure, locating the offending module within a
/// [`LoweredProgram`] (modules are numbered in lowering order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ModuleVerifyError {
    /// Index of the rejected module.
    pub module: usize,
    /// What the verifier found.
    pub error: BcVerifyError,
}

impl fmt::Display for ModuleVerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytecode module #{}: {}", self.module, self.error)
    }
}

impl std::error::Error for ModuleVerifyError {}

/// Verifies every module of a pre-lowered program. `Ok(())` means the
/// dispatch loop's structural assumptions hold for all of them.
pub fn verify_lowered(lp: &LoweredProgram) -> Result<(), ModuleVerifyError> {
    for (i, (_, m)) in lp.modules.iter().enumerate() {
        verify_module(m).map_err(|error| ModuleVerifyError { module: i, error })?;
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Region structure
// ---------------------------------------------------------------------

/// The region decomposition of a module plus its static control-flow
/// graph. Region 0 is the entry sequence; the rest are code-block
/// bodies in offset order.
pub(crate) struct ModuleRegions {
    /// Region start offsets (region `r` spans `starts[r]` up to
    /// `starts[r+1]`, the last up to the stream's end).
    pub(crate) starts: Vec<u32>,
    /// Each region's fragment ordinal (`None` for the entry).
    pub(crate) region_ord: Vec<Option<u32>>,
    /// Static CFG over regions (edges from static jump/branch/call
    /// targets only; dynamic transfers are modelled by `enterable`).
    pub(crate) cfg: Cfg,
    /// Regions that may be entered from outside the static graph:
    /// their block's label occurs as first-class data somewhere in
    /// the module (or the module has tuples, whose fields the lowered
    /// stream cannot see), so any context may jump to them.
    pub(crate) enterable: Vec<bool>,
}

impl ModuleRegions {
    /// The half-open op range of region `r`.
    pub(crate) fn range(&self, r: usize, ops_len: usize) -> std::ops::Range<usize> {
        let start = self.starts[r] as usize;
        let end = self
            .starts
            .get(r + 1)
            .map(|&o| o as usize)
            .unwrap_or(ops_len);
        start..end
    }
}

fn is_terminator(op: &BcOp) -> bool {
    matches!(
        op,
        BcOp::Jmp(_)
            | BcOp::Call { .. }
            | BcOp::Ret { .. }
            | BcOp::Halt { .. }
            | BcOp::PushJmp { .. }
            | BcOp::PopRet { .. }
    )
}

/// The constituent single-step instructions an opcode stands for —
/// enumerated independently of [`BcOp::fuel_cost`] (mirroring
/// `fuse_segment`'s patterns), so the cost-table check compares two
/// derivations of the same number. `Import` and `Halt` expand to
/// nothing *here*: the import round-trip is charged by the CEK
/// machine on the F value's return, and `halt` ticks inside the
/// shared `halt()` path.
pub(crate) fn expansion(op: &BcOp) -> &'static [&'static str] {
    match op {
        BcOp::Import { .. } | BcOp::Halt { .. } => &[],
        BcOp::Push { .. } => &["salloc", "sst"],
        BcOp::PushJmp { .. } => &["salloc", "sst", "jmp"],
        BcOp::SldPush { .. } => &["sld", "salloc", "sst"],
        BcOp::PopArith { .. } => &["sld", "sfree", "arith"],
        BcOp::PopArithPush { .. } => &["sld", "sfree", "arith", "salloc", "sst"],
        BcOp::SldSfree { .. } => &["sld", "sfree"],
        BcOp::PopRet { .. } => &["sld", "sfree", "ret"],
        _ => &["step"],
    }
}

fn scan_word(w: &WordVal, label_ord: &HashMap<&Label, u32>, out: &mut HashSet<u32>) {
    match w {
        WordVal::Unit | WordVal::Int(_) => {}
        WordVal::Loc(l) => {
            if let Some(&ord) = label_ord.get(l) {
                out.insert(ord);
            }
        }
        WordVal::Pack { body, .. } | WordVal::Fold { body, .. } | WordVal::Inst { body, .. } => {
            scan_word(body, label_ord, out)
        }
    }
}

fn scan_tword(w: &TWord, label_ord: &HashMap<&Label, u32>, out: &mut HashSet<u32>) {
    if let TWord::Big(b) = w {
        scan_word(b, label_ord, out);
    }
}

fn scan_small(v: &SmallVal, label_ord: &HashMap<&Label, u32>, out: &mut HashSet<u32>) {
    match v {
        SmallVal::Reg(_) => {}
        SmallVal::Word(w) => scan_word(w, label_ord, out),
        SmallVal::Pack { body, .. } | SmallVal::Fold { body, .. } | SmallVal::Inst { body, .. } => {
            scan_small(body, label_ord, out)
        }
    }
}

fn scan_fastop(op: &FastOp, label_ord: &HashMap<&Label, u32>, out: &mut HashSet<u32>) {
    match op {
        FastOp::Reg(_) => {}
        FastOp::Word(w) => scan_tword(w, label_ord, out),
        FastOp::Dyn(v) => scan_small(v, label_ord, out),
    }
}

/// Ordinals whose labels occur as first-class data in the op stream
/// (move sources, dynamic operands, pack/fold bodies). If the module
/// has tuple ordinals, every code ordinal is reported: tuple fields
/// are not part of the stream, so a label could escape through one
/// unseen.
fn escaping_ordinals(m: &BcModule) -> HashSet<u32> {
    let has_tuples = m.blocks.iter().any(|&(_, arity)| arity == NOT_CODE);
    if has_tuples {
        return (0..m.blocks.len() as u32).collect();
    }
    let label_ord: HashMap<&Label, u32> = m
        .spans
        .iter()
        .enumerate()
        .map(|(i, (l, _))| (l, i as u32))
        .collect();
    let mut out = HashSet::new();
    for op in &m.ops {
        match op {
            BcOp::MvLbl { ord, .. } => {
                out.insert(*ord);
            }
            BcOp::MvWord { w, .. } => scan_tword(w, &label_ord, &mut out),
            BcOp::MvDyn { src, .. }
            | BcOp::ArithDyn { src, .. }
            | BcOp::Unpack { src, .. }
            | BcOp::Unfold { src, .. } => scan_fastop(src, &label_ord, &mut out),
            BcOp::Jmp(BcTarget::Dyn(t))
            | BcOp::Bnz {
                t: BcTarget::Dyn(t),
                ..
            }
            | BcOp::Call {
                t: BcTarget::Dyn(t),
                ..
            }
            | BcOp::PushJmp {
                t: BcTarget::Dyn(t),
                ..
            } => scan_fastop(t, &label_ord, &mut out),
            _ => {}
        }
    }
    out
}

/// Validates the block table and region structure, checks every
/// operand (static targets, label ordinals, fused costs), and builds
/// the static CFG.
pub(crate) fn module_regions(m: &BcModule) -> Result<ModuleRegions, BcVerifyError> {
    if m.ops.is_empty() {
        return Err(BcVerifyError::EmptyModule);
    }
    // Block table: code offsets strictly increasing, in range. The
    // entry region occupies offset 0, so the first code block must
    // start past it.
    let mut starts = vec![0u32];
    let mut region_ord = vec![None];
    let mut prev = 0u32;
    for (ord, &(off, arity)) in m.blocks.iter().enumerate() {
        if arity == NOT_CODE {
            continue; // tuples occupy an ordinal but no code
        }
        if off as usize >= m.ops.len() {
            return Err(BcVerifyError::BlockOffsetOutOfRange {
                ord,
                off,
                len: m.ops.len(),
            });
        }
        if off <= prev && !(prev == 0 && starts.len() == 1 && off > 0) {
            return Err(BcVerifyError::BlockOffsetNotIncreasing { ord, off, prev });
        }
        starts.push(off);
        region_ord.push(Some(ord as u32));
        prev = off;
    }
    let ord_region: HashMap<u32, usize> = region_ord
        .iter()
        .enumerate()
        .filter_map(|(r, o)| o.map(|ord| (ord, r)))
        .collect();

    // Region scan: terminator placement, operand checks, CFG edges.
    let n = starts.len();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for r in 0..n {
        let start = starts[r] as usize;
        let end = starts
            .get(r + 1)
            .map(|&o| o as usize)
            .unwrap_or(m.ops.len());
        for (off, op) in m.ops[start..end].iter().enumerate() {
            let at = (start + off) as u32;
            let last = start + off == end - 1;
            if last && !is_terminator(op) {
                return Err(BcVerifyError::MissingTerminator {
                    region_start: start as u32,
                });
            }
            if !last && is_terminator(op) {
                return Err(BcVerifyError::MidRegionTerminator { at });
            }
            let charged = op.fuel_cost();
            let steps = expansion(op).len() as u64;
            if charged != steps {
                return Err(BcVerifyError::BadFusedCost {
                    at,
                    charged,
                    expansion: steps,
                });
            }
            let target = match op {
                BcOp::Jmp(t) | BcOp::Bnz { t, .. } | BcOp::PushJmp { t, .. } => Some((t, 0)),
                BcOp::Call { t, .. } => Some((t, 2)),
                _ => None,
            };
            if let Some((BcTarget::Static { off: toff, ord, w }, extra)) = target {
                let (boff, arity) = match m.blocks.get(*ord as usize) {
                    Some(&(boff, arity)) if arity != NOT_CODE => (boff, arity),
                    _ => return Err(BcVerifyError::BadStaticOrdinal { at, ord: *ord }),
                };
                if *toff != boff {
                    return Err(BcVerifyError::BadStaticOffset {
                        at,
                        ord: *ord,
                        off: *toff,
                        expected: boff,
                    });
                }
                let count = match w {
                    TWord::Big(b) => peel_count(b).1,
                    _ => 0,
                };
                if count + extra != arity {
                    return Err(BcVerifyError::BadStaticArity {
                        at,
                        ord: *ord,
                        expected: arity,
                        provided: count + extra,
                    });
                }
                edges.push((r, ord_region[ord]));
            }
            if let BcOp::MvLbl { ord, .. } = op {
                if *ord as usize >= m.blocks.len() {
                    return Err(BcVerifyError::BadLabelOrdinal { at, ord: *ord });
                }
            }
        }
    }

    let escaping = escaping_ordinals(m);
    let enterable: Vec<bool> = region_ord
        .iter()
        .map(|o| o.is_some_and(|ord| escaping.contains(&ord)))
        .collect();
    Ok(ModuleRegions {
        cfg: Cfg::new(n, 0, edges),
        starts,
        region_ord,
        enterable,
    })
}

// ---------------------------------------------------------------------
// Definite initialization
// ---------------------------------------------------------------------

/// One register effect of an opcode, in execution order.
pub(crate) enum Eff {
    /// A read.
    R(Reg),
    /// A write.
    W(Reg),
}

/// The register reads and writes of one opcode, in the order the
/// dispatch loop (or the fused op's expansion) performs them — order
/// matters for superinstructions whose popped register may alias an
/// operand (`PopArith` writes `pr` before reading `rs`/`rt`).
pub(crate) fn effects(op: &BcOp, out: &mut Vec<Eff>) {
    use Eff::{R, W};
    let target = |t: &BcTarget, out: &mut Vec<Eff>| {
        if let BcTarget::Dyn(FastOp::Reg(r)) = t {
            out.push(R(*r));
        }
    };
    let src_reads = |src: &FastOp, out: &mut Vec<Eff>| {
        if let FastOp::Reg(r) = src {
            out.push(R(*r));
        }
    };
    match op {
        BcOp::ArithRR { rd, rs, rt, .. } => out.extend([R(*rs), R(*rt), W(*rd)]),
        BcOp::ArithRI { rd, rs, .. } => out.extend([R(*rs), W(*rd)]),
        BcOp::ArithDyn { rd, rs, src, .. } => {
            out.push(R(*rs));
            src_reads(src, out);
            out.push(W(*rd));
        }
        BcOp::MvInt { rd, .. }
        | BcOp::MvUnit { rd }
        | BcOp::MvLbl { rd, .. }
        | BcOp::MvWord { rd, .. } => out.push(W(*rd)),
        BcOp::MvReg { rd, rs } => out.extend([R(*rs), W(*rd)]),
        BcOp::MvDyn { rd, src } | BcOp::Unpack { rd, src } | BcOp::Unfold { rd, src } => {
            src_reads(src, out);
            out.push(W(*rd));
        }
        BcOp::Ld { rd, rs, .. } => out.extend([R(*rs), W(*rd)]),
        BcOp::St { rd, rs, .. } => out.extend([R(*rd), R(*rs)]),
        BcOp::Ralloc { rd, .. } | BcOp::Balloc { rd, .. } => out.push(W(*rd)),
        BcOp::Salloc(_) | BcOp::Sfree(_) | BcOp::Protect => {}
        BcOp::Sld { rd, .. } => out.push(W(*rd)),
        BcOp::Sst { rs, .. } => out.push(R(*rs)),
        BcOp::Import { rd, .. } => out.push(W(*rd)),
        BcOp::Bnz { r, t } => {
            out.push(R(*r));
            target(t, out);
        }
        BcOp::Jmp(t) => target(t, out),
        BcOp::Call { t, .. } => target(t, out),
        // `ret` reads only the target register at dispatch; the value
        // register is the *continuation's* read (covered by liveness
        // in the lint layer, not by definite initialization).
        BcOp::Ret { target: t, .. } => out.push(R(*t)),
        BcOp::Halt { val } => out.push(R(*val)),
        BcOp::Push { rs } => out.push(R(*rs)),
        BcOp::PushJmp { rs, t } => {
            out.push(R(*rs));
            target(t, out);
        }
        BcOp::SldPush { rd, .. } => out.push(W(*rd)),
        BcOp::PopArith { pr, rd, rs, rt, .. } | BcOp::PopArithPush { pr, rd, rs, rt, .. } => {
            out.extend([W(*pr), R(*rs), R(*rt), W(*rd)])
        }
        BcOp::SldSfree { rd, .. } => out.push(W(*rd)),
        BcOp::PopRet { ra, .. } => out.push(W(*ra)),
    }
}

/// Forward must-initialization over regions. Facts are `None` for
/// statically unreachable regions (⊤) and `Some(set)` for the
/// registers written on *every* path; joins intersect.
struct InitAnalysis<'a> {
    m: &'a BcModule,
    regions: &'a ModuleRegions,
}

impl InitAnalysis<'_> {
    fn walk(&self, r: usize, fact: BitSet) -> BitSet {
        let mut fact = fact;
        let mut effs = Vec::new();
        for op in &self.m.ops[self.regions.range(r, self.m.ops.len())] {
            effs.clear();
            effects(op, &mut effs);
            for e in &effs {
                if let Eff::W(reg) = e {
                    fact.insert(ridx(*reg));
                }
            }
        }
        fact
    }
}

impl Analysis for InitAnalysis<'_> {
    type Fact = Option<BitSet>;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn init_fact(&self) -> Option<BitSet> {
        None
    }

    fn boundary_fact(&self, b: usize) -> Option<Option<BitSet>> {
        if b == 0 {
            // Fig 7: T components are checked under an empty register
            // file, so the machine enters the entry sequence with no
            // register initialized.
            Some(Some(BitSet::EMPTY))
        } else if self.regions.enterable[b] {
            // The block's label escapes: any context may enter it, and
            // the verifier cannot know with what. Assume everything is
            // initialized (never flag) — the guard tier re-checks the
            // register typing dynamically when enabled.
            Some(Some(BitSet::full(REG_FILE)))
        } else {
            None
        }
    }

    fn join(&self, into: &mut Option<BitSet>, from: &Option<BitSet>) -> bool {
        let next = match (&*into, from) {
            (None, f) => *f,
            (f, None) => *f,
            (Some(a), Some(b)) => Some(a.intersect(*b)),
        };
        let changed = next != *into;
        *into = next;
        changed
    }

    fn transfer(&self, block: usize, fact: &Option<BitSet>) -> Option<BitSet> {
        fact.map(|f| self.walk(block, f))
    }
}

fn check_init(m: &BcModule, regions: &ModuleRegions) -> Result<(), BcVerifyError> {
    let analysis = InitAnalysis { m, regions };
    let sol = solve(&analysis, &regions.cfg);
    for r in 0..regions.cfg.node_count() {
        let Some(mut fact) = sol.inputs[r] else {
            continue; // statically unreachable and not enterable
        };
        let range = regions.range(r, m.ops.len());
        let mut effs = Vec::new();
        for (off, op) in m.ops[range.clone()].iter().enumerate() {
            effs.clear();
            effects(op, &mut effs);
            for e in &effs {
                match e {
                    Eff::R(reg) => {
                        if !fact.contains(ridx(*reg)) {
                            return Err(BcVerifyError::UninitializedRead {
                                at: (range.start + off) as u32,
                                reg: *reg,
                            });
                        }
                    }
                    Eff::W(reg) => fact.insert(ridx(*reg)),
                }
            }
        }
    }
    Ok(())
}

/// Verifies one module: region structure, static targets, cost table,
/// and definite register initialization.
pub(crate) fn verify_module(m: &BcModule) -> Result<(), BcVerifyError> {
    let regions = module_regions(m)?;
    check_init(m, &regions)
}

/// Corrupts the first lowered module so [`verify_lowered`] rejects it
/// (an out-of-bounds block offset), returning `false` when the program
/// has no modules to corrupt. Test support for verify-on-load
/// consumers — the driver's artifact cache proves a poisoned cache
/// entry degrades to re-lowering — not part of the public API.
#[doc(hidden)]
pub fn corrupt_for_tests(lp: &mut LoweredProgram) -> bool {
    let Some((_, module)) = lp.modules.first_mut() else {
        return false;
    };
    let m: &BcModule = module;
    let mut blocks = m.blocks.clone();
    blocks.push((u32::MAX, 0));
    *module = std::sync::Arc::new(BcModule {
        ops: m.ops.clone(),
        blocks,
        entry_span: m.entry_span,
        spans: m.spans.clone(),
    });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures;
    use crate::machine_bc::prelower;

    fn clone_module(m: &BcModule) -> BcModule {
        BcModule {
            ops: m.ops.clone(),
            blocks: m.blocks.clone(),
            entry_span: m.entry_span,
            spans: m.spans.clone(),
        }
    }

    fn modules_of(e: &funtal_syntax::FExpr) -> Vec<BcModule> {
        prelower(e)
            .modules
            .iter()
            .map(|(_, m)| clone_module(m))
            .collect()
    }

    #[test]
    fn accepts_every_figure() {
        for (name, e) in [
            ("fig16_f1", figures::fig16_f1()),
            ("fig16_f2", figures::fig16_f2()),
            ("fig17_fact_f", figures::fig17_fact_f()),
            ("fig17_fact_t", figures::fig17_fact_t()),
            ("fig11_jit", figures::fig11_jit()),
            ("push7", figures::push7()),
        ] {
            for (i, m) in modules_of(&e).iter().enumerate() {
                assert!(
                    verify_module(m).is_ok(),
                    "{name} module {i}: {:?}",
                    verify_module(m)
                );
            }
        }
    }

    #[test]
    fn cost_table_matches_expansions() {
        use funtal_syntax::ArithOp;
        let r = Reg::R1;
        let fused = [
            (BcOp::Push { rs: r }, 2),
            (BcOp::SldPush { rd: r, idx: 0 }, 3),
            (
                BcOp::PopArith {
                    op: ArithOp::Add,
                    pr: r,
                    rd: r,
                    rs: r,
                    rt: r,
                },
                3,
            ),
            (
                BcOp::PopArithPush {
                    op: ArithOp::Add,
                    pr: r,
                    rd: r,
                    rs: r,
                    rt: r,
                },
                5,
            ),
            (
                BcOp::SldSfree {
                    rd: r,
                    idx: 0,
                    n: 1,
                },
                2,
            ),
            (
                BcOp::PopRet {
                    ra: r,
                    n: 1,
                    val: r,
                },
                3,
            ),
        ];
        for (op, steps) in &fused {
            assert_eq!(op.fuel_cost(), *steps, "{op:?}");
            assert_eq!(expansion(op).len() as u64, *steps, "{op:?}");
        }
        // Plain ops tick once; suspension points charge nothing at
        // dispatch.
        assert_eq!(BcOp::Protect.fuel_cost(), 1);
        assert_eq!(BcOp::Halt { val: r }.fuel_cost(), 0);
    }

    /// A deterministic splitmix64 for the seeded mutation sweep.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Positions of ops holding a static target.
    fn static_sites(m: &BcModule) -> Vec<usize> {
        m.ops
            .iter()
            .enumerate()
            .filter(|(_, op)| {
                matches!(
                    op,
                    BcOp::Jmp(BcTarget::Static { .. })
                        | BcOp::Bnz {
                            t: BcTarget::Static { .. },
                            ..
                        }
                        | BcOp::Call {
                            t: BcTarget::Static { .. },
                            ..
                        }
                        | BcOp::PushJmp {
                            t: BcTarget::Static { .. },
                            ..
                        }
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    fn static_target_mut(op: &mut BcOp) -> &mut BcTarget {
        match op {
            BcOp::Jmp(t) | BcOp::Bnz { t, .. } | BcOp::Call { t, .. } | BcOp::PushJmp { t, .. } => {
                t
            }
            _ => panic!("not a target op"),
        }
    }

    /// Every seeded mutation of a valid module must be rejected, with
    /// the error class matching the mutation.
    #[test]
    fn seeded_mutations_are_rejected() {
        let corpus: Vec<BcModule> = [
            figures::fig17_fact_t(),
            figures::fig16_f2(),
            figures::fig11_jit(),
            figures::push7(),
        ]
        .iter()
        .flat_map(modules_of)
        .collect();
        let mut mutations = 0;
        for seed in 0..64u64 {
            let mut rng = Rng(seed);
            let base = &corpus[rng.below(corpus.len())];
            let mut m = clone_module(base);
            match rng.below(6) {
                // Nudge a static jump offset off its block start.
                0 => {
                    let sites = static_sites(&m);
                    if sites.is_empty() {
                        continue;
                    }
                    let at = sites[rng.below(sites.len())];
                    if let BcTarget::Static { off, .. } = static_target_mut(&mut m.ops[at]) {
                        *off += 1;
                    }
                    assert!(
                        matches!(
                            verify_module(&m),
                            Err(BcVerifyError::BadStaticOffset { .. })
                        ),
                        "seed {seed}: {:?}",
                        verify_module(&m)
                    );
                }
                // Redirect a static target to a different ordinal.
                1 => {
                    let sites = static_sites(&m);
                    if sites.is_empty() || m.blocks.is_empty() {
                        continue;
                    }
                    let at = sites[rng.below(sites.len())];
                    if let BcTarget::Static { ord, .. } = static_target_mut(&mut m.ops[at]) {
                        *ord = (*ord + 1) % (m.blocks.len() as u32 + 1);
                    }
                    assert!(
                        matches!(
                            verify_module(&m),
                            Err(BcVerifyError::BadStaticOrdinal { .. })
                                | Err(BcVerifyError::BadStaticOffset { .. })
                                | Err(BcVerifyError::BadStaticArity { .. })
                        ),
                        "seed {seed}: {:?}",
                        verify_module(&m)
                    );
                }
                // Drop a region's terminator.
                2 => {
                    let regions = module_regions(&m).unwrap();
                    let r = rng.below(regions.starts.len());
                    let range = regions.range(r, m.ops.len());
                    m.ops[range.end - 1] = BcOp::Protect;
                    assert!(
                        matches!(
                            verify_module(&m),
                            Err(BcVerifyError::MissingTerminator { .. })
                        ),
                        "seed {seed}: {:?}",
                        verify_module(&m)
                    );
                }
                // Plant a terminator mid-region.
                3 => {
                    let regions = module_regions(&m).unwrap();
                    let wide: Vec<usize> = (0..regions.starts.len())
                        .filter(|&r| regions.range(r, m.ops.len()).len() >= 2)
                        .collect();
                    if wide.is_empty() {
                        continue;
                    }
                    let r = wide[rng.below(wide.len())];
                    let range = regions.range(r, m.ops.len());
                    m.ops[range.start] = BcOp::Halt { val: Reg::R1 };
                    assert!(
                        matches!(
                            verify_module(&m),
                            Err(BcVerifyError::MidRegionTerminator { .. })
                        ),
                        "seed {seed}: {:?}",
                        verify_module(&m)
                    );
                }
                // Point a block-table entry outside the stream.
                4 => {
                    let code: Vec<usize> = (0..m.blocks.len())
                        .filter(|&i| m.blocks[i].1 != NOT_CODE)
                        .collect();
                    if code.is_empty() {
                        continue;
                    }
                    let ord = code[rng.below(code.len())];
                    m.blocks[ord].0 = m.ops.len() as u32 + rng.below(7) as u32;
                    assert!(
                        matches!(
                            verify_module(&m),
                            Err(BcVerifyError::BlockOffsetOutOfRange { .. })
                        ),
                        "seed {seed}: {:?}",
                        verify_module(&m)
                    );
                }
                // Dangle an `mv`'s label ordinal.
                _ => {
                    let sites: Vec<usize> = m
                        .ops
                        .iter()
                        .enumerate()
                        .filter(|(_, op)| matches!(op, BcOp::MvLbl { .. }))
                        .map(|(i, _)| i)
                        .collect();
                    if sites.is_empty() {
                        continue;
                    }
                    let at = sites[rng.below(sites.len())];
                    if let BcOp::MvLbl { ord, .. } = &mut m.ops[at] {
                        *ord = m.blocks.len() as u32 + 3;
                    }
                    assert!(
                        matches!(
                            verify_module(&m),
                            Err(BcVerifyError::BadLabelOrdinal { .. })
                        ),
                        "seed {seed}: {:?}",
                        verify_module(&m)
                    );
                }
            }
            mutations += 1;
        }
        assert!(mutations >= 40, "only {mutations} mutations exercised");
    }

    /// Reading a register the entry never wrote is flagged by the
    /// init analysis (Fig 7's empty-register-file entry).
    #[test]
    fn uninitialized_read_is_rejected() {
        let mut ms = modules_of(&figures::push7());
        let m = &mut ms[0];
        // Find the first write in the entry region and redirect a
        // later read at it.
        let mut redirected = false;
        for op in &mut m.ops {
            if let BcOp::Halt { val } = op {
                *val = Reg::R7; // push7's entry never touches r7
                redirected = true;
                break;
            }
        }
        assert!(redirected, "push7 entry has no halt");
        assert!(matches!(
            verify_module(m),
            Err(BcVerifyError::UninitializedRead { reg: Reg::R7, .. })
        ));
    }

    /// Escaping labels neutralize the init analysis for their blocks
    /// (they may be entered from unknown contexts), but the entry
    /// region is still checked from the empty file.
    #[test]
    fn entry_checked_even_with_escaping_labels() {
        let ms = modules_of(&figures::fig17_fact_t());
        for m in &ms {
            assert!(verify_module(m).is_ok());
        }
    }
}
