//! Certification of static fuel-bound inference against the profiler.
//!
//! [`funtal::infer_fuel`] claims *exactness*: when it returns
//! [`FuelBound::Exact(n)`], the program consumes precisely `n` fuel.
//! This suite holds it to that claim on three fronts:
//!
//! 1. every loop-free paper figure gets an `Exact` bound equal to the
//!    dynamically measured total of the span profiler (which is itself
//!    certified equal to the minimal sufficient fuel);
//! 2. programs with static T loops (the Fig 17 T factorial, the
//!    compiled MiniF programs) are refused with `Unknown` — never a
//!    wrong number;
//! 3. on a generated corpus, *whenever* inference commits to `Exact`
//!    the number is right (soundness under fresh seeds), and the
//!    loop-free seeds do commit (the analysis is not vacuous).

use std::sync::Arc;

use funtal::figures::*;
use funtal::machine::{run, run_fexpr, EvalStrategy, FtOutcome, RunCfg};
use funtal::{infer_fuel, prelower, FuelBound};
use funtal_equiv::gen::{gen_context, gen_value, SplitMix};
use funtal_syntax::build::*;
use funtal_syntax::span::SpanTable;
use funtal_syntax::{Component, FExpr, FTy};
use funtal_tal::machine::Memory;
use funtal_tal::trace::NullTracer;
use funtal_tal::{Profiler, RootLang};

/// The dynamically measured fuel total for an F program, via the span
/// profiler (every tick is charged to exactly one span, so the
/// attributed total is the run's step count).
fn measured_total(e: &FExpr) -> u64 {
    let mut profiler = Profiler::new(Arc::new(SpanTable::default()), RootLang::F);
    let mut mem = Memory::new();
    run(
        &mut mem,
        &Component::F(e.clone()),
        RunCfg::with_fuel(10_000_000).with_strategy(EvalStrategy::Bytecode),
        &mut profiler,
    )
    .unwrap();
    profiler.total()
}

/// The least fuel under which the bytecode tier completes.
fn minimal_fuel(e: &FExpr) -> u64 {
    let done = |fuel: u64| {
        !matches!(
            run_fexpr(
                e,
                RunCfg::with_fuel(fuel).with_strategy(EvalStrategy::Bytecode),
                &mut NullTracer,
            ),
            Ok(FtOutcome::OutOfFuel)
        )
    };
    if done(0) {
        return 0;
    }
    let mut hi = 1u64;
    while !done(hi) {
        hi *= 2;
        assert!(hi < 1 << 32, "program does not terminate");
    }
    let mut lo = 0u64;
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if done(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

fn loop_free_figures() -> Vec<(String, FExpr)> {
    let mut out: Vec<(String, FExpr)> = Vec::new();
    for n in [-3i64, 0, 5] {
        out.push((format!("fig16_f1({n})"), app(fig16_f1(), vec![fint_e(n)])));
        out.push((format!("fig16_f2({n})"), app(fig16_f2(), vec![fint_e(n)])));
    }
    // The F-side factorial recurses through closures, not through T
    // back edges: inference unrolls it concretely.
    for n in [0i64, 1, 5, 7] {
        out.push((format!("factF({n})"), app(fig17_fact_f(), vec![fint_e(n)])));
    }
    out.push(("fig11_jit".to_string(), fig11_jit()));
    out.push(("push7".to_string(), push7()));
    out.push((
        "mutref_cell_demo".to_string(),
        funtal::mutref::cell_demo(-3, 3),
    ));
    out
}

/// Tentpole certificate: on every loop-free figure the statically
/// inferred bound equals the profiler's dynamic measurement *exactly*
/// (and both equal the minimal sufficient fuel).
#[test]
fn loop_free_figures_get_exact_bounds() {
    for (name, e) in loop_free_figures() {
        let lp = prelower(&e);
        let inferred = infer_fuel(&lp);
        let measured = measured_total(&e);
        assert_eq!(
            inferred,
            FuelBound::Exact(measured),
            "{name}: inferred bound != profiled total"
        );
        assert_eq!(
            measured,
            minimal_fuel(&e),
            "{name}: profiled total != minimal sufficient fuel"
        );
    }
}

/// Static T loops are refused, never mis-measured: the Fig 17 T
/// factorial jumps backwards under a `bnz`, so no finite unrolling is
/// certifiable.
#[test]
fn t_loops_are_refused() {
    for n in [0i64, 5] {
        let e = app(fig17_fact_t(), vec![fint_e(n)]);
        assert_eq!(
            infer_fuel(&prelower(&e)),
            FuelBound::Unknown,
            "factT({n}): a looping module must not get a static bound"
        );
    }
}

/// Generated-corpus certification: the same generators as the
/// differential suite; every seed on which inference commits to
/// `Exact` must match the dynamic measurement, and the corpus must
/// contain committed seeds (the analysis is not vacuously `Unknown`).
#[test]
fn generated_corpus_bounds_are_sound() {
    let tys: Vec<FTy> = vec![
        fint(),
        funit(),
        ftuple_ty(vec![fint(), fint()]),
        arrow(vec![fint()], fint()),
        arrow(vec![fint(), fint()], fint()),
        fmu("a", ftuple_ty(vec![fint(), funit()])),
    ];
    let mut exact = 0usize;
    let mut total = 0usize;
    for seed in 0u64..192 {
        let mut rng = SplitMix::new(seed);
        let ty = tys[rng.below(tys.len())].clone();
        let value = gen_value(&ty, &mut rng, 3);
        let ctx = gen_context(&ty, &mut rng, 3);
        let prog = ctx.plug(&value);
        if funtal::typecheck(&prog).is_err() {
            continue;
        }
        total += 1;
        let lp = prelower(&prog);
        match infer_fuel(&lp) {
            FuelBound::Exact(n) => {
                exact += 1;
                assert_eq!(
                    n,
                    measured_total(&prog),
                    "seed {seed} ({}): exact bound is wrong",
                    ctx.describe
                );
            }
            FuelBound::Unknown => {
                // Refusal is always sound; the counter below keeps it
                // from becoming the only answer.
            }
        }
    }
    assert!(
        total >= 64,
        "corpus generator produced too few typed programs ({total})"
    );
    assert!(
        exact * 2 >= total,
        "inference committed on only {exact}/{total} corpus programs"
    );
}
