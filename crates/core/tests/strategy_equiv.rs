//! Differential testing of the three evaluation strategies.
//!
//! The substitution machine is the executable form of Fig 8; the
//! environment machine is the fast path; the bytecode VM is the
//! fastest tier. This suite pins all three together on three axes:
//!
//! 1. **Outcomes** — every paper figure, the compiled MiniF programs,
//!    and a proptest-generated corpus produce *identical*
//!    [`FtOutcome`]s (including heap labels inside halt words and the
//!    exact shape of returned values).
//! 2. **Events** — the traced event streams coincide, so step counts
//!    and control-flow diagrams are strategy-independent.
//! 3. **Fuel** — the minimal sufficient fuel is the same, i.e. the
//!    strategies agree step-for-step, not just in the limit; in
//!    particular all report `OutOfFuel` under exactly the same
//!    bounds.

use std::sync::Arc;

use funtal::figures::*;
use funtal::machine::{run, run_fexpr, EvalStrategy, FtOutcome, RunCfg};
use funtal_compile::codegen::{compile_program, CodegenOpts};
use funtal_compile::lang::{factorial_program, fib_program};
use funtal_equiv::gen::{gen_context, gen_value, SplitMix};
use funtal_syntax::build::*;
use funtal_syntax::span::SpanTable;
use funtal_syntax::{Component, FExpr, FTy};
use funtal_tal::machine::Memory;
use funtal_tal::trace::{NullTracer, VecTracer};
use funtal_tal::{Profiler, RootLang};
use proptest::prelude::*;

/// Every strategy, oracle first.
const STRATEGIES: [EvalStrategy; 3] = [
    EvalStrategy::Substitution,
    EvalStrategy::Environment,
    EvalStrategy::Bytecode,
];

fn run_with(
    comp: &Component,
    strategy: EvalStrategy,
    fuel: u64,
) -> (Result<FtOutcome, String>, Vec<funtal_tal::trace::Event>) {
    let mut mem = Memory::new();
    let mut tracer = VecTracer::new();
    let cfg = RunCfg::with_fuel(fuel).with_strategy(strategy);
    let out = run(&mut mem, comp, cfg, &mut tracer).map_err(|e| e.to_string());
    (out, tracer.events)
}

/// Asserts every strategy agrees with the oracle on outcome and event
/// stream.
fn assert_agree(name: &str, comp: &Component, fuel: u64) {
    let (sub, sub_events) = run_with(comp, EvalStrategy::Substitution, fuel);
    for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
        let (out, events) = run_with(comp, strategy, fuel);
        assert_eq!(sub, out, "{name}: {strategy:?} outcome disagrees");
        assert_eq!(
            sub_events, events,
            "{name}: {strategy:?} event stream disagrees"
        );
    }
}

/// The least fuel under which the strategy completes (binary search).
fn minimal_fuel(comp: &Component, strategy: EvalStrategy) -> u64 {
    let done = |fuel: u64| {
        let mut mem = Memory::new();
        !matches!(
            run(
                &mut mem,
                comp,
                RunCfg::with_fuel(fuel).with_strategy(strategy),
                &mut NullTracer,
            ),
            Ok(FtOutcome::OutOfFuel)
        )
    };
    let mut hi = 1u64;
    while !done(hi) {
        hi *= 2;
        assert!(hi < 1 << 32, "program does not terminate");
    }
    let mut lo = 0u64; // invariant: !done(lo) (fuel 0 never completes a non-value)
    if done(0) {
        return 0;
    }
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if done(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    hi
}

fn figure_programs() -> Vec<(String, Component)> {
    let mut out: Vec<(String, Component)> = Vec::new();
    for n in [-3i64, 0, 5] {
        out.push((
            format!("fig16_f1({n})"),
            Component::F(app(fig16_f1(), vec![fint_e(n)])),
        ));
        out.push((
            format!("fig16_f2({n})"),
            Component::F(app(fig16_f2(), vec![fint_e(n)])),
        ));
    }
    for n in [0i64, 1, 5, 7] {
        out.push((
            format!("factF({n})"),
            Component::F(app(fig17_fact_f(), vec![fint_e(n)])),
        ));
        out.push((
            format!("factT({n})"),
            Component::F(app(fig17_fact_t(), vec![fint_e(n)])),
        ));
    }
    out.push(("fig11_jit".to_string(), Component::F(fig11_jit())));
    out.push((
        "mutref_cell_demo".to_string(),
        Component::F(funtal::mutref::cell_demo(-3, 3)),
    ));
    out.push((
        "fig3_pure_T".to_string(),
        Component::T(funtal_tal::figures::fig3_call_to_call()),
    ));
    out
}

#[test]
fn figures_agree_on_outcomes_and_events() {
    for (name, comp) in figure_programs() {
        assert_agree(&name, &comp, 1_000_000);
    }
}

#[test]
fn figures_agree_on_minimal_fuel() {
    for (name, comp) in figure_programs() {
        let sub = minimal_fuel(&comp, EvalStrategy::Substitution);
        for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
            let other = minimal_fuel(&comp, strategy);
            assert_eq!(
                sub, other,
                "{name}: {strategy:?} minimal sufficient fuel differs"
            );
        }
        // And right below the bound, every strategy must report
        // OutOfFuel.
        if sub > 0 {
            let (s, _) = run_with(&comp, EvalStrategy::Substitution, sub - 1);
            assert_eq!(s, Ok(FtOutcome::OutOfFuel), "{name}");
            for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
                let (o, _) = run_with(&comp, strategy, sub - 1);
                assert_eq!(s, o, "{name}: {strategy:?} sub-minimal fuel differs");
            }
        }
    }
}

#[test]
fn compiled_programs_agree() {
    for (pname, p, fname, args) in [
        ("fact", factorial_program(), "fact", vec![6i64]),
        ("fib", fib_program(), "fib", vec![10]),
        ("fib", fib_program(), "double_fib", vec![8]),
    ] {
        for tco in [false, true] {
            let compiled = compile_program(&p, CodegenOpts { tail_call_opt: tco });
            let call = app(
                compiled.wrap(fname),
                args.iter().map(|n| fint_e(*n)).collect(),
            );
            let comp = Component::F(call);
            assert_agree(&format!("{pname}::{fname} tco={tco}"), &comp, 10_000_000);
            let sub = minimal_fuel(&comp, EvalStrategy::Substitution);
            for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
                let other = minimal_fuel(&comp, strategy);
                assert_eq!(
                    sub, other,
                    "{pname}::{fname} tco={tco}: {strategy:?} fuel differs"
                );
            }
        }
    }
}

/// Generated corpus: closed programs assembled from the bounded
/// logical relation's input/context generators at a spread of types.
fn corpus_program(seed: u64) -> Option<(String, FExpr)> {
    let mut rng = SplitMix::new(seed);
    let tys: Vec<FTy> = vec![
        fint(),
        funit(),
        ftuple_ty(vec![fint(), fint()]),
        ftuple_ty(vec![fint(), ftuple_ty(vec![funit(), fint()])]),
        arrow(vec![fint()], fint()),
        arrow(vec![fint(), fint()], fint()),
        arrow(vec![arrow(vec![fint()], fint())], fint()),
        fmu("a", ftuple_ty(vec![fint(), funit()])),
    ];
    let ty = tys[rng.below(tys.len())].clone();
    let value = gen_value(&ty, &mut rng, 3);
    let ctx = gen_context(&ty, &mut rng, 3);
    let prog = ctx.plug(&value);
    // The generators target well-typed experiments; skip the rare
    // combination that falls outside the checker's fragment.
    funtal::typecheck(&prog).ok()?;
    Some((format!("seed {seed}: {}", ctx.describe), prog))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn generated_corpus_agrees(seed in 0u32..u32::MAX) {
        let seed = u64::from(seed);
        if let Some((name, prog)) = corpus_program(seed) {
            let comp = Component::F(prog);
            let (sub, sub_events) = run_with(&comp, EvalStrategy::Substitution, 100_000);
            let msub = minimal_fuel(&comp, EvalStrategy::Substitution);
            for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
                let (out, events) = run_with(&comp, strategy, 100_000);
                prop_assert_eq!(&sub, &out, "{}: {:?} outcomes disagree", name, strategy);
                prop_assert_eq!(&sub_events, &events, "{}: {:?} events disagree", name, strategy);
                let mother = minimal_fuel(&comp, strategy);
                prop_assert_eq!(msub, mother, "{}: {:?} minimal fuel differs", name, strategy);
            }
        }
    }
}

#[test]
fn guarded_runs_agree() {
    // The dynamic type-safety guard must not change behavior on
    // well-typed programs under either strategy.
    for (name, comp) in figure_programs() {
        let mut cfgs = Vec::new();
        for strategy in STRATEGIES {
            let mut mem = Memory::new();
            let cfg = RunCfg {
                fuel: 1_000_000,
                guard: true,
                strategy,
            };
            cfgs.push(run(&mut mem, &comp, cfg, &mut NullTracer).map_err(|e| e.to_string()));
        }
        assert_eq!(cfgs[0], cfgs[1], "{name}: guarded env outcome disagrees");
        assert_eq!(
            cfgs[0], cfgs[2],
            "{name}: guarded bytecode outcome disagrees"
        );
        assert!(cfgs[0].is_ok(), "{name}: guard tripped on well-typed code");
    }
}

#[test]
fn final_memories_agree() {
    // Not just outcomes: the final memory (heap labels, register file,
    // stack) must match, since callers can inspect it after `run`.
    for (name, comp) in figure_programs() {
        let cfg = RunCfg::with_fuel(1_000_000);
        let mut mem_sub = Memory::new();
        let a = run(
            &mut mem_sub,
            &comp,
            cfg.with_strategy(EvalStrategy::Substitution),
            &mut NullTracer,
        )
        .map_err(|e| e.to_string());
        for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
            let mut mem = Memory::new();
            let b = run(
                &mut mem,
                &comp,
                cfg.with_strategy(strategy),
                &mut NullTracer,
            )
            .map_err(|e| e.to_string());
            assert_eq!(a, b, "{name}: {strategy:?}");
            assert_eq!(mem_sub.heap, mem.heap, "{name}: {strategy:?} heap differs");
            assert_eq!(
                mem_sub.regs, mem.regs,
                "{name}: {strategy:?} register file differs"
            );
            assert_eq!(
                mem_sub.stack, mem.stack,
                "{name}: {strategy:?} stack differs"
            );
        }
    }
}

#[test]
fn merged_blocks_with_captured_imports_write_back_substituted() {
    // A β-substituted variable reaching an `import` body inside a
    // component-local heap block: the substitution machine substitutes
    // before merging, so the environment machine must write the merged
    // block back in substituted form — and a fresh run on the final
    // memory must still agree.
    let comp = tcomp(
        seq(vec![], jmp(loc("l"))),
        vec![(
            "l",
            code_block(
                vec![],
                chi([]),
                nil(),
                q_end(int(), nil()),
                seq(
                    vec![import(r1(), "zi", nil(), fint(), var("x"))],
                    halt(int(), nil(), r1()),
                ),
            ),
        )],
    );
    let lam_e = lam(vec![("x", fint())], boundary(fint(), comp));
    let prog = Component::F(app(lam_e, vec![fint_e(5)]));

    let mut mem_sub = Memory::new();
    let mut mem_env = Memory::new();
    let mut mem_bc = Memory::new();
    let cfg = RunCfg::with_fuel(10_000);
    for (mem, strategy) in [
        (&mut mem_sub, EvalStrategy::Substitution),
        (&mut mem_env, EvalStrategy::Environment),
        (&mut mem_bc, EvalStrategy::Bytecode),
    ] {
        let out = run(mem, &prog, cfg.with_strategy(strategy), &mut NullTracer).unwrap();
        assert_eq!(out, FtOutcome::Value(fint_e(5)), "{strategy:?}");
    }
    assert_eq!(mem_sub.heap, mem_env.heap, "written-back heaps differ");
    assert_eq!(
        mem_sub.heap, mem_bc.heap,
        "bytecode written-back heap differs"
    );

    // Re-running another component on the final memories must agree
    // too (the merged block collides and is freshened identically).
    for (mem, strategy) in [
        (&mut mem_sub, EvalStrategy::Substitution),
        (&mut mem_env, EvalStrategy::Environment),
        (&mut mem_bc, EvalStrategy::Bytecode),
    ] {
        let out = run(mem, &prog, cfg.with_strategy(strategy), &mut NullTracer).unwrap();
        assert_eq!(out, FtOutcome::Value(fint_e(5)), "re-run {strategy:?}");
    }
    assert_eq!(mem_sub.heap, mem_env.heap, "re-run heaps differ");
    assert_eq!(mem_sub.heap, mem_bc.heap, "bytecode re-run heap differs");
}

#[test]
fn prelowered_programs_match_environment_trace() {
    // `prelower` + `run_prelowered` (the warm-batch bytecode path) must
    // replay exactly the same outcome and event stream as a cold
    // `run_fexpr` — for every figure program, reused across runs to
    // exercise the cached-module path.
    for (name, comp) in figure_programs() {
        let Component::F(e) = comp else { continue };
        let cfg = RunCfg::with_fuel(1_000_000);
        let mut tracer = VecTracer::new();
        let oracle = run_fexpr(
            &e,
            cfg.with_strategy(EvalStrategy::Environment),
            &mut tracer,
        )
        .map_err(|err| err.to_string());
        let lp = funtal::prelower(&e);
        for round in 0..2 {
            let mut bc_tracer = VecTracer::new();
            let out =
                funtal::run_prelowered(&lp, cfg, &mut bc_tracer).map_err(|err| err.to_string());
            assert_eq!(oracle, out, "{name}: prelowered outcome (round {round})");
            assert_eq!(
                tracer.events, bc_tracer.events,
                "{name}: prelowered events (round {round})"
            );
        }
    }
}

/// Runs a component under a [`Profiler`] and returns the attribution
/// state. The span table is empty — bucket names are still the real
/// block labels, so byte-equality of the renderings is exactly as
/// strong a claim as with recorded spans (the driver's tests cover
/// span-resolved output).
fn profile_with(comp: &Component, strategy: EvalStrategy, fuel: u64) -> Profiler {
    let root = match comp {
        Component::F(_) => RootLang::F,
        Component::T(_) => RootLang::T,
    };
    let mut profiler = Profiler::new(Arc::new(SpanTable::default()), root);
    let mut mem = Memory::new();
    run(
        &mut mem,
        comp,
        RunCfg::with_fuel(fuel).with_strategy(strategy),
        &mut profiler,
    )
    .unwrap();
    profiler
}

/// The cost-accounting certificate the profiler ships with: per-span
/// attribution sums exactly to the run's total step count (= the
/// minimal sufficient fuel), and the rendered profile is byte-identical
/// on every execution tier.
#[test]
fn profiles_are_certified_across_tiers() {
    let mut programs = figure_programs();
    for (pname, p, fname, args) in [
        ("fact", factorial_program(), "fact", vec![6i64]),
        ("fib", fib_program(), "fib", vec![10]),
    ] {
        for tco in [false, true] {
            let compiled = compile_program(&p, CodegenOpts { tail_call_opt: tco });
            let call = app(
                compiled.wrap(fname),
                args.iter().map(|n| fint_e(*n)).collect(),
            );
            programs.push((
                format!("compiled {pname}::{fname} tco={tco}"),
                Component::F(call),
            ));
        }
    }
    for (name, comp) in programs {
        let minimal = minimal_fuel(&comp, EvalStrategy::Substitution);
        let oracle = profile_with(&comp, EvalStrategy::Substitution, 10_000_000);
        // Every fuel tick is charged to exactly one span: the
        // attributed total IS the minimal sufficient fuel...
        assert_eq!(
            oracle.total(),
            minimal,
            "{name}: profiled total != minimal sufficient fuel"
        );
        // ...the buckets partition it...
        let bucket_sum: u64 = oracle.entries().iter().map(|r| r.ticks).sum();
        assert_eq!(bucket_sum, oracle.total(), "{name}: buckets do not sum");
        let folded_sum: u64 = oracle
            .folded_lines()
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(folded_sum, oracle.total(), "{name}: folded does not sum");
        // ...and both renderings are byte-identical on every tier.
        for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
            let p = profile_with(&comp, strategy, 10_000_000);
            assert_eq!(
                oracle.render_table(),
                p.render_table(),
                "{name}: {strategy:?} profile table differs"
            );
            assert_eq!(
                oracle.render_folded(),
                p.render_folded(),
                "{name}: {strategy:?} folded profile differs"
            );
        }
    }
}

/// Satellite of the profiler work: sweep **every** fuel bound from 0
/// to the minimal sufficient fuel on compiled programs (whose lowered
/// form contains fused superinstructions), with tracing both on (the
/// bytecode VM's faithful per-constituent route) and off (the fused
/// net-effect route). Outcomes and event streams must agree at every
/// bound — in particular at `minimal - 1`, the exhaustion boundary a
/// fused multi-step charge could mis-handle.
#[test]
fn fuel_exhaustion_at_every_bound_agrees_across_tiers() {
    for (pname, p, fname, args) in [
        ("fact", factorial_program(), "fact", vec![4i64]),
        ("fib", fib_program(), "fib", vec![7]),
    ] {
        for tco in [false, true] {
            let compiled = compile_program(&p, CodegenOpts { tail_call_opt: tco });
            let call = app(
                compiled.wrap(fname),
                args.iter().map(|n| fint_e(*n)).collect(),
            );
            let comp = Component::F(call);
            let minimal = minimal_fuel(&comp, EvalStrategy::Substitution);
            for fuel in 0..=minimal {
                let (sub, sub_events) = run_with(&comp, EvalStrategy::Substitution, fuel);
                assert_eq!(
                    sub == Ok(FtOutcome::OutOfFuel),
                    fuel < minimal,
                    "{pname} tco={tco}: exhaustion boundary off at fuel {fuel}"
                );
                for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
                    let (out, events) = run_with(&comp, strategy, fuel);
                    assert_eq!(
                        sub, out,
                        "{pname} tco={tco} fuel={fuel}: {strategy:?} outcome differs"
                    );
                    assert_eq!(
                        sub_events, events,
                        "{pname} tco={tco} fuel={fuel}: {strategy:?} events differ"
                    );
                    let mut mem = Memory::new();
                    let untraced = run(
                        &mut mem,
                        &comp,
                        RunCfg::with_fuel(fuel).with_strategy(strategy),
                        &mut NullTracer,
                    )
                    .map_err(|e| e.to_string());
                    assert_eq!(
                        sub, untraced,
                        "{pname} tco={tco} fuel={fuel}: {strategy:?} untraced outcome differs"
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fresh-seed certification: the profile of a generated program is
    /// byte-identical across tiers and its total equals the minimal
    /// sufficient fuel.
    #[test]
    fn generated_corpus_profiles_agree(seed in 0u32..u32::MAX) {
        let seed = u64::from(seed);
        if let Some((name, prog)) = corpus_program(seed) {
            let comp = Component::F(prog);
            let minimal = minimal_fuel(&comp, EvalStrategy::Substitution);
            let oracle = profile_with(&comp, EvalStrategy::Substitution, minimal);
            prop_assert_eq!(
                oracle.total(), minimal,
                "{}: profiled total != minimal sufficient fuel", name
            );
            for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
                let p = profile_with(&comp, strategy, minimal);
                prop_assert_eq!(
                    oracle.render_table(), p.render_table(),
                    "{}: {:?} profile table differs", name, strategy
                );
                prop_assert_eq!(
                    oracle.render_folded(), p.render_folded(),
                    "{}: {:?} folded profile differs", name, strategy
                );
            }
        }
    }

    /// Random fuel bounds over larger compiled programs: the sweep
    /// above is exhaustive on small inputs; this samples the same
    /// property where the sweep would be quadratic.
    #[test]
    fn random_fuel_bounds_agree_on_compiled_programs(fuel in 0u32..3_000, pick in 0usize..2) {
        let fuel = u64::from(fuel);
        let (p, fname, args) = if pick == 0 {
            (factorial_program(), "fact", vec![6i64])
        } else {
            (fib_program(), "fib", vec![10])
        };
        let compiled = compile_program(&p, CodegenOpts { tail_call_opt: true });
        let call = app(compiled.wrap(fname), args.iter().map(|n| fint_e(*n)).collect());
        let comp = Component::F(call);
        let (sub, sub_events) = run_with(&comp, EvalStrategy::Substitution, fuel);
        for strategy in [EvalStrategy::Environment, EvalStrategy::Bytecode] {
            let (out, events) = run_with(&comp, strategy, fuel);
            prop_assert_eq!(&sub, &out, "fuel={}: {:?} outcome differs", fuel, strategy);
            prop_assert_eq!(&sub_events, &events, "fuel={}: {:?} events differ", fuel, strategy);
        }
    }
}

#[test]
fn run_fexpr_defaults_to_environment_and_matches_oracle() {
    let e = app(fig17_fact_f(), vec![fint_e(6)]);
    let default_out = run_fexpr(&e, RunCfg::with_fuel(100_000), &mut NullTracer).unwrap();
    let oracle = run_fexpr(
        &e,
        RunCfg::with_fuel(100_000).with_strategy(EvalStrategy::Substitution),
        &mut NullTracer,
    )
    .unwrap();
    assert_eq!(default_out, oracle);
    assert_eq!(default_out, FtOutcome::Value(fint_e(720)));
}
