//! E4–E6, E9, E10: the paper's mixed-language figures type-check, run
//! to the right values, and produce the control flow of Fig 12.

use funtal::check::typecheck;
use funtal::figures::*;
use funtal::machine::{eval_to_value, run_fexpr, FtOutcome, RunCfg};
use funtal_syntax::build::*;

use funtal_tal::trace::{Event, NullTracer, VecTracer};

fn apply_int(f: &funtal_syntax::FExpr, n: i64) -> funtal_syntax::FExpr {
    app(f.clone(), vec![fint_e(n)])
}

// --- Figure 16 -----------------------------------------------------------

#[test]
fn fig16_f1_typechecks_and_runs() {
    let f1 = fig16_f1();
    assert_eq!(typecheck(&f1).unwrap(), arrow(vec![fint()], fint()));
    for n in [-3, 0, 5, 40] {
        assert_eq!(
            eval_to_value(&apply_int(&f1, n), 100_000).unwrap(),
            fint_e(n + 2),
            "f1({n})"
        );
    }
}

#[test]
fn fig16_f2_typechecks_and_runs() {
    let f2 = fig16_f2();
    assert_eq!(typecheck(&f2).unwrap(), arrow(vec![fint()], fint()));
    for n in [-3, 0, 5, 40] {
        assert_eq!(
            eval_to_value(&apply_int(&f2, n), 100_000).unwrap(),
            fint_e(n + 2),
            "f2({n})"
        );
    }
}

#[test]
fn fig16_f2_takes_one_more_jump() {
    // The observable difference between f1 and f2 is internal: one extra
    // jmp. The results agree; the traces differ by exactly that jump.
    let count_jumps = |e: &funtal_syntax::FExpr| {
        let mut tr = VecTracer::new();
        run_fexpr(e, RunCfg::with_fuel(100_000), &mut tr).unwrap();
        tr.events
            .iter()
            .filter(|ev| matches!(ev, Event::Jmp { .. }))
            .count()
    };
    let j1 = count_jumps(&apply_int(&fig16_f1(), 10));
    let j2 = count_jumps(&apply_int(&fig16_f2(), 10));
    assert_eq!(j2, j1 + 1);
}

// --- Figure 17 -----------------------------------------------------------

#[test]
fn fig17_fact_f_typechecks_and_runs() {
    let f = fig17_fact_f();
    assert_eq!(typecheck(&f).unwrap(), arrow(vec![fint()], fint()));
    let expected = [1, 1, 2, 6, 24, 120, 720];
    for (n, want) in expected.iter().enumerate() {
        assert_eq!(
            eval_to_value(&apply_int(&f, n as i64), 1_000_000).unwrap(),
            fint_e(*want),
            "factF({n})"
        );
    }
}

#[test]
fn fig17_fact_t_typechecks_and_runs() {
    let f = fig17_fact_t();
    assert_eq!(typecheck(&f).unwrap(), arrow(vec![fint()], fint()));
    let expected = [1, 1, 2, 6, 24, 120, 720];
    for (n, want) in expected.iter().enumerate() {
        assert_eq!(
            eval_to_value(&apply_int(&f, n as i64), 1_000_000).unwrap(),
            fint_e(*want),
            "factT({n})"
        );
    }
}

#[test]
fn fig17_both_diverge_on_negative_input() {
    // factF loops on x−1 forever; factT's bnz never reaches 0 going
    // down from a negative number until wrap-around, which exceeds the
    // fuel. Both are OutOfFuel at any reasonable bound. (The fuel is
    // kept moderate: factF's divergence grows a leftward context whose
    // depth is proportional to the steps taken, and the stepper recurses
    // over that context.)
    let ff = apply_int(&fig17_fact_f(), -1);
    let ft = apply_int(&fig17_fact_t(), -1);
    let (out_f, _) =
        funtal::machine::run_fexpr_threaded(&ff, RunCfg::with_fuel(10_000), NullTracer).unwrap();
    assert_eq!(out_f, FtOutcome::OutOfFuel);
    assert_eq!(
        run_fexpr(&ft, RunCfg::with_fuel(10_000), &mut NullTracer).unwrap(),
        FtOutcome::OutOfFuel
    );
}

#[test]
fn fig17_fact_t_uses_fewer_steps() {
    // The imperative factorial avoids β-reduction entirely once inside
    // the loop; its total step count is strictly below factF's for
    // non-trivial inputs (the "JIT wins" shape of E10).
    use funtal_tal::trace::CountTracer;
    let mut cf = CountTracer::new();
    let mut ct = CountTracer::new();
    run_fexpr(
        &apply_int(&fig17_fact_f(), 10),
        RunCfg::with_fuel(1_000_000),
        &mut cf,
    )
    .unwrap();
    run_fexpr(
        &apply_int(&fig17_fact_t(), 10),
        RunCfg::with_fuel(1_000_000),
        &mut ct,
    )
    .unwrap();
    assert!(
        ct.total_steps() < cf.total_steps(),
        "factT {} steps vs factF {} steps",
        ct.total_steps(),
        cf.total_steps()
    );
}

// --- Figure 11 / Figure 12 ------------------------------------------------

#[test]
fn fig11_typechecks() {
    assert_eq!(typecheck(&fig11_jit()).unwrap(), fint());
}

#[test]
fn fig11_runs_to_two() {
    assert_eq!(eval_to_value(&fig11_jit(), 1_000_000).unwrap(), fint_e(2));
}

#[test]
fn fig12_control_flow_shape() {
    // Fig 12's essential shape on the named blocks: control enters the
    // compiled ℓ, calls back into F (through glue), F calls the compiled
    // ℓh, which returns; the shim ℓgret recovers the saved continuation.
    let mut tr = VecTracer::new();
    run_fexpr(&fig11_jit(), RunCfg::with_fuel(1_000_000), &mut tr).unwrap();
    let named: Vec<String> = tr
        .events
        .iter()
        .filter_map(|e| match e {
            Event::Call { to } | Event::Jmp { to } | Event::BnzTaken { to } => {
                Some(format!("enter {to}"))
            }
            Event::Ret { to, .. } => Some(format!("ret {to}")),
            _ => None,
        })
        .filter(|s| ["enter l", "enter lh", "ret lgret"].iter().any(|k| s == k))
        .collect();
    assert_eq!(
        named,
        vec![
            "enter l".to_string(),
            "enter lh".to_string(),
            "ret lgret".to_string()
        ],
        "full trace: {:?}",
        tr.transfers()
    );
    // The callback structure requires at least: boundary exit for the
    // outer value, an import crossing for g's argument and result.
    let crossings = tr
        .events
        .iter()
        .filter(|e| matches!(e, Event::BoundaryExit { .. } | Event::ImportExit { .. }))
        .count();
    assert!(
        crossings >= 4,
        "expected several boundary crossings, got {crossings}"
    );
}

#[test]
fn fig11_runs_under_guard() {
    let out = run_fexpr(
        &fig11_jit(),
        RunCfg {
            fuel: 1_000_000,
            guard: true,
            ..RunCfg::default()
        },
        &mut NullTracer,
    )
    .unwrap();
    assert_eq!(out, FtOutcome::Value(fint_e(2)));
}

// --- push-7 (§4.2) ---------------------------------------------------------

#[test]
fn push7_typechecks() {
    let t = typecheck(&push7()).unwrap();
    assert_eq!(t, arrow_sm(vec![fint()], vec![], vec![int()], funit()));
}

#[test]
fn push7_pushes_and_can_be_consumed() {
    // push7 followed by the mutref library's get/free: the pushed 7 is
    // observable from F.
    use funtal::mutref::{free_cell, get_cell};
    let prog = app(
        lam_z(
            vec![("d0", funit()), ("res", fint()), ("d1", funit())],
            "zz",
            var("res"),
        ),
        vec![
            app(push7(), vec![fint_e(0)]),
            app(get_cell(), vec![funit_e()]),
            app(free_cell(), vec![funit_e()]),
        ],
    );
    assert_eq!(typecheck(&prog).unwrap(), fint());
    assert_eq!(eval_to_value(&prog, 100_000).unwrap(), fint_e(7));
}

// --- negative controls ------------------------------------------------------

#[test]
fn clobbering_protected_stack_rejected() {
    // A boundary that frees a cell of the protected (abstract) tail must
    // not typecheck: sfree 1 under a bare ζ.
    let bad = lam_z(
        vec![("x", fint())],
        "z",
        boundary(
            funit(),
            tcomp(
                seq(
                    vec![protect(vec![], "z2"), sfree(1), mv(r1(), unit_v())],
                    halt(unit(), zvar("z2"), r1()),
                ),
                vec![],
            ),
        ),
    );
    assert!(typecheck(&bad).is_err());
}

#[test]
fn boundary_type_must_match_halt() {
    // The component halts with int but the boundary claims unit.
    let bad = boundary(
        funit(),
        tcomp(
            seq(vec![mv(r1(), int_v(3))], halt(int(), nil(), r1())),
            vec![],
        ),
    );
    assert!(typecheck(&bad).is_err());
}

#[test]
fn import_requires_marker_in_protected_tail() {
    // An import whose exposed prefix contains the marker slot is
    // rejected: marker at slot 0, exposed prefix of length 1.
    use funtal_syntax::{RegFileTy, RetMarker, StackTy};
    let cont = code_ty(vec![], chi([(r1(), int())]), nil(), q_end(int(), nil()));
    let tctx = funtal_tal::check::TCtx::new(
        funtal_syntax::HeapTyping::new(),
        funtal_tal::wf::Delta::new(),
        RegFileTy::new(),
        StackTy::nil().cons(cont),
        RetMarker::Stack(0),
    );
    let comp = tcomp(
        seq(
            vec![import(r1(), "zi", nil(), fint(), fint_e(1))],
            halt(int(), nil(), r1()),
        ),
        vec![],
    );
    let err = funtal::check::check_tcomp(&tctx, &funtal::Gamma::new(), &comp).unwrap_err();
    assert!(
        matches!(err.root(), funtal_tal::TypeError::BadMarker { .. }),
        "{err}"
    );
}

#[test]
fn stack_lambda_body_must_produce_declared_prefix() {
    // Declared φo = int but the body leaves the stack unchanged.
    let bad = lam_sm(vec![("x", fint())], "z", vec![], vec![int()], funit_e());
    assert!(typecheck(&bad).is_err());
}

#[test]
fn application_requires_phi_in_on_stack() {
    // get_cell applied on an empty stack must fail to typecheck.
    let bad = app(funtal::mutref::get_cell(), vec![funit_e()]);
    assert!(typecheck(&bad).is_err());
}

#[test]
fn whole_program_must_clear_stack() {
    // new_cell leaves int :: • — not a valid whole program.
    let bad = app(funtal::mutref::new_cell(), vec![fint_e(1)]);
    assert!(typecheck(&bad).is_err());
}

// --- translation round trips through running programs ------------------------

#[test]
fn boundary_tuple_of_ints() {
    let prog = proj(
        2,
        boundary(
            ftuple_ty(vec![fint(), fint()]),
            tcomp(
                seq(
                    vec![
                        mv(r1(), int_v(4)),
                        mv(r2(), int_v(5)),
                        salloc(2),
                        sst(0, r2()),
                        sst(1, r1()),
                        balloc(r3(), 2),
                    ],
                    halt(box_tuple(vec![int(), int()]), nil(), r3()),
                ),
                vec![],
            ),
        ),
    );
    assert_eq!(typecheck(&prog).unwrap(), fint());
    // Tuple slot 0 = top of stack at balloc = r2 = 5; pi[2] selects the
    // second field = r1's 4.
    assert_eq!(eval_to_value(&prog, 10_000).unwrap(), fint_e(4));
}

#[test]
fn f_function_crosses_into_t_and_back() {
    // Pass an F lambda through a boundary via import, call it from T,
    // and return the result — the full Fig 10 glue in both directions.
    // Note the explicit zeta binder: the checker (conservatively)
    // rejects shadowing, and this lambda sits under a `protect ·, z`.
    let double = lam_z(vec![("x", fint())], "zd", fmul(var("x"), fint_e(2)));
    let arrow_ty = arrow(vec![fint()], fint());
    // T component: import the lambda, park it on the stack (import
    // resets the register file — Fig 7), import the argument, reload
    // the function, install a continuation, call.
    let arrow_t = funtal::fty_to_tty(&arrow_ty);
    let prog = boundary(
        fint(),
        tcomp(
            seq(
                vec![
                    protect(vec![], "z"),
                    import(r1(), "zi", zvar("z"), arrow_ty.clone(), double),
                    salloc(1),
                    sst(0, r1()),
                    import(
                        r1(),
                        "zj",
                        stack(vec![arrow_t], zvar("z")),
                        fint(),
                        fint_e(21),
                    ),
                    sld(r2(), 0),
                    sst(0, r1()),
                    mv(ra(), loc_i("k", vec![i_stk(zvar("z"))])),
                ],
                call(reg(r2()), zvar("z"), q_end(int(), zvar("z"))),
            ),
            vec![(
                "k",
                code_block(
                    vec![d_stk("z2")],
                    chi([(r1(), int())]),
                    zvar("z2"),
                    q_end(int(), zvar("z2")),
                    seq(vec![], halt(int(), zvar("z2"), r1())),
                ),
            )],
        ),
    );
    assert_eq!(typecheck(&prog).unwrap(), fint());
    assert_eq!(eval_to_value(&prog, 100_000).unwrap(), fint_e(42));
}
