//! Focused tests for the FT typing rules (Fig 7): the boundary rule,
//! `import`, `protect`, stack-modifying lambdas, and the stack
//! threading of the F rules — positive and negative cases per rule.

use funtal::check::{type_of_fexpr, typecheck, FtCtx};
use funtal_syntax::alpha::{alpha_eq_fty, alpha_eq_stack};
use funtal_syntax::build::*;
use funtal_syntax::{FExpr, StackTy};

fn check_at(e: &FExpr, sigma: StackTy) -> Result<(funtal_syntax::FTy, StackTy), String> {
    let ctx = FtCtx {
        sigma,
        ..FtCtx::top()
    };
    type_of_fexpr(&ctx, e).map_err(|err| err.to_string())
}

// --- stack threading in F rules ----------------------------------------------

#[test]
fn binop_threads_stack_left_to_right() {
    // lhs pushes (via push7-like lambda result is unit... use mutref
    // pattern): we verify threading with an expression whose lhs grows
    // the stack and whose rhs needs it grown.
    use funtal::mutref::{free_cell, get_cell, new_cell};
    // (new(1); get()) + ... : sequencing via multi-arg application
    // evaluates arguments left to right, so the stack types thread.
    let e = app(
        lam_z(
            vec![("d", funit()), ("a", fint()), ("d2", funit())],
            "zz",
            var("a"),
        ),
        vec![
            app(new_cell(), vec![fint_e(1)]),
            app(get_cell(), vec![funit_e()]),
            app(free_cell(), vec![funit_e()]),
        ],
    );
    let (ty, out) = check_at(&e, nil()).unwrap();
    assert!(alpha_eq_fty(&ty, &fint()));
    assert!(alpha_eq_stack(&out, &nil()));
}

#[test]
fn if0_branches_must_agree_on_stack() {
    use funtal::mutref::new_cell;
    // then-branch pushes a cell, else-branch doesn't: rejected.
    let bad = if0(fint_e(0), app(new_cell(), vec![fint_e(1)]), funit_e());
    assert!(check_at(&bad, nil()).is_err());
    // Both push: accepted, output stack has the cell.
    let good = if0(
        fint_e(0),
        app(new_cell(), vec![fint_e(1)]),
        app(new_cell(), vec![fint_e(2)]),
    );
    let (_, out) = check_at(&good, nil()).unwrap();
    assert_eq!(out.visible_len(), 1);
}

#[test]
fn tuple_threads_stack() {
    use funtal::mutref::{free_cell, get_cell, new_cell};
    // ⟨new(5), get(), free()⟩: the middle element needs the cell the
    // first one pushes; the last frees it.
    let e = ftuple(vec![
        app(new_cell(), vec![fint_e(5)]),
        app(get_cell(), vec![funit_e()]),
        app(free_cell(), vec![funit_e()]),
    ]);
    let (ty, out) = check_at(&e, nil()).unwrap();
    assert!(alpha_eq_fty(
        &ty,
        &ftuple_ty(vec![funit(), fint(), funit()])
    ));
    assert!(alpha_eq_stack(&out, &nil()));
}

// --- boundary rule --------------------------------------------------------------

#[test]
fn boundary_checks_under_empty_chi() {
    // A component reading a register it never set is rejected even
    // though the ambient F context "has" registers (Fig 7 resets χ).
    let bad = boundary(fint(), tcomp(seq(vec![], halt(int(), nil(), r1())), vec![]));
    assert!(check_at(&bad, nil()).is_err());
}

#[test]
fn boundary_sigma_out_annotation_respected() {
    // Component pushes an int: requires the explicit annotation.
    let comp = tcomp(
        seq(
            vec![
                mv(r1(), int_v(3)),
                salloc(1),
                sst(0, r1()),
                mv(r1(), unit_v()),
            ],
            halt(unit(), stack(vec![int()], nil()), r1()),
        ),
        vec![],
    );
    // Without annotation (σ' defaults to σ = •): rejected.
    let bad = FExpr::Boundary {
        ty: funit(),
        sigma_out: None,
        comp: Box::new(comp.clone()),
    };
    assert!(check_at(&bad, nil()).is_err());
    // With the annotation: accepted and the output stack is int :: •.
    let good = FExpr::Boundary {
        ty: funit(),
        sigma_out: Some(stack(vec![int()], nil())),
        comp: Box::new(comp),
    };
    let (_, out) = check_at(&good, nil()).unwrap();
    assert!(alpha_eq_stack(&out, &stack(vec![int()], nil())));
}

// --- protect --------------------------------------------------------------------

#[test]
fn protect_requires_matching_prefix() {
    // protect [unit], z on an int :: • stack: rejected.
    let bad = boundary(
        fint(),
        tcomp(
            seq(
                vec![protect(vec![unit()], "z2"), mv(r1(), int_v(1))],
                halt(int(), stack(vec![unit()], zvar("z2")), r1()),
            ),
            vec![],
        ),
    );
    assert!(check_at(&bad, stack(vec![int()], nil())).is_err());
}

#[test]
fn protect_rebinds_end_marker() {
    // The push-7 pattern: protect under an end marker whose stack ends
    // in the protected tail.
    let good = funtal::figures::push7();
    assert!(typecheck(&good).is_ok());
}

#[test]
fn protect_cannot_shadow() {
    // Two nested protects with the same ζ name are rejected
    // (conservative no-shadowing rule).
    let bad = boundary(
        fint(),
        tcomp(
            seq(
                vec![
                    protect(vec![], "z2"),
                    protect(vec![], "z2"),
                    mv(r1(), int_v(1)),
                ],
                halt(int(), zvar("z2"), r1()),
            ),
            vec![],
        ),
    );
    assert!(check_at(&bad, nil()).is_err());
}

// --- import ----------------------------------------------------------------------

#[test]
fn import_resets_register_file() {
    // Using a register set before an import, after it: rejected
    // (Fig 7's import rule types the continuation under {rd: τ𝒯} only).
    let bad = boundary(
        fint(),
        tcomp(
            seq(
                vec![
                    protect(vec![], "zp"),
                    mv(r2(), int_v(40)),
                    import(r1(), "zi", zvar("zp"), fint(), fint_e(2)),
                    add(r1(), r2(), reg(r1())),
                ],
                halt(int(), zvar("zp"), r1()),
            ),
            vec![],
        ),
    );
    assert!(check_at(&bad, nil()).is_err());

    // The stack survives: park the value there instead.
    let good = boundary(
        fint(),
        tcomp(
            seq(
                vec![
                    protect(vec![], "zp"),
                    mv(r2(), int_v(40)),
                    salloc(1),
                    sst(0, r2()),
                    import(
                        r1(),
                        "zi",
                        stack(vec![int()], zvar("zp")),
                        fint(),
                        fint_e(2),
                    ),
                    sld(r2(), 0),
                    sfree(1),
                    add(r1(), r2(), reg(r1())),
                ],
                halt(int(), zvar("zp"), r1()),
            ),
            vec![],
        ),
    );
    let (ty, _) = check_at(&good, nil()).unwrap();
    assert!(alpha_eq_fty(&ty, &fint()));
    // And it runs.
    assert_eq!(
        funtal::machine::eval_to_value(&good, 10_000).unwrap(),
        fint_e(42)
    );
}

#[test]
fn import_body_must_preserve_abstract_tail() {
    // The import body pushes a cell onto the abstract tail and leaves
    // it: the output prefix grows, which is fine — but leaving a
    // *different* tail is impossible to express, and a body that
    // net-pops below the abstract tail is rejected by the pure-T rules
    // inside. Here: a body of the wrong type is rejected.
    let bad = boundary(
        fint(),
        tcomp(
            seq(
                vec![
                    protect(vec![], "zp"),
                    import(r1(), "zi", zvar("zp"), fint(), funit_e()),
                ],
                halt(int(), zvar("zp"), r1()),
            ),
            vec![],
        ),
    );
    assert!(check_at(&bad, nil()).is_err());
}

#[test]
fn import_body_may_grow_the_exposed_prefix() {
    // An import whose body pushes a stack cell (via a stack-modifying
    // application) shifts the marker by k − j (Fig 7's inc(q, k−j)).
    use funtal::mutref::new_cell;
    let e = boundary(
        fint(),
        tcomp(
            seq(
                vec![
                    protect(vec![], "zp"),
                    import(
                        r1(),
                        "zi",
                        zvar("zp"),
                        funit(),
                        app(new_cell(), vec![fint_e(9)]),
                    ),
                    // The pushed cell is now on the stack: read it.
                    sld(r1(), 0),
                    sfree(1),
                ],
                halt(int(), zvar("zp"), r1()),
            ),
            vec![],
        ),
    );
    let (ty, _) = check_at(&e, nil()).unwrap();
    assert!(alpha_eq_fty(&ty, &fint()));
    assert_eq!(
        funtal::machine::eval_to_value(&e, 10_000).unwrap(),
        fint_e(9)
    );
}

// --- stack-modifying lambdas --------------------------------------------------------

#[test]
fn stack_lambda_types_record_both_prefixes() {
    let f = funtal::mutref::set_cell();
    let ty = typecheck(&f).unwrap();
    assert!(alpha_eq_fty(
        &ty,
        &arrow_sm(vec![fint()], vec![int()], vec![int()], funit())
    ));
}

#[test]
fn plain_lambda_body_cannot_touch_ambient_stack() {
    // An ordinary lambda whose body reads the ambient stack slot:
    // rejected, because the body types under a bare abstract ζ.
    let bad = lam_z(
        vec![("d", funit())],
        "zl",
        boundary(
            fint(),
            tcomp(
                seq(
                    vec![sld(r1(), 0)],
                    halt(int(), stack(vec![int()], zvar("zl")), r1()),
                ),
                vec![],
            ),
        ),
    );
    assert!(typecheck(&bad).is_err());
}

#[test]
fn stack_lambda_application_consumes_and_produces_prefixes() {
    use funtal::mutref::{free_cell, new_cell};
    // new : φo=int; free : φi=int, φo=·. Composition leaves the stack
    // clean; applying free twice cannot typecheck.
    let once = app(
        lam_z(vec![("a", funit()), ("b", funit())], "zz", funit_e()),
        vec![
            app(new_cell(), vec![fint_e(1)]),
            app(free_cell(), vec![funit_e()]),
        ],
    );
    assert!(typecheck(&once).is_ok());
    let twice = app(
        lam_z(
            vec![("a", funit()), ("b", funit()), ("c", funit())],
            "zz",
            funit_e(),
        ),
        vec![
            app(new_cell(), vec![fint_e(1)]),
            app(free_cell(), vec![funit_e()]),
            app(free_cell(), vec![funit_e()]),
        ],
    );
    assert!(typecheck(&twice).is_err());
}

// --- referential-transparency conjecture (§6), tested --------------------------------

#[test]
fn pure_boundaries_commute_observationally() {
    // Without stack-modifying lambdas or static mutable tuples, two
    // embedded TAL components cannot communicate: evaluating e twice
    // equals evaluating it once (no observable effects). We test the
    // weak, executable consequence: a boundary's value is stable across
    // duplication.
    let e = funtal::figures::fig16_f1();
    let dup = fadd(app(e.clone(), vec![fint_e(10)]), app(e, vec![fint_e(10)]));
    assert_eq!(
        funtal::machine::eval_to_value(&dup, 100_000).unwrap(),
        fint_e(24)
    );
}
