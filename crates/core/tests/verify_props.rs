//! Property tests for the bytecode verifier: everything the lowerer
//! emits is accepted.
//!
//! The mutation half of the story (seeded opcode/offset/register
//! flips are rejected with specific errors) lives next to the
//! verifier in `src/bc_verify.rs`; this integration suite covers the
//! acceptance half over the shared generator grammar — the committed
//! differential seed corpus plus fresh seeds every run — and checks
//! that `lint` runs cleanly and deterministically on the same
//! programs.

use funtal::{lint_program, prelower, verify_lowered};
use funtal_equiv::gen::{gen_program, SplitMix};
use proptest::prelude::*;

/// Programs drawn per seed (matches the differential suite's reuse of
/// one rng across draws).
const PROGRAMS_PER_SEED: usize = 4;

#[test]
fn committed_corpus_is_verifier_accepted() {
    let seeds: Vec<u64> = include_str!("../../driver/tests/corpus/differential_seeds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("corpus seeds are integers"))
        .collect();
    assert!(seeds.len() >= 16, "corpus shrank: {} seeds", seeds.len());
    for seed in seeds {
        let mut rng = SplitMix::new(seed);
        for i in 0..PROGRAMS_PER_SEED {
            let p = gen_program(&mut rng, 2);
            let lp = prelower(&p.expr);
            verify_lowered(&lp)
                .unwrap_or_else(|e| panic!("seed {seed} program {i} ({}): {e}", p.describe));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fresh seeds every run: acceptance is a property of the
    /// lowerer, not of a fixed corpus.
    #[test]
    fn generated_programs_are_verifier_accepted(seed in 0i64..1_000_000_000) {
        let mut rng = SplitMix::new(seed as u64);
        let p = gen_program(&mut rng, 2);
        let lp = prelower(&p.expr);
        prop_assert!(
            verify_lowered(&lp).is_ok(),
            "{}: {:?}", p.describe, verify_lowered(&lp)
        );
        // Lint must neither panic nor flap on generated programs.
        let a = lint_program("gen.ft", &p.expr, &lp);
        let b = lint_program("gen.ft", &p.expr, &lp);
        prop_assert_eq!(a, b, "lint output is not deterministic");
    }
}
