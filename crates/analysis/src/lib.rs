//! **funtal-analysis** — the reusable dataflow layer under every
//! static pass of the FunTAL reproduction.
//!
//! The paper's premise is that embedded assembly stays *reasonable*
//! because it is statically checked; this crate is the seam where all
//! of our static checking over basic blocks lives, built once and
//! instantiated many times (PAPERS.md: the "Fundamental Constructs"
//! line — analyses over a small IR, reused):
//!
//! - [`cfg`] — control-flow graphs over numbered basic blocks:
//!   reachability, back-edge detection (loop-freeness), reverse
//!   postorder;
//! - [`dataflow`] — a direction-agnostic worklist solver over any
//!   join-semilattice of facts ([`dataflow::Analysis`]);
//! - [`bitset`] — a dense 64-element bit set, the fact domain for
//!   register-file analyses (the T register file has 8 registers);
//! - [`diag`] — span-attributed diagnostics with a deterministic
//!   normal form (sorted, deduplicated), so every consumer renders
//!   byte-stable output regardless of rule evaluation order or worker
//!   count.
//!
//! Current instantiations live in `funtal` (the core crate): the
//! `BcModule` bytecode verifier (register-initialization as a forward
//! must-analysis), the `funtal lint` rules (dead register writes as a
//! backward liveness analysis, unreachable blocks as CFG
//! reachability), and static fuel-bound inference (loop-free regions
//! via [`cfg::Cfg::is_loop_free`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitset;
pub mod cfg;
pub mod dataflow;
pub mod diag;

pub use bitset::BitSet;
pub use cfg::Cfg;
pub use dataflow::{solve, Analysis, Direction, Solution};
pub use diag::{normalize, Diagnostic, Severity};
