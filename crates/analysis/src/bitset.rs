//! A dense bit set over at most 64 elements.
//!
//! The fact domain for register-file analyses: the T machine has 8
//! registers, so one machine word holds a whole fact and join is a
//! single `or`/`and`. Kept general (up to 64) so index-shaped domains
//! of other passes can reuse it.

/// A set of small indices backed by one `u64`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BitSet(u64);

impl BitSet {
    /// The empty set.
    pub const EMPTY: BitSet = BitSet(0);

    /// The set `{0, 1, …, n-1}`. Panics if `n > 64`.
    pub fn full(n: usize) -> BitSet {
        assert!(n <= 64, "BitSet holds at most 64 elements");
        if n == 64 {
            BitSet(u64::MAX)
        } else {
            BitSet((1u64 << n) - 1)
        }
    }

    /// Whether `i` is in the set.
    pub fn contains(self, i: usize) -> bool {
        i < 64 && self.0 & (1 << i) != 0
    }

    /// Inserts `i`. Panics if `i >= 64`.
    pub fn insert(&mut self, i: usize) {
        assert!(i < 64, "BitSet holds at most 64 elements");
        self.0 |= 1 << i;
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        if i < 64 {
            self.0 &= !(1 << i);
        }
    }

    /// Set union.
    pub fn union(self, other: BitSet) -> BitSet {
        BitSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: BitSet) -> BitSet {
        BitSet(self.0 & other.0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(self, other: BitSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates the elements in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        (0..64).filter(move |&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = BitSet::EMPTY;
        assert!(s.is_empty());
        s.insert(0);
        s.insert(7);
        assert!(s.contains(0) && s.contains(7) && !s.contains(3));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 7]);
        s.remove(0);
        assert!(!s.contains(0));
    }

    #[test]
    fn lattice_ops() {
        let mut a = BitSet::EMPTY;
        a.insert(1);
        a.insert(2);
        let mut b = BitSet::EMPTY;
        b.insert(2);
        b.insert(3);
        assert_eq!(a.union(b).iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(a.intersect(b).iter().collect::<Vec<_>>(), vec![2]);
        assert!(a.intersect(b).is_subset(a));
        assert!(!a.is_subset(b));
    }

    #[test]
    fn full_sets() {
        assert_eq!(BitSet::full(8).len(), 8);
        assert_eq!(BitSet::full(0), BitSet::EMPTY);
        assert_eq!(BitSet::full(64).len(), 64);
        assert!(BitSet::full(8).contains(7) && !BitSet::full(8).contains(8));
    }
}
