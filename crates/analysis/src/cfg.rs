//! Control-flow graphs over numbered basic blocks.
//!
//! A [`Cfg`] is deliberately untyped: blocks are `usize` indices and
//! edges are pairs, so one graph type serves the bytecode verifier
//! (blocks = instruction-stream regions), the lint rules, and the
//! fuel-bound inference (loop-free classification). Construction
//! dedups edges; queries are deterministic (successors kept in
//! insertion order, which every builder derives from instruction
//! order).

/// A directed graph over blocks `0..n` with a designated entry block.
#[derive(Clone, Debug)]
pub struct Cfg {
    entry: usize,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds a CFG over `n` blocks from an edge list. Duplicate edges
    /// are kept once; out-of-range endpoints panic (builder bug).
    pub fn new(n: usize, entry: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Cfg {
        assert!(entry < n || n == 0, "entry block out of range");
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (from, to) in edges {
            assert!(from < n && to < n, "edge ({from}, {to}) out of range");
            if !succs[from].contains(&to) {
                succs[from].push(to);
                preds[to].push(from);
            }
        }
        Cfg {
            entry,
            succs,
            preds,
        }
    }

    /// Number of blocks.
    pub fn node_count(&self) -> usize {
        self.succs.len()
    }

    /// The entry block.
    pub fn entry(&self) -> usize {
        self.entry
    }

    /// Successors of `b`, in edge-insertion order.
    pub fn succs(&self, b: usize) -> &[usize] {
        &self.succs[b]
    }

    /// Predecessors of `b`.
    pub fn preds(&self, b: usize) -> &[usize] {
        &self.preds[b]
    }

    /// Which blocks are reachable from the entry (plus any extra
    /// roots — blocks enterable from outside the graph, e.g. code
    /// blocks whose label escapes as a value).
    pub fn reachable_from(&self, extra_roots: &[usize]) -> Vec<bool> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut work: Vec<usize> = Vec::new();
        if self.entry < n {
            work.push(self.entry);
        }
        work.extend(extra_roots.iter().copied().filter(|&b| b < n));
        while let Some(b) = work.pop() {
            if std::mem::replace(&mut seen[b], true) {
                continue;
            }
            work.extend(self.succs[b].iter().copied());
        }
        seen
    }

    /// [`Cfg::reachable_from`] with no extra roots.
    pub fn reachable(&self) -> Vec<bool> {
        self.reachable_from(&[])
    }

    /// Every back edge `(from, to)` — an edge into a block currently
    /// on the DFS stack — discovered from the entry and all extra
    /// roots. An empty result means every region reachable through
    /// the graph is loop-free.
    pub fn back_edges_from(&self, extra_roots: &[usize]) -> Vec<(usize, usize)> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let n = self.node_count();
        let mut color = vec![Color::White; n];
        let mut out = Vec::new();
        let mut roots: Vec<usize> = Vec::new();
        if self.entry < n {
            roots.push(self.entry);
        }
        roots.extend(extra_roots.iter().copied().filter(|&b| b < n));
        // Iterative DFS: (block, next-successor-index) frames.
        for root in roots {
            if color[root] != Color::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = Color::Grey;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < self.succs[b].len() {
                    let next = self.succs[b][*i];
                    *i += 1;
                    match color[next] {
                        Color::Grey => out.push((b, next)),
                        Color::White => {
                            color[next] = Color::Grey;
                            stack.push((next, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[b] = Color::Black;
                    stack.pop();
                }
            }
        }
        out
    }

    /// Whether the graph has no back edges reachable from the entry or
    /// the given extra roots.
    pub fn is_loop_free_from(&self, extra_roots: &[usize]) -> bool {
        self.back_edges_from(extra_roots).is_empty()
    }

    /// Whether the graph has no back edges reachable from the entry.
    pub fn is_loop_free(&self) -> bool {
        self.back_edges_from(&[]).is_empty()
    }

    /// Reverse postorder from the entry — the iteration order that
    /// makes forward analyses converge in one pass on loop-free
    /// graphs. Unreachable blocks are appended afterwards in index
    /// order so every block gets visited.
    pub fn rpo(&self) -> Vec<usize> {
        let n = self.node_count();
        let mut seen = vec![false; n];
        let mut post = Vec::with_capacity(n);
        if self.entry < n {
            let mut stack: Vec<(usize, usize)> = vec![(self.entry, 0)];
            seen[self.entry] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < self.succs[b].len() {
                    let next = self.succs[b][*i];
                    *i += 1;
                    if !std::mem::replace(&mut seen[next], true) {
                        stack.push((next, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        post.extend((0..n).filter(|&b| !seen[b]));
        post
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_is_loop_free() {
        let g = Cfg::new(3, 0, [(0, 1), (1, 2)]);
        assert!(g.is_loop_free());
        assert_eq!(g.reachable(), vec![true, true, true]);
        assert_eq!(g.rpo(), vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_and_cycle_are_back_edges() {
        let g = Cfg::new(2, 0, [(0, 1), (1, 1)]);
        assert_eq!(g.back_edges_from(&[]), vec![(1, 1)]);
        let g = Cfg::new(3, 0, [(0, 1), (1, 2), (2, 1)]);
        assert!(!g.is_loop_free());
    }

    #[test]
    fn unreachable_cycle_needs_a_root() {
        // A cycle between blocks 1 and 2, unreachable from the entry:
        // invisible without roots, found once block 1 is a root.
        let g = Cfg::new(3, 0, [(1, 2), (2, 1)]);
        assert!(g.is_loop_free());
        assert!(!g.is_loop_free_from(&[1]));
        assert_eq!(g.reachable(), vec![true, false, false]);
        assert_eq!(g.reachable_from(&[1]), vec![true, true, true]);
    }

    #[test]
    fn diamond_rpo_visits_join_last() {
        let g = Cfg::new(4, 0, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let rpo = g.rpo();
        assert_eq!(rpo[0], 0);
        assert_eq!(rpo[3], 3);
        assert!(g.is_loop_free());
    }

    #[test]
    fn dedups_edges() {
        let g = Cfg::new(2, 0, [(0, 1), (0, 1), (0, 1)]);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.preds(1), &[0]);
    }
}
