//! Span-attributed diagnostics with a deterministic normal form.
//!
//! Every analysis pass emits [`Diagnostic`]s in whatever order its
//! traversal produces; [`normalize`] sorts by `(file, span, rule,
//! message)` and drops exact duplicates, so the table and JSON
//! renderings downstream are byte-stable no matter how many workers
//! produced the findings or in which order rules ran.

use std::fmt;

use funtal_syntax::span::Span;

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational (never fails a `--deny warnings` gate).
    Note,
    /// A likely mistake; fails `--deny warnings`.
    Warning,
    /// A definite defect (a verifier rejection); always fails.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding: a rule identifier, where, and what.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// The file (or pseudo-file) the finding is about.
    pub file: String,
    /// The source region; [`Span::SYNTH`] for findings about
    /// generated code or whole-program properties.
    pub span: Span,
    /// Stable kebab-case rule identifier (e.g. `dead-register-write`).
    pub rule: String,
    /// How serious the finding is.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        file: impl Into<String>,
        span: Span,
        rule: impl Into<String>,
        severity: Severity,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            file: file.into(),
            span,
            rule: rule.into(),
            severity,
            message: message.into(),
        }
    }
}

/// Sorts findings by `(file, span, rule, severity, message)` and drops
/// exact duplicates — the canonical order every renderer relies on.
pub fn normalize(diags: &mut Vec<Diagnostic>) {
    diags.sort_by(|a, b| {
        (&a.file, a.span, &a.rule, a.severity, &a.message)
            .cmp(&(&b.file, b.span, &b.rule, b.severity, &b.message))
    });
    diags.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(file: &str, line: u32, rule: &str, msg: &str) -> Diagnostic {
        Diagnostic::new(file, Span::at(line, 1), rule, Severity::Warning, msg)
    }

    #[test]
    fn sorts_by_file_then_span_then_rule() {
        let mut v = vec![
            d("b.ft", 1, "zz", "later file"),
            d("a.ft", 9, "aa", "later line"),
            d("a.ft", 2, "bb", "same line, later rule"),
            d("a.ft", 2, "aa", "first"),
        ];
        normalize(&mut v);
        let order: Vec<&str> = v.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(
            order,
            vec!["first", "same line, later rule", "later line", "later file"]
        );
    }

    #[test]
    fn dedups_identical_findings() {
        let mut v = vec![
            d("a.ft", 1, "r", "dup"),
            d("a.ft", 1, "r", "dup"),
            d("a.ft", 1, "r", "kept"),
        ];
        normalize(&mut v);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn normal_form_is_order_independent() {
        let items = vec![
            d("a.ft", 3, "x", "one"),
            d("a.ft", 1, "y", "two"),
            d("z.ft", 1, "a", "three"),
            d("a.ft", 1, "y", "two"),
        ];
        let mut fwd = items.clone();
        let mut rev: Vec<_> = items.into_iter().rev().collect();
        normalize(&mut fwd);
        normalize(&mut rev);
        assert_eq!(fwd, rev);
    }

    #[test]
    fn synth_spans_sort_first() {
        let mut v = vec![d("a.ft", 5, "r", "real"), {
            let mut s = d("a.ft", 1, "r", "synth");
            s.span = Span::SYNTH;
            s
        }];
        normalize(&mut v);
        assert_eq!(v[0].message, "synth");
    }
}
