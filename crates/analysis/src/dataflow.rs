//! The worklist solver: forward or backward dataflow over a [`Cfg`]
//! and any join-semilattice of facts.
//!
//! An [`Analysis`] supplies the lattice (initial fact, join) and the
//! per-block transfer function; [`solve`] iterates to the least fixed
//! point. Boundary facts model entries the graph cannot see — the
//! machine entering block 0 with an empty register file, or a code
//! block whose label escapes as a first-class value and can therefore
//! be entered from anywhere.

use crate::cfg::Cfg;

/// Which way facts flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts flow from predecessors into successors (e.g. definite
    /// initialization).
    Forward,
    /// Facts flow from successors into predecessors (e.g. liveness).
    Backward,
}

/// One dataflow problem: a lattice of facts plus a transfer function.
pub trait Analysis {
    /// The fact attached to each block edge; `join` must be monotone
    /// and the lattice of facts must have finite height, or the solver
    /// will not terminate.
    type Fact: Clone + PartialEq;

    /// Which way facts flow.
    fn direction(&self) -> Direction;

    /// The starting fact for every block (the lattice bottom).
    fn init_fact(&self) -> Self::Fact;

    /// An extra fact joined into `block`'s input unconditionally —
    /// `Some` for blocks with entries the CFG cannot represent (the
    /// machine's entry into block 0, external entries into escaping
    /// blocks; for backward problems, exits). `None` elsewhere.
    fn boundary_fact(&self, block: usize) -> Option<Self::Fact>;

    /// Joins `from` into `into`, returning whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// The fact at the far edge of `block` given the fact at its near
    /// edge (input for forward problems, output for backward ones).
    fn transfer(&self, block: usize, fact: &Self::Fact) -> Self::Fact;
}

/// The fixed point: one input and one output fact per block (inputs
/// are block-entry facts for forward problems and block-exit facts for
/// backward ones).
#[derive(Clone, Debug)]
pub struct Solution<F> {
    /// The fact flowing *into* each block's transfer function.
    pub inputs: Vec<F>,
    /// The fact flowing *out of* each block's transfer function.
    pub outputs: Vec<F>,
}

/// Runs `analysis` over `cfg` to its least fixed point with a
/// deterministic worklist (blocks revisited in index order, seeded in
/// reverse postorder for forward problems and its reverse for backward
/// ones).
pub fn solve<A: Analysis>(analysis: &A, cfg: &Cfg) -> Solution<A::Fact> {
    let n = cfg.node_count();
    let mut inputs: Vec<A::Fact> = vec![analysis.init_fact(); n];
    let mut outputs: Vec<A::Fact> = vec![analysis.init_fact(); n];
    let forward = analysis.direction() == Direction::Forward;

    let mut order = cfg.rpo();
    if !forward {
        order.reverse();
    }
    let mut on_list = vec![true; n];
    let mut work: std::collections::VecDeque<usize> = order.iter().copied().collect();

    while let Some(b) = work.pop_front() {
        on_list[b] = false;
        // Recompute b's input: boundary fact joined with every
        // upstream block's output.
        let mut input = analysis.init_fact();
        if let Some(bf) = analysis.boundary_fact(b) {
            analysis.join(&mut input, &bf);
        }
        let upstream: &[usize] = if forward { cfg.preds(b) } else { cfg.succs(b) };
        for &u in upstream {
            analysis.join(&mut input, &outputs[u]);
        }
        let output = analysis.transfer(b, &input);
        inputs[b] = input;
        if output != outputs[b] {
            outputs[b] = output;
            let downstream: &[usize] = if forward { cfg.succs(b) } else { cfg.preds(b) };
            for &d in downstream {
                if !on_list[d] {
                    on_list[d] = true;
                    work.push_back(d);
                }
            }
        }
    }
    Solution { inputs, outputs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitset::BitSet;

    /// Forward may-reach: which blocks have been passed through on
    /// some path (gen the block's own index, union join).
    struct Reach;
    impl Analysis for Reach {
        type Fact = BitSet;
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn init_fact(&self) -> BitSet {
            BitSet::EMPTY
        }
        fn boundary_fact(&self, _b: usize) -> Option<BitSet> {
            None
        }
        fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
            let next = into.union(*from);
            let changed = next != *into;
            *into = next;
            changed
        }
        fn transfer(&self, block: usize, fact: &BitSet) -> BitSet {
            let mut out = *fact;
            out.insert(block);
            out
        }
    }

    #[test]
    fn forward_reach_on_a_diamond() {
        let cfg = Cfg::new(4, 0, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let sol = solve(&Reach, &cfg);
        assert_eq!(sol.inputs[3].iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(sol.outputs[3].iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn forward_reach_converges_on_a_loop() {
        let cfg = Cfg::new(3, 0, [(0, 1), (1, 1), (1, 2)]);
        let sol = solve(&Reach, &cfg);
        assert_eq!(sol.inputs[1].iter().collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(sol.outputs[2].iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    /// Backward liveness over a two-variable program encoded in facts.
    struct Live {
        /// Per block: (used, defined) variable sets.
        blocks: Vec<(BitSet, BitSet)>,
    }
    impl Analysis for Live {
        type Fact = BitSet;
        fn direction(&self) -> Direction {
            Direction::Backward
        }
        fn init_fact(&self) -> BitSet {
            BitSet::EMPTY
        }
        fn boundary_fact(&self, _b: usize) -> Option<BitSet> {
            None
        }
        fn join(&self, into: &mut BitSet, from: &BitSet) -> bool {
            let next = into.union(*from);
            let changed = next != *into;
            *into = next;
            changed
        }
        fn transfer(&self, block: usize, fact: &BitSet) -> BitSet {
            let (used, defined) = self.blocks[block];
            // live-in = used ∪ (live-out ∖ defined)
            let mut out = BitSet::EMPTY;
            for v in fact.iter() {
                if !defined.contains(v) {
                    out.insert(v);
                }
            }
            out.union(used)
        }
    }

    #[test]
    fn backward_liveness() {
        // 0: x :=        (defines 0)
        // 1: use x, y := (uses 0, defines 1)
        // 2: use y       (uses 1)
        let mut def_x = BitSet::EMPTY;
        def_x.insert(0);
        let mut use_x = BitSet::EMPTY;
        use_x.insert(0);
        let mut def_y = BitSet::EMPTY;
        def_y.insert(1);
        let mut use_y = BitSet::EMPTY;
        use_y.insert(1);
        let live = Live {
            blocks: vec![
                (BitSet::EMPTY, def_x),
                (use_x, def_y),
                (use_y, BitSet::EMPTY),
            ],
        };
        let cfg = Cfg::new(3, 0, [(0, 1), (1, 2)]);
        let sol = solve(&live, &cfg);
        // x is live into block 1 but dead into block 0's transfer
        // output (block 0 defines it).
        assert!(sol.outputs[1].contains(0));
        assert_eq!(sol.outputs[0].iter().collect::<Vec<_>>(), vec![]);
        assert_eq!(sol.inputs[1].iter().collect::<Vec<_>>(), vec![1]);
    }

    /// Definite initialization: boundary fact at entry, intersection
    /// join — the verifier's shape.
    struct Init {
        defs: Vec<BitSet>,
    }
    impl Analysis for Init {
        type Fact = Option<BitSet>; // None = unreachable (top)
        fn direction(&self) -> Direction {
            Direction::Forward
        }
        fn init_fact(&self) -> Option<BitSet> {
            None
        }
        fn boundary_fact(&self, b: usize) -> Option<Option<BitSet>> {
            (b == 0).then_some(Some(BitSet::EMPTY))
        }
        fn join(&self, into: &mut Option<BitSet>, from: &Option<BitSet>) -> bool {
            let next = match (&*into, from) {
                (None, f) => *f,
                (f, None) => *f,
                (Some(a), Some(b)) => Some(a.intersect(*b)),
            };
            let changed = next != *into;
            *into = next;
            changed
        }
        fn transfer(&self, block: usize, fact: &Option<BitSet>) -> Option<BitSet> {
            fact.as_ref().map(|f| f.union(self.defs[block]))
        }
    }

    #[test]
    fn definite_init_intersects_at_joins() {
        // 0 -> 1 (defines r1), 0 -> 2 (defines nothing), both -> 3.
        let mut r1 = BitSet::EMPTY;
        r1.insert(1);
        let init = Init {
            defs: vec![BitSet::EMPTY, r1, BitSet::EMPTY, BitSet::EMPTY],
        };
        let cfg = Cfg::new(4, 0, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let sol = solve(&init, &cfg);
        // Only one branch defines r1, so it is not definitely
        // initialized at the join.
        assert_eq!(sol.inputs[3], Some(BitSet::EMPTY));
        assert_eq!(sol.inputs[1], Some(BitSet::EMPTY));
        assert_eq!(sol.outputs[1], Some(r1));
    }
}
