//! Pretty-print/parse round-trips: for every figure of the paper and
//! for generated types, `parse(print(x)) == x`.

use funtal_parser::{parse_fexpr, parse_fty, parse_seq, parse_stack, parse_tcomp, parse_tty};
use funtal_syntax::alpha::{alpha_eq_fexpr, alpha_eq_fty, alpha_eq_tty};
use funtal_syntax::build::*;
use funtal_syntax::{FExpr, TComp};
use proptest::prelude::*;

fn rt_fexpr(e: &FExpr) {
    let printed = e.to_string();
    let parsed = parse_fexpr(&printed)
        .unwrap_or_else(|err| panic!("reparse failed: {err}\nsource: {printed}"));
    assert!(
        alpha_eq_fexpr(&parsed, e),
        "round-trip changed the term:\n  printed: {printed}\n  reparsed: {parsed}"
    );
}

fn rt_tcomp(c: &TComp) {
    let printed = c.to_string();
    let parsed = parse_tcomp(&printed)
        .unwrap_or_else(|err| panic!("reparse failed: {err}\nsource: {printed}"));
    assert_eq!(&parsed, c, "round-trip changed the component: {printed}");
}

#[test]
fn fig3_roundtrip() {
    rt_tcomp(&funtal_tal::figures::fig3_call_to_call());
}

#[test]
fn fig11_roundtrip() {
    rt_fexpr(&funtal::figures::fig11_jit());
}

#[test]
fn fig16_roundtrip() {
    rt_fexpr(&funtal::figures::fig16_f1());
    rt_fexpr(&funtal::figures::fig16_f2());
}

#[test]
fn fig17_roundtrip() {
    rt_fexpr(&funtal::figures::fig17_fact_f());
    rt_fexpr(&funtal::figures::fig17_fact_t());
}

#[test]
fn push7_and_mutref_roundtrip() {
    rt_fexpr(&funtal::figures::push7());
    rt_fexpr(&funtal::mutref::new_cell());
    rt_fexpr(&funtal::mutref::get_cell());
    rt_fexpr(&funtal::mutref::set_cell());
    rt_fexpr(&funtal::mutref::free_cell());
    rt_fexpr(&funtal::mutref::cell_demo(3, 4));
}

#[test]
fn compiled_code_roundtrip() {
    use funtal_compile::codegen::{compile_program, CodegenOpts};
    use funtal_compile::lang::{factorial_program, fib_program};
    for opts in [
        CodegenOpts {
            tail_call_opt: false,
        },
        CodegenOpts {
            tail_call_opt: true,
        },
    ] {
        for p in [factorial_program(), fib_program()] {
            for name in p.defs.keys() {
                rt_fexpr(&compile_program(&p, opts).wrap(name));
            }
        }
    }
}

#[test]
fn concrete_syntax_examples() {
    // Handwritten sources exercise the grammar directly.
    let t = parse_tty("box forall[z: stk, e: ret]{r1: int; int :: z} ra").unwrap();
    assert!(t.as_code().is_some());

    let s = parse_stack("int :: unit :: *").unwrap();
    assert_eq!(s.visible_len(), 2);

    let f = parse_fty("(int, unit)[int :: .; .] -> int").unwrap();
    assert!(matches!(f, funtal_syntax::FTy::Arrow { .. }));

    let seq = parse_seq("mv r1, 42; salloc 1; sst 0, r1; halt int, int :: * {r1}").unwrap();
    assert_eq!(seq.instrs.len(), 3);

    let e = parse_fexpr("(lam[z](x: int). x * x)(7) + 1").unwrap();
    assert_eq!(funtal::typecheck(&e).unwrap(), fint());
    assert_eq!(
        funtal::machine::eval_to_value(&e, 1_000).unwrap(),
        fint_e(50)
    );
}

#[test]
fn parse_errors_have_positions() {
    let err = parse_fexpr("lam[z](x: int). x +").unwrap_err();
    assert!(err.line >= 1 && err.col >= 1);
    let err = parse_tty("box forall[z: badkind]{; *} ra").unwrap_err();
    assert!(err.to_string().contains("kind"));
    assert!(parse_fexpr("1 + ").is_err());
    assert!(parse_fexpr("if0 1 {2}").is_err());
    assert!(parse_seq("mv r1, 42").is_err(), "missing terminator");
    assert!(
        parse_fexpr("lam[z](x: int). x; y").is_err(),
        "trailing input"
    );
}

#[test]
fn keywords_rejected_as_identifiers() {
    assert!(parse_fexpr("mu").is_err());
    assert!(parse_fexpr("lam[z](fold: int). fold").is_err());
    assert!(parse_tty("mu ret. int").is_err());
}

// --- property-based round trips ------------------------------------------

fn arb_tty(depth: u32) -> BoxedStrategy<funtal_syntax::TTy> {
    let leaf = prop_oneof![Just(int()), Just(unit()), "[a-c]".prop_map(|s| tvar(&s)),];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            ("[a-c]", inner.clone()).prop_map(|(v, t)| mu(&v, t)),
            ("[a-c]", inner.clone()).prop_map(|(v, t)| exists(&v, t)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(ref_tuple),
            prop::collection::vec(inner.clone(), 0..3).prop_map(box_tuple),
            (prop::collection::vec(inner.clone(), 0..2), inner).prop_map(|(prefix, t)| code_ty(
                vec![d_stk("z"), d_ret("e")],
                chi([(r1(), t)]),
                stack(prefix, zvar("z")),
                q_var("e"),
            )),
        ]
    })
    .boxed()
}

fn arb_fty(depth: u32) -> BoxedStrategy<funtal_syntax::FTy> {
    let leaf = prop_oneof![
        Just(fint()),
        Just(funit()),
        "[a-c]".prop_map(|s| fvar_ty(&s)),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            ("[a-c]", inner.clone()).prop_map(|(v, t)| fmu(&v, t)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(ftuple_ty),
            (prop::collection::vec(inner.clone(), 0..3), inner)
                .prop_map(|(params, ret)| arrow(params, ret)),
        ]
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tty_roundtrip(t in arb_tty(4)) {
        let printed = t.to_string();
        let parsed = parse_tty(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}: {printed}")))?;
        prop_assert!(alpha_eq_tty(&parsed, &t), "{printed}");
    }

    #[test]
    fn fty_roundtrip(t in arb_fty(4)) {
        let printed = t.to_string();
        let parsed = parse_fty(&printed)
            .map_err(|e| TestCaseError::fail(format!("{e}: {printed}")))?;
        prop_assert!(alpha_eq_fty(&parsed, &t), "{printed}");
    }
}
