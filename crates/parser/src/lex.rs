//! The lexer for FunTAL concrete syntax.

use std::fmt;

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Tok {
    /// The token kind.
    pub kind: TokKind,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident(String),
    /// A non-negative integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBrack,
    /// `]`
    RBrack,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `::`
    ColonColon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokKind::Ident(s) => write!(f, "`{s}`"),
            TokKind::Int(n) => write!(f, "`{n}`"),
            TokKind::LParen => f.write_str("`(`"),
            TokKind::RParen => f.write_str("`)`"),
            TokKind::LBrack => f.write_str("`[`"),
            TokKind::RBrack => f.write_str("`]`"),
            TokKind::LBrace => f.write_str("`{`"),
            TokKind::RBrace => f.write_str("`}`"),
            TokKind::Lt => f.write_str("`<`"),
            TokKind::Gt => f.write_str("`>`"),
            TokKind::Comma => f.write_str("`,`"),
            TokKind::Semi => f.write_str("`;`"),
            TokKind::Colon => f.write_str("`:`"),
            TokKind::ColonColon => f.write_str("`::`"),
            TokKind::Dot => f.write_str("`.`"),
            TokKind::Star => f.write_str("`*`"),
            TokKind::Plus => f.write_str("`+`"),
            TokKind::Minus => f.write_str("`-`"),
            TokKind::Arrow => f.write_str("`->`"),
            TokKind::Eq => f.write_str("`=`"),
            TokKind::Eof => f.write_str("end of input"),
        }
    }
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes an input string. `//` starts a line comment.
pub fn lex(src: &str) -> Result<Vec<Tok>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;
    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            out.push(Tok {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len as u32;
        }};
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Comments are the one place non-ASCII text is legal;
                // advance the column per character, not per byte, so
                // every position reported after the comment (including
                // end-of-input) matches what an editor shows.
                for ch in src[i..].chars() {
                    if ch == '\n' {
                        break;
                    }
                    i += ch.len_utf8();
                    col += 1;
                }
            }
            '(' => push!(TokKind::LParen, 1),
            ')' => push!(TokKind::RParen, 1),
            '[' => push!(TokKind::LBrack, 1),
            ']' => push!(TokKind::RBrack, 1),
            '{' => push!(TokKind::LBrace, 1),
            '}' => push!(TokKind::RBrace, 1),
            '<' => push!(TokKind::Lt, 1),
            '>' => push!(TokKind::Gt, 1),
            ',' => push!(TokKind::Comma, 1),
            ';' => push!(TokKind::Semi, 1),
            '.' => push!(TokKind::Dot, 1),
            '*' => push!(TokKind::Star, 1),
            '+' => push!(TokKind::Plus, 1),
            '=' => push!(TokKind::Eq, 1),
            ':' => {
                if bytes.get(i + 1) == Some(&b':') {
                    push!(TokKind::ColonColon, 2)
                } else {
                    push!(TokKind::Colon, 1)
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    push!(TokKind::Arrow, 2)
                } else {
                    push!(TokKind::Minus, 1)
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let n: i64 = text.parse().map_err(|_| LexError {
                    msg: format!("integer literal `{text}` out of range"),
                    line,
                    col,
                })?;
                out.push(Tok {
                    kind: TokKind::Int(n),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Tok {
                    kind: TokKind::Ident(src[start..i].to_string()),
                    line,
                    col,
                });
                col += (i - start) as u32;
            }
            _ => {
                // `c` is only the first byte; decode the real char so
                // a multi-byte UTF-8 character is reported verbatim
                // instead of as its garbled leading byte.
                let ch = src[i..].chars().next().expect("in-bounds char");
                return Err(LexError {
                    msg: format!("unexpected character `{ch}`"),
                    line,
                    col,
                });
            }
        }
    }
    out.push(Tok {
        kind: TokKind::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("mv r1, 42;"),
            vec![
                TokKind::Ident("mv".into()),
                TokKind::Ident("r1".into()),
                TokKind::Comma,
                TokKind::Int(42),
                TokKind::Semi,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn compound_tokens() {
        assert_eq!(
            kinds("int :: z -> :"),
            vec![
                TokKind::Ident("int".into()),
                TokKind::ColonColon,
                TokKind::Ident("z".into()),
                TokKind::Arrow,
                TokKind::Colon,
                TokKind::Eof
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("1 // hello\n2"),
            vec![TokKind::Int(1), TokKind::Int(2), TokKind::Eof]
        );
    }

    #[test]
    fn positions_tracked() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn rejects_illegal_chars() {
        assert!(lex("a $ b").is_err());
        assert!(lex("a # b").is_err());
    }

    #[test]
    fn non_ascii_comments_keep_positions_char_accurate() {
        // Multi-byte characters in a comment must not shift any
        // later position. The token after the comment line:
        let toks = lex("// naïve façade\nabc").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (2, 1));
        // End-of-input after a trailing non-ASCII comment counts
        // characters, not bytes: `// café` is 7 chars from col 4.
        let toks = lex("ab // café").unwrap();
        let eof = toks.last().unwrap();
        assert_eq!((eof.line, eof.col), (1, 11));
    }

    #[test]
    fn illegal_non_ascii_char_is_reported_verbatim() {
        let err = lex("a é b").unwrap_err();
        assert_eq!((err.line, err.col), (1, 3));
        assert!(err.msg.contains('é'), "got: {}", err.msg);
    }
}
