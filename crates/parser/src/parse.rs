//! Recursive-descent parser for the FunTAL concrete syntax.
//!
//! The grammar is exactly the output language of `funtal-syntax`'s
//! `Display` implementations; pretty-printing then parsing is the
//! identity (property-tested in `tests/roundtrip.rs`).

use std::fmt;

use funtal_syntax::span::{Span, SpanTable};
use funtal_syntax::{
    ArithOp, CodeBlock, CodeTy, FExpr, FTy, HeapFrag, HeapVal, Inst, Instr, InstrSeq, Kind, Label,
    Lam, Mutability, Reg, RegFileTy, RetMarker, SmallVal, StackTail, StackTy, TComp, TTy,
    Terminator, TyVar, TyVarDecl, VarName, WordVal,
};

use crate::lex::{lex, LexError, Tok, TokKind};

/// A parse error with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Description.
    pub msg: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            msg: e.msg,
            line: e.line,
            col: e.col,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Names that cannot be used as identifiers for variables or labels.
const KEYWORDS: &[&str] = &[
    "unit", "int", "mu", "exists", "ref", "box", "forall", "code", "end", "out", "if0", "lam",
    "fold", "unfold", "pi", "FT", "TF", "import", "protect", "pack", "as", "stk", "ty", "salloc",
    "sfree", "sld", "sst", "ld", "st", "mv", "add", "sub", "mul", "bnz", "jmp", "call", "ret",
    "halt", "ralloc", "balloc", "unpack",
];

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
    /// Label → source-span side table, filled while parsing heap
    /// fragments (see `funtal_syntax::span` for why spans live beside
    /// the AST instead of in it).
    spans: SpanTable,
}

impl Parser {
    fn new(src: &str) -> PResult<Self> {
        Ok(Parser {
            toks: lex(src)?,
            pos: 0,
            spans: SpanTable::new(),
        })
    }

    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        let (line, col) = self.here();
        Err(ParseError {
            msg: msg.into(),
            line,
            col,
        })
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn eat(&mut self, k: &TokKind) -> PResult<()> {
        if self.peek() == k {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {k}, found {}", self.peek()))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> PResult<()> {
        match self.peek() {
            TokKind::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => self.err(format!("expected `{kw}`, found {other}")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), TokKind::Ident(s) if s == kw)
    }

    fn ident(&mut self, what: &str) -> PResult<String> {
        match self.peek().clone() {
            TokKind::Ident(s) => {
                if KEYWORDS.contains(&s.as_str()) {
                    self.err(format!("keyword `{s}` cannot be used as {what}"))
                } else if Reg::from_name(&s).is_some() {
                    self.err(format!("register name `{s}` cannot be used as {what}"))
                } else {
                    self.bump();
                    Ok(s)
                }
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    fn number(&mut self, what: &str) -> PResult<i64> {
        match self.peek().clone() {
            TokKind::Int(n) => {
                self.bump();
                Ok(n)
            }
            other => self.err(format!("expected {what}, found {other}")),
        }
    }

    fn usize_lit(&mut self, what: &str) -> PResult<usize> {
        let n = self.number(what)?;
        usize::try_from(n).map_err(|_| {
            let (line, col) = self.here();
            ParseError {
                msg: format!("{what} must be non-negative"),
                line,
                col,
            }
        })
    }

    fn reg(&mut self) -> PResult<Reg> {
        match self.peek().clone() {
            TokKind::Ident(s) => match Reg::from_name(&s) {
                Some(r) => {
                    self.bump();
                    Ok(r)
                }
                None => self.err(format!("expected a register, found `{s}`")),
            },
            other => self.err(format!("expected a register, found {other}")),
        }
    }

    fn comma_sep<T>(
        &mut self,
        end: &TokKind,
        mut item: impl FnMut(&mut Self) -> PResult<T>,
    ) -> PResult<Vec<T>> {
        let mut out = Vec::new();
        if self.peek() == end {
            return Ok(out);
        }
        loop {
            out.push(item(self)?);
            if self.peek() == &TokKind::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    // --- types -----------------------------------------------------------

    fn tty(&mut self) -> PResult<TTy> {
        match self.peek().clone() {
            TokKind::Ident(s) => match s.as_str() {
                "unit" => {
                    self.bump();
                    Ok(TTy::Unit)
                }
                "int" => {
                    self.bump();
                    Ok(TTy::Int)
                }
                "mu" => {
                    self.bump();
                    let v = self.ident("a type variable")?;
                    self.eat(&TokKind::Dot)?;
                    Ok(TTy::Rec(TyVar::new(v), Box::new(self.tty()?)))
                }
                "exists" => {
                    self.bump();
                    let v = self.ident("a type variable")?;
                    self.eat(&TokKind::Dot)?;
                    Ok(TTy::Exists(TyVar::new(v), Box::new(self.tty()?)))
                }
                "ref" => {
                    self.bump();
                    self.eat(&TokKind::Lt)?;
                    let ts = self.comma_sep(&TokKind::Gt, |p| p.tty())?;
                    self.eat(&TokKind::Gt)?;
                    Ok(TTy::Ref(ts))
                }
                "box" => {
                    self.bump();
                    Ok(TTy::Boxed(Box::new(self.heap_ty()?)))
                }
                _ => {
                    let v = self.ident("a type")?;
                    Ok(TTy::Var(TyVar::new(v)))
                }
            },
            other => self.err(format!("expected a T type, found {other}")),
        }
    }

    fn heap_ty(&mut self) -> PResult<funtal_syntax::HeapTy> {
        if self.peek() == &TokKind::Lt {
            self.bump();
            let ts = self.comma_sep(&TokKind::Gt, |p| p.tty())?;
            self.eat(&TokKind::Gt)?;
            Ok(funtal_syntax::HeapTy::Tuple(ts))
        } else {
            Ok(funtal_syntax::HeapTy::Code(self.code_ty()?))
        }
    }

    fn code_ty(&mut self) -> PResult<CodeTy> {
        self.eat_kw("forall")?;
        self.eat(&TokKind::LBrack)?;
        let delta = self.comma_sep(&TokKind::RBrack, |p| p.decl())?;
        self.eat(&TokKind::RBrack)?;
        let (chi, sigma) = self.chi_sigma()?;
        let q = self.ret_marker()?;
        Ok(CodeTy {
            delta,
            chi,
            sigma,
            q,
        })
    }

    fn chi_sigma(&mut self) -> PResult<(RegFileTy, StackTy)> {
        self.eat(&TokKind::LBrace)?;
        let pairs = self.comma_sep(&TokKind::Semi, |p| {
            let r = p.reg()?;
            p.eat(&TokKind::Colon)?;
            let t = p.tty()?;
            Ok((r, t))
        })?;
        self.eat(&TokKind::Semi)?;
        let sigma = self.stack()?;
        self.eat(&TokKind::RBrace)?;
        Ok((RegFileTy::from_pairs(pairs), sigma))
    }

    fn decl(&mut self) -> PResult<TyVarDecl> {
        let v = self.ident("a type variable")?;
        self.eat(&TokKind::Colon)?;
        let kind = match self.peek().clone() {
            TokKind::Ident(s) => match s.as_str() {
                "ty" => Kind::Ty,
                "stk" => Kind::Stack,
                "ret" => Kind::Ret,
                other => return self.err(format!("expected a kind, found `{other}`")),
            },
            other => return self.err(format!("expected a kind, found {other}")),
        };
        self.bump();
        Ok(TyVarDecl {
            var: TyVar::new(v),
            kind,
        })
    }

    fn stack(&mut self) -> PResult<StackTy> {
        let mut prefix = Vec::new();
        loop {
            if self.peek() == &TokKind::Star {
                self.bump();
                return Ok(StackTy {
                    prefix,
                    tail: StackTail::Empty,
                });
            }
            let t = self.tty()?;
            if self.peek() == &TokKind::ColonColon {
                self.bump();
                prefix.push(t);
            } else {
                let TTy::Var(v) = t else {
                    return self.err("a stack must end in `*` or a stack variable");
                };
                return Ok(StackTy {
                    prefix,
                    tail: StackTail::Var(v),
                });
            }
        }
    }

    /// Dot-terminated stack prefix: `int :: unit :: .` or `.`.
    fn prefix(&mut self) -> PResult<Vec<TTy>> {
        let mut out = Vec::new();
        loop {
            if self.peek() == &TokKind::Dot {
                self.bump();
                return Ok(out);
            }
            out.push(self.tty()?);
            self.eat(&TokKind::ColonColon)?;
        }
    }

    fn ret_marker(&mut self) -> PResult<RetMarker> {
        match self.peek().clone() {
            TokKind::Int(_) => Ok(RetMarker::Stack(self.usize_lit("a stack slot")?)),
            TokKind::Ident(s) => {
                if let Some(r) = Reg::from_name(&s) {
                    self.bump();
                    return Ok(RetMarker::Reg(r));
                }
                match s.as_str() {
                    "out" => {
                        self.bump();
                        Ok(RetMarker::Out)
                    }
                    "end" => {
                        self.bump();
                        self.eat(&TokKind::LBrace)?;
                        let ty = self.tty()?;
                        self.eat(&TokKind::Semi)?;
                        let sigma = self.stack()?;
                        self.eat(&TokKind::RBrace)?;
                        Ok(RetMarker::end(ty, sigma))
                    }
                    _ => Ok(RetMarker::Var(TyVar::new(self.ident("a return marker")?))),
                }
            }
            other => self.err(format!("expected a return marker, found {other}")),
        }
    }

    fn inst(&mut self) -> PResult<Inst> {
        if self.at_kw("stk") {
            self.bump();
            self.eat(&TokKind::LParen)?;
            let s = self.stack()?;
            self.eat(&TokKind::RParen)?;
            return Ok(Inst::Stack(s));
        }
        if self.at_kw("ret") {
            self.bump();
            self.eat(&TokKind::LParen)?;
            let q = self.ret_marker()?;
            self.eat(&TokKind::RParen)?;
            return Ok(Inst::Ret(q));
        }
        Ok(Inst::Ty(self.tty()?))
    }

    // --- F types -----------------------------------------------------------

    fn fty(&mut self) -> PResult<FTy> {
        match self.peek().clone() {
            TokKind::LParen => {
                self.bump();
                let params = self.comma_sep(&TokKind::RParen, |p| p.fty())?;
                self.eat(&TokKind::RParen)?;
                let (phi_in, phi_out) = if self.peek() == &TokKind::LBrack {
                    self.bump();
                    let i = self.prefix()?;
                    self.eat(&TokKind::Semi)?;
                    let o = self.prefix()?;
                    self.eat(&TokKind::RBrack)?;
                    (i, o)
                } else {
                    (vec![], vec![])
                };
                self.eat(&TokKind::Arrow)?;
                let ret = self.fty()?;
                Ok(FTy::Arrow {
                    params,
                    phi_in,
                    phi_out,
                    ret: Box::new(ret),
                })
            }
            TokKind::Lt => {
                self.bump();
                let ts = self.comma_sep(&TokKind::Gt, |p| p.fty())?;
                self.eat(&TokKind::Gt)?;
                Ok(FTy::Tuple(ts))
            }
            TokKind::Ident(s) => match s.as_str() {
                "unit" => {
                    self.bump();
                    Ok(FTy::Unit)
                }
                "int" => {
                    self.bump();
                    Ok(FTy::Int)
                }
                "mu" => {
                    self.bump();
                    let v = self.ident("a type variable")?;
                    self.eat(&TokKind::Dot)?;
                    Ok(FTy::Rec(TyVar::new(v), Box::new(self.fty()?)))
                }
                _ => Ok(FTy::Var(TyVar::new(self.ident("an F type")?))),
            },
            other => self.err(format!("expected an F type, found {other}")),
        }
    }

    // --- word and small values ------------------------------------------------

    fn small(&mut self) -> PResult<SmallVal> {
        let base = match self.peek().clone() {
            TokKind::Int(_) => SmallVal::int(self.number("an integer")?),
            TokKind::LParen => {
                self.bump();
                match self.peek().clone() {
                    TokKind::RParen => {
                        self.bump();
                        SmallVal::unit()
                    }
                    TokKind::Minus => {
                        self.bump();
                        let n = self.number("an integer")?;
                        self.eat(&TokKind::RParen)?;
                        SmallVal::int(-n)
                    }
                    other => {
                        return self.err(format!(
                            "expected `()` or a negative literal, found {other}"
                        ))
                    }
                }
            }
            TokKind::Ident(s) if s == "pack" => {
                self.bump();
                self.eat(&TokKind::Lt)?;
                let hidden = self.tty()?;
                self.eat(&TokKind::Comma)?;
                let body = self.small()?;
                self.eat(&TokKind::Gt)?;
                self.eat_kw("as")?;
                let ann = self.tty()?;
                SmallVal::Pack {
                    hidden,
                    body: Box::new(body),
                    ann,
                }
            }
            TokKind::Ident(s) if s == "fold" => {
                self.bump();
                self.eat(&TokKind::LBrack)?;
                let ann = self.tty()?;
                self.eat(&TokKind::RBrack)?;
                let body = self.small()?;
                SmallVal::Fold {
                    ann,
                    body: Box::new(body),
                }
            }
            TokKind::Ident(s) => {
                if let Some(r) = Reg::from_name(&s) {
                    self.bump();
                    SmallVal::Reg(r)
                } else {
                    SmallVal::loc(self.ident("a label")?)
                }
            }
            other => return self.err(format!("expected an operand, found {other}")),
        };
        self.insts_suffix_small(base)
    }

    fn insts_suffix_small(&mut self, mut base: SmallVal) -> PResult<SmallVal> {
        while self.peek() == &TokKind::LBrack {
            self.bump();
            let args = self.comma_sep(&TokKind::RBrack, |p| p.inst())?;
            self.eat(&TokKind::RBrack)?;
            base = base.instantiate(args);
        }
        Ok(base)
    }

    fn word(&mut self) -> PResult<WordVal> {
        // Word values are small values without registers.
        let sv = self.small()?;
        small_to_word(sv).map_or_else(|| self.err("registers cannot appear here"), Ok)
    }

    // --- instructions -----------------------------------------------------------

    /// Parses an instruction sequence (instructions separated by `;`
    /// ending with a terminator).
    fn seq(&mut self) -> PResult<InstrSeq> {
        let mut instrs = Vec::new();
        loop {
            let TokKind::Ident(s) = self.peek().clone() else {
                return self.err(format!("expected an instruction, found {}", self.peek()));
            };
            match s.as_str() {
                "jmp" => {
                    self.bump();
                    let u = self.small()?;
                    return Ok(InstrSeq::new(instrs, Terminator::Jmp(u)));
                }
                "call" => {
                    self.bump();
                    let target = self.small()?;
                    self.eat(&TokKind::LBrace)?;
                    let sigma = self.stack()?;
                    self.eat(&TokKind::Comma)?;
                    let q = self.ret_marker()?;
                    self.eat(&TokKind::RBrace)?;
                    return Ok(InstrSeq::new(instrs, Terminator::Call { target, sigma, q }));
                }
                "ret" => {
                    self.bump();
                    let target = self.reg()?;
                    self.eat(&TokKind::LBrace)?;
                    let val = self.reg()?;
                    self.eat(&TokKind::RBrace)?;
                    return Ok(InstrSeq::new(instrs, Terminator::Ret { target, val }));
                }
                "halt" => {
                    self.bump();
                    let ty = self.tty()?;
                    self.eat(&TokKind::Comma)?;
                    let sigma = self.stack()?;
                    self.eat(&TokKind::LBrace)?;
                    let val = self.reg()?;
                    self.eat(&TokKind::RBrace)?;
                    return Ok(InstrSeq::new(instrs, Terminator::Halt { ty, sigma, val }));
                }
                _ => {
                    instrs.push(self.instr()?);
                    self.eat(&TokKind::Semi)?;
                }
            }
        }
    }

    fn instr(&mut self) -> PResult<Instr> {
        let TokKind::Ident(s) = self.peek().clone() else {
            return self.err(format!("expected an instruction, found {}", self.peek()));
        };
        let op = s.as_str();
        match op {
            "add" | "sub" | "mul" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                let rs = self.reg()?;
                self.eat(&TokKind::Comma)?;
                let src = self.small()?;
                let op = match op {
                    "add" => ArithOp::Add,
                    "sub" => ArithOp::Sub,
                    _ => ArithOp::Mul,
                };
                Ok(Instr::Arith { op, rd, rs, src })
            }
            "bnz" => {
                self.bump();
                let r = self.reg()?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::Bnz {
                    r,
                    target: self.small()?,
                })
            }
            "ld" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                let rs = self.reg()?;
                self.eat(&TokKind::LBrack)?;
                let idx = self.usize_lit("a field index")?;
                self.eat(&TokKind::RBrack)?;
                Ok(Instr::Ld { rd, rs, idx })
            }
            "st" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::LBrack)?;
                let idx = self.usize_lit("a field index")?;
                self.eat(&TokKind::RBrack)?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::St {
                    rd,
                    idx,
                    rs: self.reg()?,
                })
            }
            "ralloc" | "balloc" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                let n = self.usize_lit("a tuple width")?;
                Ok(if op == "ralloc" {
                    Instr::Ralloc { rd, n }
                } else {
                    Instr::Balloc { rd, n }
                })
            }
            "mv" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::Mv {
                    rd,
                    src: self.small()?,
                })
            }
            "salloc" => {
                self.bump();
                Ok(Instr::Salloc(self.usize_lit("a cell count")?))
            }
            "sfree" => {
                self.bump();
                Ok(Instr::Sfree(self.usize_lit("a cell count")?))
            }
            "sld" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::Sld {
                    rd,
                    idx: self.usize_lit("a stack slot")?,
                })
            }
            "sst" => {
                self.bump();
                let idx = self.usize_lit("a stack slot")?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::Sst {
                    idx,
                    rs: self.reg()?,
                })
            }
            "unpack" => {
                self.bump();
                self.eat(&TokKind::Lt)?;
                let tv = self.ident("a type variable")?;
                self.eat(&TokKind::Comma)?;
                let rd = self.reg()?;
                self.eat(&TokKind::Gt)?;
                Ok(Instr::Unpack {
                    tv: TyVar::new(tv),
                    rd,
                    src: self.small()?,
                })
            }
            "unfold" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::Unfold {
                    rd,
                    src: self.small()?,
                })
            }
            "protect" => {
                self.bump();
                let phi = self.prefix()?;
                self.eat(&TokKind::Comma)?;
                Ok(Instr::Protect {
                    phi,
                    zeta: TyVar::new(self.ident("a stack variable")?),
                })
            }
            "import" => {
                self.bump();
                let rd = self.reg()?;
                self.eat(&TokKind::Comma)?;
                let zeta = self.ident("a stack variable")?;
                self.eat(&TokKind::Eq)?;
                let protected = self.stack()?;
                self.eat(&TokKind::Comma)?;
                self.eat_kw("TF")?;
                self.eat(&TokKind::LBrack)?;
                let ty = self.fty()?;
                self.eat(&TokKind::RBrack)?;
                self.eat(&TokKind::LParen)?;
                let body = self.fexpr()?;
                self.eat(&TokKind::RParen)?;
                Ok(Instr::Import {
                    rd,
                    zeta: TyVar::new(zeta),
                    protected,
                    ty,
                    body: Box::new(body),
                })
            }
            other => self.err(format!("unknown instruction `{other}`")),
        }
    }

    fn heap_val(&mut self) -> PResult<HeapVal> {
        if self.at_kw("code") {
            self.bump();
            self.eat(&TokKind::LBrack)?;
            let delta = self.comma_sep(&TokKind::RBrack, |p| p.decl())?;
            self.eat(&TokKind::RBrack)?;
            let (chi, sigma) = self.chi_sigma()?;
            let q = self.ret_marker()?;
            self.eat(&TokKind::Dot)?;
            let body = self.seq()?;
            return Ok(HeapVal::Code(CodeBlock {
                delta,
                chi,
                sigma,
                q,
                body,
            }));
        }
        let mutability = if self.at_kw("box") {
            Mutability::Boxed
        } else if self.at_kw("ref") {
            Mutability::Ref
        } else {
            return self.err("expected `code`, `box`, or `ref` heap value");
        };
        self.bump();
        self.eat(&TokKind::Lt)?;
        let fields = self.comma_sep(&TokKind::Gt, |p| p.word())?;
        self.eat(&TokKind::Gt)?;
        Ok(HeapVal::Tuple { mutability, fields })
    }

    fn tcomp(&mut self) -> PResult<TComp> {
        self.eat(&TokKind::LParen)?;
        let seq = self.seq()?;
        let heap = if self.peek() == &TokKind::Comma {
            self.bump();
            self.eat(&TokKind::LBrace)?;
            let mut pairs = Vec::new();
            loop {
                let (line, col) = self.here();
                let l = self.ident("a label")?;
                self.eat(&TokKind::Arrow)?;
                let hv = self.heap_val()?;
                let (end_line, end_col) = self.here();
                self.spans
                    .record(l.as_str(), Span::new(line, col, end_line, end_col));
                pairs.push((Label::new(l), hv));
                if self.peek() == &TokKind::Semi {
                    self.bump();
                } else {
                    break;
                }
            }
            self.eat(&TokKind::RBrace)?;
            HeapFrag::from_pairs(pairs)
        } else {
            HeapFrag::new()
        };
        self.eat(&TokKind::RParen)?;
        Ok(TComp { seq, heap })
    }

    // --- F expressions -----------------------------------------------------------

    fn fexpr(&mut self) -> PResult<FExpr> {
        let mut lhs = self.fexpr_mul()?;
        loop {
            let op = match self.peek() {
                TokKind::Plus => ArithOp::Add,
                TokKind::Minus => ArithOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.fexpr_mul()?;
            lhs = FExpr::binop(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn fexpr_mul(&mut self) -> PResult<FExpr> {
        let mut lhs = self.fexpr_app()?;
        while self.peek() == &TokKind::Star {
            self.bump();
            let rhs = self.fexpr_app()?;
            lhs = FExpr::binop(ArithOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn fexpr_app(&mut self) -> PResult<FExpr> {
        let mut e = self.fexpr_primary()?;
        while self.peek() == &TokKind::LParen {
            self.bump();
            let args = self.comma_sep(&TokKind::RParen, |p| p.fexpr())?;
            self.eat(&TokKind::RParen)?;
            e = FExpr::app(e, args);
        }
        Ok(e)
    }

    fn fexpr_primary(&mut self) -> PResult<FExpr> {
        match self.peek().clone() {
            TokKind::Int(_) => Ok(FExpr::Int(self.number("an integer")?)),
            TokKind::Minus => {
                self.bump();
                Ok(FExpr::Int(-self.number("an integer")?))
            }
            TokKind::LParen => {
                self.bump();
                if self.peek() == &TokKind::RParen {
                    self.bump();
                    return Ok(FExpr::Unit);
                }
                let e = self.fexpr()?;
                self.eat(&TokKind::RParen)?;
                Ok(e)
            }
            TokKind::Lt => {
                self.bump();
                let es = self.comma_sep(&TokKind::Gt, |p| p.fexpr())?;
                self.eat(&TokKind::Gt)?;
                Ok(FExpr::Tuple(es))
            }
            TokKind::Ident(s) => match s.as_str() {
                "if0" => {
                    self.bump();
                    let cond = self.fexpr()?;
                    self.eat(&TokKind::LBrace)?;
                    let t = self.fexpr()?;
                    self.eat(&TokKind::RBrace)?;
                    self.eat(&TokKind::LBrace)?;
                    let e = self.fexpr()?;
                    self.eat(&TokKind::RBrace)?;
                    Ok(FExpr::If0 {
                        cond: Box::new(cond),
                        then_branch: Box::new(t),
                        else_branch: Box::new(e),
                    })
                }
                "lam" => {
                    self.bump();
                    self.eat(&TokKind::LBrack)?;
                    let zeta = self.ident("a stack variable")?;
                    let (phi_in, phi_out) = if self.peek() == &TokKind::Semi {
                        self.bump();
                        let i = self.prefix()?;
                        self.eat(&TokKind::Semi)?;
                        let o = self.prefix()?;
                        (i, o)
                    } else {
                        (vec![], vec![])
                    };
                    self.eat(&TokKind::RBrack)?;
                    self.eat(&TokKind::LParen)?;
                    let params = self.comma_sep(&TokKind::RParen, |p| {
                        let x = p.ident("a parameter")?;
                        p.eat(&TokKind::Colon)?;
                        let t = p.fty()?;
                        Ok((VarName::new(x), t))
                    })?;
                    self.eat(&TokKind::RParen)?;
                    self.eat(&TokKind::Dot)?;
                    let body = self.fexpr()?;
                    Ok(FExpr::Lam(Box::new(Lam {
                        params,
                        zeta: TyVar::new(zeta),
                        phi_in,
                        phi_out,
                        body,
                    })))
                }
                "fold" => {
                    self.bump();
                    self.eat(&TokKind::LBrack)?;
                    let ann = self.fty()?;
                    self.eat(&TokKind::RBrack)?;
                    self.eat(&TokKind::LParen)?;
                    let body = self.fexpr()?;
                    self.eat(&TokKind::RParen)?;
                    Ok(FExpr::Fold {
                        ann,
                        body: Box::new(body),
                    })
                }
                "unfold" => {
                    self.bump();
                    self.eat(&TokKind::LParen)?;
                    let body = self.fexpr()?;
                    self.eat(&TokKind::RParen)?;
                    Ok(FExpr::Unfold(Box::new(body)))
                }
                "pi" => {
                    self.bump();
                    self.eat(&TokKind::LBrack)?;
                    let idx = self.usize_lit("a projection index")?;
                    self.eat(&TokKind::RBrack)?;
                    self.eat(&TokKind::LParen)?;
                    let tuple = self.fexpr()?;
                    self.eat(&TokKind::RParen)?;
                    Ok(FExpr::Proj {
                        idx,
                        tuple: Box::new(tuple),
                    })
                }
                "FT" => {
                    self.bump();
                    self.eat(&TokKind::LBrack)?;
                    let ty = self.fty()?;
                    let sigma_out = if self.peek() == &TokKind::Semi {
                        self.bump();
                        Some(self.stack()?)
                    } else {
                        None
                    };
                    self.eat(&TokKind::RBrack)?;
                    let comp = self.tcomp()?;
                    Ok(FExpr::Boundary {
                        ty,
                        sigma_out,
                        comp: Box::new(comp),
                    })
                }
                _ => Ok(FExpr::Var(VarName::new(self.ident("an expression")?))),
            },
            other => self.err(format!("expected an expression, found {other}")),
        }
    }

    fn finish<T>(&mut self, value: T) -> PResult<T> {
        if self.peek() == &TokKind::Eof {
            Ok(value)
        } else {
            self.err(format!("unexpected trailing input: {}", self.peek()))
        }
    }

    /// The whole program's span: first token through end of input.
    fn root_span(&self) -> Span {
        let first = self.toks.first().expect("lexer always emits Eof");
        let last = self.toks.last().expect("lexer always emits Eof");
        if first.kind == TokKind::Eof {
            Span::SYNTH
        } else {
            Span::new(first.line, first.col, last.line, last.col)
        }
    }

    /// Consumes the parser, returning the filled span table.
    fn into_spans(mut self) -> SpanTable {
        self.spans.root = self.root_span();
        self.spans
    }
}

fn small_to_word(u: SmallVal) -> Option<WordVal> {
    match u {
        SmallVal::Reg(_) => None,
        SmallVal::Word(w) => Some(w),
        SmallVal::Pack { hidden, body, ann } => Some(WordVal::Pack {
            hidden,
            body: Box::new(small_to_word(*body)?),
            ann,
        }),
        SmallVal::Fold { ann, body } => Some(WordVal::Fold {
            ann,
            body: Box::new(small_to_word(*body)?),
        }),
        SmallVal::Inst { body, args } => Some(small_to_word(*body)?.instantiate(args)),
    }
}

/// Parses an F expression (a whole source file).
pub fn parse_fexpr(src: &str) -> PResult<FExpr> {
    let mut p = Parser::new(src)?;
    let e = p.fexpr()?;
    p.finish(e)
}

/// Parses an F expression plus its source-span table: the whole
/// program's span and one span per heap label (across every nested
/// boundary). The table is the profiler's map from machine labels back
/// to source regions; it survives interning and `Arc` sharing because
/// it lives beside the term, keyed by label.
pub fn parse_fexpr_spanned(src: &str) -> PResult<(FExpr, SpanTable)> {
    let mut p = Parser::new(src)?;
    let e = p.fexpr()?;
    let e = p.finish(e)?;
    Ok((e, p.into_spans()))
}

/// Parses a T component `(I)` or `(I, {l -> h; …})`.
pub fn parse_tcomp(src: &str) -> PResult<TComp> {
    let mut p = Parser::new(src)?;
    let c = p.tcomp()?;
    p.finish(c)
}

/// Parses a T component plus its source-span table (see
/// [`parse_fexpr_spanned`]).
pub fn parse_tcomp_spanned(src: &str) -> PResult<(TComp, SpanTable)> {
    let mut p = Parser::new(src)?;
    let c = p.tcomp()?;
    let c = p.finish(c)?;
    Ok((c, p.into_spans()))
}

/// Parses a T value type.
pub fn parse_tty(src: &str) -> PResult<TTy> {
    let mut p = Parser::new(src)?;
    let t = p.tty()?;
    p.finish(t)
}

/// Parses an F type.
pub fn parse_fty(src: &str) -> PResult<FTy> {
    let mut p = Parser::new(src)?;
    let t = p.fty()?;
    p.finish(t)
}

/// Parses a stack typing.
pub fn parse_stack(src: &str) -> PResult<StackTy> {
    let mut p = Parser::new(src)?;
    let s = p.stack()?;
    p.finish(s)
}

/// Parses an instruction sequence.
pub fn parse_seq(src: &str) -> PResult<InstrSeq> {
    let mut p = Parser::new(src)?;
    let s = p.seq()?;
    p.finish(s)
}

/// Parses a heap value (`code[..]{..} q. I`, `box <..>`, `ref <..>`).
pub fn parse_heap_val(src: &str) -> PResult<HeapVal> {
    let mut p = Parser::new(src)?;
    let h = p.heap_val()?;
    p.finish(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the byte-based-column bug: a non-ASCII comment
    /// before an error must not shift the reported position.
    #[test]
    fn non_ascii_comment_does_not_shift_error_positions() {
        let ascii = parse_fexpr("// plain comment\n1 +").unwrap_err();
        let accented = parse_fexpr("// commentaire accentué — ✓\n1 +").unwrap_err();
        assert_eq!((ascii.line, ascii.col), (2, 4));
        assert_eq!(
            (accented.line, accented.col),
            (ascii.line, ascii.col),
            "non-ASCII comment shifted the error position"
        );
    }

    #[test]
    fn spanned_parse_records_root_and_labels() {
        let src = "FT[int](mv r1, 42; halt int, * {r1},\n  {tup -> box <1, 2>})";
        let (_, spans) = parse_fexpr_spanned(src).unwrap();
        assert_eq!(spans.root, Span::new(1, 1, 2, 23));
        assert_eq!(spans.resolve("tup"), Span::new(2, 4, 2, 21));
        // A machine-renamed copy resolves to the same region.
        assert_eq!(spans.resolve("tup$3"), Span::new(2, 4, 2, 21));
        assert!(spans.resolve("nowhere").is_synth());
    }

    #[test]
    fn spanned_parse_sees_nested_boundary_labels() {
        let src = "1 + FT[int](jmp go, {go -> code[]{; *} end{int; *}. halt int, * {r1}})";
        let (_, spans) = parse_fexpr_spanned(src).unwrap();
        assert!(!spans.resolve("go").is_synth());
        assert_eq!(spans.resolve("go").line, 1);
    }
}
