//! Concrete syntax for FunTAL: a lexer and recursive-descent parser
//! matching the pretty-printer of `funtal-syntax` exactly (the paper's
//! artifact was an in-browser type checker and stepper with a concrete
//! syntax; this is our equivalent).
//!
//! The grammar, briefly (see `crates/parser/tests/` for many examples):
//!
//! ```text
//! T types    unit | int | a | mu a. t | exists a. t | ref <t, …>
//!            | box <t, …> | box forall[a: ty, z: stk, e: ret]{r1: t, …; σ} q
//! stacks σ   t :: … :: * | t :: … :: z
//! markers q  r1 … ra | 3 | e | end{t; σ} | out
//! F types    unit | int | a | mu a. t | <t, …> | (t, …) -> t
//!            | (t, …)[φ; φ] -> t          (φ ::= . | t :: φ)
//! F terms    x | 42 | () | e + e | e - e | e * e | if0 e {e} {e}
//!            | lam[z](x: t, …). e | lam[z; φ; φ](x: t, …). e | e(e, …)
//!            | fold[t](e) | unfold(e) | <e, …> | pi[1](e)
//!            | FT[t](comp) | FT[t; σ](comp)
//! components (I) | (I, {l -> h; …})
//! h          code[…]{χ; σ} q. I | box <w, …> | ref <w, …>
//! I          ι; …; jmp u | call u {σ, q} | ret r {r} | halt t, σ {r}
//! imports    import rd, z = σ, TF[t](e)
//! ```
//!
//! # Example
//!
//! ```
//! use funtal_parser::parse_fexpr;
//! use funtal::machine::eval_to_value;
//! use funtal_syntax::build::*;
//!
//! let e = parse_fexpr(
//!     "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})",
//! )?;
//! assert_eq!(funtal::typecheck(&e)?, fint());
//! assert_eq!(eval_to_value(&e, 100)?, fint_e(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lex;
pub mod parse;

pub use lex::{lex, LexError, Tok, TokKind};
pub use parse::{
    parse_fexpr, parse_fexpr_spanned, parse_fty, parse_heap_val, parse_seq, parse_stack,
    parse_tcomp, parse_tcomp_spanned, parse_tty, ParseError,
};
