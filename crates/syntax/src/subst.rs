//! Capture-avoiding substitution of type instantiations `ω ::= τ | σ | q`
//! for type variables, and of F values for F term variables.
//!
//! Type substitution is the engine behind jumping to polymorphic code
//! blocks (`jmp u[ω̄]`, `call u {σ0, q}`), `unpack`, `protect`, and the
//! boundary translations.

use std::collections::{BTreeMap, BTreeSet};

use crate::free::{ftv_inst, fv_fexpr};
use crate::ids::{fresh_tyvar, fresh_varname, TyVar, VarName};
use crate::term::{
    CodeBlock, Component, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, Lam, SmallVal, TComp,
    Terminator, WordVal,
};
use crate::ty::{CodeTy, FTy, HeapTy, Inst, Kind, RegFileTy, RetMarker, StackTail, StackTy, TTy};

/// A finite substitution from type variables to instantiations.
#[derive(Clone, Debug, Default)]
pub struct Subst {
    map: BTreeMap<TyVar, Inst>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// The singleton substitution `[ω/v]`.
    pub fn one(v: impl Into<TyVar>, inst: Inst) -> Self {
        let mut map = BTreeMap::new();
        map.insert(v.into(), inst);
        Subst { map }
    }

    /// Builds a substitution from pairs; later pairs overwrite earlier.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (TyVar, Inst)>) -> Self {
        Subst {
            map: pairs.into_iter().collect(),
        }
    }

    /// Adds a binding.
    pub fn insert(&mut self, v: impl Into<TyVar>, inst: Inst) {
        self.map.insert(v.into(), inst);
    }

    /// True if the substitution has no effect.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The substituted variables.
    pub fn domain(&self) -> impl Iterator<Item = &TyVar> {
        self.map.keys()
    }

    fn lookup(&self, v: &TyVar) -> Option<&Inst> {
        self.map.get(v)
    }

    /// All variables free in the substitution's range.
    fn range_ftv(&self) -> BTreeSet<TyVar> {
        let mut out = BTreeSet::new();
        for inst in self.map.values() {
            out.extend(ftv_inst(inst));
        }
        out
    }

    /// Prepares to descend under a binder of variable `v` with kind
    /// `kind`: removes a shadowed binding and renames the binder when it
    /// would capture a variable free in the substitution's range.
    ///
    /// Returns the substitution to apply to the body and the (possibly
    /// renamed) binder.
    fn under_binder(&self, v: &TyVar, kind: Kind) -> (Subst, TyVar) {
        let mut inner = self.clone();
        inner.map.remove(v);
        if inner.map.is_empty() {
            return (inner, v.clone());
        }
        let range = inner.range_ftv();
        if !range.contains(v) {
            return (inner, v.clone());
        }
        let fresh = fresh_tyvar(v, |cand| {
            range.contains(cand) || inner.map.contains_key(cand)
        });
        let rename = match kind {
            Kind::Ty => Inst::Ty(TTy::Var(fresh.clone())),
            Kind::Stack => Inst::Stack(StackTy::var(fresh.clone())),
            Kind::Ret => Inst::Ret(RetMarker::Var(fresh.clone())),
        };
        inner.map.insert(v.clone(), rename);
        (inner, fresh)
    }

    /// Applies the substitution to a T value type.
    pub fn tty(&self, t: &TTy) -> TTy {
        if self.is_empty() {
            return t.clone();
        }
        match t {
            TTy::Var(v) => match self.lookup(v) {
                None => t.clone(),
                Some(Inst::Ty(t2)) => t2.clone(),
                Some(other) => panic!("kind error: substituting {other:?} for type variable {v}"),
            },
            TTy::Unit | TTy::Int => t.clone(),
            TTy::Exists(v, body) => {
                let (s, v2) = self.under_binder(v, Kind::Ty);
                TTy::Exists(v2, Box::new(s.tty(body)))
            }
            TTy::Rec(v, body) => {
                let (s, v2) = self.under_binder(v, Kind::Ty);
                TTy::Rec(v2, Box::new(s.tty(body)))
            }
            TTy::Ref(ts) => TTy::Ref(ts.iter().map(|t| self.tty(t)).collect()),
            TTy::Boxed(h) => TTy::Boxed(Box::new(self.heap_ty(h))),
        }
    }

    /// Applies the substitution to a heap type.
    pub fn heap_ty(&self, h: &HeapTy) -> HeapTy {
        match h {
            HeapTy::Tuple(ts) => HeapTy::Tuple(ts.iter().map(|t| self.tty(t)).collect()),
            HeapTy::Code(c) => HeapTy::Code(self.code_ty(c)),
        }
    }

    /// Applies the substitution to a code type (respecting its `∀[∆]`
    /// binders).
    pub fn code_ty(&self, c: &CodeTy) -> CodeTy {
        let mut s = self.clone();
        let mut delta = Vec::with_capacity(c.delta.len());
        for d in &c.delta {
            let (s2, v2) = s.under_binder(&d.var, d.kind);
            s = s2;
            delta.push(crate::ty::TyVarDecl {
                var: v2,
                kind: d.kind,
            });
        }
        CodeTy {
            delta,
            chi: s.chi(&c.chi),
            sigma: s.stack(&c.sigma),
            q: s.ret(&c.q),
        }
    }

    /// Applies the substitution to a register-file typing.
    pub fn chi(&self, chi: &RegFileTy) -> RegFileTy {
        chi.iter().map(|(r, t)| (r, self.tty(t))).collect()
    }

    /// Applies the substitution to a stack typing. Substituting a stack
    /// for an abstract tail splices the replacement in:
    /// `(τ :: ζ)[σ0/ζ] = τ :: σ0`.
    pub fn stack(&self, s: &StackTy) -> StackTy {
        let prefix: Vec<TTy> = s.prefix.iter().map(|t| self.tty(t)).collect();
        match &s.tail {
            StackTail::Empty => StackTy {
                prefix,
                tail: StackTail::Empty,
            },
            StackTail::Var(v) => match self.lookup(v) {
                None => StackTy {
                    prefix,
                    tail: StackTail::Var(v.clone()),
                },
                Some(Inst::Stack(rep)) => {
                    let mut prefix = prefix;
                    prefix.extend(rep.prefix.iter().cloned());
                    StackTy {
                        prefix,
                        tail: rep.tail.clone(),
                    }
                }
                Some(other) => panic!("kind error: substituting {other:?} for stack variable {v}"),
            },
        }
    }

    /// Applies the substitution to a return marker.
    pub fn ret(&self, q: &RetMarker) -> RetMarker {
        match q {
            RetMarker::Reg(_) | RetMarker::Stack(_) | RetMarker::Out => q.clone(),
            RetMarker::Var(v) => match self.lookup(v) {
                None => q.clone(),
                Some(Inst::Ret(q2)) => q2.clone(),
                Some(other) => {
                    panic!("kind error: substituting {other:?} for return-marker variable {v}")
                }
            },
            RetMarker::End { ty, sigma } => RetMarker::End {
                ty: Box::new(self.tty(ty)),
                sigma: self.stack(sigma),
            },
        }
    }

    /// Applies the substitution to an instantiation.
    pub fn inst(&self, i: &Inst) -> Inst {
        match i {
            Inst::Ty(t) => Inst::Ty(self.tty(t)),
            Inst::Stack(s) => Inst::Stack(self.stack(s)),
            Inst::Ret(q) => Inst::Ret(self.ret(q)),
        }
    }

    /// Applies the substitution to an F type.
    pub fn fty(&self, t: &FTy) -> FTy {
        if self.is_empty() {
            return t.clone();
        }
        match t {
            FTy::Var(v) => match self.lookup(v) {
                None => t.clone(),
                Some(Inst::Ty(TTy::Var(v2))) => FTy::Var(v2.clone()),
                Some(other) => panic!(
                    "kind error: substituting {other:?} for F type variable {v} \
                     (only renamings reach F types)"
                ),
            },
            FTy::Unit | FTy::Int => t.clone(),
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            } => FTy::Arrow {
                params: params.iter().map(|t| self.fty(t)).collect(),
                phi_in: phi_in.iter().map(|t| self.tty(t)).collect(),
                phi_out: phi_out.iter().map(|t| self.tty(t)).collect(),
                ret: Box::new(self.fty(ret)),
            },
            FTy::Rec(v, body) => {
                let (s, v2) = self.under_binder(v, Kind::Ty);
                FTy::Rec(v2, Box::new(s.fty(body)))
            }
            FTy::Tuple(ts) => FTy::Tuple(ts.iter().map(|t| self.fty(t)).collect()),
        }
    }

    /// Applies the substitution to a word value.
    pub fn word(&self, w: &WordVal) -> WordVal {
        match w {
            WordVal::Unit | WordVal::Int(_) | WordVal::Loc(_) => w.clone(),
            WordVal::Pack { hidden, body, ann } => WordVal::Pack {
                hidden: self.tty(hidden),
                body: Box::new(self.word(body)),
                ann: self.tty(ann),
            },
            WordVal::Fold { ann, body } => WordVal::Fold {
                ann: self.tty(ann),
                body: Box::new(self.word(body)),
            },
            WordVal::Inst { body, args } => WordVal::Inst {
                body: Box::new(self.word(body)),
                args: args.iter().map(|a| self.inst(a)).collect(),
            },
        }
    }

    /// Applies the substitution to a small value.
    pub fn small(&self, u: &SmallVal) -> SmallVal {
        match u {
            SmallVal::Reg(_) => u.clone(),
            SmallVal::Word(w) => SmallVal::Word(self.word(w)),
            SmallVal::Pack { hidden, body, ann } => SmallVal::Pack {
                hidden: self.tty(hidden),
                body: Box::new(self.small(body)),
                ann: self.tty(ann),
            },
            SmallVal::Fold { ann, body } => SmallVal::Fold {
                ann: self.tty(ann),
                body: Box::new(self.small(body)),
            },
            SmallVal::Inst { body, args } => SmallVal::Inst {
                body: Box::new(self.small(body)),
                args: args.iter().map(|a| self.inst(a)).collect(),
            },
        }
    }

    /// Applies the substitution to an instruction sequence, respecting
    /// the binders introduced by `unpack`, `protect`, and `import`.
    pub fn seq(&self, seq: &InstrSeq) -> InstrSeq {
        self.seq_parts(&seq.instrs, &seq.term)
    }

    fn seq_parts(&self, instrs: &[Instr], term: &Terminator) -> InstrSeq {
        if self.is_empty() {
            return InstrSeq::new(instrs.to_vec(), term.clone());
        }
        let Some((head, rest)) = instrs.split_first() else {
            return InstrSeq::just(self.terminator(term));
        };
        let (head2, inner) = match head {
            Instr::Arith { op, rd, rs, src } => (
                Instr::Arith {
                    op: *op,
                    rd: *rd,
                    rs: *rs,
                    src: self.small(src),
                },
                self.clone(),
            ),
            Instr::Bnz { r, target } => (
                Instr::Bnz {
                    r: *r,
                    target: self.small(target),
                },
                self.clone(),
            ),
            Instr::Mv { rd, src } => (
                Instr::Mv {
                    rd: *rd,
                    src: self.small(src),
                },
                self.clone(),
            ),
            Instr::Ld { .. }
            | Instr::St { .. }
            | Instr::Ralloc { .. }
            | Instr::Balloc { .. }
            | Instr::Salloc(_)
            | Instr::Sfree(_)
            | Instr::Sld { .. }
            | Instr::Sst { .. } => (head.clone(), self.clone()),
            Instr::Unfold { rd, src } => (
                Instr::Unfold {
                    rd: *rd,
                    src: self.small(src),
                },
                self.clone(),
            ),
            Instr::Unpack { tv, rd, src } => {
                let src2 = self.small(src);
                let (s, tv2) = self.under_binder(tv, Kind::Ty);
                (
                    Instr::Unpack {
                        tv: tv2,
                        rd: *rd,
                        src: src2,
                    },
                    s,
                )
            }
            Instr::Protect { phi, zeta } => {
                let phi2: Vec<TTy> = phi.iter().map(|t| self.tty(t)).collect();
                let (s, z2) = self.under_binder(zeta, Kind::Stack);
                (
                    Instr::Protect {
                        phi: phi2,
                        zeta: z2,
                    },
                    s,
                )
            }
            Instr::Import {
                rd,
                zeta,
                protected,
                ty,
                body,
            } => {
                let protected2 = self.stack(protected);
                let (s, z2) = self.under_binder(zeta, Kind::Stack);
                let ty2 = s.fty(ty);
                let body2 = s.fexpr(body);
                (
                    Instr::Import {
                        rd: *rd,
                        zeta: z2,
                        protected: protected2,
                        ty: ty2,
                        body: Box::new(body2),
                    },
                    // `import`'s binder scopes only over the embedded
                    // expression, not the rest of the sequence.
                    self.clone(),
                )
            }
        };
        let mut out = inner.seq_parts(rest, term);
        out.instrs.insert(0, head2);
        out
    }

    /// Applies the substitution to a terminator.
    pub fn terminator(&self, t: &Terminator) -> Terminator {
        match t {
            Terminator::Jmp(u) => Terminator::Jmp(self.small(u)),
            Terminator::Call { target, sigma, q } => Terminator::Call {
                target: self.small(target),
                sigma: self.stack(sigma),
                q: self.ret(q),
            },
            Terminator::Ret { target, val } => Terminator::Ret {
                target: *target,
                val: *val,
            },
            Terminator::Halt { ty, sigma, val } => Terminator::Halt {
                ty: self.tty(ty),
                sigma: self.stack(sigma),
                val: *val,
            },
        }
    }

    /// Applies the substitution to a code block (respecting `∆`).
    pub fn block(&self, b: &CodeBlock) -> CodeBlock {
        let mut s = self.clone();
        let mut delta = Vec::with_capacity(b.delta.len());
        for d in &b.delta {
            let (s2, v2) = s.under_binder(&d.var, d.kind);
            s = s2;
            delta.push(crate::ty::TyVarDecl {
                var: v2,
                kind: d.kind,
            });
        }
        CodeBlock {
            delta,
            chi: s.chi(&b.chi),
            sigma: s.stack(&b.sigma),
            q: s.ret(&b.q),
            body: s.seq(&b.body),
        }
    }

    /// Applies the substitution to a heap value.
    pub fn heap_val(&self, h: &HeapVal) -> HeapVal {
        match h {
            HeapVal::Code(b) => HeapVal::Code(self.block(b)),
            HeapVal::Tuple { mutability, fields } => HeapVal::Tuple {
                mutability: *mutability,
                fields: fields.iter().map(|w| self.word(w)).collect(),
            },
        }
    }

    /// Applies the substitution to a heap fragment.
    pub fn heap_frag(&self, h: &HeapFrag) -> HeapFrag {
        h.iter()
            .map(|(l, v)| (l.clone(), self.heap_val(v)))
            .collect()
    }

    /// Applies the substitution to a T component.
    pub fn tcomp(&self, c: &TComp) -> TComp {
        TComp {
            seq: self.seq(&c.seq),
            heap: self.heap_frag(&c.heap),
        }
    }

    /// Applies the substitution to the type annotations of an F
    /// expression.
    pub fn fexpr(&self, e: &FExpr) -> FExpr {
        if self.is_empty() {
            return e.clone();
        }
        match e {
            FExpr::Var(_) | FExpr::Unit | FExpr::Int(_) => e.clone(),
            FExpr::Binop { op, lhs, rhs } => FExpr::Binop {
                op: *op,
                lhs: Box::new(self.fexpr(lhs)),
                rhs: Box::new(self.fexpr(rhs)),
            },
            FExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => FExpr::If0 {
                cond: Box::new(self.fexpr(cond)),
                then_branch: Box::new(self.fexpr(then_branch)),
                else_branch: Box::new(self.fexpr(else_branch)),
            },
            FExpr::Lam(lam) => {
                let params: Vec<(VarName, FTy)> = lam
                    .params
                    .iter()
                    .map(|(x, t)| (x.clone(), self.fty(t)))
                    .collect();
                let (s, z2) = self.under_binder(&lam.zeta, Kind::Stack);
                FExpr::Lam(Box::new(Lam {
                    params,
                    zeta: z2,
                    phi_in: lam.phi_in.iter().map(|t| s.tty(t)).collect(),
                    phi_out: lam.phi_out.iter().map(|t| s.tty(t)).collect(),
                    body: s.fexpr(&lam.body),
                }))
            }
            FExpr::App { func, args } => FExpr::App {
                func: Box::new(self.fexpr(func)),
                args: args.iter().map(|a| self.fexpr(a)).collect(),
            },
            FExpr::Fold { ann, body } => FExpr::Fold {
                ann: self.fty(ann),
                body: Box::new(self.fexpr(body)),
            },
            FExpr::Unfold(body) => FExpr::Unfold(Box::new(self.fexpr(body))),
            FExpr::Tuple(es) => FExpr::Tuple(es.iter().map(|e| self.fexpr(e)).collect()),
            FExpr::Proj { idx, tuple } => FExpr::Proj {
                idx: *idx,
                tuple: Box::new(self.fexpr(tuple)),
            },
            FExpr::Boundary {
                ty,
                sigma_out,
                comp,
            } => FExpr::Boundary {
                ty: self.fty(ty),
                sigma_out: sigma_out.as_ref().map(|s| self.stack(s)),
                comp: Box::new(self.tcomp(comp)),
            },
        }
    }

    /// Applies the substitution to a component.
    pub fn component(&self, c: &Component) -> Component {
        match c {
            Component::F(e) => Component::F(self.fexpr(e)),
            Component::T(t) => Component::T(self.tcomp(t)),
        }
    }
}

// ---------------------------------------------------------------------
// F term-variable substitution (β-reduction).
// ---------------------------------------------------------------------

/// Substitutes F expressions for free term variables in `e`,
/// capture-avoidingly.
pub fn subst_fvars(e: &FExpr, map: &BTreeMap<VarName, FExpr>) -> FExpr {
    if map.is_empty() {
        return e.clone();
    }
    match e {
        FExpr::Var(x) => map.get(x).cloned().unwrap_or_else(|| e.clone()),
        FExpr::Unit | FExpr::Int(_) => e.clone(),
        FExpr::Binop { op, lhs, rhs } => FExpr::Binop {
            op: *op,
            lhs: Box::new(subst_fvars(lhs, map)),
            rhs: Box::new(subst_fvars(rhs, map)),
        },
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => FExpr::If0 {
            cond: Box::new(subst_fvars(cond, map)),
            then_branch: Box::new(subst_fvars(then_branch, map)),
            else_branch: Box::new(subst_fvars(else_branch, map)),
        },
        FExpr::Lam(lam) => {
            // Drop shadowed bindings.
            let mut inner: BTreeMap<VarName, FExpr> = map
                .iter()
                .filter(|(k, _)| !lam.params.iter().any(|(p, _)| p == *k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            if inner.is_empty() {
                return e.clone();
            }
            // Rename parameters captured by the substitution range.
            let mut range_fv: BTreeSet<VarName> = BTreeSet::new();
            for v in inner.values() {
                range_fv.extend(fv_fexpr(v));
            }
            let mut params = lam.params.clone();
            let mut body = lam.body.clone();
            for (p, _) in params.iter_mut() {
                if range_fv.contains(p) {
                    let fresh = fresh_varname(p, |cand| {
                        range_fv.contains(cand)
                            || inner.contains_key(cand)
                            || lam.params.iter().any(|(q, _)| q == cand)
                    });
                    let mut rename = BTreeMap::new();
                    rename.insert(p.clone(), FExpr::Var(fresh.clone()));
                    body = subst_fvars(&body, &rename);
                    inner.remove(p);
                    *p = fresh;
                }
            }
            FExpr::Lam(Box::new(Lam {
                params,
                zeta: lam.zeta.clone(),
                phi_in: lam.phi_in.clone(),
                phi_out: lam.phi_out.clone(),
                body: subst_fvars(&body, &inner),
            }))
        }
        FExpr::App { func, args } => FExpr::App {
            func: Box::new(subst_fvars(func, map)),
            args: args.iter().map(|a| subst_fvars(a, map)).collect(),
        },
        FExpr::Fold { ann, body } => FExpr::Fold {
            ann: ann.clone(),
            body: Box::new(subst_fvars(body, map)),
        },
        FExpr::Unfold(body) => FExpr::Unfold(Box::new(subst_fvars(body, map))),
        FExpr::Tuple(es) => FExpr::Tuple(es.iter().map(|e| subst_fvars(e, map)).collect()),
        FExpr::Proj { idx, tuple } => FExpr::Proj {
            idx: *idx,
            tuple: Box::new(subst_fvars(tuple, map)),
        },
        FExpr::Boundary {
            ty,
            sigma_out,
            comp,
        } => FExpr::Boundary {
            ty: ty.clone(),
            sigma_out: sigma_out.clone(),
            comp: Box::new(subst_fvars_tcomp(comp, map)),
        },
    }
}

/// Substitutes F expressions for free term variables inside a T component
/// (reaching `import` bodies).
pub fn subst_fvars_tcomp(c: &TComp, map: &BTreeMap<VarName, FExpr>) -> TComp {
    if map.is_empty() {
        return c.clone();
    }
    TComp {
        seq: subst_fvars_seq(&c.seq, map),
        heap: c
            .heap
            .iter()
            .map(|(l, hv)| {
                let hv2 = match hv {
                    HeapVal::Code(b) => HeapVal::Code(CodeBlock {
                        body: subst_fvars_seq(&b.body, map),
                        ..b.clone()
                    }),
                    other => other.clone(),
                };
                (l.clone(), hv2)
            })
            .collect(),
    }
}

/// Substitutes F expressions for free term variables inside an
/// instruction sequence (reaching `import` bodies).
pub fn subst_fvars_seq(seq: &InstrSeq, map: &BTreeMap<VarName, FExpr>) -> InstrSeq {
    let instrs = seq
        .instrs
        .iter()
        .map(|i| match i {
            Instr::Import {
                rd,
                zeta,
                protected,
                ty,
                body,
            } => Instr::Import {
                rd: *rd,
                zeta: zeta.clone(),
                protected: protected.clone(),
                ty: ty.clone(),
                body: Box::new(subst_fvars(body, map)),
            },
            other => other.clone(),
        })
        .collect();
    InstrSeq::new(instrs, seq.term.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    fn z() -> TyVar {
        TyVar::new("z")
    }

    #[test]
    fn stack_tail_substitution_splices() {
        let s = StackTy::var(z()).cons(TTy::Int);
        let rep = StackTy::nil().cons(TTy::Unit);
        let out = Subst::one(z(), Inst::Stack(rep)).stack(&s);
        assert_eq!(out.prefix, vec![TTy::Int, TTy::Unit]);
        assert_eq!(out.tail, StackTail::Empty);
    }

    #[test]
    fn shadowed_binder_is_untouched() {
        let t = TTy::Rec(TyVar::new("a"), Box::new(TTy::Var(TyVar::new("a"))));
        let out = Subst::one(TyVar::new("a"), Inst::Ty(TTy::Int)).tty(&t);
        assert_eq!(out, t);
    }

    #[test]
    fn binder_renamed_to_avoid_capture() {
        // (µ b. a)[b/a] must NOT capture: result is µ b#1. b.
        let t = TTy::Rec(TyVar::new("b"), Box::new(TTy::Var(TyVar::new("a"))));
        let out = Subst::one(TyVar::new("a"), Inst::Ty(TTy::Var(TyVar::new("b")))).tty(&t);
        match out {
            TTy::Rec(b2, body) => {
                assert_ne!(b2, TyVar::new("b"));
                assert_eq!(*body, TTy::Var(TyVar::new("b")));
            }
            _ => panic!("expected Rec"),
        }
    }

    #[test]
    fn ret_marker_substitution() {
        let q = RetMarker::Var(TyVar::new("e"));
        let out = Subst::one(TyVar::new("e"), Inst::Ret(RetMarker::Reg(Reg::Ra))).ret(&q);
        assert_eq!(out, RetMarker::Reg(Reg::Ra));
    }

    #[test]
    fn unpack_binder_shadows_in_rest() {
        let seq = InstrSeq::new(
            vec![Instr::Unpack {
                tv: TyVar::new("a"),
                rd: Reg::R1,
                src: SmallVal::Reg(Reg::R2),
            }],
            Terminator::Halt {
                ty: TTy::Var(TyVar::new("a")),
                sigma: StackTy::nil(),
                val: Reg::R1,
            },
        );
        let out = Subst::one(TyVar::new("a"), Inst::Ty(TTy::Int)).seq(&seq);
        // The halt annotation still refers to the unpack-bound `a`.
        match &out.term {
            Terminator::Halt { ty, .. } => assert_eq!(ty, &TTy::Var(TyVar::new("a"))),
            _ => unreachable!(),
        }
    }

    #[test]
    fn beta_substitution_capture_avoidance() {
        // (λ y. x) with x := y must rename the binder.
        let lam = FExpr::Lam(Box::new(Lam {
            params: vec![(VarName::new("y"), FTy::Int)],
            zeta: z(),
            phi_in: vec![],
            phi_out: vec![],
            body: FExpr::Var(VarName::new("x")),
        }));
        let mut map = BTreeMap::new();
        map.insert(VarName::new("x"), FExpr::Var(VarName::new("y")));
        let out = subst_fvars(&lam, &map);
        match out {
            FExpr::Lam(l) => {
                assert_ne!(l.params[0].0, VarName::new("y"));
                assert_eq!(l.body, FExpr::Var(VarName::new("y")));
            }
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn code_ty_binders_respected() {
        // (∀[z:stk].{ ; z} ra)[int :: • / z] leaves the bound z alone.
        let c = CodeTy {
            delta: vec![crate::ty::TyVarDecl::stack("z")],
            chi: RegFileTy::new(),
            sigma: StackTy::var("z"),
            q: RetMarker::Reg(Reg::Ra),
        };
        let out = Subst::one(z(), Inst::Stack(StackTy::nil().cons(TTy::Int))).code_ty(&c);
        assert_eq!(out.sigma, StackTy::var("z"));
    }
}
