//! Free-variable computation for types and terms.
//!
//! Used by capture-avoiding substitution ([`crate::subst`]) and by the
//! type checkers' well-formedness judgments (`∆ ⊢ τ`).

use std::collections::BTreeSet;

use crate::ids::{TyVar, VarName};
use crate::term::{
    CodeBlock, Component, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, SmallVal, TComp, Terminator,
    WordVal,
};
use crate::ty::{CodeTy, FTy, HeapTy, Inst, RegFileTy, RetMarker, StackTail, StackTy, TTy};

/// A scope of bound type variables, used during traversal.
#[derive(Default)]
struct Scope(Vec<TyVar>);

impl Scope {
    fn contains(&self, v: &TyVar) -> bool {
        self.0.iter().any(|b| b == v)
    }

    fn with<R>(&mut self, v: &TyVar, f: impl FnOnce(&mut Self) -> R) -> R {
        self.0.push(v.clone());
        let r = f(self);
        self.0.pop();
        r
    }

    fn with_all<R>(&mut self, vs: &[TyVar], f: impl FnOnce(&mut Self) -> R) -> R {
        let n = vs.len();
        self.0.extend(vs.iter().cloned());
        let r = f(self);
        self.0.truncate(self.0.len() - n);
        r
    }
}

fn hit(v: &TyVar, scope: &Scope, out: &mut BTreeSet<TyVar>) {
    if !scope.contains(v) {
        out.insert(v.clone());
    }
}

fn go_tty(t: &TTy, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match t {
        TTy::Var(v) => hit(v, scope, out),
        TTy::Unit | TTy::Int => {}
        TTy::Exists(v, body) | TTy::Rec(v, body) => {
            scope.with(v, |s| go_tty(body, s, out));
        }
        TTy::Ref(ts) => ts.iter().for_each(|t| go_tty(t, scope, out)),
        TTy::Boxed(h) => go_heap_ty(h, scope, out),
    }
}

fn go_heap_ty(h: &HeapTy, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match h {
        HeapTy::Tuple(ts) => ts.iter().for_each(|t| go_tty(t, scope, out)),
        HeapTy::Code(c) => go_code_ty(c, scope, out),
    }
}

fn go_code_ty(c: &CodeTy, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    let bound: Vec<TyVar> = c.delta.iter().map(|d| d.var.clone()).collect();
    scope.with_all(&bound, |s| {
        go_chi(&c.chi, s, out);
        go_stack(&c.sigma, s, out);
        go_ret(&c.q, s, out);
    });
}

fn go_chi(chi: &RegFileTy, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    for (_, t) in chi.iter() {
        go_tty(t, scope, out);
    }
}

fn go_stack(s: &StackTy, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    for t in &s.prefix {
        go_tty(t, scope, out);
    }
    if let StackTail::Var(v) = &s.tail {
        hit(v, scope, out);
    }
}

fn go_ret(q: &RetMarker, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match q {
        RetMarker::Reg(_) | RetMarker::Stack(_) | RetMarker::Out => {}
        RetMarker::Var(v) => hit(v, scope, out),
        RetMarker::End { ty, sigma } => {
            go_tty(ty, scope, out);
            go_stack(sigma, scope, out);
        }
    }
}

fn go_inst(i: &Inst, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match i {
        Inst::Ty(t) => go_tty(t, scope, out),
        Inst::Stack(s) => go_stack(s, scope, out),
        Inst::Ret(q) => go_ret(q, scope, out),
    }
}

fn go_fty(t: &FTy, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match t {
        FTy::Var(v) => hit(v, scope, out),
        FTy::Unit | FTy::Int => {}
        FTy::Arrow {
            params,
            phi_in,
            phi_out,
            ret,
        } => {
            params.iter().for_each(|t| go_fty(t, scope, out));
            phi_in.iter().for_each(|t| go_tty(t, scope, out));
            phi_out.iter().for_each(|t| go_tty(t, scope, out));
            go_fty(ret, scope, out);
        }
        FTy::Rec(v, body) => scope.with(v, |s| go_fty(body, s, out)),
        FTy::Tuple(ts) => ts.iter().for_each(|t| go_fty(t, scope, out)),
    }
}

fn go_word(w: &WordVal, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match w {
        WordVal::Unit | WordVal::Int(_) | WordVal::Loc(_) => {}
        WordVal::Pack { hidden, body, ann } => {
            go_tty(hidden, scope, out);
            go_word(body, scope, out);
            go_tty(ann, scope, out);
        }
        WordVal::Fold { ann, body } => {
            go_tty(ann, scope, out);
            go_word(body, scope, out);
        }
        WordVal::Inst { body, args } => {
            go_word(body, scope, out);
            args.iter().for_each(|a| go_inst(a, scope, out));
        }
    }
}

fn go_small(u: &SmallVal, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match u {
        SmallVal::Reg(_) => {}
        SmallVal::Word(w) => go_word(w, scope, out),
        SmallVal::Pack { hidden, body, ann } => {
            go_tty(hidden, scope, out);
            go_small(body, scope, out);
            go_tty(ann, scope, out);
        }
        SmallVal::Fold { ann, body } => {
            go_tty(ann, scope, out);
            go_small(body, scope, out);
        }
        SmallVal::Inst { body, args } => {
            go_small(body, scope, out);
            args.iter().for_each(|a| go_inst(a, scope, out));
        }
    }
}

/// Walks an instruction sequence. Binding instructions (`unpack`,
/// `protect`, `import`) scope over the *rest* of the sequence, so the
/// traversal is head-recursive over a slice.
fn go_seq(instrs: &[Instr], term: &Terminator, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    let Some((head, rest)) = instrs.split_first() else {
        go_term(term, scope, out);
        return;
    };
    match head {
        Instr::Arith { src, .. } | Instr::Mv { src, .. } | Instr::Bnz { target: src, .. } => {
            go_small(src, scope, out);
            go_seq(rest, term, scope, out);
        }
        Instr::Ld { .. }
        | Instr::St { .. }
        | Instr::Ralloc { .. }
        | Instr::Balloc { .. }
        | Instr::Salloc(_)
        | Instr::Sfree(_)
        | Instr::Sld { .. }
        | Instr::Sst { .. } => go_seq(rest, term, scope, out),
        Instr::Unpack { tv, src, .. } => {
            go_small(src, scope, out);
            scope.with(tv, |s| go_seq(rest, term, s, out));
        }
        Instr::Unfold { src, .. } => {
            go_small(src, scope, out);
            go_seq(rest, term, scope, out);
        }
        Instr::Protect { phi, zeta } => {
            phi.iter().for_each(|t| go_tty(t, scope, out));
            scope.with(zeta, |s| go_seq(rest, term, s, out));
        }
        Instr::Import {
            zeta,
            protected,
            ty,
            body,
            ..
        } => {
            go_stack(protected, scope, out);
            scope.with(zeta, |s| {
                go_fty(ty, s, out);
                go_fexpr_tys(body, s, out);
            });
            go_seq(rest, term, scope, out);
        }
    }
}

fn go_term(t: &Terminator, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match t {
        Terminator::Jmp(u) => go_small(u, scope, out),
        Terminator::Call { target, sigma, q } => {
            go_small(target, scope, out);
            go_stack(sigma, scope, out);
            go_ret(q, scope, out);
        }
        Terminator::Ret { .. } => {}
        Terminator::Halt { ty, sigma, .. } => {
            go_tty(ty, scope, out);
            go_stack(sigma, scope, out);
        }
    }
}

fn go_block(b: &CodeBlock, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    let bound: Vec<TyVar> = b.delta.iter().map(|d| d.var.clone()).collect();
    scope.with_all(&bound, |s| {
        go_chi(&b.chi, s, out);
        go_stack(&b.sigma, s, out);
        go_ret(&b.q, s, out);
        go_seq(&b.body.instrs, &b.body.term, s, out);
    });
}

fn go_heap_val(h: &HeapVal, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match h {
        HeapVal::Code(b) => go_block(b, scope, out),
        HeapVal::Tuple { fields, .. } => fields.iter().for_each(|w| go_word(w, scope, out)),
    }
}

fn go_heap_frag(h: &HeapFrag, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    for (_, v) in h.iter() {
        go_heap_val(v, scope, out);
    }
}

fn go_tcomp(c: &TComp, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    go_seq(&c.seq.instrs, &c.seq.term, scope, out);
    go_heap_frag(&c.heap, scope, out);
}

fn go_fexpr_tys(e: &FExpr, scope: &mut Scope, out: &mut BTreeSet<TyVar>) {
    match e {
        FExpr::Var(_) | FExpr::Unit | FExpr::Int(_) => {}
        FExpr::Binop { lhs, rhs, .. } => {
            go_fexpr_tys(lhs, scope, out);
            go_fexpr_tys(rhs, scope, out);
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            go_fexpr_tys(cond, scope, out);
            go_fexpr_tys(then_branch, scope, out);
            go_fexpr_tys(else_branch, scope, out);
        }
        FExpr::Lam(lam) => {
            for (_, t) in &lam.params {
                go_fty(t, scope, out);
            }
            scope.with(&lam.zeta, |s| {
                lam.phi_in.iter().for_each(|t| go_tty(t, s, out));
                lam.phi_out.iter().for_each(|t| go_tty(t, s, out));
                go_fexpr_tys(&lam.body, s, out);
            });
        }
        FExpr::App { func, args } => {
            go_fexpr_tys(func, scope, out);
            args.iter().for_each(|a| go_fexpr_tys(a, scope, out));
        }
        FExpr::Fold { ann, body } => {
            go_fty(ann, scope, out);
            go_fexpr_tys(body, scope, out);
        }
        FExpr::Unfold(body) => go_fexpr_tys(body, scope, out),
        FExpr::Tuple(es) => es.iter().for_each(|e| go_fexpr_tys(e, scope, out)),
        FExpr::Proj { tuple, .. } => go_fexpr_tys(tuple, scope, out),
        FExpr::Boundary {
            ty,
            sigma_out,
            comp,
        } => {
            go_fty(ty, scope, out);
            if let Some(s) = sigma_out {
                go_stack(s, scope, out);
            }
            go_tcomp(comp, scope, out);
        }
    }
}

macro_rules! ftv_fn {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $go:ident) => {
        $(#[$doc])*
        pub fn $name(x: &$ty) -> BTreeSet<TyVar> {
            let mut out = BTreeSet::new();
            $go(x, &mut Scope::default(), &mut out);
            out
        }
    };
}

ftv_fn!(
    /// Free type variables of a T value type.
    ftv_tty, TTy, go_tty
);
ftv_fn!(
    /// Free type variables of a heap type.
    ftv_heap_ty, HeapTy, go_heap_ty
);
ftv_fn!(
    /// Free type variables of a stack typing.
    ftv_stack, StackTy, go_stack
);
ftv_fn!(
    /// Free type variables of a return marker.
    ftv_ret, RetMarker, go_ret
);
ftv_fn!(
    /// Free type variables of a register-file typing.
    ftv_chi, RegFileTy, go_chi
);
ftv_fn!(
    /// Free type variables of an F type.
    ftv_fty, FTy, go_fty
);
ftv_fn!(
    /// Free type variables of an instantiation.
    ftv_inst, Inst, go_inst
);
ftv_fn!(
    /// Free type variables of a word value.
    ftv_word, WordVal, go_word
);
ftv_fn!(
    /// Free type variables of a small value.
    ftv_small, SmallVal, go_small
);
ftv_fn!(
    /// Free type variables of a T component.
    ftv_tcomp, TComp, go_tcomp
);
ftv_fn!(
    /// Free type variables (in annotations) of an F expression.
    ftv_fexpr, FExpr, go_fexpr_tys
);

/// Free type variables of an instruction sequence.
pub fn ftv_seq(seq: &InstrSeq) -> BTreeSet<TyVar> {
    let mut out = BTreeSet::new();
    go_seq(&seq.instrs, &seq.term, &mut Scope::default(), &mut out);
    out
}

/// Free type variables of a heap value.
pub fn ftv_heap_val(h: &HeapVal) -> BTreeSet<TyVar> {
    let mut out = BTreeSet::new();
    go_heap_val(h, &mut Scope::default(), &mut out);
    out
}

/// Free type variables of a component.
pub fn ftv_component(c: &Component) -> BTreeSet<TyVar> {
    match c {
        Component::F(e) => ftv_fexpr(e),
        Component::T(t) => ftv_tcomp(t),
    }
}

// ---------------------------------------------------------------------
// Free *term* variables of F expressions.
// ---------------------------------------------------------------------

fn go_fv(e: &FExpr, scope: &mut Vec<VarName>, out: &mut BTreeSet<VarName>) {
    match e {
        FExpr::Var(x) => {
            if !scope.iter().any(|b| b == x) {
                out.insert(x.clone());
            }
        }
        FExpr::Unit | FExpr::Int(_) => {}
        FExpr::Binop { lhs, rhs, .. } => {
            go_fv(lhs, scope, out);
            go_fv(rhs, scope, out);
        }
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            go_fv(cond, scope, out);
            go_fv(then_branch, scope, out);
            go_fv(else_branch, scope, out);
        }
        FExpr::Lam(lam) => {
            let n = lam.params.len();
            scope.extend(lam.params.iter().map(|(x, _)| x.clone()));
            go_fv(&lam.body, scope, out);
            scope.truncate(scope.len() - n);
        }
        FExpr::App { func, args } => {
            go_fv(func, scope, out);
            args.iter().for_each(|a| go_fv(a, scope, out));
        }
        FExpr::Fold { body, .. } => go_fv(body, scope, out),
        FExpr::Unfold(body) => go_fv(body, scope, out),
        FExpr::Tuple(es) => es.iter().for_each(|e| go_fv(e, scope, out)),
        FExpr::Proj { tuple, .. } => go_fv(tuple, scope, out),
        FExpr::Boundary { comp, .. } => go_fv_tcomp(comp, scope, out),
    }
}

fn go_fv_tcomp(c: &TComp, scope: &mut Vec<VarName>, out: &mut BTreeSet<VarName>) {
    go_fv_seq(&c.seq, scope, out);
    for (_, hv) in c.heap.iter() {
        if let HeapVal::Code(b) = hv {
            go_fv_seq(&b.body, scope, out);
        }
    }
}

fn go_fv_seq(seq: &InstrSeq, scope: &mut Vec<VarName>, out: &mut BTreeSet<VarName>) {
    for i in &seq.instrs {
        if let Instr::Import { body, .. } = i {
            go_fv(body, scope, out);
        }
    }
}

/// Free F term variables of an expression (looking through boundaries and
/// `import` instructions).
pub fn fv_fexpr(e: &FExpr) -> BTreeSet<VarName> {
    let mut out = BTreeSet::new();
    go_fv(e, &mut Vec::new(), &mut out);
    out
}

/// Free F term variables of a T component.
pub fn fv_tcomp(c: &TComp) -> BTreeSet<VarName> {
    let mut out = BTreeSet::new();
    go_fv_tcomp(c, &mut Vec::new(), &mut out);
    out
}

/// Free F term variables of an instruction sequence (inside `import`
/// bodies).
pub fn fv_seq(seq: &InstrSeq) -> BTreeSet<VarName> {
    let mut out = BTreeSet::new();
    go_fv_seq(seq, &mut Vec::new(), &mut out);
    out
}

/// Free F term variables of a heap value (inside `import` bodies of
/// code blocks).
pub fn fv_heap_val(h: &HeapVal) -> BTreeSet<VarName> {
    let mut out = BTreeSet::new();
    if let HeapVal::Code(b) = h {
        go_fv_seq(&b.body, &mut Vec::new(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    #[test]
    fn tty_binders_hide_variables() {
        let t = TTy::Rec(TyVar::new("a"), Box::new(TTy::Var(TyVar::new("a"))));
        assert!(ftv_tty(&t).is_empty());
        let open = TTy::Rec(TyVar::new("a"), Box::new(TTy::Var(TyVar::new("b"))));
        assert_eq!(
            ftv_tty(&open).into_iter().collect::<Vec<_>>(),
            vec![TyVar::new("b")]
        );
    }

    #[test]
    fn code_type_delta_binds() {
        let c = TTy::code(
            vec![crate::ty::TyVarDecl::stack("z")],
            RegFileTy::new(),
            StackTy::var("z"),
            RetMarker::Reg(Reg::Ra),
        );
        assert!(ftv_tty(&c).is_empty());
        let open = TTy::code(
            vec![],
            RegFileTy::new(),
            StackTy::var("z"),
            RetMarker::Var(TyVar::new("e")),
        );
        let fv = ftv_tty(&open);
        assert!(fv.contains(&TyVar::new("z")) && fv.contains(&TyVar::new("e")));
    }

    #[test]
    fn unpack_scopes_over_rest_of_sequence() {
        use crate::term::*;
        let seq = InstrSeq::new(
            vec![Instr::Unpack {
                tv: TyVar::new("a"),
                rd: Reg::R1,
                src: SmallVal::Reg(Reg::R2),
            }],
            Terminator::Halt {
                ty: TTy::Var(TyVar::new("a")),
                sigma: StackTy::nil(),
                val: Reg::R1,
            },
        );
        assert!(ftv_seq(&seq).is_empty());
        // Without the unpack, `a` is free.
        let seq2 = InstrSeq::just(Terminator::Halt {
            ty: TTy::Var(TyVar::new("a")),
            sigma: StackTy::nil(),
            val: Reg::R1,
        });
        assert!(ftv_seq(&seq2).contains(&TyVar::new("a")));
    }

    #[test]
    fn lambda_params_bound_in_body() {
        use crate::term::*;
        let lam = FExpr::Lam(Box::new(Lam {
            params: vec![(VarName::new("x"), FTy::Int)],
            zeta: TyVar::new("z"),
            phi_in: vec![],
            phi_out: vec![],
            body: FExpr::binop(
                ArithOp::Add,
                FExpr::Var(VarName::new("x")),
                FExpr::Var(VarName::new("y")),
            ),
        }));
        let fv = fv_fexpr(&lam);
        assert!(!fv.contains(&VarName::new("x")));
        assert!(fv.contains(&VarName::new("y")));
    }
}
