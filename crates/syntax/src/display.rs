//! `Display` implementations producing the concrete syntax accepted by
//! `funtal-parser`. Pretty-printing then re-parsing yields an
//! alpha-equivalent (in fact structurally equal) term; this round-trip is
//! property-tested in the parser crate.
//!
//! Conventions:
//! - stack typings: `int :: unit :: *` (empty stack `*`) or `int :: z`;
//! - stack prefixes `φ` are dot-terminated: `int :: .`, empty prefix `.`;
//! - binder lists carry kinds: `forall[a: ty, z: stk, e: ret]`;
//! - instantiations: types print bare, stacks as `stk(σ)`, markers as
//!   `ret(q)`;
//! - binops always print parenthesized, so no precedence is needed.

use std::fmt;

use crate::term::{
    ArithOp, CodeBlock, Component, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, SmallVal, TComp,
    Terminator, WordVal,
};
use crate::ty::{
    CodeTy, FTy, HeapTy, HeapTyping, Inst, Kind, Mutability, RegFileTy, RetMarker, StackTail,
    StackTy, TTy, TyVarDecl,
};

fn join<T: fmt::Display>(
    f: &mut fmt::Formatter<'_>,
    items: impl IntoIterator<Item = T>,
    sep: &str,
) -> fmt::Result {
    let mut first = true;
    for item in items {
        if !first {
            f.write_str(sep)?;
        }
        first = false;
        write!(f, "{item}")?;
    }
    Ok(())
}

impl fmt::Display for Kind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Kind::Ty => "ty",
            Kind::Stack => "stk",
            Kind::Ret => "ret",
        })
    }
}

impl fmt::Display for TyVarDecl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.var, self.kind)
    }
}

impl fmt::Display for Mutability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Mutability::Ref => "ref",
            Mutability::Boxed => "box",
        })
    }
}

impl fmt::Display for TTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TTy::Var(v) => write!(f, "{v}"),
            TTy::Unit => f.write_str("unit"),
            TTy::Int => f.write_str("int"),
            TTy::Exists(v, t) => write!(f, "exists {v}. {t}"),
            TTy::Rec(v, t) => write!(f, "mu {v}. {t}"),
            TTy::Ref(ts) => {
                f.write_str("ref <")?;
                join(f, ts, ", ")?;
                f.write_str(">")
            }
            TTy::Boxed(h) => write!(f, "box {h}"),
        }
    }
}

impl fmt::Display for HeapTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapTy::Tuple(ts) => {
                f.write_str("<")?;
                join(f, ts, ", ")?;
                f.write_str(">")
            }
            HeapTy::Code(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Display for CodeTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("forall[")?;
        join(f, &self.delta, ", ")?;
        write!(f, "]{{{}; {}}} {}", self.chi, self.sigma, self.q)
    }
}

impl fmt::Display for RegFileTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        join(f, self.iter().map(|(r, t)| format!("{r}: {t}")), ", ")
    }
}

impl fmt::Display for StackTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in &self.prefix {
            write!(f, "{t} :: ")?;
        }
        match &self.tail {
            StackTail::Empty => f.write_str("*"),
            StackTail::Var(v) => write!(f, "{v}"),
        }
    }
}

/// Displays a stack prefix `φ` in dot-terminated form (`int :: .`).
pub struct PrefixDisplay<'a>(pub &'a [TTy]);

impl fmt::Display for PrefixDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for t in self.0 {
            write!(f, "{t} :: ")?;
        }
        f.write_str(".")
    }
}

impl fmt::Display for RetMarker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetMarker::Reg(r) => write!(f, "{r}"),
            RetMarker::Stack(i) => write!(f, "{i}"),
            RetMarker::Var(v) => write!(f, "{v}"),
            RetMarker::End { ty, sigma } => write!(f, "end{{{ty}; {sigma}}}"),
            RetMarker::Out => f.write_str("out"),
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Ty(t) => write!(f, "{t}"),
            Inst::Stack(s) => write!(f, "stk({s})"),
            Inst::Ret(q) => write!(f, "ret({q})"),
        }
    }
}

impl fmt::Display for HeapTyping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        join(
            f,
            self.iter().map(|(l, (m, h))| format!("{l}: {m} {h}")),
            ", ",
        )
    }
}

impl fmt::Display for FTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FTy::Var(v) => write!(f, "{v}"),
            FTy::Unit => f.write_str("unit"),
            FTy::Int => f.write_str("int"),
            FTy::Arrow {
                params,
                phi_in,
                phi_out,
                ret,
            } => {
                f.write_str("(")?;
                join(f, params, ", ")?;
                f.write_str(")")?;
                if !phi_in.is_empty() || !phi_out.is_empty() {
                    write!(f, "[{}; {}]", PrefixDisplay(phi_in), PrefixDisplay(phi_out))?;
                }
                write!(f, " -> {ret}")
            }
            FTy::Rec(v, t) => write!(f, "mu {v}. {t}"),
            FTy::Tuple(ts) => {
                f.write_str("<")?;
                join(f, ts, ", ")?;
                f.write_str(">")
            }
        }
    }
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

impl fmt::Display for WordVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WordVal::Unit => f.write_str("()"),
            WordVal::Int(n) => {
                if *n < 0 {
                    write!(f, "({n})")
                } else {
                    write!(f, "{n}")
                }
            }
            WordVal::Loc(l) => write!(f, "{l}"),
            WordVal::Pack { hidden, body, ann } => {
                write!(f, "pack <{hidden}, {body}> as {ann}")
            }
            WordVal::Fold { ann, body } => write!(f, "fold[{ann}] {body}"),
            WordVal::Inst { body, args } => {
                write!(f, "{body}[")?;
                join(f, args, ", ")?;
                f.write_str("]")
            }
        }
    }
}

impl fmt::Display for SmallVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmallVal::Reg(r) => write!(f, "{r}"),
            SmallVal::Word(w) => write!(f, "{w}"),
            SmallVal::Pack { hidden, body, ann } => {
                write!(f, "pack <{hidden}, {body}> as {ann}")
            }
            SmallVal::Fold { ann, body } => write!(f, "fold[{ann}] {body}"),
            SmallVal::Inst { body, args } => {
                write!(f, "{body}[")?;
                join(f, args, ", ")?;
                f.write_str("]")
            }
        }
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Arith { op, rd, rs, src } => {
                write!(f, "{} {rd}, {rs}, {src}", op.mnemonic())
            }
            Instr::Bnz { r, target } => write!(f, "bnz {r}, {target}"),
            Instr::Ld { rd, rs, idx } => write!(f, "ld {rd}, {rs}[{idx}]"),
            Instr::St { rd, idx, rs } => write!(f, "st {rd}[{idx}], {rs}"),
            Instr::Ralloc { rd, n } => write!(f, "ralloc {rd}, {n}"),
            Instr::Balloc { rd, n } => write!(f, "balloc {rd}, {n}"),
            Instr::Mv { rd, src } => write!(f, "mv {rd}, {src}"),
            Instr::Salloc(n) => write!(f, "salloc {n}"),
            Instr::Sfree(n) => write!(f, "sfree {n}"),
            Instr::Sld { rd, idx } => write!(f, "sld {rd}, {idx}"),
            Instr::Sst { idx, rs } => write!(f, "sst {idx}, {rs}"),
            Instr::Unpack { tv, rd, src } => write!(f, "unpack <{tv}, {rd}> {src}"),
            Instr::Unfold { rd, src } => write!(f, "unfold {rd}, {src}"),
            Instr::Protect { phi, zeta } => {
                write!(f, "protect {}, {zeta}", PrefixDisplay(phi))
            }
            Instr::Import {
                rd,
                zeta,
                protected,
                ty,
                body,
            } => {
                write!(f, "import {rd}, {zeta} = {protected}, TF[{ty}]({body})")
            }
        }
    }
}

impl fmt::Display for Terminator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Terminator::Jmp(u) => write!(f, "jmp {u}"),
            Terminator::Call { target, sigma, q } => {
                write!(f, "call {target} {{{sigma}, {q}}}")
            }
            Terminator::Ret { target, val } => write!(f, "ret {target} {{{val}}}"),
            Terminator::Halt { ty, sigma, val } => {
                write!(f, "halt {ty}, {sigma} {{{val}}}")
            }
        }
    }
}

impl fmt::Display for InstrSeq {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in &self.instrs {
            write!(f, "{i}; ")?;
        }
        write!(f, "{}", self.term)
    }
}

impl fmt::Display for CodeBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("code[")?;
        join(f, &self.delta, ", ")?;
        write!(
            f,
            "]{{{}; {}}} {}. {}",
            self.chi, self.sigma, self.q, self.body
        )
    }
}

impl fmt::Display for HeapVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapVal::Code(b) => write!(f, "{b}"),
            HeapVal::Tuple { mutability, fields } => {
                write!(f, "{mutability} <")?;
                join(f, fields, ", ")?;
                f.write_str(">")
            }
        }
    }
}

impl fmt::Display for HeapFrag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        join(f, self.iter().map(|(l, v)| format!("{l} -> {v}")), "; ")?;
        f.write_str("}")
    }
}

impl fmt::Display for TComp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.heap.is_empty() {
            write!(f, "({})", self.seq)
        } else {
            write!(f, "({}, {})", self.seq, self.heap)
        }
    }
}

impl fmt::Display for FExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FExpr::Var(x) => write!(f, "{x}"),
            FExpr::Unit => f.write_str("()"),
            FExpr::Int(n) => {
                if *n < 0 {
                    write!(f, "({n})")
                } else {
                    write!(f, "{n}")
                }
            }
            FExpr::Binop { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            FExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                write!(f, "if0 {cond} {{{then_branch}}} {{{else_branch}}}")
            }
            FExpr::Lam(lam) => {
                if lam.is_plain() {
                    write!(f, "lam[{}](", lam.zeta)?;
                } else {
                    write!(
                        f,
                        "lam[{}; {}; {}](",
                        lam.zeta,
                        PrefixDisplay(&lam.phi_in),
                        PrefixDisplay(&lam.phi_out)
                    )?;
                }
                join(f, lam.params.iter().map(|(x, t)| format!("{x}: {t}")), ", ")?;
                write!(f, "). {}", lam.body)
            }
            FExpr::App { func, args } => {
                match &**func {
                    FExpr::Var(_) | FExpr::App { .. } | FExpr::Proj { .. } => write!(f, "{func}")?,
                    other => write!(f, "({other})")?,
                }
                f.write_str("(")?;
                join(f, args, ", ")?;
                f.write_str(")")
            }
            FExpr::Fold { ann, body } => write!(f, "fold[{ann}]({body})"),
            FExpr::Unfold(body) => write!(f, "unfold({body})"),
            FExpr::Tuple(es) => {
                f.write_str("<")?;
                join(f, es, ", ")?;
                f.write_str(">")
            }
            FExpr::Proj { idx, tuple } => write!(f, "pi[{idx}]({tuple})"),
            FExpr::Boundary {
                ty,
                sigma_out,
                comp,
            } => match sigma_out {
                None => write!(f, "FT[{ty}]{comp}"),
                Some(s) => write!(f, "FT[{ty}; {s}]{comp}"),
            },
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Component::F(e) => write!(f, "{e}"),
            Component::T(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Reg, TyVar, VarName};
    use crate::term::Lam;

    #[test]
    fn stack_display() {
        let s = StackTy::var("z").cons(TTy::Int).cons(TTy::Unit);
        assert_eq!(s.to_string(), "unit :: int :: z");
        assert_eq!(StackTy::nil().to_string(), "*");
        assert_eq!(PrefixDisplay(&[]).to_string(), ".");
        assert_eq!(PrefixDisplay(&[TTy::Int]).to_string(), "int :: .");
    }

    #[test]
    fn code_type_display() {
        let t = TTy::code(
            vec![TyVarDecl::stack("z"), TyVarDecl::ret("e")],
            RegFileTy::from_pairs([(Reg::R1, TTy::Int)]),
            StackTy::var("z"),
            RetMarker::Var(TyVar::new("e")),
        );
        assert_eq!(t.to_string(), "box forall[z: stk, e: ret]{r1: int; z} e");
    }

    #[test]
    fn instr_display() {
        let i = Instr::Arith {
            op: ArithOp::Mul,
            rd: Reg::R1,
            rs: Reg::R1,
            src: SmallVal::int(2),
        };
        assert_eq!(i.to_string(), "mul r1, r1, 2");
        let halt = Terminator::Halt {
            ty: TTy::Int,
            sigma: StackTy::nil(),
            val: Reg::R1,
        };
        assert_eq!(halt.to_string(), "halt int, * {r1}");
    }

    #[test]
    fn fexpr_display() {
        let e = FExpr::app(
            FExpr::Lam(Box::new(Lam {
                params: vec![(VarName::new("x"), FTy::Int)],
                zeta: TyVar::new("z"),
                phi_in: vec![],
                phi_out: vec![],
                body: FExpr::binop(ArithOp::Add, FExpr::Var(VarName::new("x")), FExpr::Int(1)),
            })),
            vec![FExpr::Int(41)],
        );
        assert_eq!(e.to_string(), "(lam[z](x: int). (x + 1))(41)");
    }

    #[test]
    fn negative_literals_parenthesized() {
        assert_eq!(FExpr::Int(-3).to_string(), "(-3)");
        assert_eq!(WordVal::Int(-3).to_string(), "(-3)");
    }
}
