//! Ergonomic constructors for building FunTAL programs in Rust, used by
//! the figure reconstructions, tests, and the compiler.
//!
//! # Examples
//!
//! ```
//! use funtal_syntax::build::*;
//! use funtal_syntax::term::Terminator;
//!
//! // (mv r1, 2; halt int, * {r1})
//! let comp = tcomp(
//!     seq(vec![mv(r1(), int_v(2))], halt(int(), nil(), r1())),
//!     vec![],
//! );
//! assert_eq!(comp.to_string(), "(mv r1, 2; halt int, * {r1})");
//! ```

use crate::ids::{Label, Reg, TyVar, VarName};
use crate::term::{
    ArithOp, CodeBlock, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, Lam, SmallVal, TComp,
    Terminator, WordVal,
};
use crate::ty::{FTy, Inst, Mutability, RegFileTy, RetMarker, StackTail, StackTy, TTy, TyVarDecl};

// --- registers ---------------------------------------------------------

/// Register `r1`.
pub fn r1() -> Reg {
    Reg::R1
}
/// Register `r2`.
pub fn r2() -> Reg {
    Reg::R2
}
/// Register `r3`.
pub fn r3() -> Reg {
    Reg::R3
}
/// Register `r4`.
pub fn r4() -> Reg {
    Reg::R4
}
/// Register `r5`.
pub fn r5() -> Reg {
    Reg::R5
}
/// Register `r6`.
pub fn r6() -> Reg {
    Reg::R6
}
/// Register `r7`.
pub fn r7() -> Reg {
    Reg::R7
}
/// The return-address register `ra`.
pub fn ra() -> Reg {
    Reg::Ra
}

// --- T types ------------------------------------------------------------

/// The T type `int`.
pub fn int() -> TTy {
    TTy::Int
}

/// The T type `unit`.
pub fn unit() -> TTy {
    TTy::Unit
}

/// A T type variable.
pub fn tvar(name: &str) -> TTy {
    TTy::Var(TyVar::new(name))
}

/// `mu a. t`.
pub fn mu(name: &str, body: TTy) -> TTy {
    TTy::Rec(TyVar::new(name), Box::new(body))
}

/// `exists a. t`.
pub fn exists(name: &str, body: TTy) -> TTy {
    TTy::Exists(TyVar::new(name), Box::new(body))
}

/// `ref <ts>`.
pub fn ref_tuple(ts: Vec<TTy>) -> TTy {
    TTy::Ref(ts)
}

/// `box <ts>`.
pub fn box_tuple(ts: Vec<TTy>) -> TTy {
    TTy::boxed_tuple(ts)
}

/// `box forall[delta]{chi; sigma} q`.
pub fn code_ty(delta: Vec<TyVarDecl>, chi: RegFileTy, sigma: StackTy, q: RetMarker) -> TTy {
    TTy::code(delta, chi, sigma, q)
}

/// A `ty`-kinded binder.
pub fn d_ty(name: &str) -> TyVarDecl {
    TyVarDecl::ty(name)
}

/// A `stk`-kinded binder.
pub fn d_stk(name: &str) -> TyVarDecl {
    TyVarDecl::stack(name)
}

/// A `ret`-kinded binder.
pub fn d_ret(name: &str) -> TyVarDecl {
    TyVarDecl::ret(name)
}

/// Builds a register-file typing from pairs.
pub fn chi(pairs: impl IntoIterator<Item = (Reg, TTy)>) -> RegFileTy {
    RegFileTy::from_pairs(pairs)
}

// --- stacks -------------------------------------------------------------

/// The empty concrete stack `*`.
pub fn nil() -> StackTy {
    StackTy::nil()
}

/// A bare abstract stack `z`.
pub fn zvar(name: &str) -> StackTy {
    StackTy::var(name)
}

/// `prefix :: tail`, prefix given top-first.
pub fn stack(prefix: Vec<TTy>, tail: StackTy) -> StackTy {
    tail.cons_prefix(&prefix)
}

// --- return markers ------------------------------------------------------

/// Marker in a register.
pub fn q_reg(r: Reg) -> RetMarker {
    RetMarker::Reg(r)
}

/// Marker at a stack slot.
pub fn q_i(i: usize) -> RetMarker {
    RetMarker::Stack(i)
}

/// An abstract marker variable.
pub fn q_var(name: &str) -> RetMarker {
    RetMarker::Var(TyVar::new(name))
}

/// `end{ty; sigma}`.
pub fn q_end(ty: TTy, sigma: StackTy) -> RetMarker {
    RetMarker::end(ty, sigma)
}

/// `out`.
pub fn q_out() -> RetMarker {
    RetMarker::Out
}

// --- instantiations ------------------------------------------------------

/// A type instantiation.
pub fn i_ty(t: TTy) -> Inst {
    Inst::Ty(t)
}

/// A stack instantiation.
pub fn i_stk(s: StackTy) -> Inst {
    Inst::Stack(s)
}

/// A return-marker instantiation.
pub fn i_ret(q: RetMarker) -> Inst {
    Inst::Ret(q)
}

// --- small values ---------------------------------------------------------

/// An integer operand.
pub fn int_v(n: i64) -> SmallVal {
    SmallVal::int(n)
}

/// A unit operand.
pub fn unit_v() -> SmallVal {
    SmallVal::unit()
}

/// A label operand.
pub fn loc(name: &str) -> SmallVal {
    SmallVal::loc(name)
}

/// A label operand with instantiations: `l[args]`.
pub fn loc_i(name: &str, args: Vec<Inst>) -> SmallVal {
    SmallVal::loc(name).instantiate(args)
}

/// A register operand.
pub fn reg(r: Reg) -> SmallVal {
    SmallVal::Reg(r)
}

// --- instructions -----------------------------------------------------------

/// `add rd, rs, u`.
pub fn add(rd: Reg, rs: Reg, src: SmallVal) -> Instr {
    Instr::Arith {
        op: ArithOp::Add,
        rd,
        rs,
        src,
    }
}

/// `sub rd, rs, u`.
pub fn sub(rd: Reg, rs: Reg, src: SmallVal) -> Instr {
    Instr::Arith {
        op: ArithOp::Sub,
        rd,
        rs,
        src,
    }
}

/// `mul rd, rs, u`.
pub fn mul(rd: Reg, rs: Reg, src: SmallVal) -> Instr {
    Instr::Arith {
        op: ArithOp::Mul,
        rd,
        rs,
        src,
    }
}

/// `bnz r, u`.
pub fn bnz(r: Reg, target: SmallVal) -> Instr {
    Instr::Bnz { r, target }
}

/// `ld rd, rs[i]`.
pub fn ld(rd: Reg, rs: Reg, idx: usize) -> Instr {
    Instr::Ld { rd, rs, idx }
}

/// `st rd[i], rs`.
pub fn st(rd: Reg, idx: usize, rs: Reg) -> Instr {
    Instr::St { rd, idx, rs }
}

/// `ralloc rd, n`.
pub fn ralloc(rd: Reg, n: usize) -> Instr {
    Instr::Ralloc { rd, n }
}

/// `balloc rd, n`.
pub fn balloc(rd: Reg, n: usize) -> Instr {
    Instr::Balloc { rd, n }
}

/// `mv rd, u`.
pub fn mv(rd: Reg, src: SmallVal) -> Instr {
    Instr::Mv { rd, src }
}

/// `salloc n`.
pub fn salloc(n: usize) -> Instr {
    Instr::Salloc(n)
}

/// `sfree n`.
pub fn sfree(n: usize) -> Instr {
    Instr::Sfree(n)
}

/// `sld rd, i`.
pub fn sld(rd: Reg, idx: usize) -> Instr {
    Instr::Sld { rd, idx }
}

/// `sst i, rs`.
pub fn sst(idx: usize, rs: Reg) -> Instr {
    Instr::Sst { idx, rs }
}

/// `unpack <a, rd> u`.
pub fn unpack(tv: &str, rd: Reg, src: SmallVal) -> Instr {
    Instr::Unpack {
        tv: TyVar::new(tv),
        rd,
        src,
    }
}

/// `unfold rd, u`.
pub fn unfold_i(rd: Reg, src: SmallVal) -> Instr {
    Instr::Unfold { rd, src }
}

/// `protect phi, z`.
pub fn protect(phi: Vec<TTy>, zeta: &str) -> Instr {
    Instr::Protect {
        phi,
        zeta: TyVar::new(zeta),
    }
}

/// `import rd, z = protected, TF[ty](body)`.
pub fn import(rd: Reg, zeta: &str, protected: StackTy, ty: FTy, body: FExpr) -> Instr {
    Instr::Import {
        rd,
        zeta: TyVar::new(zeta),
        protected,
        ty,
        body: Box::new(body),
    }
}

// --- terminators -----------------------------------------------------------

/// `jmp u`.
pub fn jmp(u: SmallVal) -> Terminator {
    Terminator::Jmp(u)
}

/// `call u {sigma, q}`.
pub fn call(target: SmallVal, sigma: StackTy, q: RetMarker) -> Terminator {
    Terminator::Call { target, sigma, q }
}

/// `ret r {r'}`.
pub fn ret(target: Reg, val: Reg) -> Terminator {
    Terminator::Ret { target, val }
}

/// `halt ty, sigma {r}`.
pub fn halt(ty: TTy, sigma: StackTy, val: Reg) -> Terminator {
    Terminator::Halt { ty, sigma, val }
}

// --- sequences, blocks, components ------------------------------------------

/// An instruction sequence.
pub fn seq(instrs: Vec<Instr>, term: Terminator) -> InstrSeq {
    InstrSeq::new(instrs, term)
}

/// A code block heap value.
pub fn code_block(
    delta: Vec<TyVarDecl>,
    chi: RegFileTy,
    sigma: StackTy,
    q: RetMarker,
    body: InstrSeq,
) -> HeapVal {
    HeapVal::Code(CodeBlock {
        delta,
        chi,
        sigma,
        q,
        body,
    })
}

/// An immutable tuple heap value.
pub fn boxed_tuple_v(fields: Vec<WordVal>) -> HeapVal {
    HeapVal::Tuple {
        mutability: Mutability::Boxed,
        fields,
    }
}

/// A mutable tuple heap value.
pub fn ref_tuple_v(fields: Vec<WordVal>) -> HeapVal {
    HeapVal::Tuple {
        mutability: Mutability::Ref,
        fields,
    }
}

/// A T component from a sequence and local heap bindings.
pub fn tcomp(seq: InstrSeq, heap: Vec<(&str, HeapVal)>) -> TComp {
    TComp {
        seq,
        heap: HeapFrag::from_pairs(heap.into_iter().map(|(l, v)| (Label::new(l), v))),
    }
}

// --- F ----------------------------------------------------------------------

/// The F type `int`.
pub fn fint() -> FTy {
    FTy::Int
}

/// The F type `unit`.
pub fn funit() -> FTy {
    FTy::Unit
}

/// An F type variable.
pub fn fvar_ty(name: &str) -> FTy {
    FTy::Var(TyVar::new(name))
}

/// An ordinary F arrow.
pub fn arrow(params: Vec<FTy>, ret: FTy) -> FTy {
    FTy::arrow(params, ret)
}

/// A stack-modifying F arrow.
pub fn arrow_sm(params: Vec<FTy>, phi_in: Vec<TTy>, phi_out: Vec<TTy>, ret: FTy) -> FTy {
    FTy::Arrow {
        params,
        phi_in,
        phi_out,
        ret: Box::new(ret),
    }
}

/// An F recursive type `mu a. t`.
pub fn fmu(name: &str, body: FTy) -> FTy {
    FTy::Rec(TyVar::new(name), Box::new(body))
}

/// An F tuple type.
pub fn ftuple_ty(ts: Vec<FTy>) -> FTy {
    FTy::Tuple(ts)
}

/// An F variable expression.
pub fn var(name: &str) -> FExpr {
    FExpr::Var(VarName::new(name))
}

/// An F integer literal.
pub fn fint_e(n: i64) -> FExpr {
    FExpr::Int(n)
}

/// The F unit value.
pub fn funit_e() -> FExpr {
    FExpr::Unit
}

/// `lhs + rhs`.
pub fn fadd(lhs: FExpr, rhs: FExpr) -> FExpr {
    FExpr::binop(ArithOp::Add, lhs, rhs)
}

/// `lhs - rhs`.
pub fn fsub(lhs: FExpr, rhs: FExpr) -> FExpr {
    FExpr::binop(ArithOp::Sub, lhs, rhs)
}

/// `lhs * rhs`.
pub fn fmul(lhs: FExpr, rhs: FExpr) -> FExpr {
    FExpr::binop(ArithOp::Mul, lhs, rhs)
}

/// `if0 cond { then } { else }`.
pub fn if0(cond: FExpr, then_branch: FExpr, else_branch: FExpr) -> FExpr {
    FExpr::If0 {
        cond: Box::new(cond),
        then_branch: Box::new(then_branch),
        else_branch: Box::new(else_branch),
    }
}

/// An ordinary lambda. The stack-tail binder is auto-named `z`.
pub fn lam(params: Vec<(&str, FTy)>, body: FExpr) -> FExpr {
    lam_z(params, "z", body)
}

/// An ordinary lambda with an explicit stack-tail binder name.
pub fn lam_z(params: Vec<(&str, FTy)>, zeta: &str, body: FExpr) -> FExpr {
    FExpr::Lam(Box::new(Lam {
        params: params
            .into_iter()
            .map(|(x, t)| (VarName::new(x), t))
            .collect(),
        zeta: TyVar::new(zeta),
        phi_in: vec![],
        phi_out: vec![],
        body,
    }))
}

/// A stack-modifying lambda.
pub fn lam_sm(
    params: Vec<(&str, FTy)>,
    zeta: &str,
    phi_in: Vec<TTy>,
    phi_out: Vec<TTy>,
    body: FExpr,
) -> FExpr {
    FExpr::Lam(Box::new(Lam {
        params: params
            .into_iter()
            .map(|(x, t)| (VarName::new(x), t))
            .collect(),
        zeta: TyVar::new(zeta),
        phi_in,
        phi_out,
        body,
    }))
}

/// Application.
pub fn app(func: FExpr, args: Vec<FExpr>) -> FExpr {
    FExpr::app(func, args)
}

/// `fold[t](e)`.
pub fn ffold(ann: FTy, body: FExpr) -> FExpr {
    FExpr::Fold {
        ann,
        body: Box::new(body),
    }
}

/// `unfold(e)`.
pub fn funfold(body: FExpr) -> FExpr {
    FExpr::Unfold(Box::new(body))
}

/// A tuple expression.
pub fn ftuple(es: Vec<FExpr>) -> FExpr {
    FExpr::Tuple(es)
}

/// 1-indexed projection `pi[i](e)`.
pub fn proj(idx: usize, tuple: FExpr) -> FExpr {
    FExpr::Proj {
        idx,
        tuple: Box::new(tuple),
    }
}

/// A boundary `FT[ty](comp)` whose output stack equals its input stack.
pub fn boundary(ty: FTy, comp: TComp) -> FExpr {
    FExpr::Boundary {
        ty,
        sigma_out: None,
        comp: Box::new(comp),
    }
}

/// A boundary with an explicit output stack annotation.
pub fn boundary_out(ty: FTy, sigma_out: StackTy, comp: TComp) -> FExpr {
    FExpr::Boundary {
        ty,
        sigma_out: Some(sigma_out),
        comp: Box::new(comp),
    }
}

/// Re-exported for building stacks whose tail is a variable with a
/// pre-existing `TyVar`.
pub fn stack_tail_var(v: TyVar) -> StackTy {
    StackTy {
        prefix: Vec::new(),
        tail: StackTail::Var(v),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_component_displays() {
        let comp = tcomp(
            seq(vec![mv(r1(), int_v(2))], halt(int(), nil(), r1())),
            vec![],
        );
        assert_eq!(comp.to_string(), "(mv r1, 2; halt int, * {r1})");
    }

    #[test]
    fn stack_builder_orders_prefix_top_first() {
        let s = stack(vec![int(), unit()], zvar("z"));
        assert_eq!(s.to_string(), "int :: unit :: z");
    }
}
