//! Arc-interned F expressions with cached free-variable sets.
//!
//! The substitution-based FT machine (Fig 8) re-walks and re-allocates
//! whole terms on every reduction. [`IExpr`] is the shared-subtree
//! counterpart used by the environment-passing evaluator: every node is
//! behind an [`Arc`], and every node caches
//!
//! - its free *term* variables (`fv`), so value substitution
//!   ([`subst_ivars`]) can skip — i.e. share, not clone — any subtree
//!   the substitution cannot reach, and
//! - its free *type* variables (`ftv`), so [`Subst::apply`] is O(1) on
//!   closed terms and prunes untouched subtrees elsewhere.
//!
//! Conversion to and from the plain [`FExpr`] tree is lossless
//! ([`IExpr::from_fexpr`], [`IExpr::to_fexpr`]); embedded T components
//! are shared whole (`Arc<TComp>`), with their free-variable sets
//! computed once at conversion time.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::{Arc, Weak};

use crate::free::{ftv_fty, ftv_heap_val, ftv_seq, ftv_stack, ftv_tty, fv_heap_val, fv_seq};
use crate::ids::{TyVar, VarName};
use crate::subst::{subst_fvars, Subst};
use crate::term::HeapVal;
use crate::term::{ArithOp, FExpr, Lam, TComp};
use crate::ty::{FTy, StackTy, TTy};

/// A shared set of free variables; `None` means the empty set, so the
/// overwhelmingly common "closed below here" case costs nothing.
type FvSet<T> = Option<Arc<BTreeSet<T>>>;

fn set_contains<T: Ord>(s: &FvSet<T>, x: &T) -> bool {
    s.as_ref().is_some_and(|s| s.contains(x))
}

fn set_disjoint<'a, T: Ord + 'a>(s: &FvSet<T>, keys: impl IntoIterator<Item = &'a T>) -> bool {
    match s {
        None => true,
        Some(s) => keys.into_iter().all(|k| !s.contains(k)),
    }
}

/// Unions child sets, sharing a single non-empty input unchanged.
fn union<T: Ord + Clone>(parts: impl IntoIterator<Item = FvSet<T>>) -> FvSet<T> {
    let mut acc: FvSet<T> = None;
    for part in parts {
        let Some(part) = part else { continue };
        match &mut acc {
            None => acc = Some(part),
            Some(cur) => {
                if !part.iter().all(|x| cur.contains(x)) {
                    let merged = Arc::make_mut(cur);
                    merged.extend(part.iter().cloned());
                }
            }
        }
    }
    acc
}

fn owned<T: Ord>(s: BTreeSet<T>) -> FvSet<T> {
    if s.is_empty() {
        None
    } else {
        Some(Arc::new(s))
    }
}

fn minus<T: Ord + Clone>(s: FvSet<T>, remove: impl Fn(&T) -> bool) -> FvSet<T> {
    match s {
        None => None,
        Some(s) => {
            if !s.iter().any(&remove) {
                return Some(s);
            }
            owned(s.iter().filter(|x| !remove(x)).cloned().collect())
        }
    }
}

// Free-variable sets of shared heap values, keyed by `Arc` identity and
// validated by upgrading the stored weak handle, so converting the same
// component repeatedly (compiled programs re-entering the evaluator)
// never re-walks its blocks.
thread_local! {
    #[allow(clippy::type_complexity)]
    static HEAP_SETS: RefCell<HashMap<usize, (Weak<HeapVal>, FvSet<VarName>, FvSet<TyVar>)>> =
        RefCell::new(HashMap::new());
}

fn heap_val_sets(hv: &Arc<HeapVal>) -> (FvSet<VarName>, FvSet<TyVar>) {
    let key = Arc::as_ptr(hv) as usize;
    HEAP_SETS.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some((weak, fv, ftv)) = cache.get(&key) {
            if let Some(live) = weak.upgrade() {
                if Arc::ptr_eq(&live, hv) {
                    return (fv.clone(), ftv.clone());
                }
            }
        }
        let fv = owned(fv_heap_val(hv));
        let ftv = owned(ftv_heap_val(hv));
        if cache.len() >= 4096 {
            cache.retain(|_, (w, _, _)| w.upgrade().is_some());
        }
        cache.insert(key, (Arc::downgrade(hv), fv.clone(), ftv.clone()));
        (fv, ftv)
    })
}

/// Free term/type variables of a component, using the per-block cache.
fn tcomp_sets(comp: &TComp) -> (FvSet<VarName>, FvSet<TyVar>) {
    let mut fv = owned(fv_seq(&comp.seq));
    let mut ftv = owned(ftv_seq(&comp.seq));
    for (_, hv) in comp.heap.iter_shared() {
        let (bfv, bftv) = heap_val_sets(hv);
        fv = union([fv, bfv]);
        ftv = union([ftv, bftv]);
    }
    (fv, ftv)
}

// Stable content hashes of interned nodes, keyed by `Arc` identity and
// validated by upgrading the stored weak handle. Shared artifacts (the
// batch engine hands the same `Arc`-interned term to many workers) hash
// once per thread instead of once per job.
thread_local! {
    static HASH_MEMO: RefCell<HashMap<usize, (Weak<INode>, u64)>> = RefCell::new(HashMap::new());
}

/// The node forms of an interned F expression, mirroring [`FExpr`].
#[derive(Clone, Debug)]
pub enum IKind {
    /// A variable.
    Var(VarName),
    /// `()`.
    Unit,
    /// An integer literal.
    Int(i64),
    /// `e p e`.
    Binop {
        /// The operation.
        op: ArithOp,
        /// Left operand.
        lhs: IExpr,
        /// Right operand.
        rhs: IExpr,
    },
    /// `if0 e e e`.
    If0 {
        /// The scrutinee.
        cond: IExpr,
        /// Taken when the scrutinee is 0.
        then_branch: IExpr,
        /// Taken otherwise.
        else_branch: IExpr,
    },
    /// A lambda; parameters and stack prefixes are shared, the body is
    /// interned.
    Lam {
        /// Parameters with their types.
        params: Arc<[(VarName, FTy)]>,
        /// The abstract stack-tail binder.
        zeta: TyVar,
        /// Required stack prefix.
        phi_in: Arc<[TTy]>,
        /// Produced stack prefix.
        phi_out: Arc<[TTy]>,
        /// The interned body.
        body: IExpr,
    },
    /// Application.
    App {
        /// The function.
        func: IExpr,
        /// The arguments, evaluated left to right.
        args: Arc<[IExpr]>,
    },
    /// `fold_{µα.τ} e`.
    Fold {
        /// The recursive type annotation.
        ann: Arc<FTy>,
        /// The folded expression.
        body: IExpr,
    },
    /// `unfold e`.
    Unfold(IExpr),
    /// `⟨e̅⟩`.
    Tuple(Arc<[IExpr]>),
    /// `πi(e)`.
    Proj {
        /// The 1-based field index.
        idx: usize,
        /// The projected tuple.
        tuple: IExpr,
    },
    /// A boundary `τFT e`; the component is shared whole.
    Boundary {
        /// The F type directing the translation.
        ty: Arc<FTy>,
        /// Output stack annotation, if any.
        sigma_out: Option<Arc<StackTy>>,
        /// The embedded T component.
        comp: Arc<TComp>,
    },
}

#[derive(Debug)]
struct INode {
    kind: IKind,
    fv: FvSet<VarName>,
    ftv: FvSet<TyVar>,
}

/// An interned F expression: a shared node with cached free-variable
/// sets. Cloning is an `Arc` bump.
#[derive(Clone, Debug)]
pub struct IExpr(Arc<INode>);

// Interned artifacts are shared across batch workers via `Arc`; the
// per-thread caches above are thread-local precisely so the shared
// structures themselves stay `Send + Sync`.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<IExpr>();
};

impl IExpr {
    fn mk(kind: IKind, fv: FvSet<VarName>, ftv: FvSet<TyVar>) -> IExpr {
        IExpr(Arc::new(INode { kind, fv, ftv }))
    }

    /// The node form.
    pub fn kind(&self) -> &IKind {
        &self.0.kind
    }

    /// True when `x` occurs free.
    pub fn has_fv(&self, x: &VarName) -> bool {
        set_contains(&self.0.fv, x)
    }

    /// True when the expression has no free term variables.
    pub fn is_closed(&self) -> bool {
        self.0.fv.is_none()
    }

    /// Iterates over the free term variables (from the cached set).
    pub fn free_vars(&self) -> impl Iterator<Item = &VarName> {
        self.0.fv.iter().flat_map(|s| s.iter())
    }

    /// True when the expression has no free type variables.
    pub fn is_ty_closed(&self) -> bool {
        self.0.ftv.is_none()
    }

    /// True when this is a syntactic value (Fig 5).
    pub fn is_value(&self) -> bool {
        match self.kind() {
            IKind::Unit | IKind::Int(_) | IKind::Lam { .. } => true,
            IKind::Fold { body, .. } => body.is_value(),
            IKind::Tuple(es) => es.iter().all(IExpr::is_value),
            _ => false,
        }
    }

    /// The stable content address of the expression (see
    /// [`crate::hash`]): equal to [`crate::hash::hash_fexpr`] of the
    /// plain tree — the same digest the driver's `ArtifactCache`
    /// reports as `term_key` — memoized per shared node, so an
    /// interned artifact shared across many jobs hashes once per
    /// thread instead of re-rendering per use. This is the hook for
    /// interned pipeline stages and persistent cache tiers; the
    /// in-process batch cache keys on full content and uses the digest
    /// for accounting.
    pub fn stable_hash(&self) -> u64 {
        let key = Arc::as_ptr(&self.0) as usize;
        HASH_MEMO.with(|memo| {
            let mut memo = memo.borrow_mut();
            if let Some((weak, h)) = memo.get(&key) {
                if let Some(live) = weak.upgrade() {
                    if Arc::ptr_eq(&live, &self.0) {
                        return *h;
                    }
                }
            }
            let h = crate::hash::hash_fexpr(&self.to_fexpr());
            if memo.len() >= 4096 {
                memo.retain(|_, (w, _)| w.upgrade().is_some());
                // All live: retaining freed nothing, and doing the
                // O(n) scan again on every insert would make the memo
                // quadratic. Drop it wholesale — it is only a cache.
                if memo.len() >= 4096 {
                    memo.clear();
                }
            }
            memo.insert(key, (Arc::downgrade(&self.0), h));
            h
        })
    }

    /// Interns a plain F expression, computing the cached sets
    /// bottom-up in one pass.
    pub fn from_fexpr(e: &FExpr) -> IExpr {
        match e {
            FExpr::Var(x) => IExpr::mk(
                IKind::Var(x.clone()),
                owned(BTreeSet::from([x.clone()])),
                None,
            ),
            FExpr::Unit => IExpr::mk(IKind::Unit, None, None),
            FExpr::Int(n) => IExpr::mk(IKind::Int(*n), None, None),
            FExpr::Binop { op, lhs, rhs } => {
                let lhs = IExpr::from_fexpr(lhs);
                let rhs = IExpr::from_fexpr(rhs);
                let fv = union([lhs.0.fv.clone(), rhs.0.fv.clone()]);
                let ftv = union([lhs.0.ftv.clone(), rhs.0.ftv.clone()]);
                IExpr::mk(IKind::Binop { op: *op, lhs, rhs }, fv, ftv)
            }
            FExpr::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = IExpr::from_fexpr(cond);
                let t = IExpr::from_fexpr(then_branch);
                let f = IExpr::from_fexpr(else_branch);
                let fv = union([cond.0.fv.clone(), t.0.fv.clone(), f.0.fv.clone()]);
                let ftv = union([cond.0.ftv.clone(), t.0.ftv.clone(), f.0.ftv.clone()]);
                IExpr::mk(
                    IKind::If0 {
                        cond,
                        then_branch: t,
                        else_branch: f,
                    },
                    fv,
                    ftv,
                )
            }
            FExpr::Lam(lam) => {
                let body = IExpr::from_fexpr(&lam.body);
                let fv = minus(body.0.fv.clone(), |x| {
                    lam.params.iter().any(|(p, _)| p == x)
                });
                let mut ann_ftv = BTreeSet::new();
                for (_, t) in &lam.params {
                    ann_ftv.extend(ftv_fty(t));
                }
                let inner = union([
                    owned(
                        lam.phi_in
                            .iter()
                            .chain(&lam.phi_out)
                            .flat_map(ftv_tty)
                            .collect(),
                    ),
                    body.0.ftv.clone(),
                ]);
                let ftv = union([owned(ann_ftv), minus(inner, |v| *v == lam.zeta)]);
                IExpr::mk(
                    IKind::Lam {
                        params: lam.params.clone().into(),
                        zeta: lam.zeta.clone(),
                        phi_in: lam.phi_in.clone().into(),
                        phi_out: lam.phi_out.clone().into(),
                        body,
                    },
                    fv,
                    ftv,
                )
            }
            FExpr::App { func, args } => {
                let func = IExpr::from_fexpr(func);
                let args: Vec<IExpr> = args.iter().map(IExpr::from_fexpr).collect();
                let fv = union(
                    std::iter::once(func.0.fv.clone()).chain(args.iter().map(|a| a.0.fv.clone())),
                );
                let ftv = union(
                    std::iter::once(func.0.ftv.clone()).chain(args.iter().map(|a| a.0.ftv.clone())),
                );
                IExpr::mk(
                    IKind::App {
                        func,
                        args: args.into(),
                    },
                    fv,
                    ftv,
                )
            }
            FExpr::Fold { ann, body } => {
                let body = IExpr::from_fexpr(body);
                let fv = body.0.fv.clone();
                let ftv = union([owned(ftv_fty(ann)), body.0.ftv.clone()]);
                IExpr::mk(
                    IKind::Fold {
                        ann: Arc::new(ann.clone()),
                        body,
                    },
                    fv,
                    ftv,
                )
            }
            FExpr::Unfold(body) => {
                let body = IExpr::from_fexpr(body);
                let (fv, ftv) = (body.0.fv.clone(), body.0.ftv.clone());
                IExpr::mk(IKind::Unfold(body), fv, ftv)
            }
            FExpr::Tuple(es) => {
                let es: Vec<IExpr> = es.iter().map(IExpr::from_fexpr).collect();
                let fv = union(es.iter().map(|e| e.0.fv.clone()));
                let ftv = union(es.iter().map(|e| e.0.ftv.clone()));
                IExpr::mk(IKind::Tuple(es.into()), fv, ftv)
            }
            FExpr::Proj { idx, tuple } => {
                let tuple = IExpr::from_fexpr(tuple);
                let (fv, ftv) = (tuple.0.fv.clone(), tuple.0.ftv.clone());
                IExpr::mk(IKind::Proj { idx: *idx, tuple }, fv, ftv)
            }
            FExpr::Boundary {
                ty,
                sigma_out,
                comp,
            } => {
                let (comp_fv, comp_ftv) = tcomp_sets(comp);
                let mut ftv = ftv_fty(ty);
                if let Some(s) = sigma_out {
                    ftv.extend(ftv_stack(s));
                }
                let ftv = union([owned(ftv), comp_ftv]);
                IExpr::mk(
                    IKind::Boundary {
                        ty: Arc::new(ty.clone()),
                        sigma_out: sigma_out.clone().map(Arc::new),
                        comp: Arc::new((**comp).clone()),
                    },
                    comp_fv,
                    ftv,
                )
            }
        }
    }

    /// Converts back to a plain F expression tree.
    pub fn to_fexpr(&self) -> FExpr {
        match self.kind() {
            IKind::Var(x) => FExpr::Var(x.clone()),
            IKind::Unit => FExpr::Unit,
            IKind::Int(n) => FExpr::Int(*n),
            IKind::Binop { op, lhs, rhs } => FExpr::Binop {
                op: *op,
                lhs: Box::new(lhs.to_fexpr()),
                rhs: Box::new(rhs.to_fexpr()),
            },
            IKind::If0 {
                cond,
                then_branch,
                else_branch,
            } => FExpr::If0 {
                cond: Box::new(cond.to_fexpr()),
                then_branch: Box::new(then_branch.to_fexpr()),
                else_branch: Box::new(else_branch.to_fexpr()),
            },
            IKind::Lam {
                params,
                zeta,
                phi_in,
                phi_out,
                body,
            } => FExpr::Lam(Box::new(Lam {
                params: params.to_vec(),
                zeta: zeta.clone(),
                phi_in: phi_in.to_vec(),
                phi_out: phi_out.to_vec(),
                body: body.to_fexpr(),
            })),
            IKind::App { func, args } => FExpr::App {
                func: Box::new(func.to_fexpr()),
                args: args.iter().map(IExpr::to_fexpr).collect(),
            },
            IKind::Fold { ann, body } => FExpr::Fold {
                ann: (**ann).clone(),
                body: Box::new(body.to_fexpr()),
            },
            IKind::Unfold(body) => FExpr::Unfold(Box::new(body.to_fexpr())),
            IKind::Tuple(es) => FExpr::Tuple(es.iter().map(IExpr::to_fexpr).collect()),
            IKind::Proj { idx, tuple } => FExpr::Proj {
                idx: *idx,
                tuple: Box::new(tuple.to_fexpr()),
            },
            IKind::Boundary {
                ty,
                sigma_out,
                comp,
            } => FExpr::Boundary {
                ty: (**ty).clone(),
                sigma_out: sigma_out.as_ref().map(|s| (**s).clone()),
                comp: Box::new((**comp).clone()),
            },
        }
    }
}

/// Substitutes interned values for free term variables, sharing every
/// subtree the substitution cannot reach.
///
/// When a replacement's free variables would be captured by a binder
/// (impossible for the machine, whose replacements are closed values),
/// the affected subtree falls back to the capture-avoiding
/// [`subst_fvars`] on the plain tree.
pub fn subst_ivars(e: &IExpr, map: &BTreeMap<VarName, IExpr>) -> IExpr {
    if map.is_empty() || set_disjoint(&e.0.fv, map.keys()) {
        return e.clone();
    }
    match e.kind() {
        IKind::Var(x) => map.get(x).cloned().unwrap_or_else(|| e.clone()),
        IKind::Unit | IKind::Int(_) => e.clone(),
        IKind::Binop { op, lhs, rhs } => {
            let lhs = subst_ivars(lhs, map);
            let rhs = subst_ivars(rhs, map);
            let fv = union([lhs.0.fv.clone(), rhs.0.fv.clone()]);
            let ftv = union([lhs.0.ftv.clone(), rhs.0.ftv.clone()]);
            IExpr::mk(IKind::Binop { op: *op, lhs, rhs }, fv, ftv)
        }
        IKind::If0 {
            cond,
            then_branch,
            else_branch,
        } => {
            let cond = subst_ivars(cond, map);
            let t = subst_ivars(then_branch, map);
            let f = subst_ivars(else_branch, map);
            let fv = union([cond.0.fv.clone(), t.0.fv.clone(), f.0.fv.clone()]);
            let ftv = union([cond.0.ftv.clone(), t.0.ftv.clone(), f.0.ftv.clone()]);
            IExpr::mk(
                IKind::If0 {
                    cond,
                    then_branch: t,
                    else_branch: f,
                },
                fv,
                ftv,
            )
        }
        IKind::Lam {
            params,
            zeta,
            phi_in,
            phi_out,
            body,
        } => {
            // Drop shadowed bindings; check remaining replacements for
            // capture by the parameters.
            let inner: BTreeMap<VarName, IExpr> = map
                .iter()
                .filter(|(k, _)| !params.iter().any(|(p, _)| p == *k))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect();
            if inner.is_empty() || set_disjoint(&body.0.fv, inner.keys()) {
                return e.clone();
            }
            let captured = inner
                .values()
                .any(|v| params.iter().any(|(p, _)| v.has_fv(p)));
            if captured {
                let plain: BTreeMap<VarName, FExpr> =
                    map.iter().map(|(k, v)| (k.clone(), v.to_fexpr())).collect();
                return IExpr::from_fexpr(&subst_fvars(&e.to_fexpr(), &plain));
            }
            let body = subst_ivars(body, &inner);
            let fv = minus(body.0.fv.clone(), |x| params.iter().any(|(p, _)| p == x));
            let ann_ftv: BTreeSet<TyVar> = params.iter().flat_map(|(_, t)| ftv_fty(t)).collect();
            let prefix_ftv: BTreeSet<TyVar> = phi_in
                .iter()
                .chain(phi_out.iter())
                .flat_map(ftv_tty)
                .collect();
            let ftv = union([
                owned(ann_ftv),
                minus(union([owned(prefix_ftv), body.0.ftv.clone()]), |v| {
                    v == zeta
                }),
            ]);
            IExpr::mk(
                IKind::Lam {
                    params: params.clone(),
                    zeta: zeta.clone(),
                    phi_in: phi_in.clone(),
                    phi_out: phi_out.clone(),
                    body,
                },
                fv,
                ftv,
            )
        }
        IKind::App { func, args } => {
            let func = subst_ivars(func, map);
            let args: Vec<IExpr> = args.iter().map(|a| subst_ivars(a, map)).collect();
            let fv = union(
                std::iter::once(func.0.fv.clone()).chain(args.iter().map(|a| a.0.fv.clone())),
            );
            let ftv = union(
                std::iter::once(func.0.ftv.clone()).chain(args.iter().map(|a| a.0.ftv.clone())),
            );
            IExpr::mk(
                IKind::App {
                    func,
                    args: args.into(),
                },
                fv,
                ftv,
            )
        }
        IKind::Fold { ann, body } => {
            let body = subst_ivars(body, map);
            let fv = body.0.fv.clone();
            let ftv = union([owned(ftv_fty(ann)), body.0.ftv.clone()]);
            IExpr::mk(
                IKind::Fold {
                    ann: ann.clone(),
                    body,
                },
                fv,
                ftv,
            )
        }
        IKind::Unfold(body) => {
            let body = subst_ivars(body, map);
            let (fv, ftv) = (body.0.fv.clone(), body.0.ftv.clone());
            IExpr::mk(IKind::Unfold(body), fv, ftv)
        }
        IKind::Tuple(es) => {
            let es: Vec<IExpr> = es.iter().map(|x| subst_ivars(x, map)).collect();
            let fv = union(es.iter().map(|x| x.0.fv.clone()));
            let ftv = union(es.iter().map(|x| x.0.ftv.clone()));
            IExpr::mk(IKind::Tuple(es.into()), fv, ftv)
        }
        IKind::Proj { idx, tuple } => {
            let tuple = subst_ivars(tuple, map);
            let (fv, ftv) = (tuple.0.fv.clone(), tuple.0.ftv.clone());
            IExpr::mk(IKind::Proj { idx: *idx, tuple }, fv, ftv)
        }
        IKind::Boundary { .. } => {
            // The substitution reaches `import` bodies inside the
            // component; rebuild through the plain tree.
            let plain: BTreeMap<VarName, FExpr> =
                map.iter().map(|(k, v)| (k.clone(), v.to_fexpr())).collect();
            IExpr::from_fexpr(&subst_fvars(&e.to_fexpr(), &plain))
        }
    }
}

impl Subst {
    /// Applies the type substitution to an interned expression.
    ///
    /// Thanks to the cached free-type-variable sets this is O(1) on any
    /// subtree the substitution's domain cannot reach — in particular on
    /// every type-closed term — and shares all untouched subtrees of a
    /// partially affected one.
    pub fn apply(&self, e: &IExpr) -> IExpr {
        if self.is_empty() || set_disjoint(&e.0.ftv, self.domain()) {
            return e.clone();
        }
        match e.kind() {
            IKind::Var(_) | IKind::Unit | IKind::Int(_) => e.clone(),
            IKind::Binop { op, lhs, rhs } => {
                let lhs = self.apply(lhs);
                let rhs = self.apply(rhs);
                let fv = union([lhs.0.fv.clone(), rhs.0.fv.clone()]);
                let ftv = union([lhs.0.ftv.clone(), rhs.0.ftv.clone()]);
                IExpr::mk(IKind::Binop { op: *op, lhs, rhs }, fv, ftv)
            }
            IKind::If0 {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = self.apply(cond);
                let t = self.apply(then_branch);
                let f = self.apply(else_branch);
                let fv = union([cond.0.fv.clone(), t.0.fv.clone(), f.0.fv.clone()]);
                let ftv = union([cond.0.ftv.clone(), t.0.ftv.clone(), f.0.ftv.clone()]);
                IExpr::mk(
                    IKind::If0 {
                        cond,
                        then_branch: t,
                        else_branch: f,
                    },
                    fv,
                    ftv,
                )
            }
            IKind::App { func, args } => {
                let func = self.apply(func);
                let args: Vec<IExpr> = args.iter().map(|a| self.apply(a)).collect();
                let fv = union(
                    std::iter::once(func.0.fv.clone()).chain(args.iter().map(|a| a.0.fv.clone())),
                );
                let ftv = union(
                    std::iter::once(func.0.ftv.clone()).chain(args.iter().map(|a| a.0.ftv.clone())),
                );
                IExpr::mk(
                    IKind::App {
                        func,
                        args: args.into(),
                    },
                    fv,
                    ftv,
                )
            }
            IKind::Unfold(body) => {
                let body = self.apply(body);
                let (fv, ftv) = (body.0.fv.clone(), body.0.ftv.clone());
                IExpr::mk(IKind::Unfold(body), fv, ftv)
            }
            IKind::Tuple(es) => {
                let es: Vec<IExpr> = es.iter().map(|x| self.apply(x)).collect();
                let fv = union(es.iter().map(|x| x.0.fv.clone()));
                let ftv = union(es.iter().map(|x| x.0.ftv.clone()));
                IExpr::mk(IKind::Tuple(es.into()), fv, ftv)
            }
            IKind::Proj { idx, tuple } => {
                let tuple = self.apply(tuple);
                let (fv, ftv) = (tuple.0.fv.clone(), tuple.0.ftv.clone());
                IExpr::mk(IKind::Proj { idx: *idx, tuple }, fv, ftv)
            }
            // Binder-crossing and component-embedding forms (Lam with
            // its ζ, Fold annotations, boundaries) rebuild through the
            // capture-avoiding plain-tree substitution.
            IKind::Lam { .. } | IKind::Fold { .. } | IKind::Boundary { .. } => {
                IExpr::from_fexpr(&self.fexpr(&e.to_fexpr()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::ty::Inst;

    #[test]
    fn round_trip_preserves_structure() {
        let e = app(
            lam(vec![("x", fint())], fadd(var("x"), fint_e(1))),
            vec![fint_e(41)],
        );
        let i = IExpr::from_fexpr(&e);
        assert_eq!(i.to_fexpr(), e);
        assert!(i.is_closed());
    }

    #[test]
    fn fv_cache_matches_free_module() {
        let e = fadd(var("x"), app(var("f"), vec![var("x")]));
        let i = IExpr::from_fexpr(&e);
        assert!(!i.is_closed());
        assert!(i.has_fv(&VarName::new("x")) && i.has_fv(&VarName::new("f")));
        assert!(!i.has_fv(&VarName::new("y")));
    }

    #[test]
    fn subst_shares_untouched_subtrees() {
        let untouched = fmul(fint_e(2), fint_e(3));
        let e = fadd(var("x"), untouched.clone());
        let i = IExpr::from_fexpr(&e);
        let map = BTreeMap::from([(VarName::new("x"), IExpr::from_fexpr(&fint_e(1)))]);
        let out = subst_ivars(&i, &map);
        assert_eq!(out.to_fexpr(), fadd(fint_e(1), untouched));
        // The untouched right operand is the same allocation.
        let (IKind::Binop { rhs: before, .. }, IKind::Binop { rhs: after, .. }) =
            (i.kind(), out.kind())
        else {
            panic!("expected binops")
        };
        assert!(Arc::ptr_eq(&before.0, &after.0));
    }

    #[test]
    fn subst_apply_is_identity_on_closed_terms() {
        let e = IExpr::from_fexpr(&app(
            lam(vec![("x", fint())], fadd(var("x"), fint_e(1))),
            vec![fint_e(1)],
        ));
        assert!(e.is_ty_closed());
        let s = Subst::one(TyVar::new("z"), Inst::Ty(TTy::Int));
        let out = s.apply(&e);
        assert!(Arc::ptr_eq(&e.0, &out.0), "closed term must be shared");
    }

    #[test]
    fn lam_shadowing_shares_whole_lambda() {
        let e = IExpr::from_fexpr(&lam(vec![("x", fint())], var("x")));
        let map = BTreeMap::from([(VarName::new("x"), IExpr::from_fexpr(&fint_e(7)))]);
        let out = subst_ivars(&e, &map);
        assert!(Arc::ptr_eq(&e.0, &out.0));
    }

    #[test]
    fn stable_hash_matches_plain_hash_and_memoizes() {
        let e = app(
            lam(vec![("x", fint())], fadd(var("x"), fint_e(1))),
            vec![fint_e(41)],
        );
        let i = IExpr::from_fexpr(&e);
        assert_eq!(i.stable_hash(), crate::hash::hash_fexpr(&e));
        // Second call hits the memo and must agree.
        assert_eq!(i.stable_hash(), crate::hash::hash_fexpr(&e));
        // A structurally equal but separately interned term hashes equal.
        assert_eq!(IExpr::from_fexpr(&e).stable_hash(), i.stable_hash());
    }

    #[test]
    fn capture_falls_back_to_renaming() {
        // (λ y. x)[x := y] must rename y, matching subst_fvars.
        let e = FExpr::Lam(Box::new(Lam {
            params: vec![(VarName::new("y"), FTy::Int)],
            zeta: TyVar::new("z"),
            phi_in: vec![],
            phi_out: vec![],
            body: FExpr::Var(VarName::new("x")),
        }));
        let i = IExpr::from_fexpr(&e);
        let map = BTreeMap::from([(
            VarName::new("x"),
            IExpr::from_fexpr(&FExpr::Var(VarName::new("y"))),
        )]);
        let plain_map = BTreeMap::from([(VarName::new("x"), FExpr::Var(VarName::new("y")))]);
        assert_eq!(
            subst_ivars(&i, &map).to_fexpr(),
            subst_fvars(&e, &plain_map)
        );
    }
}
