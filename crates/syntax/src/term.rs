//! Terms of the multi-language FT: T word/small values, instructions,
//! components (Fig 1 and 6), and F expressions (Fig 5 and 6).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::ids::{Label, Reg, TyVar, VarName};
use crate::ty::{FTy, Inst, Mutability, RetMarker, StackTy, TTy, TyVarDecl};

/// Arithmetic operations, shared between T's `aop` and F's `p` (both range
/// over `+ | − | ∗`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ArithOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
}

impl ArithOp {
    /// Applies the operation (wrapping on overflow, like real hardware).
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            ArithOp::Add => a.wrapping_add(b),
            ArithOp::Sub => a.wrapping_sub(b),
            ArithOp::Mul => a.wrapping_mul(b),
        }
    }

    /// The T mnemonic (`add`, `sub`, `mul`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            ArithOp::Add => "add",
            ArithOp::Sub => "sub",
            ArithOp::Mul => "mul",
        }
    }

    /// The F operator symbol (`+`, `-`, `*`).
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
        }
    }
}

/// T word values `w` (Fig 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WordVal {
    /// `()`.
    Unit,
    /// An integer `n`.
    Int(i64),
    /// A heap location `ℓ`.
    Loc(Label),
    /// `pack⟨τ,w⟩ as ∃α.τ'`.
    Pack {
        /// The hidden representation type `τ`.
        hidden: TTy,
        /// The packed value.
        body: Box<WordVal>,
        /// The full existential annotation `∃α.τ'`.
        ann: TTy,
    },
    /// `fold_{µα.τ} w`.
    Fold {
        /// The recursive type annotation `µα.τ`.
        ann: TTy,
        /// The folded value.
        body: Box<WordVal>,
    },
    /// A type application `w[ω̄]` (a word value applied to instantiations
    /// is itself a value, following STAL).
    Inst {
        /// The underlying word value.
        body: Box<WordVal>,
        /// The instantiations, outermost first.
        args: Vec<Inst>,
    },
}

impl WordVal {
    /// Applies instantiations, flattening nested `Inst` nodes.
    pub fn instantiate(self, mut args: Vec<Inst>) -> WordVal {
        if args.is_empty() {
            return self;
        }
        match self {
            WordVal::Inst {
                body,
                args: mut first,
            } => {
                first.append(&mut args);
                WordVal::Inst { body, args: first }
            }
            other => WordVal::Inst {
                body: Box::new(other),
                args,
            },
        }
    }

    /// Peels `Inst` wrappers, returning the base value and all pending
    /// instantiations (outermost first).
    pub fn peel_insts(&self) -> (&WordVal, Vec<Inst>) {
        match self {
            WordVal::Inst { body, args } => {
                let (base, mut inner) = body.peel_insts();
                inner.extend(args.iter().cloned());
                (base, inner)
            }
            other => (other, Vec::new()),
        }
    }
}

/// T small values `u` (Fig 1): operands of instructions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SmallVal {
    /// A register holding a word value.
    Reg(Reg),
    /// A literal word value.
    Word(WordVal),
    /// `pack⟨τ,u⟩ as ∃α.τ'`.
    Pack {
        /// The hidden representation type.
        hidden: TTy,
        /// The packed operand.
        body: Box<SmallVal>,
        /// The existential annotation.
        ann: TTy,
    },
    /// `fold_{µα.τ} u`.
    Fold {
        /// The recursive type annotation.
        ann: TTy,
        /// The folded operand.
        body: Box<SmallVal>,
    },
    /// `u[ω̄]`.
    Inst {
        /// The underlying operand.
        body: Box<SmallVal>,
        /// Instantiations, outermost first.
        args: Vec<Inst>,
    },
}

impl SmallVal {
    /// An integer literal operand.
    pub fn int(n: i64) -> SmallVal {
        SmallVal::Word(WordVal::Int(n))
    }

    /// A unit literal operand.
    pub fn unit() -> SmallVal {
        SmallVal::Word(WordVal::Unit)
    }

    /// A label operand.
    pub fn loc(l: impl Into<Label>) -> SmallVal {
        SmallVal::Word(WordVal::Loc(l.into()))
    }

    /// Applies instantiations, flattening nested `Inst` nodes.
    pub fn instantiate(self, mut args: Vec<Inst>) -> SmallVal {
        if args.is_empty() {
            return self;
        }
        match self {
            SmallVal::Inst {
                body,
                args: mut first,
            } => {
                first.append(&mut args);
                SmallVal::Inst { body, args: first }
            }
            other => SmallVal::Inst {
                body: Box::new(other),
                args,
            },
        }
    }
}

/// T single instructions `ι` plus the multi-language `import`/`protect`
/// forms (Figs 1 and 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Instr {
    /// `aop rd, rs, u` — store the result of `rs aop u` in `rd`.
    Arith {
        /// Which arithmetic operation.
        op: ArithOp,
        /// Destination register.
        rd: Reg,
        /// First operand register.
        rs: Reg,
        /// Second operand.
        src: SmallVal,
    },
    /// `bnz r, u` — jump to `u` if `r` is non-zero, else fall through.
    Bnz {
        /// The tested register.
        r: Reg,
        /// The (instantiated) jump target.
        target: SmallVal,
    },
    /// `ld rd, rs[i]` — load the `i`th field of the tuple pointed to by
    /// `rs` into `rd`.
    Ld {
        /// Destination register.
        rd: Reg,
        /// Tuple pointer register.
        rs: Reg,
        /// Field index (0-based).
        idx: usize,
    },
    /// `st rd[i], rs` — store `rs` into the `i`th field of the *mutable*
    /// tuple pointed to by `rd`.
    St {
        /// Tuple pointer register.
        rd: Reg,
        /// Field index (0-based).
        idx: usize,
        /// Source register.
        rs: Reg,
    },
    /// `ralloc rd, n` — allocate a mutable `n`-tuple from the top `n` stack
    /// slots (popping them), leaving the pointer in `rd`.
    Ralloc {
        /// Destination register.
        rd: Reg,
        /// Number of fields.
        n: usize,
    },
    /// `balloc rd, n` — like `ralloc` but the tuple is immutable.
    Balloc {
        /// Destination register.
        rd: Reg,
        /// Number of fields.
        n: usize,
    },
    /// `mv rd, u` — move `u` into `rd`.
    Mv {
        /// Destination register.
        rd: Reg,
        /// Source operand.
        src: SmallVal,
    },
    /// `salloc n` — allocate `n` stack cells initialized with `()`.
    Salloc(usize),
    /// `sfree n` — free the top `n` stack cells.
    Sfree(usize),
    /// `sld rd, i` — load stack slot `i` into `rd`.
    Sld {
        /// Destination register.
        rd: Reg,
        /// Stack slot (0 = top).
        idx: usize,
    },
    /// `sst i, rs` — store `rs` into stack slot `i`.
    Sst {
        /// Stack slot (0 = top).
        idx: usize,
        /// Source register.
        rs: Reg,
    },
    /// `unpack ⟨α, rd⟩ u` — open an existential package, binding the
    /// witness type to `α` and the value to `rd`.
    Unpack {
        /// The type variable bound for the rest of the sequence.
        tv: TyVar,
        /// Destination register.
        rd: Reg,
        /// The packed operand.
        src: SmallVal,
    },
    /// `unfold rd, u` — unfold a value of recursive type into `rd`.
    Unfold {
        /// Destination register.
        rd: Reg,
        /// The folded operand.
        src: SmallVal,
    },
    /// `protect φ, ζ` — abstract the stack below the prefix `φ` as a fresh
    /// stack variable `ζ` (multi-language form, Fig 6).
    Protect {
        /// The prefix left visible (top first).
        phi: Vec<TTy>,
        /// The freshly bound tail variable.
        zeta: TyVar,
    },
    /// `import rd, ζ = σ0, TF[τ]{e}` — evaluate the F expression `e` to a
    /// value, translate it at type `τ`, and place it in `rd`, protecting
    /// the stack tail `σ0` (multi-language form, Fig 6; binder made
    /// explicit per deviation D2).
    Import {
        /// Destination register.
        rd: Reg,
        /// Fresh name for the abstracted tail inside `e`.
        zeta: TyVar,
        /// The protected tail `σ0`.
        protected: StackTy,
        /// The F type directing the value translation.
        ty: FTy,
        /// The embedded F expression.
        body: Box<FExpr>,
    },
}

/// The jump (or halt) that terminates every instruction sequence (Fig 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// `jmp u` — intra-component jump.
    Jmp(SmallVal),
    /// `call u {σ, q}` — inter-component jump with a return: protects the
    /// stack tail `σ` and requires the callee to return to the marker `q`.
    Call {
        /// The (partially instantiated) target.
        target: SmallVal,
        /// Protected stack tail `σ0`.
        sigma: StackTy,
        /// Return marker handed to the callee's continuation.
        q: RetMarker,
    },
    /// `ret r {r'}` — inter-component jump back to the continuation in `r`
    /// with the result in `r'`.
    Ret {
        /// Register holding the return continuation.
        target: Reg,
        /// Register holding the result value.
        val: Reg,
    },
    /// `halt τ, σ {r}` — stop with a value of type `τ` in `r` and stack
    /// `σ`; inside a boundary this transfers control back to F.
    Halt {
        /// Result value type.
        ty: TTy,
        /// Stack type at the halt.
        sigma: StackTy,
        /// Register holding the result.
        val: Reg,
    },
}

/// An instruction sequence `I`: straight-line instructions ending in a
/// jump or halt.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InstrSeq {
    /// The straight-line prefix.
    pub instrs: Vec<Instr>,
    /// The terminating jump/halt.
    pub term: Terminator,
}

impl InstrSeq {
    /// Builds a sequence from instructions and a terminator.
    pub fn new(instrs: Vec<Instr>, term: Terminator) -> Self {
        InstrSeq { instrs, term }
    }

    /// A sequence consisting only of a terminator.
    pub fn just(term: Terminator) -> Self {
        InstrSeq {
            instrs: Vec::new(),
            term,
        }
    }

    /// True when the sequence is exactly a `halt` with no pending
    /// instructions — the value form `v` of T (Fig 1).
    pub fn is_halt_value(&self) -> bool {
        self.instrs.is_empty() && matches!(self.term, Terminator::Halt { .. })
    }
}

/// A code block `code[∆]{χ;σ}q.I` (Fig 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodeBlock {
    /// Bound type variables.
    pub delta: Vec<TyVarDecl>,
    /// Register-file precondition.
    pub chi: crate::ty::RegFileTy,
    /// Stack precondition.
    pub sigma: StackTy,
    /// Return marker.
    pub q: RetMarker,
    /// The block body.
    pub body: InstrSeq,
}

/// A heap value `h ::= code[∆]{χ;σ}q.I | ⟨w̄⟩` (Fig 1).
///
/// Runtime tuples record their mutability so the machine can reject
/// stores into immutable tuples and infer heap typings.
// Code blocks dominate tuples in size, but heap values live behind the
// heap map and are never moved in bulk, so boxing the block would cost
// an indirection on the machine's hottest lookup for no benefit.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeapVal {
    /// A code block.
    Code(CodeBlock),
    /// A tuple of word values.
    Tuple {
        /// `ref` or `box`.
        mutability: Mutability,
        /// The fields.
        fields: Vec<WordVal>,
    },
}

/// A heap fragment `H`: a finite map from labels to heap values.
///
/// Heap values are stored behind [`Arc`] so that cloning a fragment —
/// which the machine does every time a component crosses a boundary —
/// and merging it into a global heap share the underlying blocks
/// instead of deep-copying their instruction sequences.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HeapFrag(pub BTreeMap<Label, Arc<HeapVal>>);

impl HeapFrag {
    /// The empty fragment.
    pub fn new() -> Self {
        HeapFrag(BTreeMap::new())
    }

    /// Builds a fragment from `(label, value)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Label, HeapVal)>) -> Self {
        HeapFrag(pairs.into_iter().map(|(l, v)| (l, Arc::new(v))).collect())
    }

    /// Builds a fragment from already-shared `(label, value)` pairs.
    pub fn from_shared(pairs: impl IntoIterator<Item = (Label, Arc<HeapVal>)>) -> Self {
        HeapFrag(pairs.into_iter().collect())
    }

    /// Looks up a label.
    pub fn get(&self, l: &Label) -> Option<&HeapVal> {
        self.0.get(l).map(|v| &**v)
    }

    /// Looks up a label, returning the shared handle.
    pub fn get_shared(&self, l: &Label) -> Option<&Arc<HeapVal>> {
        self.0.get(l)
    }

    /// True when the fragment has no bindings.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &HeapVal)> {
        self.0.iter().map(|(l, v)| (l, &**v))
    }

    /// Iterates in label order over the shared handles.
    pub fn iter_shared(&self) -> impl Iterator<Item = (&Label, &Arc<HeapVal>)> {
        self.0.iter()
    }
}

impl FromIterator<(Label, HeapVal)> for HeapFrag {
    fn from_iter<I: IntoIterator<Item = (Label, HeapVal)>>(iter: I) -> Self {
        iter.into_iter().map(|(l, v)| (l, Arc::new(v))).collect()
    }
}

impl FromIterator<(Label, Arc<HeapVal>)> for HeapFrag {
    fn from_iter<I: IntoIterator<Item = (Label, Arc<HeapVal>)>>(iter: I) -> Self {
        HeapFrag(iter.into_iter().collect())
    }
}

/// A T component `e = (I, H)`: an instruction sequence together with a
/// local heap fragment of code blocks for intra-component jumps (§2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TComp {
    /// The entry instruction sequence.
    pub seq: InstrSeq,
    /// Component-local code blocks.
    pub heap: HeapFrag,
}

impl TComp {
    /// A component with an empty local heap.
    pub fn bare(seq: InstrSeq) -> Self {
        TComp {
            seq,
            heap: HeapFrag::new(),
        }
    }

    /// A component with local blocks.
    pub fn with_heap(seq: InstrSeq, heap: HeapFrag) -> Self {
        TComp { seq, heap }
    }
}

/// An F lambda, ordinary or stack-modifying (Figs 5 and 6).
///
/// The body is typed under the abstract stack `φi :: ζ`; the `zeta` binder
/// is explicit so annotations inside the body can refer to it
/// (deviation D2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lam {
    /// Parameters with their types.
    pub params: Vec<(VarName, FTy)>,
    /// The abstract stack-tail variable scoping over the body.
    pub zeta: TyVar,
    /// Required stack prefix `φi` (empty for ordinary lambdas).
    pub phi_in: Vec<TTy>,
    /// Produced stack prefix `φo` (empty for ordinary lambdas).
    pub phi_out: Vec<TTy>,
    /// The body.
    pub body: FExpr,
}

impl Lam {
    /// True when this is an ordinary (non-stack-modifying) lambda.
    pub fn is_plain(&self) -> bool {
        self.phi_in.is_empty() && self.phi_out.is_empty()
    }
}

/// F expressions `e` (Fig 5) extended with multi-language forms (Fig 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FExpr {
    /// A variable.
    Var(VarName),
    /// `()`.
    Unit,
    /// An integer literal.
    Int(i64),
    /// `e p e`.
    Binop {
        /// The operation.
        op: ArithOp,
        /// Left operand.
        lhs: Box<FExpr>,
        /// Right operand.
        rhs: Box<FExpr>,
    },
    /// `if0 e e e`.
    If0 {
        /// The scrutinee.
        cond: Box<FExpr>,
        /// Taken when the scrutinee is 0.
        then_branch: Box<FExpr>,
        /// Taken otherwise.
        else_branch: Box<FExpr>,
    },
    /// `λ(x̄:τ̄).e` or `λ^{φi}_{φo}(x̄:τ̄).e`.
    Lam(Box<Lam>),
    /// Application `e (e̅)`.
    App {
        /// The function.
        func: Box<FExpr>,
        /// The arguments, evaluated left to right.
        args: Vec<FExpr>,
    },
    /// `fold_{µα.τ} e`.
    Fold {
        /// The recursive type annotation.
        ann: FTy,
        /// The folded expression.
        body: Box<FExpr>,
    },
    /// `unfold e`.
    Unfold(Box<FExpr>),
    /// `⟨e̅⟩`.
    Tuple(Vec<FExpr>),
    /// `πi(e)` — 1-indexed projection, as in the paper.
    Proj {
        /// The 1-based field index.
        idx: usize,
        /// The projected tuple.
        tuple: Box<FExpr>,
    },
    /// A boundary `τFT e`: a T component used at F type `τ` (Fig 6).
    ///
    /// `sigma_out` is the component's output stack type σ′; `None` means
    /// "unchanged from the input stack" (deviation D1).
    Boundary {
        /// The F type directing the translation.
        ty: FTy,
        /// Output stack annotation, if it differs from the input stack.
        sigma_out: Option<StackTy>,
        /// The embedded T component.
        comp: Box<TComp>,
    },
}

impl FExpr {
    /// Builds an application node.
    pub fn app(func: FExpr, args: Vec<FExpr>) -> FExpr {
        FExpr::App {
            func: Box::new(func),
            args,
        }
    }

    /// Builds a binary operation node.
    pub fn binop(op: ArithOp, lhs: FExpr, rhs: FExpr) -> FExpr {
        FExpr::Binop {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// True when the expression is an F value (Fig 5): unit, int, lambda,
    /// fold of a value, or tuple of values.
    pub fn is_value(&self) -> bool {
        match self {
            FExpr::Unit | FExpr::Int(_) | FExpr::Lam(_) => true,
            FExpr::Fold { body, .. } => body.is_value(),
            FExpr::Tuple(es) => es.iter().all(FExpr::is_value),
            _ => false,
        }
    }
}

/// A component of the multi-language: an F expression or a T component
/// (Fig 6: `e ::= e | e`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Component {
    /// An F expression.
    F(FExpr),
    /// A T component.
    T(TComp),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arith_wraps() {
        assert_eq!(ArithOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(ArithOp::Sub.apply(3, 5), -2);
        assert_eq!(ArithOp::Mul.apply(4, 5), 20);
    }

    #[test]
    fn instantiate_flattens() {
        let w = WordVal::Loc(Label::new("l"))
            .instantiate(vec![Inst::Ty(TTy::Int)])
            .instantiate(vec![Inst::Ret(RetMarker::Reg(Reg::Ra))]);
        match &w {
            WordVal::Inst { args, .. } => assert_eq!(args.len(), 2),
            _ => panic!("expected Inst"),
        }
        let (base, args) = w.peel_insts();
        assert_eq!(base, &WordVal::Loc(Label::new("l")));
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn value_recognition() {
        assert!(FExpr::Int(3).is_value());
        assert!(FExpr::Tuple(vec![FExpr::Int(1), FExpr::Unit]).is_value());
        assert!(!FExpr::Tuple(vec![FExpr::binop(
            ArithOp::Add,
            FExpr::Int(1),
            FExpr::Int(2)
        )])
        .is_value());
        assert!(!FExpr::Var(VarName::new("x")).is_value());
    }

    #[test]
    fn halt_value_form() {
        let halt = InstrSeq::just(Terminator::Halt {
            ty: TTy::Int,
            sigma: StackTy::nil(),
            val: Reg::R1,
        });
        assert!(halt.is_halt_value());
        let jmp = InstrSeq::just(Terminator::Jmp(SmallVal::loc("l")));
        assert!(!jmp.is_halt_value());
    }
}
