//! Renaming of heap labels.
//!
//! When the machine merges a component-local heap fragment `H` into the
//! global heap (§3 "we merge local heap fragments to the global heap"),
//! the fragment's labels are freshened to avoid collisions. Renaming must
//! respect *label scoping*: a nested T component (inside a boundary or an
//! `import` body) that redefines a label in its own local heap shadows the
//! outer definition.

use std::collections::BTreeMap;

use crate::ids::Label;
use crate::term::{
    CodeBlock, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, Lam, SmallVal, TComp, Terminator, WordVal,
};

type Renaming = BTreeMap<Label, Label>;

fn ren(map: &Renaming, l: &Label) -> Label {
    map.get(l).cloned().unwrap_or_else(|| l.clone())
}

/// Renames labels in a word value.
pub fn rename_word(w: &WordVal, map: &Renaming) -> WordVal {
    match w {
        WordVal::Loc(l) => WordVal::Loc(ren(map, l)),
        WordVal::Unit | WordVal::Int(_) => w.clone(),
        WordVal::Pack { hidden, body, ann } => WordVal::Pack {
            hidden: hidden.clone(),
            body: Box::new(rename_word(body, map)),
            ann: ann.clone(),
        },
        WordVal::Fold { ann, body } => WordVal::Fold {
            ann: ann.clone(),
            body: Box::new(rename_word(body, map)),
        },
        WordVal::Inst { body, args } => WordVal::Inst {
            body: Box::new(rename_word(body, map)),
            args: args.clone(),
        },
    }
}

/// Renames labels in a small value.
pub fn rename_small(u: &SmallVal, map: &Renaming) -> SmallVal {
    match u {
        SmallVal::Reg(_) => u.clone(),
        SmallVal::Word(w) => SmallVal::Word(rename_word(w, map)),
        SmallVal::Pack { hidden, body, ann } => SmallVal::Pack {
            hidden: hidden.clone(),
            body: Box::new(rename_small(body, map)),
            ann: ann.clone(),
        },
        SmallVal::Fold { ann, body } => SmallVal::Fold {
            ann: ann.clone(),
            body: Box::new(rename_small(body, map)),
        },
        SmallVal::Inst { body, args } => SmallVal::Inst {
            body: Box::new(rename_small(body, map)),
            args: args.clone(),
        },
    }
}

/// Renames labels in an instruction.
pub fn rename_instr(i: &Instr, map: &Renaming) -> Instr {
    match i {
        Instr::Arith { op, rd, rs, src } => Instr::Arith {
            op: *op,
            rd: *rd,
            rs: *rs,
            src: rename_small(src, map),
        },
        Instr::Bnz { r, target } => Instr::Bnz {
            r: *r,
            target: rename_small(target, map),
        },
        Instr::Mv { rd, src } => Instr::Mv {
            rd: *rd,
            src: rename_small(src, map),
        },
        Instr::Unpack { tv, rd, src } => Instr::Unpack {
            tv: tv.clone(),
            rd: *rd,
            src: rename_small(src, map),
        },
        Instr::Unfold { rd, src } => Instr::Unfold {
            rd: *rd,
            src: rename_small(src, map),
        },
        Instr::Import {
            rd,
            zeta,
            protected,
            ty,
            body,
        } => Instr::Import {
            rd: *rd,
            zeta: zeta.clone(),
            protected: protected.clone(),
            ty: ty.clone(),
            body: Box::new(rename_fexpr(body, map)),
        },
        other => other.clone(),
    }
}

/// Renames labels in an instruction sequence.
pub fn rename_seq(seq: &InstrSeq, map: &Renaming) -> InstrSeq {
    InstrSeq::new(
        seq.instrs.iter().map(|i| rename_instr(i, map)).collect(),
        match &seq.term {
            Terminator::Jmp(u) => Terminator::Jmp(rename_small(u, map)),
            Terminator::Call { target, sigma, q } => Terminator::Call {
                target: rename_small(target, map),
                sigma: sigma.clone(),
                q: q.clone(),
            },
            t @ (Terminator::Ret { .. } | Terminator::Halt { .. }) => t.clone(),
        },
    )
}

/// Renames labels in a heap value.
pub fn rename_heap_val(h: &HeapVal, map: &Renaming) -> HeapVal {
    match h {
        HeapVal::Code(b) => HeapVal::Code(CodeBlock {
            body: rename_seq(&b.body, map),
            ..b.clone()
        }),
        HeapVal::Tuple { mutability, fields } => HeapVal::Tuple {
            mutability: *mutability,
            fields: fields.iter().map(|w| rename_word(w, map)).collect(),
        },
    }
}

/// Renames labels in a T component, respecting shadowing by the
/// component's own heap.
pub fn rename_tcomp(c: &TComp, map: &Renaming) -> TComp {
    // Labels defined by this component's own heap shadow the renaming.
    let inner: Renaming = map
        .iter()
        .filter(|(l, _)| c.heap.get(l).is_none())
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    if inner.is_empty() {
        return c.clone();
    }
    TComp {
        seq: rename_seq(&c.seq, &inner),
        heap: c
            .heap
            .iter()
            .map(|(l, v)| (l.clone(), rename_heap_val(v, &inner)))
            .collect(),
    }
}

/// Renames labels in an F expression (reaching through boundaries).
pub fn rename_fexpr(e: &FExpr, map: &Renaming) -> FExpr {
    match e {
        FExpr::Var(_) | FExpr::Unit | FExpr::Int(_) => e.clone(),
        FExpr::Binop { op, lhs, rhs } => FExpr::Binop {
            op: *op,
            lhs: Box::new(rename_fexpr(lhs, map)),
            rhs: Box::new(rename_fexpr(rhs, map)),
        },
        FExpr::If0 {
            cond,
            then_branch,
            else_branch,
        } => FExpr::If0 {
            cond: Box::new(rename_fexpr(cond, map)),
            then_branch: Box::new(rename_fexpr(then_branch, map)),
            else_branch: Box::new(rename_fexpr(else_branch, map)),
        },
        FExpr::Lam(lam) => FExpr::Lam(Box::new(Lam {
            body: rename_fexpr(&lam.body, map),
            ..(**lam).clone()
        })),
        FExpr::App { func, args } => FExpr::App {
            func: Box::new(rename_fexpr(func, map)),
            args: args.iter().map(|a| rename_fexpr(a, map)).collect(),
        },
        FExpr::Fold { ann, body } => FExpr::Fold {
            ann: ann.clone(),
            body: Box::new(rename_fexpr(body, map)),
        },
        FExpr::Unfold(body) => FExpr::Unfold(Box::new(rename_fexpr(body, map))),
        FExpr::Tuple(es) => FExpr::Tuple(es.iter().map(|e| rename_fexpr(e, map)).collect()),
        FExpr::Proj { idx, tuple } => FExpr::Proj {
            idx: *idx,
            tuple: Box::new(rename_fexpr(tuple, map)),
        },
        FExpr::Boundary {
            ty,
            sigma_out,
            comp,
        } => FExpr::Boundary {
            ty: ty.clone(),
            sigma_out: sigma_out.clone(),
            comp: Box::new(rename_tcomp(comp, map)),
        },
    }
}

/// Renames labels in a heap fragment, including the binding labels
/// themselves.
pub fn rename_frag_bindings(h: &HeapFrag, map: &Renaming) -> HeapFrag {
    h.iter()
        .map(|(l, v)| (ren(map, l), rename_heap_val(v, map)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn renames_jump_targets() {
        let mut map = Renaming::new();
        map.insert(Label::new("l"), Label::new("l$1"));
        let s = seq(vec![], jmp(loc("l")));
        let out = rename_seq(&s, &map);
        assert_eq!(out.to_string(), "jmp l$1");
    }

    #[test]
    fn inner_component_shadows() {
        let mut map = Renaming::new();
        map.insert(Label::new("l"), Label::new("l$1"));
        // A component whose own heap defines `l`: references stay put.
        let inner = tcomp(
            seq(vec![], jmp(loc("l"))),
            vec![(
                "l",
                code_block(
                    vec![],
                    chi([]),
                    nil(),
                    q_end(int(), nil()),
                    seq(vec![], halt(int(), nil(), r1())),
                ),
            )],
        );
        let out = rename_tcomp(&inner, &map);
        assert_eq!(out, inner);
    }
}
