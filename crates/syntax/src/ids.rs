//! Identifiers: type variables, heap labels, term variables, and registers.
//!
//! All name-like identifiers are cheap-to-clone wrappers around `Arc<str>`
//! so that the substitution-heavy machine can copy syntax trees without
//! repeatedly allocating strings.

use std::fmt;
use std::sync::Arc;

macro_rules! name_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a new identifier from anything string-like.
            pub fn new(s: impl AsRef<str>) -> Self {
                $name(Arc::from(s.as_ref()))
            }

            /// The textual form of the identifier.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), &self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                $name::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                $name::new(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                self.as_str()
            }
        }
    };
}

name_type! {
    /// A type-level variable: `α` (type), `ζ` (stack), or `ε` (return marker).
    ///
    /// The kind of a variable is determined by its binding site (see
    /// [`crate::ty::Kind`]); the name itself is kind-agnostic.
    TyVar
}

name_type! {
    /// A heap location `ℓ`.
    ///
    /// Labels are nominal: two heaps are equal only if they agree on label
    /// names. The machine freshens component-local labels when merging a
    /// local heap fragment into the global heap.
    Label
}

name_type! {
    /// A term-level variable of the functional language F.
    VarName
}

/// A register of the assembly language T: `r1`–`r7` plus the return-address
/// register `ra` (Fig 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Reg {
    /// General-purpose register `r1` (results by calling convention).
    R1,
    /// General-purpose register `r2`.
    R2,
    /// General-purpose register `r3`.
    R3,
    /// General-purpose register `r4`.
    R4,
    /// General-purpose register `r5`.
    R5,
    /// General-purpose register `r6`.
    R6,
    /// General-purpose register `r7`.
    R7,
    /// The return-address register `ra`.
    Ra,
}

impl Reg {
    /// All registers in display order.
    pub const ALL: [Reg; 8] = [
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::Ra,
    ];

    /// Parses a register name (`"r1"`, ..., `"r7"`, `"ra"`).
    pub fn from_name(s: &str) -> Option<Reg> {
        match s {
            "r1" => Some(Reg::R1),
            "r2" => Some(Reg::R2),
            "r3" => Some(Reg::R3),
            "r4" => Some(Reg::R4),
            "r5" => Some(Reg::R5),
            "r6" => Some(Reg::R6),
            "r7" => Some(Reg::R7),
            "ra" => Some(Reg::Ra),
            _ => None,
        }
    }

    /// The register's name.
    pub fn name(self) -> &'static str {
        match self {
            Reg::R1 => "r1",
            Reg::R2 => "r2",
            Reg::R3 => "r3",
            Reg::R4 => "r4",
            Reg::R5 => "r5",
            Reg::R6 => "r6",
            Reg::R7 => "r7",
            Reg::Ra => "ra",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Returns a variable named like `base` that is not in `avoid`.
///
/// Fresh names use a `#` suffix, which the concrete syntax rejects in
/// identifiers, so generated names can never collide with source names.
pub fn fresh_tyvar(base: &TyVar, avoid: impl Fn(&TyVar) -> bool) -> TyVar {
    let stem = base.as_str().split('#').next().unwrap_or("x");
    let mut i: u64 = 1;
    loop {
        let cand = TyVar::new(format!("{stem}#{i}"));
        if !avoid(&cand) {
            return cand;
        }
        i += 1;
    }
}

/// Returns a term variable named like `base` that is not in `avoid`.
pub fn fresh_varname(base: &VarName, avoid: impl Fn(&VarName) -> bool) -> VarName {
    let stem = base.as_str().split('#').next().unwrap_or("x");
    let mut i: u64 = 1;
    loop {
        let cand = VarName::new(format!("{stem}#{i}"));
        if !avoid(&cand) {
            return cand;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_round_trip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_name(r.name()), Some(r));
        }
        assert_eq!(Reg::from_name("r8"), None);
        assert_eq!(Reg::from_name("rb"), None);
    }

    #[test]
    fn tyvar_equality_is_textual() {
        assert_eq!(TyVar::new("a"), TyVar::from("a"));
        assert_ne!(TyVar::new("a"), TyVar::new("b"));
    }

    #[test]
    fn fresh_avoids_collisions() {
        let base = TyVar::new("z");
        let taken = [TyVar::new("z#1"), TyVar::new("z#2")];
        let fresh = fresh_tyvar(&base, |v| taken.contains(v));
        assert_eq!(fresh.as_str(), "z#3");
    }

    #[test]
    fn fresh_strips_existing_suffix() {
        let base = TyVar::new("z#7");
        let fresh = fresh_tyvar(&base, |_| false);
        assert_eq!(fresh.as_str(), "z#1");
    }
}
