//! Abstract syntax for **FunTAL** — the multi-language of
//! *"FunTAL: Reasonably Mixing a Functional Language with Assembly"*
//! (Patterson, Perconti, Dimoulas, Ahmed; PLDI 2017).
//!
//! This crate defines the shared syntax trees for:
//!
//! - **T**, the compositional stack-based typed assembly language
//!   (Fig 1 of the paper): word/small values, instructions, code blocks,
//!   components `(I, H)`, register-file typings `χ`, stack typings `σ`,
//!   and return markers `q`;
//! - **F**, the simply-typed functional language (Fig 5);
//! - **FT**, the multi-language (Fig 6): boundaries `τFT e`, the
//!   `import`/`protect` instructions, stack-modifying lambdas, and the
//!   `out` return marker.
//!
//! It also provides the syntactic operations every checker and machine
//! needs: capture-avoiding substitution of type instantiations
//! ([`subst`]), alpha-equivalence ([`alpha`]), free variables ([`free`]),
//! pretty-printing ([`display`]), and ergonomic constructors ([`build`]).
//!
//! # Example
//!
//! ```
//! use funtal_syntax::build::*;
//!
//! // The T program of the paper's §3 example: load 42, push it.
//! let prog = seq(
//!     vec![mv(r1(), int_v(42)), salloc(1), sst(0, r1())],
//!     halt(int(), stack(vec![int()], nil()), r1()),
//! );
//! assert_eq!(
//!     prog.to_string(),
//!     "mv r1, 42; salloc 1; sst 0, r1; halt int, int :: * {r1}"
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alpha;
pub mod build;
pub mod display;
pub mod free;
pub mod hash;
pub mod ids;
pub mod intern;
pub mod rename;
pub mod span;
pub mod subst;
pub mod term;
pub mod ty;

pub use ids::{Label, Reg, TyVar, VarName};
pub use span::{Span, SpanTable};
pub use term::{
    ArithOp, CodeBlock, Component, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, Lam, SmallVal, TComp,
    Terminator, WordVal,
};
pub use ty::{
    CodeTy, FTy, HeapTy, HeapTyping, Inst, Kind, Mutability, RegFileTy, RetMarker, StackTail,
    StackTy, TTy, TyVarDecl,
};
