//! Stable, platform-independent content hashing for terms.
//!
//! The batch engine (`funtal-driver`) keys its content-addressed
//! artifact caches on these hashes. Two properties matter:
//!
//! - **Stability**: the hash of a term is the same in every process,
//!   on every platform, in every run — unlike `std::hash`, which is
//!   randomized per process and explicitly unstable across releases.
//! - **Canonicity**: two structurally equal terms hash equally. The
//!   hash is computed over the canonical [`Display`] rendering, which
//!   round-trips through the parser for every figure of the paper
//!   (see `crates/parser/tests/roundtrip.rs`), so the rendering *is*
//!   the term's canonical content.
//!
//! The function is 64-bit FNV-1a: tiny, dependency-free, and fast
//! enough that hashing is negligible next to parsing (one pass over
//! the rendered text). These hashes index in-process caches — they are
//! not cryptographic and must not be used where collision resistance
//! against an adversary matters.
//!
//! [`Display`]: std::fmt::Display

use std::fmt::{self, Write};

use crate::term::FExpr;
use crate::ty::FTy;

const FNV_OFFSET: u64 = 0xcbf29ce484222325;
const FNV_PRIME: u64 = 0x00000100000001b3;

/// An incremental 64-bit FNV-1a hasher over bytes.
///
/// Unlike [`std::hash::Hasher`] implementations, the result is stable
/// across processes and platforms, which is what makes it usable as a
/// content address.
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher { state: FNV_OFFSET }
    }
}

impl StableHasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> StableHasher {
        StableHasher::default()
    }

    /// Absorbs raw bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Absorbs a string as a delimited field: its UTF-8 bytes plus a
    /// length terminator, so adjacent fields cannot alias each other.
    ///
    /// Deliberately *not* named `write_str`: the [`fmt::Write`] impl
    /// below has a same-named method with different semantics (raw
    /// bytes, no terminator — it must match what streaming a
    /// `Display` rendering produces), and a silent resolution switch
    /// between the two would change every persisted content address.
    pub fn write_field(&mut self, s: &str) {
        self.write(s.as_bytes());
        self.write_u64(s.len() as u64);
    }

    /// Absorbs a 64-bit integer (little-endian bytes).
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// The accumulated hash.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

// `fmt::Write` lets terms hash their `Display` rendering without
// materializing the string.
impl Write for StableHasher {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// Hashes a string's content.
pub fn hash_str(s: &str) -> u64 {
    let mut h = StableHasher::new();
    h.write(s.as_bytes());
    h.finish()
}

/// Hashes raw bytes. For `&str` input this agrees with [`hash_str`],
/// so byte-keyed consumers (the persistent artifact store) report the
/// same content addresses as the in-process caches.
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    hash_bytes_from(FNV_OFFSET, bytes)
}

/// Continues an FNV-1a hash from a prior state over more bytes.
/// `hash_bytes_from(hash_bytes(a), b)` hashes the concatenation
/// `a ++ b`, letting callers checksum multi-part records without
/// materializing the concatenation.
pub fn hash_bytes_from(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hashes anything that renders, streaming the rendering through the
/// hasher (no intermediate `String`).
pub fn hash_display(x: &dyn fmt::Display) -> u64 {
    let mut h = StableHasher::new();
    write!(h, "{x}").expect("StableHasher never fails");
    h.finish()
}

/// The stable content hash of an F expression (over its canonical
/// rendering, which round-trips through the parser).
pub fn hash_fexpr(e: &FExpr) -> u64 {
    hash_display(e)
}

/// The stable content hash of an F type.
pub fn hash_fty(t: &FTy) -> u64 {
    hash_display(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    #[test]
    fn known_vector() {
        // FNV-1a 64 of the empty input is the offset basis; of "a" it
        // is the classic published vector.
        assert_eq!(hash_str(""), 0xcbf29ce484222325);
        assert_eq!(hash_str("a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn bytes_agree_with_str_and_concatenation() {
        assert_eq!(hash_bytes(b"abc"), hash_str("abc"));
        assert_eq!(hash_bytes_from(hash_bytes(b"ab"), b"c"), hash_bytes(b"abc"));
        assert_eq!(hash_bytes(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn structurally_equal_terms_hash_equal() {
        let a = app(
            lam(vec![("x", fint())], fadd(var("x"), fint_e(1))),
            vec![fint_e(41)],
        );
        let b = app(
            lam(vec![("x", fint())], fadd(var("x"), fint_e(1))),
            vec![fint_e(41)],
        );
        assert_eq!(hash_fexpr(&a), hash_fexpr(&b));
    }

    #[test]
    fn distinct_terms_hash_distinct() {
        let a = fadd(fint_e(1), fint_e(2));
        let b = fadd(fint_e(2), fint_e(1));
        assert_ne!(hash_fexpr(&a), hash_fexpr(&b));
        assert_ne!(hash_fty(&fint()), hash_fty(&funit()));
    }

    #[test]
    fn streaming_matches_string_hash() {
        let e = fmul(fint_e(6), fint_e(7));
        assert_eq!(hash_fexpr(&e), hash_str(&e.to_string()));
    }
}
