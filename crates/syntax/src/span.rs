//! Source spans and the label → span side table.
//!
//! The profiler (`funtal profile`) attributes machine steps to source
//! regions. Spans deliberately live **beside** the AST rather than in
//! it: the syntax trees derive structural `PartialEq` (differential
//! tests, alpha-equivalence, roundtrip properties all compare terms),
//! and interning (`intern::IExpr`) shares subterms behind `Arc` — a
//! span field inside the tree would either break term equality or be
//! lost at the first shared node. A [`SpanTable`] keyed by heap label
//! survives both: labels are stable across interning, `Arc` sharing,
//! and machine-side heap merging (fresh labels get a `$n` suffix that
//! [`SpanTable::resolve`] strips — `$` is rejected by the lexer, so a
//! renamed label can never collide with a source one).
//!
//! Generated or translated code that has no source region — compiler
//! wrappers, value translations, machine-synthesized blocks — maps to
//! the distinguished [`Span::SYNTH`] span.

use std::collections::BTreeMap;
use std::fmt;

/// A half-open source region in 1-based (line, column) coordinates.
///
/// Columns count **characters**, not bytes (the lexer decodes UTF-8),
/// so positions stay aligned with what an editor shows even after
/// non-ASCII comments.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// 1-based start line.
    pub line: u32,
    /// 1-based start column (characters).
    pub col: u32,
    /// 1-based end line (inclusive).
    pub end_line: u32,
    /// 1-based end column (exclusive).
    pub end_col: u32,
}

impl Span {
    /// The span of generated/translated code with no source region.
    /// All-zero coordinates are unreachable for real spans (positions
    /// are 1-based), so this is a safe sentinel.
    pub const SYNTH: Span = Span {
        line: 0,
        col: 0,
        end_line: 0,
        end_col: 0,
    };

    /// A span from a start position to an end position.
    pub fn new(line: u32, col: u32, end_line: u32, end_col: u32) -> Span {
        Span {
            line,
            col,
            end_line,
            end_col,
        }
    }

    /// A zero-width span at a single position.
    pub fn at(line: u32, col: u32) -> Span {
        Span::new(line, col, line, col)
    }

    /// True for the synthetic-code sentinel.
    pub fn is_synth(&self) -> bool {
        *self == Span::SYNTH
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synth() {
            f.write_str("<synthetic>")
        } else if (self.line, self.col) == (self.end_line, self.end_col) {
            write!(f, "{}:{}", self.line, self.col)
        } else {
            write!(
                f,
                "{}:{}-{}:{}",
                self.line, self.col, self.end_line, self.end_col
            )
        }
    }
}

/// Source spans for one parsed program: the whole program's region
/// plus a span per heap label (every T code block and tuple the source
/// declares, and — for compiled MiniF — every generated block, mapped
/// to its defining function by the driver).
///
/// Deterministically ordered (`BTreeMap`) so renderings derived from a
/// table are byte-stable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanTable {
    /// The whole program's span.
    pub root: Span,
    /// Label name → source span.
    pub labels: BTreeMap<String, Span>,
}

impl SpanTable {
    /// An empty table (root and every lookup resolve to
    /// [`Span::SYNTH`]).
    pub fn new() -> SpanTable {
        SpanTable {
            root: Span::SYNTH,
            labels: BTreeMap::new(),
        }
    }

    /// Records a label's span (last write wins, matching heap-fragment
    /// shadowing).
    pub fn record(&mut self, label: impl Into<String>, span: Span) {
        self.labels.insert(label.into(), span);
    }

    /// The span for a (possibly machine-renamed) label: exact match
    /// first, then with a trailing `$n` freshness suffix stripped.
    /// Unknown labels are synthetic.
    pub fn resolve(&self, label: &str) -> Span {
        if let Some(s) = self.labels.get(label) {
            return *s;
        }
        self.labels
            .get(base_label(label))
            .copied()
            .unwrap_or(Span::SYNTH)
    }
}

/// Strips a machine-freshness suffix (`$n`, n all digits) from a label
/// name. Source labels cannot contain `$` (the lexer rejects it), so
/// this is unambiguous.
pub fn base_label(label: &str) -> &str {
    match label.rfind('$') {
        Some(i) if label[i + 1..].bytes().all(|b| b.is_ascii_digit()) => &label[..i],
        _ => label,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_is_distinguished() {
        assert!(Span::SYNTH.is_synth());
        assert!(!Span::at(1, 1).is_synth());
        assert_eq!(Span::SYNTH.to_string(), "<synthetic>");
        assert_eq!(Span::new(1, 2, 3, 4).to_string(), "1:2-3:4");
        assert_eq!(Span::at(5, 9).to_string(), "5:9");
    }

    #[test]
    fn resolve_strips_freshness_suffixes() {
        let mut t = SpanTable::new();
        t.record("loop", Span::at(3, 7));
        assert_eq!(t.resolve("loop"), Span::at(3, 7));
        assert_eq!(t.resolve("loop$2"), Span::at(3, 7));
        assert_eq!(t.resolve("loop$17"), Span::at(3, 7));
        // Not a freshness suffix: `$` followed by non-digits.
        assert_eq!(t.resolve("loop$x"), Span::SYNTH);
        assert_eq!(t.resolve("other"), Span::SYNTH);
    }

    #[test]
    fn exact_match_beats_suffix_strip() {
        let mut t = SpanTable::new();
        t.record("f", Span::at(1, 1));
        t.record("f$1", Span::at(9, 9));
        assert_eq!(t.resolve("f$1"), Span::at(9, 9));
        assert_eq!(t.resolve("f$2"), Span::at(1, 1));
    }
}
