//! Types of the multi-language FT: T value types `τ`, heap types `ψ`,
//! register-file typings `χ`, stack typings `σ`, return markers `q`, and
//! F types `τ` (Figs 1, 5 and 6 of the paper).

use std::collections::BTreeMap;

use crate::ids::{Label, Reg, TyVar};

/// The kind of a type-level variable.
///
/// The paper distinguishes the kinds typographically (`α` vs `ζ` vs `ε`);
/// we annotate binders explicitly (deviation D5 in DESIGN.md). F and T type
/// variables share the `Ty` kind because the boundary type translation maps
/// `α` to `α` (Fig 9).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Kind {
    /// A value type variable `α`.
    Ty,
    /// A stack typing variable `ζ`.
    Stack,
    /// A return-marker variable `ε`.
    Ret,
}

/// A kinded binder entry in a type environment `∆` or a `∀[∆]` prefix.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TyVarDecl {
    /// The bound variable.
    pub var: TyVar,
    /// Its kind.
    pub kind: Kind,
}

impl TyVarDecl {
    /// A `α : ty` binder.
    pub fn ty(v: impl Into<TyVar>) -> Self {
        TyVarDecl {
            var: v.into(),
            kind: Kind::Ty,
        }
    }

    /// A `ζ : stk` binder.
    pub fn stack(v: impl Into<TyVar>) -> Self {
        TyVarDecl {
            var: v.into(),
            kind: Kind::Stack,
        }
    }

    /// An `ε : ret` binder.
    pub fn ret(v: impl Into<TyVar>) -> Self {
        TyVarDecl {
            var: v.into(),
            kind: Kind::Ret,
        }
    }
}

/// Mutability of a heap cell: `ref` (mutable tuple) or `box` (immutable).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Mutability {
    /// Mutable reference, `ref`.
    Ref,
    /// Immutable pointer, `box`. All code is boxed (no self-modifying code).
    Boxed,
}

/// T value types `τ` (Fig 1): types of values small enough to fit in a
/// register.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TTy {
    /// A type variable `α`.
    Var(TyVar),
    /// `unit`.
    Unit,
    /// `int`.
    Int,
    /// An existential `∃α.τ`.
    Exists(TyVar, Box<TTy>),
    /// An iso-recursive type `µα.τ`.
    Rec(TyVar, Box<TTy>),
    /// A mutable tuple reference `ref ⟨τ, …⟩`.
    Ref(Vec<TTy>),
    /// An immutable pointer `box ψ`.
    Boxed(Box<HeapTy>),
}

impl TTy {
    /// Convenience constructor for a `box ∀[∆].{χ;σ}q` code-pointer type.
    pub fn code(delta: Vec<TyVarDecl>, chi: RegFileTy, sigma: StackTy, q: RetMarker) -> TTy {
        TTy::Boxed(Box::new(HeapTy::Code(CodeTy {
            delta,
            chi,
            sigma,
            q,
        })))
    }

    /// Convenience constructor for an immutable tuple `box ⟨τ, …⟩`.
    pub fn boxed_tuple(fields: Vec<TTy>) -> TTy {
        TTy::Boxed(Box::new(HeapTy::Tuple(fields)))
    }

    /// Returns the code type if `self` is `box ∀[∆].{χ;σ}q`.
    pub fn as_code(&self) -> Option<&CodeTy> {
        match self {
            TTy::Boxed(h) => match &**h {
                HeapTy::Code(c) => Some(c),
                HeapTy::Tuple(_) => None,
            },
            _ => None,
        }
    }
}

/// Heap value types `ψ` (Fig 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum HeapTy {
    /// A code block type `∀[∆].{χ;σ}q`.
    Code(CodeTy),
    /// A tuple of word-sized values `⟨τ, …⟩`.
    Tuple(Vec<TTy>),
}

/// The type of a code block: `∀[∆].{χ;σ}q`.
///
/// `χ` and `σ` are preconditions for jumping to the block; the return
/// marker `q` says where the block's return continuation lives (the
/// paper's central novelty, §2).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CodeTy {
    /// Bound type variables `∆`.
    pub delta: Vec<TyVarDecl>,
    /// Register-file precondition `χ`.
    pub chi: RegFileTy,
    /// Stack precondition `σ`.
    pub sigma: StackTy,
    /// Return marker `q`.
    pub q: RetMarker,
}

/// A register-file typing `χ`: a finite map from registers to value types.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct RegFileTy(pub BTreeMap<Reg, TTy>);

impl RegFileTy {
    /// The empty register-file typing.
    pub fn new() -> Self {
        RegFileTy(BTreeMap::new())
    }

    /// Builds a typing from `(register, type)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Reg, TTy)>) -> Self {
        RegFileTy(pairs.into_iter().collect())
    }

    /// Looks up the type of `r`.
    pub fn get(&self, r: Reg) -> Option<&TTy> {
        self.0.get(&r)
    }

    /// Returns a copy with `r` (re)bound to `ty` — the paper's `χ[r : τ]`.
    pub fn update(&self, r: Reg, ty: TTy) -> Self {
        let mut m = self.0.clone();
        m.insert(r, ty);
        RegFileTy(m)
    }

    /// Returns a copy without `r` — used for the `χ \ q` well-formedness
    /// premise of the `call` rule.
    pub fn without(&self, r: Reg) -> Self {
        let mut m = self.0.clone();
        m.remove(&r);
        RegFileTy(m)
    }

    /// Iterates over the entries in register order.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, &TTy)> {
        self.0.iter().map(|(r, t)| (*r, t))
    }

    /// True if no register is constrained.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl FromIterator<(Reg, TTy)> for RegFileTy {
    fn from_iter<I: IntoIterator<Item = (Reg, TTy)>>(iter: I) -> Self {
        RegFileTy(iter.into_iter().collect())
    }
}

/// The tail of a stack typing: either the concrete empty stack `•` or an
/// abstract stack variable `ζ`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StackTail {
    /// The empty stack `•` (written `*` in concrete syntax).
    Empty,
    /// An abstract tail `ζ`.
    Var(TyVar),
}

/// A stack typing `σ ::= ζ | • | τ :: σ`.
///
/// Slot 0 is the **top** of the stack, matching the paper's examples
/// (deviation note D6 in DESIGN.md).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StackTy {
    /// The visible prefix, top first.
    pub prefix: Vec<TTy>,
    /// The tail below the prefix.
    pub tail: StackTail,
}

impl StackTy {
    /// The concrete empty stack `•`.
    pub fn nil() -> Self {
        StackTy {
            prefix: Vec::new(),
            tail: StackTail::Empty,
        }
    }

    /// A bare abstract stack `ζ`.
    pub fn var(z: impl Into<TyVar>) -> Self {
        StackTy {
            prefix: Vec::new(),
            tail: StackTail::Var(z.into()),
        }
    }

    /// `φ :: tail` with an explicit prefix.
    pub fn with_prefix(prefix: Vec<TTy>, tail: StackTail) -> Self {
        StackTy { prefix, tail }
    }

    /// Pushes `ty` on top, returning the extended stack `τ :: σ`.
    pub fn cons(&self, ty: TTy) -> Self {
        let mut prefix = Vec::with_capacity(self.prefix.len() + 1);
        prefix.push(ty);
        prefix.extend(self.prefix.iter().cloned());
        StackTy {
            prefix,
            tail: self.tail.clone(),
        }
    }

    /// Pushes a whole prefix (given top-first) on top of `self`.
    pub fn cons_prefix(&self, phi: &[TTy]) -> Self {
        let mut prefix = Vec::with_capacity(self.prefix.len() + phi.len());
        prefix.extend(phi.iter().cloned());
        prefix.extend(self.prefix.iter().cloned());
        StackTy {
            prefix,
            tail: self.tail.clone(),
        }
    }

    /// The type of visible slot `i` (0 = top), if it is not hidden in the
    /// tail.
    pub fn get(&self, i: usize) -> Option<&TTy> {
        self.prefix.get(i)
    }

    /// Replaces the type of visible slot `i`.
    ///
    /// Returns `None` when the slot is hidden in the tail.
    pub fn set(&self, i: usize, ty: TTy) -> Option<Self> {
        if i < self.prefix.len() {
            let mut s = self.clone();
            s.prefix[i] = ty;
            Some(s)
        } else {
            None
        }
    }

    /// The number of visible slots.
    pub fn visible_len(&self) -> usize {
        self.prefix.len()
    }

    /// Splits off the top `n` visible slots, returning `(front, rest)`.
    ///
    /// Returns `None` if fewer than `n` slots are visible.
    pub fn split(&self, n: usize) -> Option<(Vec<TTy>, StackTy)> {
        if n > self.prefix.len() {
            return None;
        }
        let front = self.prefix[..n].to_vec();
        let rest = StackTy {
            prefix: self.prefix[n..].to_vec(),
            tail: self.tail.clone(),
        };
        Some((front, rest))
    }

    /// True when `self` is syntactically `tail` with an empty prefix.
    pub fn is_bare_tail(&self) -> bool {
        self.prefix.is_empty()
    }

    /// If the tail is abstract, replaces it with `replacement`
    /// (i.e. computes `σ[replacement/ζ]` for this stack's own tail).
    pub fn replace_tail(&self, replacement: &StackTy) -> StackTy {
        match self.tail {
            StackTail::Empty => self.clone(),
            StackTail::Var(_) => {
                let mut prefix = self.prefix.clone();
                prefix.extend(replacement.prefix.iter().cloned());
                StackTy {
                    prefix,
                    tail: replacement.tail.clone(),
                }
            }
        }
    }
}

/// Return markers `q` (Fig 1 and Fig 6).
///
/// A return marker specifies where the current return continuation is
/// stored, which in turn determines the result type of a component.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RetMarker {
    /// The continuation is in register `r`.
    Reg(Reg),
    /// The continuation is at stack slot `i` (0 = top).
    Stack(usize),
    /// An abstract marker `ε`.
    Var(TyVar),
    /// `end{τ;σ}`: the component finishes by halting with a value of type
    /// `τ` in a register and a stack of type `σ`. Inside a boundary this is
    /// where control transfers back to F.
    End {
        /// Result value type.
        ty: Box<TTy>,
        /// Stack type at the halt.
        sigma: StackTy,
    },
    /// `out`: the marker of F code, which returns by normal
    /// expression-based evaluation (Fig 6).
    Out,
}

impl RetMarker {
    /// Constructs `end{τ;σ}`.
    pub fn end(ty: TTy, sigma: StackTy) -> Self {
        RetMarker::End {
            ty: Box::new(ty),
            sigma,
        }
    }

    /// The paper's `inc(q, n)`: shifts a stack-index marker by `n` slots
    /// (used by `import` and the stack instructions); all other markers
    /// are unchanged.
    pub fn shifted_by(&self, delta: isize) -> RetMarker {
        match self {
            RetMarker::Stack(i) => {
                let j = (*i as isize) + delta;
                debug_assert!(j >= 0, "return-marker index underflow");
                RetMarker::Stack(j as usize)
            }
            other => other.clone(),
        }
    }
}

/// A type instantiation `ω ::= τ | σ | q` (Fig 1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// Instantiate a `ty`-kinded variable.
    Ty(TTy),
    /// Instantiate a `stk`-kinded variable.
    Stack(StackTy),
    /// Instantiate a `ret`-kinded variable.
    Ret(RetMarker),
}

impl Inst {
    /// The kind of variable this instantiation can replace.
    pub fn kind(&self) -> Kind {
        match self {
            Inst::Ty(_) => Kind::Ty,
            Inst::Stack(_) => Kind::Stack,
            Inst::Ret(_) => Kind::Ret,
        }
    }
}

/// A heap typing `Ψ`: maps labels to `ν ψ` (mutability plus heap type).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct HeapTyping(pub BTreeMap<Label, (Mutability, HeapTy)>);

impl HeapTyping {
    /// The empty heap typing.
    pub fn new() -> Self {
        HeapTyping(BTreeMap::new())
    }

    /// Looks up a label.
    pub fn get(&self, l: &Label) -> Option<&(Mutability, HeapTy)> {
        self.0.get(l)
    }

    /// Inserts a binding, returning any previous entry.
    pub fn insert(&mut self, l: Label, m: Mutability, ty: HeapTy) -> Option<(Mutability, HeapTy)> {
        self.0.insert(l, (m, ty))
    }

    /// Merges `other` into `self` (right-biased).
    pub fn extend(&mut self, other: &HeapTyping) {
        for (l, v) in &other.0 {
            self.0.insert(l.clone(), v.clone());
        }
    }

    /// The word-value type of a location with this heap binding:
    /// `ref ⟨τ̄⟩` for mutable tuples, `box ψ` otherwise.
    pub fn loc_ty(&self, l: &Label) -> Option<TTy> {
        let (m, h) = self.get(l)?;
        Some(match (m, h) {
            (Mutability::Ref, HeapTy::Tuple(ts)) => TTy::Ref(ts.clone()),
            (_, h) => TTy::Boxed(Box::new(h.clone())),
        })
    }

    /// Iterates over entries in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&Label, &(Mutability, HeapTy))> {
        self.0.iter()
    }
}

/// F types `τ` (Fig 5 plus the stack-modifying arrow of Fig 6).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FTy {
    /// A type variable `α`.
    Var(TyVar),
    /// `unit`.
    Unit,
    /// `int`.
    Int,
    /// `(τ̄) → τ'` or the stack-modifying `(τ̄) φi;φo → τ'`.
    ///
    /// An ordinary arrow is represented with empty `phi_in`/`phi_out`
    /// (the paper notes the ordinary lambda is the special case where
    /// both prefixes are empty).
    Arrow {
        /// Parameter types.
        params: Vec<FTy>,
        /// Stack prefix `φi` required on call (top first).
        phi_in: Vec<TTy>,
        /// Stack prefix `φo` left on return (top first).
        phi_out: Vec<TTy>,
        /// Result type.
        ret: Box<FTy>,
    },
    /// An iso-recursive type `µα.τ`.
    Rec(TyVar, Box<FTy>),
    /// A tuple `⟨τ̄⟩`.
    Tuple(Vec<FTy>),
}

impl FTy {
    /// Convenience constructor for an ordinary arrow `(params) → ret`.
    pub fn arrow(params: Vec<FTy>, ret: FTy) -> FTy {
        FTy::Arrow {
            params,
            phi_in: Vec::new(),
            phi_out: Vec::new(),
            ret: Box::new(ret),
        }
    }

    /// True for arrows whose stack prefixes are both empty.
    pub fn is_plain_arrow(&self) -> bool {
        matches!(
            self,
            FTy::Arrow { phi_in, phi_out, .. } if phi_in.is_empty() && phi_out.is_empty()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_cons_stack() -> StackTy {
        StackTy::nil().cons(TTy::Int)
    }

    #[test]
    fn stack_cons_puts_new_slot_on_top() {
        let s = int_cons_stack().cons(TTy::Unit);
        assert_eq!(s.get(0), Some(&TTy::Unit));
        assert_eq!(s.get(1), Some(&TTy::Int));
        assert_eq!(s.get(2), None);
    }

    #[test]
    fn stack_split_and_replace_tail() {
        let z = StackTy::var("z");
        let s = z.cons(TTy::Int).cons(TTy::Unit);
        let (front, rest) = s.split(1).unwrap();
        assert_eq!(front, vec![TTy::Unit]);
        assert_eq!(rest.prefix, vec![TTy::Int]);
        assert!(s.split(3).is_none());

        let replaced = s.replace_tail(&StackTy::nil().cons(TTy::Int));
        assert_eq!(replaced.visible_len(), 3);
        assert_eq!(replaced.tail, StackTail::Empty);
    }

    #[test]
    fn marker_shift_only_affects_stack_indices() {
        assert_eq!(RetMarker::Stack(2).shifted_by(3), RetMarker::Stack(5));
        assert_eq!(
            RetMarker::Reg(Reg::Ra).shifted_by(3),
            RetMarker::Reg(Reg::Ra)
        );
        assert_eq!(RetMarker::Out.shifted_by(-1), RetMarker::Out);
    }

    #[test]
    fn regfile_update_is_persistent() {
        let chi = RegFileTy::new();
        let chi2 = chi.update(Reg::R1, TTy::Int);
        assert!(chi.get(Reg::R1).is_none());
        assert_eq!(chi2.get(Reg::R1), Some(&TTy::Int));
    }

    #[test]
    fn loc_ty_distinguishes_ref_and_box() {
        let mut psi = HeapTyping::new();
        psi.insert(
            Label::new("a"),
            Mutability::Ref,
            HeapTy::Tuple(vec![TTy::Int]),
        );
        psi.insert(
            Label::new("b"),
            Mutability::Boxed,
            HeapTy::Tuple(vec![TTy::Int]),
        );
        assert_eq!(psi.loc_ty(&Label::new("a")), Some(TTy::Ref(vec![TTy::Int])));
        assert_eq!(
            psi.loc_ty(&Label::new("b")),
            Some(TTy::boxed_tuple(vec![TTy::Int]))
        );
    }
}
