//! Alpha-equivalence for types, terms, and components.
//!
//! The type checkers compare types up to renaming of bound variables;
//! heap labels and registers are nominal and must match exactly.

use crate::ids::{TyVar, VarName};
use crate::term::{
    CodeBlock, Component, FExpr, HeapFrag, HeapVal, Instr, InstrSeq, SmallVal, TComp, Terminator,
    WordVal,
};
use crate::ty::{CodeTy, FTy, HeapTy, Inst, RegFileTy, RetMarker, StackTail, StackTy, TTy};

/// A stack of corresponding binder pairs.
#[derive(Default)]
struct Env {
    tys: Vec<(TyVar, TyVar)>,
    terms: Vec<(VarName, VarName)>,
}

impl Env {
    /// Two variables correspond iff their most recent bindings pair them
    /// up, or neither is bound and they are literally equal.
    fn eq_tyvar(&self, a: &TyVar, b: &TyVar) -> bool {
        for (x, y) in self.tys.iter().rev() {
            match (x == a, y == b) {
                (true, true) => return true,
                (false, false) => continue,
                _ => return false,
            }
        }
        a == b
    }

    fn eq_varname(&self, a: &VarName, b: &VarName) -> bool {
        for (x, y) in self.terms.iter().rev() {
            match (x == a, y == b) {
                (true, true) => return true,
                (false, false) => continue,
                _ => return false,
            }
        }
        a == b
    }

    fn with_ty<R>(&mut self, a: &TyVar, b: &TyVar, f: impl FnOnce(&mut Self) -> R) -> R {
        self.tys.push((a.clone(), b.clone()));
        let r = f(self);
        self.tys.pop();
        r
    }

    fn with_terms<R>(&mut self, pairs: &[(VarName, VarName)], f: impl FnOnce(&mut Self) -> R) -> R {
        let n = pairs.len();
        self.terms.extend(pairs.iter().cloned());
        let r = f(self);
        self.terms.truncate(self.terms.len() - n);
        r
    }
}

fn eq_tty(a: &TTy, b: &TTy, env: &mut Env) -> bool {
    match (a, b) {
        (TTy::Var(x), TTy::Var(y)) => env.eq_tyvar(x, y),
        (TTy::Unit, TTy::Unit) | (TTy::Int, TTy::Int) => true,
        (TTy::Exists(x, s), TTy::Exists(y, t)) | (TTy::Rec(x, s), TTy::Rec(y, t)) => {
            env.with_ty(x, y, |e| eq_tty(s, t, e))
        }
        (TTy::Ref(xs), TTy::Ref(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(s, t)| eq_tty(s, t, env))
        }
        (TTy::Boxed(x), TTy::Boxed(y)) => eq_heap_ty(x, y, env),
        _ => false,
    }
}

fn eq_heap_ty(a: &HeapTy, b: &HeapTy, env: &mut Env) -> bool {
    match (a, b) {
        (HeapTy::Tuple(xs), HeapTy::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(s, t)| eq_tty(s, t, env))
        }
        (HeapTy::Code(x), HeapTy::Code(y)) => eq_code_ty(x, y, env),
        _ => false,
    }
}

fn with_deltas<R>(
    env: &mut Env,
    da: &[crate::ty::TyVarDecl],
    db: &[crate::ty::TyVarDecl],
    f: impl FnOnce(&mut Env) -> R,
) -> Option<R> {
    if da.len() != db.len() {
        return None;
    }
    if da.iter().zip(db).any(|(x, y)| x.kind != y.kind) {
        return None;
    }
    fn go<R>(env: &mut Env, pairs: &[(TyVar, TyVar)], f: impl FnOnce(&mut Env) -> R) -> R {
        match pairs.split_first() {
            None => f(env),
            Some(((a, b), rest)) => env.with_ty(a, b, |e| go(e, rest, f)),
        }
    }
    let pairs: Vec<(TyVar, TyVar)> = da
        .iter()
        .zip(db)
        .map(|(x, y)| (x.var.clone(), y.var.clone()))
        .collect();
    Some(go(env, &pairs, f))
}

fn eq_code_ty(a: &CodeTy, b: &CodeTy, env: &mut Env) -> bool {
    with_deltas(env, &a.delta, &b.delta, |e| {
        eq_chi(&a.chi, &b.chi, e) && eq_stack(&a.sigma, &b.sigma, e) && eq_ret(&a.q, &b.q, e)
    })
    .unwrap_or(false)
}

fn eq_chi(a: &RegFileTy, b: &RegFileTy, env: &mut Env) -> bool {
    if a.0.len() != b.0.len() {
        return false;
    }
    a.iter()
        .zip(b.iter())
        .all(|((ra, ta), (rb, tb))| ra == rb && eq_tty(ta, tb, env))
}

fn eq_stack(a: &StackTy, b: &StackTy, env: &mut Env) -> bool {
    if a.prefix.len() != b.prefix.len() {
        return false;
    }
    if !a
        .prefix
        .iter()
        .zip(&b.prefix)
        .all(|(s, t)| eq_tty(s, t, env))
    {
        return false;
    }
    match (&a.tail, &b.tail) {
        (StackTail::Empty, StackTail::Empty) => true,
        (StackTail::Var(x), StackTail::Var(y)) => env.eq_tyvar(x, y),
        _ => false,
    }
}

fn eq_ret(a: &RetMarker, b: &RetMarker, env: &mut Env) -> bool {
    match (a, b) {
        (RetMarker::Reg(x), RetMarker::Reg(y)) => x == y,
        (RetMarker::Stack(x), RetMarker::Stack(y)) => x == y,
        (RetMarker::Var(x), RetMarker::Var(y)) => env.eq_tyvar(x, y),
        (RetMarker::Out, RetMarker::Out) => true,
        (RetMarker::End { ty: ta, sigma: sa }, RetMarker::End { ty: tb, sigma: sb }) => {
            eq_tty(ta, tb, env) && eq_stack(sa, sb, env)
        }
        _ => false,
    }
}

fn eq_inst(a: &Inst, b: &Inst, env: &mut Env) -> bool {
    match (a, b) {
        (Inst::Ty(x), Inst::Ty(y)) => eq_tty(x, y, env),
        (Inst::Stack(x), Inst::Stack(y)) => eq_stack(x, y, env),
        (Inst::Ret(x), Inst::Ret(y)) => eq_ret(x, y, env),
        _ => false,
    }
}

fn eq_fty(a: &FTy, b: &FTy, env: &mut Env) -> bool {
    match (a, b) {
        (FTy::Var(x), FTy::Var(y)) => env.eq_tyvar(x, y),
        (FTy::Unit, FTy::Unit) | (FTy::Int, FTy::Int) => true,
        (
            FTy::Arrow {
                params: pa,
                phi_in: ia,
                phi_out: oa,
                ret: ra,
            },
            FTy::Arrow {
                params: pb,
                phi_in: ib,
                phi_out: ob,
                ret: rb,
            },
        ) => {
            pa.len() == pb.len()
                && ia.len() == ib.len()
                && oa.len() == ob.len()
                && pa.iter().zip(pb).all(|(s, t)| eq_fty(s, t, env))
                && ia.iter().zip(ib).all(|(s, t)| eq_tty(s, t, env))
                && oa.iter().zip(ob).all(|(s, t)| eq_tty(s, t, env))
                && eq_fty(ra, rb, env)
        }
        (FTy::Rec(x, s), FTy::Rec(y, t)) => env.with_ty(x, y, |e| eq_fty(s, t, e)),
        (FTy::Tuple(xs), FTy::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(s, t)| eq_fty(s, t, env))
        }
        _ => false,
    }
}

fn eq_word(a: &WordVal, b: &WordVal, env: &mut Env) -> bool {
    match (a, b) {
        (WordVal::Unit, WordVal::Unit) => true,
        (WordVal::Int(x), WordVal::Int(y)) => x == y,
        (WordVal::Loc(x), WordVal::Loc(y)) => x == y,
        (
            WordVal::Pack {
                hidden: ha,
                body: ba,
                ann: aa,
            },
            WordVal::Pack {
                hidden: hb,
                body: bb,
                ann: ab,
            },
        ) => eq_tty(ha, hb, env) && eq_word(ba, bb, env) && eq_tty(aa, ab, env),
        (WordVal::Fold { ann: aa, body: ba }, WordVal::Fold { ann: ab, body: bb }) => {
            eq_tty(aa, ab, env) && eq_word(ba, bb, env)
        }
        (WordVal::Inst { body: ba, args: xa }, WordVal::Inst { body: bb, args: xb }) => {
            xa.len() == xb.len()
                && eq_word(ba, bb, env)
                && xa.iter().zip(xb).all(|(s, t)| eq_inst(s, t, env))
        }
        _ => false,
    }
}

fn eq_small(a: &SmallVal, b: &SmallVal, env: &mut Env) -> bool {
    match (a, b) {
        (SmallVal::Reg(x), SmallVal::Reg(y)) => x == y,
        (SmallVal::Word(x), SmallVal::Word(y)) => eq_word(x, y, env),
        (
            SmallVal::Pack {
                hidden: ha,
                body: ba,
                ann: aa,
            },
            SmallVal::Pack {
                hidden: hb,
                body: bb,
                ann: ab,
            },
        ) => eq_tty(ha, hb, env) && eq_small(ba, bb, env) && eq_tty(aa, ab, env),
        (SmallVal::Fold { ann: aa, body: ba }, SmallVal::Fold { ann: ab, body: bb }) => {
            eq_tty(aa, ab, env) && eq_small(ba, bb, env)
        }
        (SmallVal::Inst { body: ba, args: xa }, SmallVal::Inst { body: bb, args: xb }) => {
            xa.len() == xb.len()
                && eq_small(ba, bb, env)
                && xa.iter().zip(xb).all(|(s, t)| eq_inst(s, t, env))
        }
        _ => false,
    }
}

fn eq_seq(a: &InstrSeq, b: &InstrSeq, env: &mut Env) -> bool {
    eq_seq_parts(&a.instrs, &a.term, &b.instrs, &b.term, env)
}

fn eq_seq_parts(
    ia: &[Instr],
    ta: &Terminator,
    ib: &[Instr],
    tb: &Terminator,
    env: &mut Env,
) -> bool {
    match (ia.split_first(), ib.split_first()) {
        (None, None) => eq_terminator(ta, tb, env),
        (Some((ha, ra)), Some((hb, rb))) => match (ha, hb) {
            (
                Instr::Unpack {
                    tv: va,
                    rd: da,
                    src: sa,
                },
                Instr::Unpack {
                    tv: vb,
                    rd: db,
                    src: sb,
                },
            ) => {
                da == db
                    && eq_small(sa, sb, env)
                    && env.with_ty(va, vb, |e| eq_seq_parts(ra, ta, rb, tb, e))
            }
            (Instr::Protect { phi: pa, zeta: za }, Instr::Protect { phi: pb, zeta: zb }) => {
                pa.len() == pb.len()
                    && pa.iter().zip(pb).all(|(s, t)| eq_tty(s, t, env))
                    && env.with_ty(za, zb, |e| eq_seq_parts(ra, ta, rb, tb, e))
            }
            (
                Instr::Import {
                    rd: da,
                    zeta: za,
                    protected: pa,
                    ty: ya,
                    body: ba,
                },
                Instr::Import {
                    rd: db,
                    zeta: zb,
                    protected: pb,
                    ty: yb,
                    body: bb,
                },
            ) => {
                da == db
                    && eq_stack(pa, pb, env)
                    && env.with_ty(za, zb, |e| eq_fty(ya, yb, e) && eq_fexpr(ba, bb, e))
                    && eq_seq_parts(ra, ta, rb, tb, env)
            }
            _ => eq_instr_simple(ha, hb, env) && eq_seq_parts(ra, ta, rb, tb, env),
        },
        _ => false,
    }
}

/// Equality for non-binding instructions.
fn eq_instr_simple(a: &Instr, b: &Instr, env: &mut Env) -> bool {
    match (a, b) {
        (
            Instr::Arith {
                op: oa,
                rd: da,
                rs: sa,
                src: ua,
            },
            Instr::Arith {
                op: ob,
                rd: db,
                rs: sb,
                src: ub,
            },
        ) => oa == ob && da == db && sa == sb && eq_small(ua, ub, env),
        (Instr::Bnz { r: ra, target: ua }, Instr::Bnz { r: rb, target: ub }) => {
            ra == rb && eq_small(ua, ub, env)
        }
        (Instr::Mv { rd: da, src: ua }, Instr::Mv { rd: db, src: ub }) => {
            da == db && eq_small(ua, ub, env)
        }
        (Instr::Unfold { rd: da, src: ua }, Instr::Unfold { rd: db, src: ub }) => {
            da == db && eq_small(ua, ub, env)
        }
        (x, y) => x == y,
    }
}

fn eq_terminator(a: &Terminator, b: &Terminator, env: &mut Env) -> bool {
    match (a, b) {
        (Terminator::Jmp(x), Terminator::Jmp(y)) => eq_small(x, y, env),
        (
            Terminator::Call {
                target: ua,
                sigma: sa,
                q: qa,
            },
            Terminator::Call {
                target: ub,
                sigma: sb,
                q: qb,
            },
        ) => eq_small(ua, ub, env) && eq_stack(sa, sb, env) && eq_ret(qa, qb, env),
        (
            Terminator::Ret {
                target: ta,
                val: va,
            },
            Terminator::Ret {
                target: tb,
                val: vb,
            },
        ) => ta == tb && va == vb,
        (
            Terminator::Halt {
                ty: ya,
                sigma: sa,
                val: va,
            },
            Terminator::Halt {
                ty: yb,
                sigma: sb,
                val: vb,
            },
        ) => va == vb && eq_tty(ya, yb, env) && eq_stack(sa, sb, env),
        _ => false,
    }
}

fn eq_block(a: &CodeBlock, b: &CodeBlock, env: &mut Env) -> bool {
    with_deltas(env, &a.delta, &b.delta, |e| {
        eq_chi(&a.chi, &b.chi, e)
            && eq_stack(&a.sigma, &b.sigma, e)
            && eq_ret(&a.q, &b.q, e)
            && eq_seq(&a.body, &b.body, e)
    })
    .unwrap_or(false)
}

fn eq_heap_val(a: &HeapVal, b: &HeapVal, env: &mut Env) -> bool {
    match (a, b) {
        (HeapVal::Code(x), HeapVal::Code(y)) => eq_block(x, y, env),
        (
            HeapVal::Tuple {
                mutability: ma,
                fields: fa,
            },
            HeapVal::Tuple {
                mutability: mb,
                fields: fb,
            },
        ) => ma == mb && fa.len() == fb.len() && fa.iter().zip(fb).all(|(s, t)| eq_word(s, t, env)),
        _ => false,
    }
}

fn eq_heap_frag(a: &HeapFrag, b: &HeapFrag, env: &mut Env) -> bool {
    if a.0.len() != b.0.len() {
        return false;
    }
    a.iter()
        .zip(b.iter())
        .all(|((la, va), (lb, vb))| la == lb && eq_heap_val(va, vb, env))
}

fn eq_tcomp(a: &TComp, b: &TComp, env: &mut Env) -> bool {
    eq_seq(&a.seq, &b.seq, env) && eq_heap_frag(&a.heap, &b.heap, env)
}

fn eq_fexpr(a: &FExpr, b: &FExpr, env: &mut Env) -> bool {
    match (a, b) {
        (FExpr::Var(x), FExpr::Var(y)) => env.eq_varname(x, y),
        (FExpr::Unit, FExpr::Unit) => true,
        (FExpr::Int(x), FExpr::Int(y)) => x == y,
        (
            FExpr::Binop {
                op: oa,
                lhs: la,
                rhs: ra,
            },
            FExpr::Binop {
                op: ob,
                lhs: lb,
                rhs: rb,
            },
        ) => oa == ob && eq_fexpr(la, lb, env) && eq_fexpr(ra, rb, env),
        (
            FExpr::If0 {
                cond: ca,
                then_branch: ta,
                else_branch: ea,
            },
            FExpr::If0 {
                cond: cb,
                then_branch: tb,
                else_branch: eb,
            },
        ) => eq_fexpr(ca, cb, env) && eq_fexpr(ta, tb, env) && eq_fexpr(ea, eb, env),
        (FExpr::Lam(la), FExpr::Lam(lb)) => {
            if la.params.len() != lb.params.len() {
                return false;
            }
            if !la
                .params
                .iter()
                .zip(&lb.params)
                .all(|((_, s), (_, t))| eq_fty(s, t, env))
            {
                return false;
            }
            let pairs: Vec<(VarName, VarName)> = la
                .params
                .iter()
                .zip(&lb.params)
                .map(|((x, _), (y, _))| (x.clone(), y.clone()))
                .collect();
            env.with_ty(&la.zeta, &lb.zeta, |e| {
                la.phi_in.len() == lb.phi_in.len()
                    && la.phi_out.len() == lb.phi_out.len()
                    && la
                        .phi_in
                        .iter()
                        .zip(&lb.phi_in)
                        .all(|(s, t)| eq_tty(s, t, e))
                    && la
                        .phi_out
                        .iter()
                        .zip(&lb.phi_out)
                        .all(|(s, t)| eq_tty(s, t, e))
                    && e.with_terms(&pairs, |e| eq_fexpr(&la.body, &lb.body, e))
            })
        }
        (FExpr::App { func: fa, args: xa }, FExpr::App { func: fb, args: xb }) => {
            xa.len() == xb.len()
                && eq_fexpr(fa, fb, env)
                && xa.iter().zip(xb).all(|(s, t)| eq_fexpr(s, t, env))
        }
        (FExpr::Fold { ann: aa, body: ba }, FExpr::Fold { ann: ab, body: bb }) => {
            eq_fty(aa, ab, env) && eq_fexpr(ba, bb, env)
        }
        (FExpr::Unfold(x), FExpr::Unfold(y)) => eq_fexpr(x, y, env),
        (FExpr::Tuple(xs), FExpr::Tuple(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(s, t)| eq_fexpr(s, t, env))
        }
        (FExpr::Proj { idx: ia, tuple: ta }, FExpr::Proj { idx: ib, tuple: tb }) => {
            ia == ib && eq_fexpr(ta, tb, env)
        }
        (
            FExpr::Boundary {
                ty: ya,
                sigma_out: sa,
                comp: ca,
            },
            FExpr::Boundary {
                ty: yb,
                sigma_out: sb,
                comp: cb,
            },
        ) => {
            eq_fty(ya, yb, env)
                && match (sa, sb) {
                    (None, None) => true,
                    (Some(x), Some(y)) => eq_stack(x, y, env),
                    _ => false,
                }
                && eq_tcomp(ca, cb, env)
        }
        _ => false,
    }
}

macro_rules! alpha_fn {
    ($(#[$doc:meta])* $name:ident, $ty:ty, $go:ident) => {
        $(#[$doc])*
        pub fn $name(a: &$ty, b: &$ty) -> bool {
            $go(a, b, &mut Env::default())
        }
    };
}

alpha_fn!(
    /// Alpha-equivalence of T value types.
    alpha_eq_tty, TTy, eq_tty
);
alpha_fn!(
    /// Alpha-equivalence of heap types.
    alpha_eq_heap_ty, HeapTy, eq_heap_ty
);
alpha_fn!(
    /// Alpha-equivalence of code types.
    alpha_eq_code_ty, CodeTy, eq_code_ty
);
alpha_fn!(
    /// Alpha-equivalence of stack typings.
    alpha_eq_stack, StackTy, eq_stack
);
alpha_fn!(
    /// Alpha-equivalence of return markers.
    alpha_eq_ret, RetMarker, eq_ret
);
alpha_fn!(
    /// Alpha-equivalence of register-file typings.
    alpha_eq_chi, RegFileTy, eq_chi
);
alpha_fn!(
    /// Alpha-equivalence of F types.
    alpha_eq_fty, FTy, eq_fty
);
alpha_fn!(
    /// Alpha-equivalence of F expressions.
    alpha_eq_fexpr, FExpr, eq_fexpr
);
alpha_fn!(
    /// Alpha-equivalence of T components.
    alpha_eq_tcomp, TComp, eq_tcomp
);
alpha_fn!(
    /// Alpha-equivalence of word values.
    alpha_eq_word, WordVal, eq_word
);

/// Alpha-equivalence of components.
pub fn alpha_eq_component(a: &Component, b: &Component) -> bool {
    match (a, b) {
        (Component::F(x), Component::F(y)) => alpha_eq_fexpr(x, y),
        (Component::T(x), Component::T(y)) => alpha_eq_tcomp(x, y),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;
    use crate::ty::TyVarDecl;

    #[test]
    fn rec_types_alpha_equal() {
        let a = TTy::Rec(TyVar::new("a"), Box::new(TTy::Var(TyVar::new("a"))));
        let b = TTy::Rec(TyVar::new("b"), Box::new(TTy::Var(TyVar::new("b"))));
        assert!(alpha_eq_tty(&a, &b));
        let c = TTy::Rec(TyVar::new("a"), Box::new(TTy::Int));
        assert!(!alpha_eq_tty(&a, &c));
    }

    #[test]
    fn free_variables_must_match_exactly() {
        assert!(!alpha_eq_tty(
            &TTy::Var(TyVar::new("a")),
            &TTy::Var(TyVar::new("b"))
        ));
        assert!(alpha_eq_tty(
            &TTy::Var(TyVar::new("a")),
            &TTy::Var(TyVar::new("a"))
        ));
    }

    #[test]
    fn code_types_alpha_equal_under_delta() {
        let mk = |z: &str, e: &str| CodeTy {
            delta: vec![TyVarDecl::stack(z), TyVarDecl::ret(e)],
            chi: RegFileTy::new(),
            sigma: StackTy::var(z),
            q: RetMarker::Var(TyVar::new(e)),
        };
        assert!(alpha_eq_code_ty(&mk("z", "e"), &mk("z2", "e2")));
        // Kinds must match positionally.
        let bad = CodeTy {
            delta: vec![TyVarDecl::ret("z"), TyVarDecl::stack("e")],
            chi: RegFileTy::new(),
            sigma: StackTy::var("e"),
            q: RetMarker::Var(TyVar::new("z")),
        };
        assert!(!alpha_eq_code_ty(&mk("z", "e"), &bad));
    }

    #[test]
    fn crossed_binders_are_not_equal() {
        // µa.µb.a vs µa.µb.b
        let a = TTy::Rec(
            TyVar::new("a"),
            Box::new(TTy::Rec(
                TyVar::new("b"),
                Box::new(TTy::Var(TyVar::new("a"))),
            )),
        );
        let b = TTy::Rec(
            TyVar::new("a"),
            Box::new(TTy::Rec(
                TyVar::new("b"),
                Box::new(TTy::Var(TyVar::new("b"))),
            )),
        );
        assert!(!alpha_eq_tty(&a, &b));
    }

    #[test]
    fn lambda_alpha_equivalence() {
        use crate::term::Lam;
        let mk = |x: &str| {
            FExpr::Lam(Box::new(Lam {
                params: vec![(VarName::new(x), FTy::Int)],
                zeta: TyVar::new("z"),
                phi_in: vec![],
                phi_out: vec![],
                body: FExpr::Var(VarName::new(x)),
            }))
        };
        assert!(alpha_eq_fexpr(&mk("x"), &mk("y")));
    }

    #[test]
    fn ret_markers() {
        assert!(alpha_eq_ret(
            &RetMarker::Reg(Reg::Ra),
            &RetMarker::Reg(Reg::Ra)
        ));
        assert!(!alpha_eq_ret(
            &RetMarker::Reg(Reg::Ra),
            &RetMarker::Reg(Reg::R1)
        ));
        assert!(!alpha_eq_ret(&RetMarker::Stack(0), &RetMarker::Stack(1)));
        assert!(alpha_eq_ret(&RetMarker::Out, &RetMarker::Out));
    }
}
