//! Property-based tests for the syntactic core: substitution laws,
//! alpha-equivalence as an equivalence relation, and stack-typing
//! algebra.

use funtal_syntax::alpha::{alpha_eq_stack, alpha_eq_tty};
use funtal_syntax::build::*;
use funtal_syntax::free::{ftv_stack, ftv_tty};
use funtal_syntax::subst::Subst;
use funtal_syntax::{Inst, StackTail, StackTy, TTy, TyVar};
use proptest::prelude::*;

fn arb_tty(depth: u32) -> BoxedStrategy<TTy> {
    let leaf = prop_oneof![Just(int()), Just(unit()), "[a-d]".prop_map(|s| tvar(&s)),];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            ("[a-d]", inner.clone()).prop_map(|(v, t)| mu(&v, t)),
            ("[a-d]", inner.clone()).prop_map(|(v, t)| exists(&v, t)),
            prop::collection::vec(inner.clone(), 0..3).prop_map(ref_tuple),
            prop::collection::vec(inner, 0..3).prop_map(box_tuple),
        ]
    })
    .boxed()
}

fn arb_stack(depth: u32) -> BoxedStrategy<StackTy> {
    (
        prop::collection::vec(arb_tty(depth), 0..4),
        prop_oneof![
            Just(StackTail::Empty),
            "[w-z]".prop_map(|s| StackTail::Var(TyVar::new(s)))
        ],
    )
        .prop_map(|(prefix, tail)| StackTy { prefix, tail })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Substituting for a variable not free in the type is a no-op.
    #[test]
    fn subst_fresh_noop(t in arb_tty(3), rep in arb_tty(2)) {
        let fresh = TyVar::new("qqq");
        prop_assert!(!ftv_tty(&t).contains(&fresh));
        let out = Subst::one(fresh, Inst::Ty(rep)).tty(&t);
        prop_assert!(alpha_eq_tty(&out, &t));
    }

    /// After substituting a closed type for v, v is no longer free.
    #[test]
    fn subst_eliminates_variable(t in arb_tty(3)) {
        for v in ftv_tty(&t) {
            let out = Subst::one(v.clone(), Inst::Ty(int())).tty(&t);
            prop_assert!(!ftv_tty(&out).contains(&v), "{t} -> {out}");
        }
    }

    /// Alpha-equivalence is reflexive, and renaming a µ binder preserves
    /// it.
    #[test]
    fn alpha_reflexive_and_rename(t in arb_tty(3)) {
        prop_assert!(alpha_eq_tty(&t, &t));
        let wrapped = mu("binder", t.clone());
        // Renaming the binder to a fresh name preserves alpha-eq.
        let renamed = match &wrapped {
            TTy::Rec(v, body) => TTy::Rec(
                TyVar::new("other"),
                Box::new(
                    Subst::one(v.clone(), Inst::Ty(tvar("other"))).tty(body),
                ),
            ),
            _ => unreachable!(),
        };
        prop_assert!(alpha_eq_tty(&wrapped, &renamed), "{wrapped} vs {renamed}");
    }

    /// cons then split(1) is the identity.
    #[test]
    fn stack_cons_split(s in arb_stack(2), t in arb_tty(2)) {
        let pushed = s.cons(t.clone());
        prop_assert_eq!(pushed.visible_len(), s.visible_len() + 1);
        let (front, rest) = pushed.split(1).unwrap();
        prop_assert!(alpha_eq_tty(&front[0], &t));
        prop_assert!(alpha_eq_stack(&rest, &s));
    }

    /// Splitting at the full visible length leaves the bare tail.
    #[test]
    fn stack_full_split(s in arb_stack(2)) {
        let n = s.visible_len();
        let (front, rest) = s.split(n).unwrap();
        prop_assert_eq!(front.len(), n);
        prop_assert!(rest.is_bare_tail());
        prop_assert!(s.split(n + 1).is_none());
    }

    /// Substituting a stack for its own tail variable splices.
    #[test]
    fn stack_tail_subst_splices(prefix in prop::collection::vec(arb_tty(2), 0..3),
                                rep in arb_stack(2)) {
        let s = StackTy { prefix: prefix.clone(), tail: StackTail::Var(TyVar::new("zz")) };
        let out = Subst::one(TyVar::new("zz"), Inst::Stack(rep.clone())).stack(&s);
        prop_assert_eq!(out.visible_len(), prefix.len() + rep.visible_len());
        prop_assert_eq!(&out.tail, &rep.tail);
    }

    /// Free variables of a substituted type are (ftv(t) \ {v}) ∪ ftv(rep)
    /// when v occurs free.
    #[test]
    fn subst_ftv_bound(t in arb_tty(3)) {
        let vars = ftv_tty(&t);
        for v in &vars {
            let rep = tvar("fresh_rep");
            let out = Subst::one(v.clone(), Inst::Ty(rep)).tty(&t);
            let out_fv = ftv_tty(&out);
            prop_assert!(out_fv.contains(&TyVar::new("fresh_rep")));
            prop_assert!(!out_fv.contains(v));
            for w in &vars {
                if w != v {
                    prop_assert!(out_fv.contains(w));
                }
            }
        }
    }

    /// Display of a stack never ends with `::` and renders prefix
    /// lengths faithfully.
    #[test]
    fn stack_display_shape(s in arb_stack(2)) {
        let shown = s.to_string();
        prop_assert!(!shown.ends_with("::"));
        prop_assert_eq!(shown.matches(" :: ").count() >= s.visible_len().saturating_sub(0), true);
        prop_assert!(ftv_stack(&s).len() <= s.visible_len() * 8 + 1);
    }
}
