//! Regression gate over benchmark snapshots.
//!
//! ```text
//! bench_check <BASELINE.json> <CURRENT.json> [--threshold 1.25]
//!             [--prefix P]... [--speedup BASE:CUR:FACTOR]...
//!             [--min-abs-us 10]
//! ```
//!
//! Compares every benchmark in `BASELINE` matched by a gate entry —
//! entries ending in `/` gate a whole group by prefix, other entries
//! gate exactly one row id — against the same id in `CURRENT`, and
//! exits non-zero when any row regressed by more than the threshold
//! factor, or when a gated row disappeared. Defaults:
//! `interpreted_vs_compiled/`, `tail_call_ablation/`, the headline
//! bytecode row `fib_steady/bytecode/24`, and the single-threaded
//! batch rows `batch_throughput/workers/1` + `batch_throughput/warm/1`
//! (exact ids — the multi-worker rows are recorded but not gated,
//! because machine-speed calibration cannot correct for core-count
//! differences between hosts, and the short `fib_steady/bytecode/16`
//! and `/20` rows are recorded but not gated because their sub-3ms
//! medians swing by double-digit percentages run-to-run on a shared
//! host). Rows are judged on their **median** ns/iter
//! (falling back to the mean for snapshots that lack one): medians
//! ride out background-load spikes that can swing the mean of a short
//! measurement by tens of percent on a busy host.
//!
//! `--speedup BASE:CUR:FACTOR` additionally asserts a cross-row
//! speedup: the `CUR` row of `CURRENT` must be at least `FACTOR`×
//! faster than the `BASE` row of `BASELINE` (after machine-speed
//! calibration). This is how the bytecode tier's headline claim —
//! `fib_steady/bytecode/24` ≥ 2.5× over the frozen
//! `fib_steady/compiled/24` — is pinned in CI rather than in prose.
//!
//! `--min-abs-us N` (default 10) is the absolute-time noise floor: a
//! gated row whose baseline **and** current medians are both under N
//! microseconds is reported but can never fail the regression check.
//! Sub-floor rows measure so little work that scheduler jitter alone
//! produces double-digit ratios; they stay in the snapshot (and the
//! calibration sample) so trends remain visible, without flaking the
//! gate. Cross-row `--speedup` assertions ignore the floor — they
//! compare two rows that are both deliberately sized to be measurable.
//!
//! Snapshots from different machines are made comparable by
//! **calibration** (on by default, `--no-calibrate` disables): the
//! median current/baseline ratio over the *non-gated* rows estimates
//! the machine-speed factor between the two measurements, and gated
//! ratios are judged relative to it. A uniformly slower CI runner thus
//! passes, while a change that slows the gated runtime paths relative
//! to the rest of the suite fails.
//!
//! The files are the `BENCH_OUTPUT` snapshots of the vendored
//! criterion shim (one `{"id": …, "mean_ns": …}` object per line), so
//! a dependency-free line parser is enough.

#![forbid(unsafe_code)]

use std::process::ExitCode;

#[derive(Debug)]
struct Row {
    id: String,
    /// The gated statistic: median ns/iter, or the mean when the
    /// snapshot has no median.
    ns: f64,
}

fn parse_rows(path: &str) -> Result<Vec<Row>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = Vec::new();
    for line in text.lines() {
        let Some(id) = field_str(line, "\"id\":") else {
            continue;
        };
        let Some(ns) =
            field_num(line, "\"median_ns\":").or_else(|| field_num(line, "\"mean_ns\":"))
        else {
            return Err(format!("{path}: row `{id}` has no median_ns/mean_ns"));
        };
        rows.push(Row {
            id: id.to_string(),
            ns,
        });
    }
    if rows.is_empty() {
        return Err(format!("{path}: no benchmark rows found"));
    }
    Ok(rows)
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    let open = rest.find('"')?;
    let rest = &rest[open + 1..];
    let close = rest.find('"')?;
    Some(&rest[..close])
}

fn field_num(line: &str, key: &str) -> Option<f64> {
    let rest = line[line.find(key)? + key.len()..].trim_start();
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files = Vec::new();
    let mut threshold = 1.25f64;
    let mut min_abs_us = 10.0f64;
    let mut calibrate = true;
    let mut prefixes: Vec<String> = Vec::new();
    let mut speedups: Vec<(String, String, f64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threshold" => {
                i += 1;
                threshold = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("--threshold needs a number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--min-abs-us" => {
                i += 1;
                min_abs_us = match args.get(i).and_then(|s| s.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("--min-abs-us needs a number");
                        return ExitCode::FAILURE;
                    }
                };
            }
            "--no-calibrate" => calibrate = false,
            "--prefix" => {
                i += 1;
                match args.get(i) {
                    Some(p) => prefixes.push(p.clone()),
                    None => {
                        eprintln!("--prefix needs a value");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--speedup" => {
                i += 1;
                let spec = args.get(i).map(String::as_str).unwrap_or("");
                let parts: Vec<&str> = spec.split(':').collect();
                let parsed = match parts.as_slice() {
                    [base, cur, factor] => factor
                        .parse::<f64>()
                        .ok()
                        .map(|f| (base.to_string(), cur.to_string(), f)),
                    _ => None,
                };
                match parsed {
                    Some(s) => speedups.push(s),
                    None => {
                        eprintln!("--speedup needs BASE_ID:CUR_ID:FACTOR");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => files.push(other.to_string()),
        }
        i += 1;
    }
    if prefixes.is_empty() {
        prefixes = vec![
            "interpreted_vs_compiled/".to_string(),
            "tail_call_ablation/".to_string(),
            // The direct-threaded tier's headline steady-state row
            // (exact id). The interpreted/compiled fib_steady rows and
            // the short bytecode/16 + /20 rows stay ungated — they
            // feed the calibration sample instead, and the short rows'
            // sub-3ms medians are too volatile on a shared host to
            // gate honestly at any reasonable threshold.
            "fib_steady/bytecode/24".to_string(),
            // Only the single-threaded batch rows: calibration (below)
            // is measured on single-threaded rows, so it can correct
            // for clock speed but not for core count — gating
            // workers/{2,8} would false-fail whenever the snapshot
            // host and the runner have different parallelism.
            "batch_throughput/workers/1".to_string(),
            "batch_throughput/warm/1".to_string(),
        ];
    }
    let [baseline, current] = files.as_slice() else {
        eprintln!(
            "usage: bench_check <BASELINE.json> <CURRENT.json> \
             [--threshold F] [--min-abs-us N] [--no-calibrate] \
             [--prefix P]... [--speedup BASE:CUR:FACTOR]..."
        );
        return ExitCode::FAILURE;
    };

    let (base, cur) = match (parse_rows(baseline), parse_rows(current)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Machine-speed calibration from the rows we are *not* gating.
    // Multi-threaded rows are excluded from the sample even when
    // ungated: they vary with the host's core count, not its speed,
    // and would skew the estimate between hosts with different
    // parallelism.
    // A gate entry ending in `/` is a prefix (gates the whole group);
    // anything else matches one row exactly, so gating
    // `batch_throughput/workers/1` can never swallow a future
    // `workers/16` row.
    let gated = |id: &str| {
        prefixes.iter().any(|p| {
            if p.ends_with('/') {
                id.starts_with(p.as_str())
            } else {
                id == p
            }
        })
    };
    let calibration_row = |id: &str| !gated(id) && !id.starts_with("batch_throughput/");
    let speed = if calibrate {
        let mut ratios: Vec<f64> = base
            .iter()
            .filter(|r| calibration_row(&r.id))
            .filter_map(|r| cur.iter().find(|c| c.id == r.id).map(|c| c.ns / r.ns))
            .collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        match ratios.as_slice() {
            [] => 1.0,
            rs => rs[rs.len() / 2],
        }
    } else {
        1.0
    };
    println!("machine-speed calibration factor: {speed:.3}");

    let mut failures = 0usize;
    let mut checked = 0usize;
    for row in base.iter().filter(|r| gated(&r.id)) {
        checked += 1;
        match cur.iter().find(|c| c.id == row.id) {
            None => {
                eprintln!("FAIL {}: missing from {current}", row.id);
                failures += 1;
            }
            Some(c) => {
                let ratio = c.ns / row.ns / speed;
                // The absolute-time noise floor: when both medians are
                // under it, the row is too short to gate honestly —
                // record the comparison, never fail it.
                let floor_ns = min_abs_us * 1000.0;
                let below_floor = row.ns < floor_ns && c.ns < floor_ns;
                let fail = ratio > threshold && !below_floor;
                let verdict = if fail {
                    "FAIL"
                } else if ratio > threshold {
                    "ok~ " // over threshold but under the noise floor
                } else {
                    "ok  "
                };
                println!(
                    "{verdict} {:<44} {:>12.1} -> {:>12.1} ns  ({:+.1}%){}",
                    row.id,
                    row.ns,
                    c.ns,
                    (ratio - 1.0) * 100.0,
                    if below_floor {
                        format!("  [below {min_abs_us}us floor]")
                    } else {
                        String::new()
                    }
                );
                if fail {
                    failures += 1;
                }
            }
        }
    }
    if checked == 0 {
        eprintln!("error: no gated rows matched prefixes {prefixes:?} in {baseline}");
        return ExitCode::FAILURE;
    }
    for (base_id, cur_id, factor) in &speedups {
        checked += 1;
        let (Some(b), Some(c)) = (
            base.iter().find(|r| &r.id == base_id),
            cur.iter().find(|r| &r.id == cur_id),
        ) else {
            eprintln!("FAIL speedup {base_id} -> {cur_id}: row missing");
            failures += 1;
            continue;
        };
        let got = b.ns * speed / c.ns;
        let verdict = if got < *factor { "FAIL" } else { "ok  " };
        println!("{verdict} speedup {base_id} -> {cur_id}: {got:.2}x (need >= {factor:.2}x)");
        if got < *factor {
            failures += 1;
        }
    }
    if failures > 0 {
        eprintln!(
            "{failures}/{checked} gated benchmark(s) regressed beyond {:.0}%",
            (threshold - 1.0) * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "{checked} gated benchmark(s) within {:.0}%",
        (threshold - 1.0) * 100.0
    );
    ExitCode::SUCCESS
}
