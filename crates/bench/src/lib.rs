//! Benchmark harness support crate (see `benches/`).
