//! Benchmark harness support crate (see `benches/`).
//!
//! The measurable code all lives in the other crates; this crate exists
//! to host the three bench binaries (`compile`, `figures`, `scaling`)
//! and their shared dev-dependencies. Run them with
//! `cargo bench -p funtal-bench`; set `BENCH_OUTPUT=/path.json` to
//! capture a machine-readable snapshot (see `BENCH_baseline.json` at
//! the repo root).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
