//! The `bench_check` gate as a black box: regression detection, the
//! absolute-time noise floor, and cross-row speedup assertions.

use std::path::PathBuf;
use std::process::Command;

fn write_snapshot(tag: &str, rows: &[(&str, f64)]) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "funtal_bench_check_{}_{tag}.jsonl",
        std::process::id()
    ));
    let mut text = String::new();
    for (id, ns) in rows {
        text.push_str(&format!(
            "{{\"id\": \"{id}\", \"mean_ns\": {ns}, \"median_ns\": {ns}, \"iters\": 10}}\n"
        ));
    }
    std::fs::write(&path, text).expect("write snapshot");
    path
}

fn run_check(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_bench_check"))
        .args(args)
        .output()
        .expect("run bench_check");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn regressions_above_the_floor_fail() {
    // 2x regression on a 2ms row: well above both threshold and floor.
    let base = write_snapshot("reg_base", &[("g/slow", 2_000_000.0)]);
    let cur = write_snapshot("reg_cur", &[("g/slow", 4_000_000.0)]);
    let (ok, text) = run_check(&[
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--prefix",
        "g/",
        "--no-calibrate",
    ]);
    assert!(!ok, "{text}");
    assert!(text.contains("FAIL g/slow"), "{text}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cur);
}

#[test]
fn sub_floor_rows_are_recorded_but_never_fail() {
    // A 3x "regression" from 2us to 6us: both medians are under the
    // 10us default floor, so the row cannot flake the gate — but it
    // still prints, floor-annotated.
    let base = write_snapshot("floor_base", &[("g/tiny", 2_000.0)]);
    let cur = write_snapshot("floor_cur", &[("g/tiny", 6_000.0)]);
    let (ok, text) = run_check(&[
        base.to_str().unwrap(),
        cur.to_str().unwrap(),
        "--prefix",
        "g/",
        "--no-calibrate",
    ]);
    assert!(ok, "{text}");
    assert!(text.contains("g/tiny"), "{text}");
    assert!(text.contains("below 10us floor"), "{text}");

    // Raising the current median above the floor re-arms the gate:
    // 2us -> 20us is a real (if small in absolute terms) regression
    // only one side of which is sub-floor.
    let cur2 = write_snapshot("floor_cur2", &[("g/tiny", 20_000.0)]);
    let (ok2, text2) = run_check(&[
        base.to_str().unwrap(),
        cur2.to_str().unwrap(),
        "--prefix",
        "g/",
        "--no-calibrate",
    ]);
    assert!(!ok2, "{text2}");

    // An explicit --min-abs-us can widen the floor to cover it again.
    let (ok3, text3) = run_check(&[
        base.to_str().unwrap(),
        cur2.to_str().unwrap(),
        "--prefix",
        "g/",
        "--no-calibrate",
        "--min-abs-us",
        "50",
    ]);
    assert!(ok3, "{text3}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cur);
    let _ = std::fs::remove_file(cur2);
}

#[test]
fn speedup_assertions_hold_and_fail() {
    let base = write_snapshot(
        "spd_base",
        &[("s/cold/24", 3_000_000.0), ("s/warm/24", 1_000_000.0)],
    );
    let cur = write_snapshot(
        "spd_cur",
        &[("s/cold/24", 3_000_000.0), ("s/warm/24", 1_000_000.0)],
    );
    let args = |factor: &'static str| {
        vec![
            base.to_str().unwrap().to_string(),
            cur.to_str().unwrap().to_string(),
            "--prefix".to_string(),
            "s/cold/24".to_string(),
            "--no-calibrate".to_string(),
            "--speedup".to_string(),
            format!("s/cold/24:s/warm/24:{factor}"),
        ]
    };
    let (ok, text) = run_check(&args("2.0").iter().map(String::as_str).collect::<Vec<_>>());
    assert!(ok, "{text}");
    assert!(text.contains("3.00x"), "{text}");
    let (ok2, text2) = run_check(&args("4.0").iter().map(String::as_str).collect::<Vec<_>>());
    assert!(!ok2, "{text2}");
    assert!(text2.contains("FAIL speedup"), "{text2}");
    let _ = std::fs::remove_file(base);
    let _ = std::fs::remove_file(cur);
}
