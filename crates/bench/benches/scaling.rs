//! E13/E14: scaling and ablation benches.
//!
//! - `typecheck_scaling`: checker time vs program size (block chains);
//! - `machine_throughput`: instructions/second by instruction class;
//! - `boundary_overhead`: cost of F↔T crossings vs staying in one
//!   language (the §6 "Choices in Multi-Language Design" trade-off).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funtal::machine::{run_fexpr, RunCfg};
use funtal_syntax::build::*;
use funtal_syntax::{FExpr, HeapVal, TComp};
use funtal_tal::trace::{CountTracer, NullTracer};

/// A pure-T program that chains `n` blocks, each adding 1 and jumping
/// on.
fn block_chain(n: usize) -> TComp {
    let mut heap: Vec<(String, HeapVal)> = Vec::new();
    for i in 0..n {
        let next: funtal_syntax::Terminator = if i + 1 == n {
            halt(int(), nil(), r1())
        } else {
            jmp(loc(&format!("b{}", i + 1)))
        };
        heap.push((
            format!("b{i}"),
            code_block(
                vec![],
                chi([(r1(), int())]),
                nil(),
                q_end(int(), nil()),
                seq(vec![add(r1(), r1(), int_v(1))], next),
            ),
        ));
    }
    tcomp(
        seq(vec![mv(r1(), int_v(0))], jmp(loc("b0"))),
        heap.iter().map(|(l, h)| (l.as_str(), h.clone())).collect(),
    )
}

fn typecheck_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("typecheck_scaling");
    for n in [8usize, 32, 128, 512] {
        let prog = block_chain(n);
        g.bench_with_input(BenchmarkId::new("blocks", n), &n, |b, _| {
            b.iter(|| funtal_tal::check::check_program(&prog, &int()).unwrap())
        });
    }
    g.finish();
}

/// A tight T loop doing `iters` arithmetic round trips.
fn t_loop(iters: i64) -> FExpr {
    let cont = code_ty(vec![], chi([(r1(), int())]), zvar("z"), q_var("e"));
    boundary(
        arrow(vec![fint()], fint()),
        tcomp(
            seq(
                vec![protect(vec![], "zp"), mv(r1(), loc("entry"))],
                halt(
                    funtal::fty_to_tty(&arrow(vec![fint()], fint())),
                    zvar("zp"),
                    r1(),
                ),
            ),
            vec![
                (
                    "entry",
                    code_block(
                        vec![d_stk("z"), d_ret("e")],
                        chi([(ra(), cont.clone())]),
                        stack(vec![int()], zvar("z")),
                        q_reg(ra()),
                        seq(
                            vec![sld(r3(), 0), mv(r7(), int_v(0))],
                            jmp(loc_i("loop", vec![i_stk(zvar("z")), i_ret(q_var("e"))])),
                        ),
                    ),
                ),
                (
                    "loop",
                    code_block(
                        vec![d_stk("z"), d_ret("e")],
                        chi([(r3(), int()), (r7(), int()), (ra(), cont)]),
                        stack(vec![int()], zvar("z")),
                        q_reg(ra()),
                        seq(
                            vec![
                                add(r7(), r7(), int_v(3)),
                                sub(r3(), r3(), int_v(1)),
                                bnz(
                                    r3(),
                                    loc_i("loop", vec![i_stk(zvar("z")), i_ret(q_var("e"))]),
                                ),
                                sfree(1),
                                mv(r1(), reg(r7())),
                            ],
                            ret(ra(), r1()),
                        ),
                    ),
                ),
            ],
        ),
    )
    .pipe_apply(iters)
}

trait PipeApply {
    fn pipe_apply(self, n: i64) -> FExpr;
}
impl PipeApply for FExpr {
    fn pipe_apply(self, n: i64) -> FExpr {
        app(self, vec![fint_e(n)])
    }
}

fn machine_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("machine_throughput");
    for iters in [100i64, 1_000] {
        let prog = t_loop(iters);
        let mut ct = CountTracer::new();
        run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut ct).unwrap();
        println!("[throughput] iters={iters}: {} T instrs", ct.instrs);
        g.bench_with_input(BenchmarkId::new("t_loop", iters), &iters, |b, _| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
        });
        // The same computation in pure F.
        let f_loop = {
            let mu_ty = fmu("a", arrow(vec![fvar_ty("a"), fint(), fint()], fint()));
            let body = lam_z(
                vec![("f", mu_ty.clone()), ("i", fint()), ("acc", fint())],
                "zf",
                if0(
                    var("i"),
                    var("acc"),
                    app(
                        funfold(var("f")),
                        vec![
                            var("f"),
                            fsub(var("i"), fint_e(1)),
                            fadd(var("acc"), fint_e(3)),
                        ],
                    ),
                ),
            );
            app(
                body.clone(),
                vec![ffold(mu_ty, body), fint_e(iters), fint_e(0)],
            )
        };
        g.bench_with_input(BenchmarkId::new("f_loop", iters), &iters, |b, _| {
            b.iter(|| run_fexpr(&f_loop, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

/// `k` boundary crossings around a trivial computation: F calls a
/// boundary-wrapped identity `k` times.
fn crossings(k: usize) -> FExpr {
    let ident = boundary(
        arrow(vec![fint()], fint()),
        tcomp(
            seq(
                vec![protect(vec![], "zp"), mv(r1(), loc("id"))],
                halt(
                    funtal::fty_to_tty(&arrow(vec![fint()], fint())),
                    zvar("zp"),
                    r1(),
                ),
            ),
            vec![(
                "id",
                code_block(
                    vec![d_stk("z"), d_ret("e")],
                    chi([(
                        ra(),
                        code_ty(vec![], chi([(r1(), int())]), zvar("z"), q_var("e")),
                    )]),
                    stack(vec![int()], zvar("z")),
                    q_reg(ra()),
                    seq(vec![sld(r1(), 0), sfree(1)], ret(ra(), r1())),
                ),
            )],
        ),
    );
    let mut e = fint_e(1);
    for _ in 0..k {
        e = app(ident.clone(), vec![e]);
    }
    e
}

fn boundary_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("boundary_overhead");
    for k in [1usize, 4, 16, 64] {
        let prog = crossings(k);
        let mut ct = CountTracer::new();
        run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut ct).unwrap();
        println!(
            "[boundary] k={k}: crossings={} T instrs={} F steps={}",
            ct.crossings, ct.instrs, ct.f_steps
        );
        g.bench_with_input(BenchmarkId::new("crossings", k), &k, |b, _| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

/// `Subst::apply` over interned terms: thanks to the cached
/// free-type-variable sets, applying a substitution to a *closed* term
/// is O(1) — one disjointness probe and an `Arc` bump — regardless of
/// term size. The three sizes here must bench flat.
fn subst_apply(c: &mut Criterion) {
    use funtal_syntax::intern::IExpr;
    use funtal_syntax::subst::Subst;
    use funtal_syntax::{Inst, TTy, TyVar};

    let mut g = c.benchmark_group("subst_apply");
    for size in [64usize, 512, 4096] {
        // A deep, closed integer expression: (…((1+1)+1)…+1).
        let mut e = fint_e(1);
        for _ in 0..size {
            e = fadd(e, fint_e(1));
        }
        let interned = IExpr::from_fexpr(&e);
        assert!(interned.is_ty_closed());
        let s = Subst::one(TyVar::new("z"), Inst::Ty(TTy::Int));
        g.bench_with_input(BenchmarkId::new("closed", size), &size, |b, _| {
            b.iter(|| s.apply(&interned))
        });
        // Contrast: the plain-tree substitution walks (and clones) the
        // whole term even though nothing can change.
        g.bench_with_input(BenchmarkId::new("plain_tree", size), &size, |b, _| {
            b.iter(|| s.fexpr(&e))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    typecheck_scaling,
    machine_throughput,
    boundary_overhead,
    subst_apply
);
criterion_main!(benches);
