//! Batch-engine throughput: worker scaling and cache temperature.
//!
//! `batch_throughput/workers/N` runs the examples+figures corpus on a
//! cold-cache engine with N workers (every iteration re-parses and
//! re-typechecks each distinct program once). `batch_throughput/warm/N`
//! runs the same corpus against a persistent warm cache, so each job is
//! hash lookups plus evaluation — the serving configuration.
//!
//! Worker-scaling rows only show speedup when the host actually has
//! cores to scale onto, and single-threaded calibration cannot correct
//! for core-count differences — so the regression gate (`bench_check`)
//! gates only the single-threaded rows (`workers/1`, `warm/1`); the
//! multi-worker rows are recorded for observation.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funtal_driver::corpus::paper_corpus;
use funtal_driver::{Batch, Job, Pipeline};

/// Corpus repeats per batch: 6 distinct programs × 4 = 24 jobs/iter.
const ROUNDS: usize = 4;

/// The measured workload is exactly the corpus the stress tests prove
/// deterministic (`funtal_driver::corpus`).
fn corpus_jobs() -> Vec<Job> {
    let sources = paper_corpus();
    (0..ROUNDS)
        .flat_map(|round| {
            sources
                .iter()
                .map(move |(name, src)| Job::run(format!("{name}@{round}"), src.clone()))
        })
        .collect()
}

fn engine(workers: usize) -> Batch {
    Batch::new(Pipeline::new().with_fuel(1_000_000)).with_workers(workers)
}

fn batch_throughput(c: &mut Criterion) {
    let jobs = corpus_jobs();
    let mut g = c.benchmark_group("batch_throughput");

    // Cold cache: a fresh engine per iteration (parse + check once per
    // distinct program, evaluate every job).
    for workers in [1usize, 2, 8] {
        g.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let report = engine(workers).run(&jobs);
                assert_eq!(report.err_count(), 0);
                report.outcomes.len()
            })
        });
    }

    // Warm cache: one engine reused across iterations — after the
    // first pass every parse/check lookup hits, which the summary
    // counters prove (asserted in the stress tests; here we measure).
    for workers in [1usize, 8] {
        let warm = engine(workers);
        warm.run(&jobs); // prime
        g.bench_function(BenchmarkId::new("warm", workers), |b| {
            b.iter(|| {
                let report = warm.run(&jobs);
                assert_eq!(report.err_count(), 0);
                report.outcomes.len()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, batch_throughput);
criterion_main!(benches);
