//! Batch-engine throughput: worker scaling and cache temperature.
//!
//! `batch_throughput/workers/N` runs the examples+figures corpus on a
//! cold-cache engine with N workers (every iteration re-parses and
//! re-typechecks each distinct program once). `batch_throughput/warm/N`
//! runs the same corpus against a persistent warm cache, so each job is
//! hash lookups plus evaluation — the serving configuration.
//!
//! Worker-scaling rows only show speedup when the host actually has
//! cores to scale onto, and single-threaded calibration cannot correct
//! for core-count differences — so the regression gate (`bench_check`)
//! gates only the single-threaded rows (`workers/1`, `warm/1`); the
//! multi-worker rows are recorded for observation.
//!
//! `store_warm_start/{cold,warm}/24` measures the persistent tier's
//! cross-process warm start: both rows run a memory-cold engine (a
//! fresh [`ArtifactCache`] per iteration — the second-process
//! configuration), against an empty store directory (`cold`) or one a
//! previous "process" fully populated (`warm`). The warm row skips
//! parse, typecheck, lowering, *and* MiniF compilation, paying only
//! disk load + decode + verify-on-load; the gate pins warm ≥ 2× cold.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funtal_driver::corpus::paper_corpus;
use funtal_driver::{ArtifactCache, Batch, DiskStore, Job, JobKind, Pipeline};

/// Corpus repeats per batch: 6 distinct programs × 4 = 24 jobs/iter.
const ROUNDS: usize = 4;

/// The measured workload is exactly the corpus the stress tests prove
/// deterministic (`funtal_driver::corpus`).
fn corpus_jobs() -> Vec<Job> {
    let sources = paper_corpus();
    (0..ROUNDS)
        .flat_map(|round| {
            sources
                .iter()
                .map(move |(name, src)| Job::run(format!("{name}@{round}"), src.clone()))
        })
        .collect()
}

fn engine(workers: usize) -> Batch {
    Batch::new(Pipeline::new().with_fuel(1_000_000)).with_workers(workers)
}

fn batch_throughput(c: &mut Criterion) {
    let jobs = corpus_jobs();
    let mut g = c.benchmark_group("batch_throughput");

    // Cold cache: a fresh engine per iteration (parse + check once per
    // distinct program, evaluate every job).
    for workers in [1usize, 2, 8] {
        g.bench_function(BenchmarkId::new("workers", workers), |b| {
            b.iter(|| {
                let report = engine(workers).run(&jobs);
                assert_eq!(report.err_count(), 0);
                report.outcomes.len()
            })
        });
    }

    // Warm cache: one engine reused across iterations — after the
    // first pass every parse/check lookup hits, which the summary
    // counters prove (asserted in the stress tests; here we measure).
    for workers in [1usize, 8] {
        let warm = engine(workers);
        warm.run(&jobs); // prime
        g.bench_function(BenchmarkId::new("warm", workers), |b| {
            b.iter(|| {
                let report = warm.run(&jobs);
                assert_eq!(report.err_count(), 0);
                report.outcomes.len()
            })
        });
    }
    g.finish();
}

/// The persistent-tier workload: every corpus program on the bytecode
/// tier (parse + check + lower all cacheable) plus six distinct MiniF
/// compilations — 6×3 + 6 = 24 jobs exercising all four store stages.
fn store_jobs() -> Vec<Job> {
    let sources = paper_corpus();
    let mut jobs: Vec<Job> = (0..3)
        .flat_map(|round| {
            sources.iter().map(move |(name, src)| {
                Job::run_tiered(
                    format!("{name}@{round}"),
                    src.clone(),
                    funtal::machine::EvalStrategy::Bytecode,
                )
            })
        })
        .collect();
    for i in 0..6 {
        jobs.push(Job {
            id: format!("mf{i}"),
            kind: JobKind::Compile {
                src: format!("fn f{i}(a, b) = if0 a {{ b + {i} }} {{ f{i}(a - 1, b + a) }}"),
                tco: i % 2 == 0,
                call: None,
            },
        });
    }
    jobs
}

/// A memory-cold engine (fresh `ArtifactCache`) over `dir` — the
/// second-process configuration both rows measure.
fn store_engine(dir: &std::path::Path) -> Batch {
    let store = Arc::new(DiskStore::open(dir, 0).expect("open store"));
    Batch::new(Pipeline::new().with_fuel(1_000_000))
        .with_cache(Arc::new(ArtifactCache::with_store(store)))
}

fn store_warm_start(c: &mut Criterion) {
    let jobs = store_jobs();
    let mut g = c.benchmark_group("store_warm_start");
    let seq = AtomicUsize::new(0);
    let base = std::env::temp_dir().join(format!("funtal_bench_store_{}", std::process::id()));

    // Cold: an empty store per iteration — every stage computes and
    // writes through (the first process to ever see this corpus).
    g.bench_function(BenchmarkId::new("cold", jobs.len()), |b| {
        b.iter(|| {
            let dir = base.join(format!("cold{}", seq.fetch_add(1, Ordering::Relaxed)));
            let report = store_engine(&dir).run(&jobs);
            assert_eq!(report.err_count(), 0);
            let _ = std::fs::remove_dir_all(&dir);
            report.outcomes.len()
        })
    });

    // Warm: one pre-populated directory; each iteration is still
    // memory-cold, so every artifact is served by the disk tier
    // (verified on load) instead of recomputed.
    let warm_dir = base.join("warm");
    let _ = std::fs::remove_dir_all(&warm_dir);
    let primed = store_engine(&warm_dir).run(&jobs);
    assert_eq!(primed.err_count(), 0);
    g.bench_function(BenchmarkId::new("warm", jobs.len()), |b| {
        b.iter(|| {
            let report = store_engine(&warm_dir).run(&jobs);
            assert_eq!(report.err_count(), 0);
            let stats = report.store.expect("store stats");
            assert_eq!(stats.total_rejects(), 0);
            assert!(stats.total_hits() > 0);
            report.outcomes.len()
        })
    });
    let _ = std::fs::remove_dir_all(&base);
    g.finish();
}

criterion_group!(benches, batch_throughput, store_warm_start);
criterion_main!(benches);
