//! E1, E4, E9, E10: one benchmark group per figure of the paper.
//!
//! Besides wall-clock times (Criterion), each group prints the machine
//! step counts that constitute the paper-shape result (see
//! EXPERIMENTS.md).

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funtal::figures::{fig11_jit, fig16_f1, fig16_f2, fig17_fact_f, fig17_fact_t};
use funtal::machine::{run_fexpr, RunCfg};
use funtal_syntax::build::*;
use funtal_tal::trace::{CountTracer, NullTracer};

fn steps_of(e: &funtal_syntax::FExpr) -> CountTracer {
    let mut ct = CountTracer::new();
    run_fexpr(e, RunCfg::with_fuel(10_000_000), &mut ct).expect("benchmark program runs");
    ct
}

/// Figure 3 / Figure 4: the pure-T call-to-call component.
fn fig3(c: &mut Criterion) {
    let prog = funtal_tal::figures::fig3_call_to_call();
    let mut ct = CountTracer::new();
    funtal_tal::machine::run_program(&prog, 1_000, &mut ct).unwrap();
    println!(
        "[fig3] instrs={} transfers={} (paper: 2 calls, 1 jmp, 2 rets, halt)",
        ct.instrs, ct.transfers
    );
    let mut g = c.benchmark_group("fig3_call_to_call");
    g.bench_function("typecheck", |b| {
        b.iter(|| funtal_tal::check::check_program(&prog, &int()).unwrap())
    });
    g.bench_function("run", |b| {
        b.iter(|| funtal_tal::machine::run_program(&prog, 1_000, &mut NullTracer).unwrap())
    });
    g.finish();
}

/// Figure 11 / Figure 12: the JIT example with its F↔T callbacks.
fn fig11(c: &mut Criterion) {
    let e = fig11_jit();
    let ct = steps_of(&e);
    println!(
        "[fig11] T instrs={} F steps={} crossings={} (result 2)",
        ct.instrs, ct.f_steps, ct.crossings
    );
    let mut g = c.benchmark_group("fig11_jit");
    g.bench_function("typecheck", |b| b.iter(|| funtal::typecheck(&e).unwrap()));
    g.bench_function("run", |b| {
        b.iter(|| run_fexpr(&e, RunCfg::with_fuel(1_000_000), &mut NullTracer).unwrap())
    });
    g.finish();
}

/// Figure 16: one basic block vs two basic blocks — equivalent
/// observables, one extra jump.
fn fig16(c: &mut Criterion) {
    let f1 = fig16_f1();
    let f2 = fig16_f2();
    let c1 = steps_of(&app(f1.clone(), vec![fint_e(100)]));
    let c2 = steps_of(&app(f2.clone(), vec![fint_e(100)]));
    println!(
        "[fig16] f1: instrs={} transfers={} | f2: instrs={} transfers={} \
         (f2 = f1 + 1 jmp + stack round-trip)",
        c1.instrs, c1.transfers, c2.instrs, c2.transfers
    );
    let mut g = c.benchmark_group("fig16_basic_blocks");
    for (name, f) in [("one_block", f1), ("two_blocks", f2)] {
        let prog = app(f, vec![fint_e(100)]);
        g.bench_function(name, |b| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(100_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

/// Figure 17: functional vs imperative factorial across an input sweep —
/// the "who wins and how the gap grows" shape.
fn fig17(c: &mut Criterion) {
    let ff = fig17_fact_f();
    let ft = fig17_fact_t();
    println!("[fig17]  n | factF steps | factT steps");
    for n in [2i64, 4, 8, 12, 16] {
        let cf = steps_of(&app(ff.clone(), vec![fint_e(n)]));
        let ct = steps_of(&app(ft.clone(), vec![fint_e(n)]));
        println!(
            "[fig17] {n:2} | {:>11} | {:>11}",
            cf.total_steps(),
            ct.total_steps()
        );
    }
    let mut g = c.benchmark_group("fig17_factorial");
    for n in [4i64, 8, 16] {
        g.bench_with_input(BenchmarkId::new("factF", n), &n, |b, &n| {
            let prog = app(ff.clone(), vec![fint_e(n)]);
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(1_000_000), &mut NullTracer).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("factT", n), &n, |b, &n| {
            let prog = app(ft.clone(), vec![fint_e(n)]);
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(1_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, fig3, fig11, fig16, fig17);
criterion_main!(benches);
