//! E12 benches: compiler throughput and the interpreted/compiled gap —
//! the quantitative version of the §6 JIT story — plus the
//! tail-call-optimization ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funtal::machine::{run_fexpr, RunCfg};
use funtal_compile::codegen::{compile_program, CodegenOpts};
use funtal_compile::femit::def_to_fexpr;
use funtal_compile::lang::{factorial_program, fib_program, Def, MExpr, Program};
use funtal_syntax::ArithOp;

/// A genuinely tail-recursive sum, so the TCO ablation has something to
/// optimize (factorial's recursive call is not in tail position).
fn sum_program() -> Program {
    Program::new([Def::new(
        "sum",
        &["n", "acc"],
        MExpr::if0(
            MExpr::v("n"),
            MExpr::v("acc"),
            MExpr::call(
                "sum",
                vec![
                    MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(1)),
                    MExpr::bin(ArithOp::Add, MExpr::v("acc"), MExpr::v("n")),
                ],
            ),
        ),
    )])
    .expect("sum is valid")
}
use funtal_syntax::build::*;
use funtal_tal::trace::{CountTracer, NullTracer};

fn compile_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_time");
    for (name, p) in [("fact", factorial_program()), ("fib", fib_program())] {
        for opts in [
            CodegenOpts {
                tail_call_opt: false,
            },
            CodegenOpts {
                tail_call_opt: true,
            },
        ] {
            let id = format!("{name}_tco_{}", opts.tail_call_opt);
            g.bench_function(BenchmarkId::new("compile", id), |b| {
                b.iter(|| compile_program(&p, opts))
            });
        }
    }
    g.finish();
}

fn interpreted_vs_compiled(c: &mut Criterion) {
    let p = factorial_program();
    let interp = def_to_fexpr(&p.defs["fact"], &Default::default());
    let plain = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("fact");
    let tco = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: true,
        },
    )
    .wrap("fact");

    println!("[jit]  n | interpreted steps | compiled steps | compiled+tco steps");
    for n in [4i64, 8, 12] {
        let count = |f: &funtal_syntax::FExpr| {
            let mut ct = CountTracer::new();
            run_fexpr(
                &app(f.clone(), vec![fint_e(n)]),
                RunCfg::with_fuel(10_000_000),
                &mut ct,
            )
            .unwrap();
            ct.total_steps()
        };
        println!(
            "[jit] {n:2} | {:>17} | {:>14} | {:>18}",
            count(&interp),
            count(&plain),
            count(&tco)
        );
    }

    let mut g = c.benchmark_group("interpreted_vs_compiled");
    for n in [8i64, 12] {
        for (name, f) in [
            ("interpreted", interp.clone()),
            ("compiled", plain.clone()),
            ("compiled_tco", tco.clone()),
        ] {
            let prog = app(f, vec![fint_e(n)]);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
            });
        }
    }
    g.finish();

    // The TCO ablation on a tail-recursive sum: the loopified version
    // needs neither per-level stack growth nor return blocks.
    let sp = sum_program();
    let sum_plain = compile_program(
        &sp,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("sum");
    let sum_tco = compile_program(
        &sp,
        CodegenOpts {
            tail_call_opt: true,
        },
    )
    .wrap("sum");
    println!("[tco]  n | sum compiled steps | sum compiled+tco steps");
    for n in [16i64, 64] {
        let count = |f: &funtal_syntax::FExpr| {
            let mut ct = CountTracer::new();
            run_fexpr(
                &app(f.clone(), vec![fint_e(n), fint_e(0)]),
                RunCfg::with_fuel(10_000_000),
                &mut ct,
            )
            .unwrap();
            ct.total_steps()
        };
        println!(
            "[tco] {n:2} | {:>18} | {:>22}",
            count(&sum_plain),
            count(&sum_tco)
        );
    }
    let mut g = c.benchmark_group("tail_call_ablation");
    for n in [64i64] {
        for (name, f) in [("plain", sum_plain.clone()), ("tco", sum_tco.clone())] {
            let prog = app(f, vec![fint_e(n), fint_e(0)]);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
            });
        }
    }
    g.finish();
}

fn translation_depth(c: &mut Criterion) {
    // E8: value-translation cost for increasingly deep tuples crossing
    // the boundary.
    let mut g = c.benchmark_group("translation");
    for depth in [1usize, 4, 8] {
        // Build ⟨1, ⟨1, …⟩⟩ as a T program that re-allocates nested
        // boxed tuples and exports them at a nested tuple type.
        let mut ty = fint();
        for _ in 0..depth {
            ty = ftuple_ty(vec![fint(), ty]);
        }
        let mut instrs = vec![mv(r1(), int_v(7))];
        for _ in 0..depth {
            instrs.extend([
                mv(r2(), int_v(1)),
                salloc(2),
                sst(0, r2()),
                sst(1, r1()),
                balloc(r1(), 2),
            ]);
        }
        // r1 now holds the deepest pointer; its T type is the
        // translation of `ty`... built by the checker itself.
        let t_ty = funtal::fty_to_tty(&ty);
        // Field order: slot0 = r2 = 1 (first field), slot1 = previous.
        let prog = boundary(
            ty.clone(),
            tcomp(seq(instrs, halt(t_ty, nil(), r1())), vec![]),
        );
        funtal::typecheck(&prog).expect("translation bench program typechecks");
        g.bench_with_input(BenchmarkId::new("tuple_depth", depth), &depth, |b, _| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(1_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    compile_time,
    interpreted_vs_compiled,
    translation_depth
);
criterion_main!(benches);
