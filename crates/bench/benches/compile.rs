//! E12 benches: compiler throughput and the interpreted/compiled gap —
//! the quantitative version of the §6 JIT story — plus the
//! tail-call-optimization ablation.

#![forbid(unsafe_code)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use funtal::machine::{run_fexpr, RunCfg};
use funtal_compile::codegen::{compile_program, CodegenOpts};
use funtal_compile::femit::def_to_fexpr;
use funtal_compile::lang::{factorial_program, fib_program, Def, MExpr, Program};
use funtal_syntax::ArithOp;

/// A genuinely tail-recursive sum, so the TCO ablation has something to
/// optimize (factorial's recursive call is not in tail position).
fn sum_program() -> Program {
    Program::new([Def::new(
        "sum",
        &["n", "acc"],
        MExpr::if0(
            MExpr::v("n"),
            MExpr::v("acc"),
            MExpr::call(
                "sum",
                vec![
                    MExpr::bin(ArithOp::Sub, MExpr::v("n"), MExpr::i(1)),
                    MExpr::bin(ArithOp::Add, MExpr::v("acc"), MExpr::v("n")),
                ],
            ),
        ),
    )])
    .expect("sum is valid")
}
use funtal_syntax::build::*;
use funtal_tal::trace::{CountTracer, NullTracer};

fn compile_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile_time");
    for (name, p) in [("fact", factorial_program()), ("fib", fib_program())] {
        for opts in [
            CodegenOpts {
                tail_call_opt: false,
            },
            CodegenOpts {
                tail_call_opt: true,
            },
        ] {
            let id = format!("{name}_tco_{}", opts.tail_call_opt);
            g.bench_function(BenchmarkId::new("compile", id), |b| {
                b.iter(|| compile_program(&p, opts))
            });
        }
    }
    g.finish();
}

fn interpreted_vs_compiled(c: &mut Criterion) {
    let p = factorial_program();
    let interp = def_to_fexpr(&p.defs["fact"], &Default::default());
    let plain = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("fact");
    let tco = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: true,
        },
    )
    .wrap("fact");

    println!("[jit]  n | interpreted steps | compiled steps | compiled+tco steps");
    for n in [4i64, 8, 12] {
        let count = |f: &funtal_syntax::FExpr| {
            let mut ct = CountTracer::new();
            run_fexpr(
                &app(f.clone(), vec![fint_e(n)]),
                RunCfg::with_fuel(10_000_000),
                &mut ct,
            )
            .unwrap();
            ct.total_steps()
        };
        println!(
            "[jit] {n:2} | {:>17} | {:>14} | {:>18}",
            count(&interp),
            count(&plain),
            count(&tco)
        );
    }

    let mut g = c.benchmark_group("interpreted_vs_compiled");
    for n in [8i64, 12] {
        for (name, f) in [
            ("interpreted", interp.clone()),
            ("compiled", plain.clone()),
            ("compiled_tco", tco.clone()),
        ] {
            let prog = app(f, vec![fint_e(n)]);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
            });
        }
    }
    g.finish();

    // The TCO ablation on a tail-recursive sum: the loopified version
    // needs neither per-level stack growth nor return blocks.
    let sp = sum_program();
    let sum_plain = compile_program(
        &sp,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("sum");
    let sum_tco = compile_program(
        &sp,
        CodegenOpts {
            tail_call_opt: true,
        },
    )
    .wrap("sum");
    println!("[tco]  n | sum compiled steps | sum compiled+tco steps");
    for n in [16i64, 64] {
        let count = |f: &funtal_syntax::FExpr| {
            let mut ct = CountTracer::new();
            run_fexpr(
                &app(f.clone(), vec![fint_e(n), fint_e(0)]),
                RunCfg::with_fuel(10_000_000),
                &mut ct,
            )
            .unwrap();
            ct.total_steps()
        };
        println!(
            "[tco] {n:2} | {:>18} | {:>22}",
            count(&sum_plain),
            count(&sum_tco)
        );
    }
    let mut g = c.benchmark_group("tail_call_ablation");
    for n in [64i64] {
        for (name, f) in [("plain", sum_plain.clone()), ("tco", sum_tco.clone())] {
            let prog = app(f, vec![fint_e(n), fint_e(0)]);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
            });
        }
        for (name, f) in [
            ("plain_bytecode", sum_plain.clone()),
            ("tco_bytecode", sum_tco.clone()),
        ] {
            let lowered = funtal::prelower(&app(f, vec![fint_e(n), fint_e(0)]));
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    funtal::run_prelowered(&lowered, RunCfg::with_fuel(10_000_000), &mut NullTracer)
                        .unwrap()
                })
            });
        }
    }
    g.finish();
}

/// Steady-state workloads over the environment-strategy runtime:
/// fib up to 24 (interpreted and compiled), the evaluation-strategy
/// ablation on the same program, deep tuple marshalling across the
/// boundary, and a boundary-crossing ping-pong loop.
fn steady_state(c: &mut Criterion) {
    use funtal::machine::EvalStrategy;

    // fib up to 24 — a genuinely hot recursion, compiled vs interpreted.
    let p = fib_program();
    let interp = def_to_fexpr(&p.defs["fib"], &Default::default());
    let compiled = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("fib");
    let mut g = c.benchmark_group("fib_steady");
    for n in [16i64, 20, 24] {
        for (name, f) in [("interpreted", &interp), ("compiled", &compiled)] {
            let prog = app(f.clone(), vec![fint_e(n)]);
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                b.iter(|| {
                    run_fexpr(&prog, RunCfg::with_fuel(100_000_000), &mut NullTracer).unwrap()
                })
            });
        }
        // Bytecode tier on the same compiled program; lowering happens
        // once outside the timing loop (that is the cacheable artifact).
        let prog = app(compiled.clone(), vec![fint_e(n)]);
        let lowered = funtal::prelower(&prog);
        g.bench_with_input(BenchmarkId::new("bytecode", n), &n, |b, _| {
            b.iter(|| {
                funtal::run_prelowered(&lowered, RunCfg::with_fuel(100_000_000), &mut NullTracer)
                    .unwrap()
            })
        });
    }
    g.finish();

    // Strategy ablation: the same program under the substitution
    // oracle and the environment machine.
    let fp = factorial_program();
    let fact = compile_program(&fp, CodegenOpts::default()).wrap("fact");
    let prog = app(fact, vec![fint_e(12)]);
    let mut g = c.benchmark_group("strategy_ablation");
    for (name, strategy) in [
        ("substitution", EvalStrategy::Substitution),
        ("environment", EvalStrategy::Environment),
    ] {
        g.bench_with_input(BenchmarkId::new(name, 12), &12, |b, _| {
            b.iter(|| {
                run_fexpr(
                    &prog,
                    RunCfg::with_fuel(10_000_000).with_strategy(strategy),
                    &mut NullTracer,
                )
                .unwrap()
            })
        });
    }
    g.finish();

    // Deep tuple marshalling: a T component exports an increasingly
    // nested tuple, exercising the Fig 10 value translation.
    let mut g = c.benchmark_group("marshalling");
    for depth in [8usize, 12] {
        let prog = nested_tuple_program(depth);
        g.bench_with_input(BenchmarkId::new("tuple_depth", depth), &depth, |b, _| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(1_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();

    // Boundary ping-pong: F applies a boundary-wrapped T identity k
    // times in a row — the §6 multi-language crossing cost.
    let mut g = c.benchmark_group("pingpong");
    for k in [64usize, 256] {
        let prog = pingpong_program(k);
        g.bench_with_input(BenchmarkId::new("crossings", k), &k, |b, _| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(10_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

/// Builds the depth-nested boxed-tuple export used by `marshalling`
/// (same shape as `translation/tuple_depth`, at steady-state depths).
fn nested_tuple_program(depth: usize) -> funtal_syntax::FExpr {
    let mut ty = fint();
    for _ in 0..depth {
        ty = ftuple_ty(vec![fint(), ty]);
    }
    let mut instrs = vec![mv(r1(), int_v(7))];
    for _ in 0..depth {
        instrs.extend([
            mv(r2(), int_v(1)),
            salloc(2),
            sst(0, r2()),
            sst(1, r1()),
            balloc(r1(), 2),
        ]);
    }
    let t_ty = funtal::fty_to_tty(&ty);
    boundary(
        ty.clone(),
        tcomp(seq(instrs, halt(t_ty, nil(), r1())), vec![]),
    )
}

/// `k` crossings of a boundary-wrapped T identity function.
fn pingpong_program(k: usize) -> funtal_syntax::FExpr {
    let ident = boundary(
        arrow(vec![fint()], fint()),
        tcomp(
            seq(
                vec![protect(vec![], "zp"), mv(r1(), loc("id"))],
                halt(
                    funtal::fty_to_tty(&arrow(vec![fint()], fint())),
                    zvar("zp"),
                    r1(),
                ),
            ),
            vec![(
                "id",
                code_block(
                    vec![d_stk("z"), d_ret("e")],
                    chi([(
                        ra(),
                        code_ty(vec![], chi([(r1(), int())]), zvar("z"), q_var("e")),
                    )]),
                    stack(vec![int()], zvar("z")),
                    q_reg(ra()),
                    seq(vec![sld(r1(), 0), sfree(1)], ret(ra(), r1())),
                ),
            )],
        ),
    );
    let mut e = fint_e(1);
    for _ in 0..k {
        e = app(ident.clone(), vec![e]);
    }
    e
}

/// The static bytecode verifier's cost, measured against the lowering
/// that produces its input. Verification happens once per lowered
/// artifact (at `prelower` under debug assertions, on cache load, at
/// JIT promotion, or under `--verify-bytecode`) — never inside the
/// dispatch loop — so this one-time cost is the entire overhead the
/// analysis layer adds to the bytecode tier. The gated
/// `fib_steady/bytecode` rows above prove the dispatch loop itself is
/// untouched.
fn verify_cost(c: &mut Criterion) {
    let p = fib_program();
    let compiled = compile_program(
        &p,
        CodegenOpts {
            tail_call_opt: false,
        },
    )
    .wrap("fib");
    let prog = app(compiled, vec![fint_e(24)]);
    let lowered = funtal::prelower(&prog);
    let mut g = c.benchmark_group("verify_cost");
    g.bench_function(BenchmarkId::new("lower", "fib"), |b| {
        b.iter(|| funtal::prelower(&prog))
    });
    g.bench_function(BenchmarkId::new("verify", "fib"), |b| {
        b.iter(|| funtal::verify_lowered(&lowered).unwrap())
    });
    g.finish();
}

fn translation_depth(c: &mut Criterion) {
    // E8: value-translation cost for increasingly deep tuples crossing
    // the boundary.
    let mut g = c.benchmark_group("translation");
    for depth in [1usize, 4, 8] {
        // Build ⟨1, ⟨1, …⟩⟩ as a T program that re-allocates nested
        // boxed tuples and exports them at a nested tuple type.
        let mut ty = fint();
        for _ in 0..depth {
            ty = ftuple_ty(vec![fint(), ty]);
        }
        let mut instrs = vec![mv(r1(), int_v(7))];
        for _ in 0..depth {
            instrs.extend([
                mv(r2(), int_v(1)),
                salloc(2),
                sst(0, r2()),
                sst(1, r1()),
                balloc(r1(), 2),
            ]);
        }
        // r1 now holds the deepest pointer; its T type is the
        // translation of `ty`... built by the checker itself.
        let t_ty = funtal::fty_to_tty(&ty);
        // Field order: slot0 = r2 = 1 (first field), slot1 = previous.
        let prog = boundary(
            ty.clone(),
            tcomp(seq(instrs, halt(t_ty, nil(), r1())), vec![]),
        );
        funtal::typecheck(&prog).expect("translation bench program typechecks");
        g.bench_with_input(BenchmarkId::new("tuple_depth", depth), &depth, |b, _| {
            b.iter(|| run_fexpr(&prog, RunCfg::with_fuel(1_000_000), &mut NullTracer).unwrap())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    compile_time,
    interpreted_vs_compiled,
    steady_state,
    verify_cost,
    translation_depth
);
criterion_main!(benches);
