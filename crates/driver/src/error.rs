//! The unified diagnostics type for the whole pipeline.
//!
//! Every layer of the workspace has its own error enum (lexer, parser,
//! the pure-F checker, the shared T/FT checker, the machines, the MiniF
//! front end). [`FunTalError`] folds them into one type with `From`
//! impls, so drivers, examples, and tests can use `?` end-to-end instead
//! of `Box<dyn Error>` plumbing.

use std::fmt;

use funtal_compile::lang::MiniFError;
use funtal_fun::check::FTypeError;
use funtal_parser::lex::LexError;
use funtal_parser::parse::ParseError;
use funtal_tal::error::{RuntimeError, TypeError};

/// Any error a [`crate::Pipeline`] stage can produce.
#[derive(Clone, Debug)]
pub enum FunTalError {
    /// The lexer rejected the source text.
    Lex(LexError),
    /// The parser rejected the token stream.
    Parse(ParseError),
    /// The pure-F reference checker rejected the term.
    FType(FTypeError),
    /// The T/FT type system rejected the term or component.
    Type(TypeError),
    /// The machine faulted (never on well-typed programs).
    Runtime(RuntimeError),
    /// The MiniF front end rejected the program.
    MiniF(MiniFError),
    /// Evaluation did not finish within the fuel bound.
    OutOfFuel {
        /// The bound that was exhausted.
        fuel: u64,
    },
    /// A driver-level condition (bad CLI usage, operand type
    /// disagreement in `equiv`, missing definition, ...).
    Driver(String),
    /// An I/O error, tagged with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error rendered.
        cause: String,
    },
}

impl FunTalError {
    /// Source position (1-based line, column) when the underlying error
    /// carries one (lex and parse errors do).
    pub fn span(&self) -> Option<(u32, u32)> {
        match self {
            FunTalError::Lex(e) => Some((e.line, e.col)),
            FunTalError::Parse(e) => Some((e.line, e.col)),
            _ => None,
        }
    }

    /// Short machine-readable category, used by the CLI exit report.
    pub fn stage(&self) -> &'static str {
        match self {
            FunTalError::Lex(_) => "lex",
            FunTalError::Parse(_) => "parse",
            FunTalError::FType(_) | FunTalError::Type(_) => "typecheck",
            FunTalError::Runtime(_) | FunTalError::OutOfFuel { .. } => "run",
            FunTalError::MiniF(_) => "minif",
            FunTalError::Driver(_) => "driver",
            FunTalError::Io { .. } => "io",
        }
    }

    /// Convenience constructor for [`FunTalError::Driver`].
    pub fn driver(msg: impl Into<String>) -> FunTalError {
        FunTalError::Driver(msg.into())
    }
}

impl fmt::Display for FunTalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunTalError::Lex(e) => write!(f, "lex error: {e}"),
            FunTalError::Parse(e) => write!(f, "parse error: {e}"),
            FunTalError::FType(e) => write!(f, "type error (F): {e}"),
            FunTalError::Type(e) => write!(f, "type error: {e}"),
            FunTalError::Runtime(e) => write!(f, "runtime error: {e}"),
            FunTalError::MiniF(e) => write!(f, "MiniF error: {e}"),
            FunTalError::OutOfFuel { fuel } => {
                write!(f, "out of fuel after {fuel} steps (raise with --fuel)")
            }
            FunTalError::Driver(msg) => f.write_str(msg),
            FunTalError::Io { path, cause } => write!(f, "{path}: {cause}"),
        }
    }
}

impl std::error::Error for FunTalError {}

impl From<LexError> for FunTalError {
    fn from(e: LexError) -> Self {
        FunTalError::Lex(e)
    }
}

impl From<ParseError> for FunTalError {
    fn from(e: ParseError) -> Self {
        FunTalError::Parse(e)
    }
}

impl From<FTypeError> for FunTalError {
    fn from(e: FTypeError) -> Self {
        FunTalError::FType(e)
    }
}

impl From<TypeError> for FunTalError {
    fn from(e: TypeError) -> Self {
        FunTalError::Type(e)
    }
}

impl From<RuntimeError> for FunTalError {
    fn from(e: RuntimeError) -> Self {
        FunTalError::Runtime(e)
    }
}

impl From<MiniFError> for FunTalError {
    fn from(e: MiniFError) -> Self {
        FunTalError::MiniF(e)
    }
}
