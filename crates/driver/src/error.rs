//! The unified diagnostics type for the whole pipeline.
//!
//! Every layer of the workspace has its own error enum (lexer, parser,
//! the pure-F checker, the shared T/FT checker, the machines, the MiniF
//! front end). [`FunTalError`] folds them into one type with `From`
//! impls, so drivers, examples, and tests can use `?` end-to-end instead
//! of `Box<dyn Error>` plumbing.

use std::fmt;

use funtal_compile::lang::MiniFError;
use funtal_fun::check::FTypeError;
use funtal_parser::lex::LexError;
use funtal_parser::parse::ParseError;
use funtal_tal::error::{RuntimeError, TypeError};

/// Any error a [`crate::Pipeline`] stage can produce.
#[derive(Clone, Debug)]
pub enum FunTalError {
    /// The lexer rejected the source text.
    Lex(LexError),
    /// The parser rejected the token stream.
    Parse(ParseError),
    /// The pure-F reference checker rejected the term.
    FType(FTypeError),
    /// The T/FT type system rejected the term or component.
    Type(TypeError),
    /// The machine faulted (never on well-typed programs).
    Runtime(RuntimeError),
    /// The MiniF front end rejected the program.
    MiniF(MiniFError),
    /// Evaluation did not finish within the fuel bound.
    OutOfFuel {
        /// The bound that was exhausted.
        fuel: u64,
    },
    /// A driver-level condition (bad CLI usage, operand type
    /// disagreement in `equiv`, missing definition, ...).
    Driver(String),
    /// A malformed batch/serve job line, carried as a job of its own
    /// so one poison line cannot abort the rest of the stream. The
    /// original error's stage and message are preserved, so the
    /// per-line result renders exactly as the rejecting error would
    /// (job-line errors never carry a source position).
    BadJob {
        /// The stage of the error that rejected the line.
        stage: &'static str,
        /// Its bare message.
        message: String,
    },
    /// An I/O error, tagged with the path involved.
    Io {
        /// The file being read or written.
        path: String,
        /// The underlying error rendered.
        cause: String,
    },
}

impl FunTalError {
    /// Source position (1-based line, column) when the underlying error
    /// carries one (lex and parse errors do).
    pub fn span(&self) -> Option<(u32, u32)> {
        match self {
            FunTalError::Lex(e) => Some((e.line, e.col)),
            FunTalError::Parse(e) => Some((e.line, e.col)),
            _ => None,
        }
    }

    /// Short machine-readable category, used by the CLI exit report.
    pub fn stage(&self) -> &'static str {
        match self {
            FunTalError::Lex(_) => "lex",
            FunTalError::Parse(_) => "parse",
            FunTalError::FType(_) | FunTalError::Type(_) => "typecheck",
            FunTalError::Runtime(_) | FunTalError::OutOfFuel { .. } => "run",
            FunTalError::MiniF(_) => "minif",
            FunTalError::Driver(_) => "driver",
            FunTalError::BadJob { stage, .. } => stage,
            FunTalError::Io { .. } => "io",
        }
    }

    /// Convenience constructor for [`FunTalError::Driver`].
    pub fn driver(msg: impl Into<String>) -> FunTalError {
        FunTalError::Driver(msg.into())
    }
}

impl FunTalError {
    /// The bare diagnostic message, without the `error[stage]`/position
    /// envelope that [`Display`](fmt::Display) adds.
    pub fn message(&self) -> String {
        match self {
            // Lex/parse positions live in the envelope (`span`), so the
            // bare message must not repeat them.
            FunTalError::Lex(e) => e.msg.clone(),
            FunTalError::Parse(e) => e.msg.clone(),
            FunTalError::FType(e) => e.to_string(),
            FunTalError::Type(e) => e.to_string(),
            FunTalError::Runtime(e) => e.to_string(),
            FunTalError::MiniF(e) => e.to_string(),
            FunTalError::OutOfFuel { fuel } => {
                format!("out of fuel after {fuel} steps (raise with --fuel)")
            }
            FunTalError::Driver(msg) => msg.clone(),
            FunTalError::BadJob { message, .. } => message.clone(),
            FunTalError::Io { path, cause } => format!("{path}: {cause}"),
        }
    }
}

/// The one canonical rendering, used verbatim by the `funtal` CLI, the
/// batch/serve JSON protocol, and error reports:
/// `error[<stage>][ at <line>:<col>]: <message>`.
///
/// Golden tests pin this format; change it here and nowhere else.
impl fmt::Display for FunTalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error[{}]", self.stage())?;
        if let Some((line, col)) = self.span() {
            write!(f, " at {line}:{col}")?;
        }
        write!(f, ": {}", self.message())
    }
}

impl std::error::Error for FunTalError {}

impl From<LexError> for FunTalError {
    fn from(e: LexError) -> Self {
        FunTalError::Lex(e)
    }
}

impl From<ParseError> for FunTalError {
    fn from(e: ParseError) -> Self {
        FunTalError::Parse(e)
    }
}

impl From<FTypeError> for FunTalError {
    fn from(e: FTypeError) -> Self {
        FunTalError::FType(e)
    }
}

impl From<TypeError> for FunTalError {
    fn from(e: TypeError) -> Self {
        FunTalError::Type(e)
    }
}

impl From<RuntimeError> for FunTalError {
    fn from(e: RuntimeError) -> Self {
        FunTalError::Runtime(e)
    }
}

impl From<MiniFError> for FunTalError {
    fn from(e: MiniFError) -> Self {
        FunTalError::MiniF(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every variant renders as `error[stage][ at l:c]: message` — the
    /// single Display path shared by the CLI and the batch protocol.
    #[test]
    fn canonical_rendering_per_variant() {
        let lex = FunTalError::from(LexError {
            msg: "unexpected `~`".to_string(),
            line: 2,
            col: 7,
        });
        assert_eq!(lex.to_string(), "error[lex] at 2:7: unexpected `~`");

        let parse = FunTalError::from(ParseError {
            msg: "expected `)`".to_string(),
            line: 1,
            col: 3,
        });
        assert_eq!(parse.to_string(), "error[parse] at 1:3: expected `)`");

        let fuel = FunTalError::OutOfFuel { fuel: 99 };
        assert_eq!(
            fuel.to_string(),
            "error[run]: out of fuel after 99 steps (raise with --fuel)"
        );

        let driver = FunTalError::driver("no definition named `f`");
        assert_eq!(driver.to_string(), "error[driver]: no definition named `f`");

        let io = FunTalError::Io {
            path: "missing.ft".to_string(),
            cause: "No such file".to_string(),
        };
        assert_eq!(io.to_string(), "error[io]: missing.ft: No such file");

        // BadJob re-renders the rejecting error verbatim.
        let original = FunTalError::driver("job j1: missing `cmd` field");
        let bad = FunTalError::BadJob {
            stage: original.stage(),
            message: original.message(),
        };
        assert_eq!(bad.to_string(), original.to_string());
    }

    /// Display = envelope + message, and the envelope fields come from
    /// the same accessors the structured protocol uses.
    #[test]
    fn display_agrees_with_structured_fields() {
        let errs = [
            FunTalError::driver("boom"),
            FunTalError::OutOfFuel { fuel: 5 },
            FunTalError::from(ParseError {
                msg: "x".to_string(),
                line: 4,
                col: 9,
            }),
        ];
        for e in errs {
            let want = match e.span() {
                Some((l, c)) => format!("error[{}] at {l}:{c}: {}", e.stage(), e.message()),
                None => format!("error[{}]: {}", e.stage(), e.message()),
            };
            assert_eq!(e.to_string(), want);
        }
    }
}
