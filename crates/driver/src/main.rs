//! The `funtal` command-line interface: drive the whole pipeline over
//! concrete-syntax files.
//!
//! ```text
//! funtal check   FILE.ft...            parse + typecheck, print each type
//! funtal run     FILE.ft [--trace]     evaluate to a value (--steps, --guard, --fuel N)
//! funtal trace   FILE.ft               evaluate, print the control-flow diagram
//! funtal profile FILE.ft               evaluate, print the span-attributed fuel profile
//! funtal compile FILE.mf [--tco]       compile MiniF to T (--call NAME ARGS.. to run)
//! funtal equiv   A.ft B.ft             bounded logical-relation comparison
//! ```

#![forbid(unsafe_code)]

use std::process::ExitCode;

use funtal::machine::EvalStrategy;
use funtal_compile::codegen::CodegenOpts;
use funtal_driver::{Batch, FunTalError, Job, JobKind, Pipeline};
use funtal_equiv::EquivCfg;

const USAGE: &str = "funtal — the FunTAL multi-language driver

USAGE:
    funtal <COMMAND> [OPTIONS] <FILE>...

COMMANDS:
    check    FILE.ft...     parse and typecheck; print each program's type
    run      FILE.ft        typecheck and evaluate; print the resulting value
    trace    FILE.ft        like `run`, but print the control-flow diagram
                            (Fig 4 / Fig 12 of the paper)
    profile  FILE.ft|.mf    like `run`, but print where the fuel went: a
                            hot-span table attributing every machine step
                            to its source region (.mf needs --call; the
                            profile is identical on every --tier)
    compile  FILE.mf        compile a MiniF program to T assembly and print
                            the boundary-wrapped result
    lint     FILE...        run the static analyses over .ft/.mf sources:
                            deterministic span-attributed diagnostics
                            (dead register writes, unreachable blocks,
                            unused heap fragments, shadowed binders,
                            constant boundary imports) plus certified
                            static fuel bounds as notes; exits non-zero
                            on errors (and on warnings under --deny)
    equiv    A.ft B.ft      compare two programs with the bounded logical
                            relation (Section 5)
    batch    JOBS...        run many jobs on a worker pool with shared
                            content-addressed caches; JOBS are .jsonl job
                            files (`-` for stdin), or .ft/.mf files taken
                            as run/compile jobs. JSON-lines out.
    serve                   long-lived JSON-lines loop: one job per stdin
                            line, one result per stdout line, caches warm
                            across requests
    store    ACTION         inspect the persistent artifact store
                            (needs --store-dir): `stats` prints per-stage
                            entry counts and sizes, `gc` enforces the
                            size cap (least-recently-used eviction),
                            `verify` re-checks every entry's container
                            and payload and exits non-zero on corruption

OPTIONS:
    --fuel N        evaluation step bound          [default: 1000000]
    --strategy S    evaluation strategy: `environment` (fast, default),
                    `substitution` (the paper-literal Fig 8 oracle), or
                    `bytecode` (the direct-threaded tier)
    --tier T        execution tier: `substitution`, `environment`, or
                    `bytecode` — the strategy ladder under its tier
                    name; same as --strategy
    --guard         enable the dynamic type-safety guard at T jumps
    --steps         print step counts after `run`
    --trace         with `run`: also print the control-flow diagram
    --verify-bytecode
                    with `run`: verify the lowered bytecode (register
                    initialization, jump-offset bounds, the fused-cost
                    table) before executing anything
    --deny warnings with `lint`: exit non-zero when any warning-level
                    finding survives (the CI gate)
    --format F      with `profile`: `table` (default), `folded`
                    (flamegraph-collapsed stack lines), or `json`;
                    with `lint`: `table` (default) or `json`
    --tco           with `compile`: loopify self tail calls
    --call NAME N.. with `compile`: apply definition NAME to integer
                    arguments and print the value
    --samples N     with `equiv`: experiments per type   [default: 12]
    --seed N        with `equiv`: RNG seed
    --depth N       with `equiv`: input-generation depth
    --workers N     with `batch`: worker threads          [default: 1]
    --repeat K      with `batch`: submit the job list K times (repeat
                    r >= 2 suffixes ids with #r; exercises the caches)
    --store-dir DIR with `batch`/`serve`/`store`: directory of the
                    persistent artifact store; computed artifacts are
                    written through and later processes warm-start
                    from disk (every load is verified, corrupt entries
                    degrade to recompute)
    --store-cap N   with --store-dir: store size cap in bytes before
                    least-recently-used eviction (0 = unlimited)
                                            [default: 268435456]
    -h, --help      print this help
";

struct Opts {
    files: Vec<String>,
    /// `Some` only when `--fuel` was given explicitly; `run` and
    /// `equiv` have different defaults.
    fuel: Option<u64>,
    strategy: EvalStrategy,
    guard: bool,
    steps: bool,
    trace: bool,
    tco: bool,
    call: Option<(String, Vec<i64>)>,
    format: String,
    samples: usize,
    seed: u64,
    depth: u32,
    workers: usize,
    repeat: usize,
    verify_bytecode: bool,
    deny_warnings: bool,
    store_dir: Option<String>,
    store_cap: u64,
}

fn parse_args(args: &[String]) -> Result<Opts, FunTalError> {
    let defaults = EquivCfg::default();
    let mut o = Opts {
        files: Vec::new(),
        fuel: None,
        strategy: EvalStrategy::default(),
        guard: false,
        steps: false,
        trace: false,
        tco: false,
        call: None,
        format: "table".to_string(),
        samples: defaults.samples,
        seed: defaults.seed,
        depth: defaults.depth,
        workers: 1,
        repeat: 1,
        verify_bytecode: false,
        deny_warnings: false,
        store_dir: None,
        store_cap: 256 * 1024 * 1024,
    };
    let mut i = 0;
    let take = |args: &[String], i: &mut usize, flag: &str| -> Result<String, FunTalError> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| FunTalError::driver(format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--fuel" => o.fuel = Some(parse_num(&take(args, &mut i, "--fuel")?, "--fuel")?),
            flag @ ("--strategy" | "--tier") => {
                let name = take(args, &mut i, flag)?;
                o.strategy = funtal_driver::parse_tier(&name).ok_or_else(|| {
                    FunTalError::driver(format!(
                        "{flag}: `{name}` is not a tier \
                         (use `environment`, `substitution`, or `bytecode`)"
                    ))
                })?;
            }
            "--format" => {
                let name = take(args, &mut i, "--format")?;
                if !matches!(name.as_str(), "table" | "folded" | "json") {
                    return Err(FunTalError::driver(format!(
                        "--format: `{name}` is not a profile format \
                         (use `table`, `folded`, or `json`)"
                    )));
                }
                o.format = name;
            }
            "--guard" => o.guard = true,
            "--steps" => o.steps = true,
            "--trace" => o.trace = true,
            "--tco" => o.tco = true,
            "--verify-bytecode" => o.verify_bytecode = true,
            "--deny" => {
                let what = take(args, &mut i, "--deny")?;
                if what != "warnings" {
                    return Err(FunTalError::driver(format!(
                        "--deny: `{what}` is not a deniable class (use `warnings`)"
                    )));
                }
                o.deny_warnings = true;
            }
            "--samples" => {
                o.samples = parse_num::<usize>(&take(args, &mut i, "--samples")?, "--samples")?
            }
            "--seed" => o.seed = parse_num(&take(args, &mut i, "--seed")?, "--seed")?,
            "--depth" => o.depth = parse_num(&take(args, &mut i, "--depth")?, "--depth")?,
            "--workers" => {
                o.workers = parse_num::<usize>(&take(args, &mut i, "--workers")?, "--workers")?
            }
            "--repeat" => {
                o.repeat = parse_num::<usize>(&take(args, &mut i, "--repeat")?, "--repeat")?.max(1)
            }
            "--store-dir" => o.store_dir = Some(take(args, &mut i, "--store-dir")?),
            "--store-cap" => {
                o.store_cap = parse_num(&take(args, &mut i, "--store-cap")?, "--store-cap")?
            }
            "--call" => {
                let name = take(args, &mut i, "--call")?;
                let mut call_args = Vec::new();
                while let Some(n) = args.get(i + 1).and_then(|a| a.parse::<i64>().ok()) {
                    call_args.push(n);
                    i += 1;
                }
                o.call = Some((name, call_args));
            }
            flag if flag.starts_with("--") => {
                return Err(FunTalError::driver(format!("unknown option `{flag}`")))
            }
            file => o.files.push(file.to_string()),
        }
        i += 1;
    }
    Ok(o)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, FunTalError> {
    s.parse()
        .map_err(|_| FunTalError::driver(format!("{flag}: `{s}` is not a valid number")))
}

fn read_file(path: &str) -> Result<String, FunTalError> {
    std::fs::read_to_string(path).map_err(|e| FunTalError::Io {
        path: path.to_string(),
        cause: e.to_string(),
    })
}

fn one_file<'a>(o: &'a Opts, cmd: &str) -> Result<&'a str, FunTalError> {
    match o.files.as_slice() {
        [f] => Ok(f),
        _ => Err(FunTalError::driver(format!(
            "`funtal {cmd}` takes exactly one file (got {})",
            o.files.len()
        ))),
    }
}

impl Opts {
    /// The run-stage fuel bound.
    fn run_fuel(&self) -> u64 {
        self.fuel.unwrap_or(1_000_000)
    }
}

fn pipeline(o: &Opts) -> Pipeline {
    Pipeline::new()
        .with_fuel(o.run_fuel())
        .with_strategy(o.strategy)
        .with_guard(o.guard)
        .with_codegen(CodegenOpts {
            tail_call_opt: o.tco,
        })
        .with_equiv_cfg(EquivCfg {
            // An explicit --fuel overrides the per-experiment bound in
            // both directions; otherwise keep the equiv default.
            fuel: o.fuel.unwrap_or(EquivCfg::default().fuel),
            samples: o.samples,
            depth: o.depth,
            seed: o.seed,
        })
}

fn cmd_check(o: &Opts) -> Result<(), FunTalError> {
    if o.files.is_empty() {
        return Err(FunTalError::driver(
            "`funtal check` needs at least one file",
        ));
    }
    let p = pipeline(o);
    for file in &o.files {
        let checked = p.check_source(&read_file(file)?)?;
        println!("{file}: {}", checked.ty);
    }
    Ok(())
}

fn cmd_run(o: &Opts) -> Result<(), FunTalError> {
    let file = one_file(o, "run")?;
    let p = pipeline(o);
    let src = read_file(file)?;
    if o.verify_bytecode {
        // Lower and verify before anything executes — the same check
        // that guards `prelower` under debug assertions and cache
        // loads, on demand in release builds.
        let e = p.parse(&src)?;
        p.check(&e)?;
        let lowered = funtal::prelower(&e);
        funtal::verify_lowered(&lowered)
            .map_err(|err| FunTalError::driver(format!("--verify-bytecode: {err}")))?;
        println!("verify: {} bytecode module(s) OK", lowered.module_count());
    }
    let report = if o.trace {
        let traced = p.trace_source(&src)?;
        println!("type:   {}", traced.ty);
        print!("{}", traced.render());
        funtal_driver::RunReport {
            ty: traced.ty.clone(),
            outcome: traced.outcome.clone(),
            counts: traced.counts(),
            fuel: o.run_fuel(),
        }
    } else {
        let report = p.run_source(&src)?;
        println!("type:   {}", report.ty);
        report
    };
    // Exhausting the fuel bound is a failed run for scripting purposes.
    if matches!(report.outcome, funtal::machine::FtOutcome::OutOfFuel) {
        return Err(FunTalError::OutOfFuel { fuel: o.run_fuel() });
    }
    println!("{}", report.outcome_line());
    if o.steps {
        println!("{}", report.counts_line());
    }
    Ok(())
}

fn cmd_trace(o: &Opts) -> Result<(), FunTalError> {
    let file = one_file(o, "trace")?;
    let report = pipeline(o).trace_source(&read_file(file)?)?;
    println!("type:   {}", report.ty);
    print!("{}", report.render());
    println!("{}", report.counts_line());
    Ok(())
}

fn cmd_profile(o: &Opts) -> Result<(), FunTalError> {
    let file = one_file(o, "profile")?;
    let p = pipeline(o);
    let src = read_file(file)?;
    let report = if file.ends_with(".mf") {
        let Some((name, args)) = &o.call else {
            return Err(FunTalError::driver(
                "`funtal profile` over a .mf file needs --call NAME ARGS..",
            ));
        };
        let (program, def_spans) = funtal_driver::minif::parse_minif_spanned(&src)?;
        let bundle = p.compile_minif(&program)?;
        p.profile_compiled(&bundle, name, args, &def_spans)?
    } else {
        p.profile_source(&src)?
    };
    if matches!(report.run.outcome, funtal::machine::FtOutcome::OutOfFuel) {
        return Err(FunTalError::OutOfFuel { fuel: o.run_fuel() });
    }
    match o.format.as_str() {
        // Pure folded lines: pipe straight into flamegraph tooling.
        "folded" => print!("{}", report.profiler.render_folded()),
        "json" => println!("{}", report.profile_json()),
        _ => {
            println!("type:   {}", report.run.ty);
            println!("{}", report.run.outcome_line());
            print!("{}", report.profiler.render_table());
        }
    }
    Ok(())
}

fn cmd_compile(o: &Opts) -> Result<(), FunTalError> {
    let file = one_file(o, "compile")?;
    let p = pipeline(o);
    let bundle = p.compile_minif_source(&read_file(file)?)?;
    println!(
        "// {} definition(s), {} T block(s), tail_call_opt: {}",
        bundle.program.defs.len(),
        bundle.block_count(),
        o.tco,
    );
    print!("{bundle}");
    if let Some((name, args)) = &o.call {
        let report = p.run_compiled(&bundle, name, args)?;
        let rendered = args
            .iter()
            .map(i64::to_string)
            .collect::<Vec<_>>()
            .join(", ");
        println!("// {name}({rendered}) = {}", report.value()?);
    }
    Ok(())
}

/// Renders one diagnostic line: `file:line:col: severity[rule]: msg`,
/// with the position omitted for synthetic spans (whole-program
/// findings and generated code).
fn render_diag(d: &funtal::Diagnostic) -> String {
    if d.span == funtal_syntax::span::Span::SYNTH {
        format!("{}: {}[{}]: {}", d.file, d.severity, d.rule, d.message)
    } else {
        format!(
            "{}:{}:{}: {}[{}]: {}",
            d.file, d.span.line, d.span.col, d.severity, d.rule, d.message
        )
    }
}

fn lint_json(diags: &[funtal::Diagnostic], files: usize) -> funtal_driver::json::Json {
    use funtal_driver::json::{obj, Json};
    let count = |s| diags.iter().filter(|d| d.severity == s).count() as i64;
    obj([
        ("lint", Json::Bool(true)),
        ("files", Json::Int(files as i64)),
        (
            "findings",
            Json::Arr(
                diags
                    .iter()
                    .map(|d| {
                        obj([
                            ("file", Json::Str(d.file.clone())),
                            ("line", Json::Int(d.span.line as i64)),
                            ("col", Json::Int(d.span.col as i64)),
                            ("rule", Json::Str(d.rule.clone())),
                            ("severity", Json::Str(d.severity.to_string())),
                            ("message", Json::Str(d.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("errors", Json::Int(count(funtal::Severity::Error))),
        ("warnings", Json::Int(count(funtal::Severity::Warning))),
        ("notes", Json::Int(count(funtal::Severity::Note))),
    ])
}

fn cmd_lint(o: &Opts) -> Result<(), FunTalError> {
    if o.files.is_empty() {
        return Err(FunTalError::driver("`funtal lint` needs at least one file"));
    }
    let p = pipeline(o);
    let mut diags = Vec::new();
    // Files keep their command-line order; findings within a file are
    // already in the deterministic normal form.
    for file in &o.files {
        let src = read_file(file)?;
        if file.ends_with(".mf") {
            diags.extend(p.lint_minif_source(file, &src)?);
        } else {
            diags.extend(p.lint_source(file, &src)?);
        }
    }
    let count = |s| diags.iter().filter(|d| d.severity == s).count();
    let errors = count(funtal::Severity::Error);
    let warnings = count(funtal::Severity::Warning);
    let notes = count(funtal::Severity::Note);
    if o.format == "json" {
        println!("{}", lint_json(&diags, o.files.len()));
    } else {
        for d in &diags {
            println!("{}", render_diag(d));
        }
        println!(
            "lint: {errors} error(s), {warnings} warning(s), {notes} note(s) in {} file(s)",
            o.files.len()
        );
    }
    if errors > 0 {
        return Err(FunTalError::driver(format!("lint found {errors} error(s)")));
    }
    if o.deny_warnings && warnings > 0 {
        return Err(FunTalError::driver(format!(
            "lint found {warnings} warning(s) (denied by --deny warnings)"
        )));
    }
    Ok(())
}

fn cmd_equiv(o: &Opts) -> Result<(), FunTalError> {
    let (a, b) = match o.files.as_slice() {
        [a, b] => (a, b),
        _ => {
            return Err(FunTalError::driver(
                "`funtal equiv` takes exactly two files",
            ))
        }
    };
    let (ty, verdict) = pipeline(o).equiv_source(&read_file(a)?, &read_file(b)?)?;
    println!("type:    {ty}");
    println!("verdict: {verdict}");
    if !verdict.is_equiv() {
        return Err(FunTalError::driver("programs are observably different"));
    }
    Ok(())
}

/// Builds the job list for `funtal batch`: `.jsonl`/`.json` files (or
/// `-` for stdin) are JSON-lines job streams; `.ft` files become `run`
/// jobs and `.mf` files `compile` jobs, with ids from the file path.
fn batch_jobs(o: &Opts) -> Result<Vec<Job>, FunTalError> {
    let mut jobs = Vec::new();
    for file in &o.files {
        if file == "-" {
            let mut text = String::new();
            use std::io::Read;
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| FunTalError::Io {
                    path: "<stdin>".to_string(),
                    cause: e.to_string(),
                })?;
            jobs.extend(Job::parse_jsonl(&text));
        } else if file.ends_with(".jsonl") || file.ends_with(".json") {
            jobs.extend(Job::parse_jsonl(&read_file(file)?));
        } else if file.ends_with(".mf") {
            let mut job = Job::compile(file.clone(), read_file(file)?);
            if let (
                Job {
                    kind: JobKind::Compile { tco, call, .. },
                    ..
                },
                true,
            ) = (&mut job, o.tco || o.call.is_some())
            {
                *tco = o.tco;
                call.clone_from(&o.call);
            }
            jobs.push(job);
        } else if file.ends_with(".ft") {
            jobs.push(Job::run(file.clone(), read_file(file)?));
        } else {
            return Err(FunTalError::driver(format!(
                "`funtal batch`: cannot tell what `{file}` is \
                 (use .jsonl/.json job files, .ft, .mf, or `-` for stdin)"
            )));
        }
    }
    if jobs.is_empty() {
        return Err(FunTalError::driver(
            "`funtal batch` needs at least one job (a .jsonl file, `-`, or .ft/.mf files)",
        ));
    }
    if o.repeat > 1 {
        let base = jobs.clone();
        for r in 2..=o.repeat {
            jobs.extend(base.iter().map(|j| Job {
                id: format!("{}#{r}", j.id),
                kind: j.kind.clone(),
            }));
        }
    }
    Ok(jobs)
}

/// Opens the persistent artifact store named by `--store-dir`, if any.
fn open_store(o: &Opts) -> Result<Option<std::sync::Arc<funtal_driver::DiskStore>>, FunTalError> {
    match &o.store_dir {
        None => Ok(None),
        Some(dir) => funtal_driver::DiskStore::open(dir, o.store_cap)
            .map(|s| Some(std::sync::Arc::new(s)))
            .map_err(|e| FunTalError::Io {
                path: dir.clone(),
                cause: e.to_string(),
            }),
    }
}

/// A batch/serve engine cache, disk-backed when `--store-dir` is given.
fn engine_cache(o: &Opts) -> Result<std::sync::Arc<funtal_driver::ArtifactCache>, FunTalError> {
    Ok(std::sync::Arc::new(match open_store(o)? {
        Some(store) => funtal_driver::ArtifactCache::with_store(store),
        None => funtal_driver::ArtifactCache::new(),
    }))
}

fn cmd_batch(o: &Opts) -> Result<(), FunTalError> {
    let jobs = batch_jobs(o)?;
    let engine = Batch::new(pipeline(o))
        .with_workers(o.workers)
        .with_cache(engine_cache(o)?);
    let report = engine.run(&jobs);
    print!("{}", report.result_lines());
    println!("{}", report.summary_json());
    if report.err_count() > 0 {
        return Err(FunTalError::driver(format!(
            "{} of {} job(s) failed",
            report.err_count(),
            jobs.len()
        )));
    }
    Ok(())
}

fn cmd_serve(o: &Opts) -> Result<(), FunTalError> {
    if !o.files.is_empty() {
        return Err(FunTalError::driver(
            "`funtal serve` reads jobs from stdin (no file arguments)",
        ));
    }
    if o.workers > 1 {
        return Err(FunTalError::driver(
            "`funtal serve` processes requests in arrival order (one at a time); \
             `--workers` applies to `funtal batch`",
        ));
    }
    let engine = Batch::new(pipeline(o)).with_cache(engine_cache(o)?);
    let stdin = std::io::stdin();
    let mut served = 0usize;
    let mut failed = 0usize;
    let mut lineno = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        use std::io::{BufRead, Write};
        if stdin
            .lock()
            .read_line(&mut line)
            .map_err(|e| FunTalError::Io {
                path: "<stdin>".to_string(),
                cause: e.to_string(),
            })?
            == 0
        {
            break; // EOF: client hung up.
        }
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        served += 1;
        // Fallback ids use the 1-based input line number, exactly as
        // `Job::parse_jsonl` does for batch job files.
        let fallback = format!("job{lineno}");
        let parsed = funtal_driver::json::Json::parse(trimmed)
            .map_err(|e| FunTalError::driver(format!("bad job line: {e}")));
        // Even when the job is invalid, echo the client's own id if
        // one was given — clients correlate replies by id.
        let reply_id = parsed
            .as_ref()
            .ok()
            .and_then(|v| match v.get("id") {
                Some(funtal_driver::json::Json::Str(s)) => Some(s.clone()),
                Some(funtal_driver::json::Json::Int(n)) => Some(n.to_string()),
                _ => None,
            })
            .unwrap_or_else(|| fallback.clone());
        let outcome = match parsed.and_then(|v| Job::from_json(&v, &fallback)) {
            Ok(job) => engine.run_job(&job),
            Err(e) => funtal_driver::JobOutcome {
                id: reply_id,
                cmd: "serve",
                result: Err(e),
            },
        };
        if outcome.result.is_err() {
            failed += 1;
        }
        println!("{}", outcome.to_json());
        std::io::stdout().flush().ok();
    }
    // The parting summary goes to stderr so stdout stays pure
    // protocol — the same schema `funtal batch` prints, via the one
    // shared renderer.
    eprintln!(
        "{}",
        funtal_driver::batch::render_summary(
            &engine.cache().stats(),
            engine.cache().store_stats().as_ref(),
            served,
            served - failed,
            failed,
            engine.workers(),
        )
    );
    Ok(())
}

/// `funtal store stats|gc|verify --store-dir DIR`: offline maintenance
/// of the persistent artifact store.
fn cmd_store(o: &Opts) -> Result<(), FunTalError> {
    use funtal_store::{parse_container, Stage};
    let action = match o.files.as_slice() {
        [a] => a.as_str(),
        _ => {
            return Err(FunTalError::driver(
                "`funtal store` takes exactly one action: stats, gc, or verify",
            ))
        }
    };
    let Some(dir) = &o.store_dir else {
        return Err(FunTalError::driver("`funtal store` needs --store-dir DIR"));
    };
    let store = funtal_driver::DiskStore::open(dir, o.store_cap).map_err(|e| FunTalError::Io {
        path: dir.clone(),
        cause: e.to_string(),
    })?;
    let io_err = |e: std::io::Error| FunTalError::Io {
        path: dir.clone(),
        cause: e.to_string(),
    };
    match action {
        "stats" => {
            let mut total_entries = 0usize;
            let mut total_bytes = 0u64;
            println!("store: {dir} (cap: {} bytes)", store.cap_bytes());
            for stage in Stage::ALL {
                let entries = store.entries(stage).map_err(io_err)?;
                let bytes: u64 = entries.iter().map(|e| e.bytes).sum();
                total_entries += entries.len();
                total_bytes += bytes;
                println!(
                    "{:<8} {} entrie(s), {} byte(s)",
                    format!("{}:", stage.dir()),
                    entries.len(),
                    bytes
                );
            }
            println!("total:   {total_entries} entrie(s), {total_bytes} byte(s)");
            Ok(())
        }
        "gc" => {
            let report = store.gc().map_err(io_err)?;
            println!(
                "gc: examined {}, removed {}, {} -> {} byte(s) (cap: {})",
                report.examined,
                report.removed,
                report.bytes_before,
                report.bytes_after,
                store.cap_bytes()
            );
            Ok(())
        }
        "verify" => {
            // A read-only walk: every entry's container must parse for
            // its own stage and its payload must decode (and, for
            // lowerings, pass the bytecode verifier) — the exact gate
            // a load would apply, without counters or deletions.
            let mut ok = 0usize;
            let mut corrupt = 0usize;
            for entry in store.all_entries().map_err(io_err)? {
                let bytes = std::fs::read(&entry.path).map_err(io_err)?;
                let verdict = match parse_container(&bytes, Some(entry.stage), None) {
                    Err(e) => Err(e.to_string()),
                    Ok((_, _, payload)) => match entry.stage {
                        Stage::Parse => funtal_driver::artifact::decode_parsed(&payload)
                            .map(|_| ())
                            .map_err(|e| e.to_string()),
                        Stage::Check => funtal_driver::artifact::decode_checked(&payload)
                            .map(|_| ())
                            .map_err(|e| e.to_string()),
                        Stage::Lower => funtal::decode_lowered(&payload)
                            .map_err(|e| e.to_string())
                            .and_then(|lp| funtal::verify_lowered(&lp).map_err(|e| e.to_string())),
                        Stage::Compile => funtal_driver::artifact::decode_compiled(&payload)
                            .map(|_| ())
                            .map_err(|e| e.to_string()),
                    },
                };
                match verdict {
                    Ok(()) => ok += 1,
                    Err(msg) => {
                        corrupt += 1;
                        println!("corrupt: {} ({msg})", entry.path.display());
                    }
                }
            }
            println!("verify: {ok} entrie(s) OK, {corrupt} corrupt");
            if corrupt > 0 {
                return Err(FunTalError::driver(format!(
                    "store verify found {corrupt} corrupt entrie(s)"
                )));
            }
            Ok(())
        }
        other => Err(FunTalError::driver(format!(
            "`funtal store`: unknown action `{other}` (use stats, gc, or verify)"
        ))),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `funtal help`, `funtal --help`, or `-h`/`--help` anywhere.
    if matches!(cmd.as_str(), "-h" | "--help" | "help")
        || args.iter().any(|a| a == "-h" || a == "--help")
    {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let rest = &args[1..];
    let result = parse_args(rest).and_then(|o| match cmd.as_str() {
        "check" => cmd_check(&o),
        "run" => cmd_run(&o),
        "trace" => cmd_trace(&o),
        "profile" => cmd_profile(&o),
        "compile" => cmd_compile(&o),
        "lint" => cmd_lint(&o),
        "equiv" => cmd_equiv(&o),
        "batch" => cmd_batch(&o),
        "serve" => cmd_serve(&o),
        "store" => cmd_store(&o),
        other => Err(FunTalError::driver(format!(
            "unknown command `{other}` (try `funtal --help`)"
        ))),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // The canonical `error[stage][ at l:c]: message` rendering
            // is FunTalError's Display — one path for CLI and batch.
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
