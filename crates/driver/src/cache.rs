//! Content-addressed caches for pipeline artifacts.
//!
//! Batch workloads re-submit the same programs over and over (the
//! serving story of the ROADMAP), so the batch engine memoizes every
//! pure pipeline stage:
//!
//! | stage          | key (full content, collision-proof)        | artifact             |
//! |----------------|--------------------------------------------|----------------------|
//! | parse          | the source text                            | `Arc<Parsed>` (term + its rendering) |
//! | FT typecheck   | the parsed term's canonical rendering      | `Arc<FTy>`           |
//! | bytecode lower | the parsed term's canonical rendering      | `Arc<LoweredProgram>` |
//! | MiniF compile  | the source text + codegen options          | `Arc<CompiledMiniF>` |
//!
//! The in-process maps key on the **full content** (a cache must never
//! serve another program's artifact, so a 64-bit digest alone is not a
//! key — a long-lived `funtal serve` would turn a digest collision
//! into a silently wrong answer). The FNV-1a digests of
//! [`funtal_syntax::hash`] remain the stage's *content addresses* —
//! [`source_key`]/[`term_key`]/[`compile_key`] expose them for
//! reporting, distinct-key accounting in tests, and any future
//! persistent or distributed tier, and `IExpr::stable_hash` memoizes
//! the same term digest at the intern layer.
//!
//! Keying the typecheck stage on the *term* rather than the source
//! means two differently-formatted sources of the same program share
//! one typecheck. Evaluation is never cached — it is the work a job
//! asks for — so a warm cache turns `run` into hash + eval, which is
//! what the hit counters in the batch report prove.
//!
//! All maps are `Mutex<HashMap>` behind one [`ArtifactCache`] that
//! workers share via `Arc`. Lookups hold a lock only for the map
//! probe, never while computing a missing artifact, so a miss costs
//! the stage itself plus two probes. Two workers racing on the same
//! cold key may both compute it (both count as misses; last insert
//! wins — the artifacts are pure, so the duplicates are identical),
//! which keeps `hits + misses == lookups` as the cross-thread
//! invariant the stress tests assert.
//!
//! # The persistent tier
//!
//! A cache opened [`with_store`](ArtifactCache::with_store) layers a
//! disk-backed [`DiskStore`] *below* the in-process maps:
//!
//! ```text
//! memory probe → disk probe (verify-on-load) → compute (write-through)
//! ```
//!
//! A memory miss still counts as a memory miss — the in-process
//! counters keep their exact storeless semantics — and the disk tier
//! keeps its own per-stage hit/miss/reject counters
//! ([`store_stats`](ArtifactCache::store_stats)). Every disk load is
//! re-verified before it is served: the container layer already proved
//! magic/version/checksum/full-key, and this layer re-decodes the
//! payload (total, never panics) plus re-runs `verify_lowered` for
//! lowered bytecode. Anything that fails is a *reject*: the entry is
//! deleted, the counters record it, and the stage degrades to
//! recompute — a corrupt store can cost time, never correctness.
//! Computed artifacts are written through (errors are not stored), so
//! a second process pointed at the same `--store-dir` warm-starts
//! every stage.
//!
//! [`source_key`]: ArtifactCache::source_key
//! [`term_key`]: ArtifactCache::term_key
//! [`compile_key`]: ArtifactCache::compile_key

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use funtal_store::{DiskStore, Stage, StoreStats};
use funtal_syntax::hash::{hash_fexpr, StableHasher};
use funtal_syntax::span::SpanTable;
use funtal_syntax::{FExpr, FTy};

use crate::artifact;
use crate::report::CompiledMiniF;

/// Hit/miss counters for one cached stage.
#[derive(Debug, Default)]
pub struct StageCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    rejects: AtomicU64,
}

impl StageCounters {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn reject(&self) {
        self.rejects.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StageStats {
        StageStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejects: self.rejects.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one stage's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the artifact.
    pub misses: u64,
    /// Cached artifacts that failed verify-on-load and were discarded
    /// (each reject also counts as a miss: the stage recomputed).
    /// Only the `lower` stage verifies today, so it stays `0`
    /// elsewhere.
    pub rejects: u64,
}

impl StageStats {
    /// Total lookups (`hits + misses` by construction).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }
}

/// A point-in-time copy of every stage's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// The parse stage (`.ft` sources).
    pub parse: StageStats,
    /// The FT typecheck stage.
    pub check: StageStats,
    /// The bytecode lowering stage (`--tier bytecode` runs).
    pub lower: StageStats,
    /// The MiniF parse+compile stage (`.mf` sources).
    pub compile: StageStats,
}

struct Shard<K, V> {
    map: Mutex<HashMap<K, Arc<V>>>,
    counters: StageCounters,
}

impl<K, V> Default for Shard<K, V> {
    fn default() -> Self {
        Shard {
            map: Mutex::new(HashMap::new()),
            counters: StageCounters::default(),
        }
    }
}

impl<K: std::hash::Hash + Eq, V> Shard<K, V> {
    /// Returns the cached artifact or computes, stores, and returns it.
    /// The lock is held only for the probes; `compute` runs unlocked.
    /// The map compares **full keys** on probe, so a digest collision
    /// can never alias two programs.
    fn get_or_try_insert<E>(
        &self,
        key: K,
        compute: impl FnOnce() -> Result<V, E>,
    ) -> Result<Arc<V>, E> {
        if let Some(found) = self.map.lock().expect("cache poisoned").get(&key) {
            self.counters.hit();
            return Ok(found.clone());
        }
        self.counters.miss();
        let value = Arc::new(compute()?);
        self.map
            .lock()
            .expect("cache poisoned")
            .insert(key, value.clone());
        Ok(value)
    }
}

/// A cached parse artifact: the term plus its canonical rendering.
///
/// The rendering doubles as the typecheck stage's cache key, computed
/// once per distinct source at parse-miss time — so a warm `run` is
/// genuinely two map probes, with no per-request re-rendering of the
/// program.
#[derive(Debug)]
pub struct Parsed {
    /// The parsed term.
    pub expr: FExpr,
    /// Its canonical rendering (the typecheck cache key).
    pub check_key: String,
    /// Source spans of the term's heap labels, for profiled runs.
    pub spans: Arc<SpanTable>,
}

/// The shared content-addressed cache for parse, typecheck, and MiniF
/// compile artifacts. Cheap to clone via `Arc`; share one across every
/// worker of a batch (and across batches in `funtal serve`).
#[derive(Default)]
pub struct ArtifactCache {
    parse: Shard<String, Parsed>,
    check: Shard<String, FTy>,
    lower: Shard<String, funtal::LoweredProgram>,
    compile: Shard<(String, bool), CompiledMiniF>,
    /// The persistent tier, probed on memory misses and written
    /// through on computes. `None` (the default) keeps the cache
    /// purely in-process.
    store: Option<Arc<DiskStore>>,
}

// Workers on every thread probe the cache concurrently.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<ArtifactCache>();
};

impl ArtifactCache {
    /// A fresh, empty cache.
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// A fresh cache backed by a persistent [`DiskStore`]: memory
    /// misses probe the disk tier (verify-on-load) before computing,
    /// and computed artifacts are written through.
    pub fn with_store(store: Arc<DiskStore>) -> ArtifactCache {
        ArtifactCache {
            store: Some(store),
            ..ArtifactCache::default()
        }
    }

    /// The persistent tier, when one is configured.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.store.as_ref()
    }

    /// A point-in-time copy of the disk-tier counters, when a store is
    /// configured.
    pub fn store_stats(&self) -> Option<StoreStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Probes the disk tier (if any) for `key`, decoding and verifying
    /// with `decode`. A payload that fails decode/verify is a reject:
    /// the entry is deleted and the probe reports a (disk) miss.
    fn disk_probe<V>(
        &self,
        stage: Stage,
        key: &[u8],
        decode: impl FnOnce(&[u8]) -> Option<V>,
    ) -> Option<V> {
        let store = self.store.as_deref()?;
        let payload = store.load(stage, key)?;
        match decode(&payload) {
            Some(value) => {
                store.hit(stage);
                Some(value)
            }
            None => {
                store.reject(stage, key);
                None
            }
        }
    }

    /// Writes a computed artifact through to the disk tier (if any).
    /// Write failures are deliberately swallowed: the store is a
    /// cache, and a full or read-only disk must not fail the job.
    fn disk_save(&self, stage: Stage, key: &[u8], encode: impl FnOnce() -> Vec<u8>) {
        if let Some(store) = &self.store {
            let _ = store.save(stage, key, &encode());
        }
    }

    /// The 64-bit content address of a source text (reporting and
    /// persistent tiers; the in-process map keys on the text itself).
    pub fn source_key(src: &str) -> u64 {
        funtal_syntax::hash::hash_str(src)
    }

    /// The 64-bit content address of a parsed term — the digest of its
    /// canonical rendering, identical to what
    /// `funtal_syntax::intern::IExpr::stable_hash` memoizes.
    pub fn term_key(e: &FExpr) -> u64 {
        hash_fexpr(e)
    }

    /// The 64-bit content address of a MiniF compilation:
    /// source ⊕ codegen options.
    pub fn compile_key(src: &str, tail_call_opt: bool) -> u64 {
        let mut h = StableHasher::new();
        h.write_field("minif");
        h.write_field(src);
        h.write_u64(tail_call_opt as u64);
        h.finish()
    }

    /// The parse artifact for a source, from cache or `compute`. The
    /// artifact carries the term's canonical rendering, so downstream
    /// typecheck lookups ([`check_keyed`](ArtifactCache::check_keyed))
    /// never re-render on the warm path.
    pub fn parse<E>(
        &self,
        src: &str,
        compute: impl FnOnce() -> Result<(FExpr, SpanTable), E>,
    ) -> Result<Arc<Parsed>, E> {
        if let Some(found) = self.parse.map.lock().expect("cache poisoned").get(src) {
            self.parse.counters.hit();
            return Ok(found.clone());
        }
        self.parse.counters.miss();
        if let Some(parsed) = self.disk_probe(Stage::Parse, src.as_bytes(), |bytes| {
            artifact::decode_parsed(bytes).ok()
        }) {
            let value = Arc::new(parsed);
            self.parse
                .map
                .lock()
                .expect("cache poisoned")
                .insert(src.to_string(), value.clone());
            return Ok(value);
        }
        let (expr, spans) = compute()?;
        let value = Arc::new(Parsed {
            check_key: expr.to_string(),
            expr,
            spans: Arc::new(spans),
        });
        self.disk_save(Stage::Parse, src.as_bytes(), || {
            artifact::encode_parsed(&value)
        });
        self.parse
            .map
            .lock()
            .expect("cache poisoned")
            .insert(src.to_string(), value.clone());
        Ok(value)
    }

    /// The type of a term whose canonical rendering the caller already
    /// holds (a [`Parsed`] artifact's `check_key`): a warm lookup is a
    /// single map probe, no rendering, no allocation.
    pub fn check_keyed<E>(
        &self,
        check_key: &str,
        compute: impl FnOnce() -> Result<FTy, E>,
    ) -> Result<Arc<FTy>, E> {
        if let Some(found) = self
            .check
            .map
            .lock()
            .expect("cache poisoned")
            .get(check_key)
        {
            self.check.counters.hit();
            return Ok(found.clone());
        }
        self.check.counters.miss();
        if let Some(ty) = self.disk_probe(Stage::Check, check_key.as_bytes(), |bytes| {
            artifact::decode_checked(bytes).ok()
        }) {
            let value = Arc::new(ty);
            self.check
                .map
                .lock()
                .expect("cache poisoned")
                .insert(check_key.to_string(), value.clone());
            return Ok(value);
        }
        let value = Arc::new(compute()?);
        self.disk_save(Stage::Check, check_key.as_bytes(), || {
            artifact::encode_checked(&value)
        });
        self.check
            .map
            .lock()
            .expect("cache poisoned")
            .insert(check_key.to_string(), value.clone());
        Ok(value)
    }

    /// The type of a term, from cache or `compute`. Keyed on the
    /// term's canonical rendering, so differently formatted sources of
    /// the same program share one typecheck. Renders the term to build
    /// the key; engine code that holds a [`Parsed`] artifact should
    /// use [`check_keyed`](ArtifactCache::check_keyed) instead.
    pub fn check<E>(
        &self,
        term: &FExpr,
        compute: impl FnOnce() -> Result<FTy, E>,
    ) -> Result<Arc<FTy>, E> {
        self.check_keyed(&term.to_string(), compute)
    }

    /// The lowered bytecode artifact for a term whose canonical
    /// rendering the caller already holds (a [`Parsed`] artifact's
    /// `check_key`). Keyed like the typecheck stage — on the term, not
    /// the source — so differently formatted sources of one program
    /// share a single lowering, and a warm `--tier bytecode` run skips
    /// register allocation and fusion entirely.
    ///
    /// Every load out of the cache is re-checked by the bytecode
    /// verifier (`funtal::verify_lowered`). An artifact that no longer
    /// verifies is discarded and recomputed — the reject bumps the
    /// stage's `rejects` counter *and* counts as a miss, so a bad
    /// entry degrades to re-lowering instead of handing the dispatch
    /// loop garbage, and `hits + misses == lookups` stays the
    /// cross-thread invariant. Verification is linear in the module
    /// and runs only here and at lower time, never inside the dispatch
    /// loop (see PERFORMANCE.md).
    pub fn lower_keyed(
        &self,
        check_key: &str,
        compute: impl FnOnce() -> funtal::LoweredProgram,
    ) -> Arc<funtal::LoweredProgram> {
        if let Some(found) = self
            .lower
            .map
            .lock()
            .expect("cache poisoned")
            .get(check_key)
        {
            if funtal::verify_lowered(found).is_ok() {
                self.lower.counters.hit();
                return found.clone();
            }
            self.lower.counters.reject();
        }
        self.lower.counters.miss();
        // The disk probe verifies twice over: the payload must decode
        // (total, structural) *and* the decoded program must pass the
        // bytecode verifier — the same `verify_lowered` gate the
        // in-memory tier applies on every hit.
        if let Some(lowered) = self.disk_probe(Stage::Lower, check_key.as_bytes(), |bytes| {
            funtal::decode_lowered(bytes)
                .ok()
                .filter(|lp| funtal::verify_lowered(lp).is_ok())
        }) {
            let value = Arc::new(lowered);
            self.lower
                .map
                .lock()
                .expect("cache poisoned")
                .insert(check_key.to_string(), value.clone());
            return value;
        }
        let value = Arc::new(compute());
        self.disk_save(Stage::Lower, check_key.as_bytes(), || {
            funtal::encode_lowered(&value)
        });
        self.lower
            .map
            .lock()
            .expect("cache poisoned")
            .insert(check_key.to_string(), value.clone());
        value
    }

    /// The compiled MiniF bundle for a source, from cache or `compute`.
    pub fn compile<E>(
        &self,
        src: &str,
        tail_call_opt: bool,
        compute: impl FnOnce() -> Result<CompiledMiniF, E>,
    ) -> Result<Arc<CompiledMiniF>, E> {
        if self.store.is_none() {
            return self
                .compile
                .get_or_try_insert((src.to_string(), tail_call_opt), compute);
        }
        let key = (src.to_string(), tail_call_opt);
        if let Some(found) = self.compile.map.lock().expect("cache poisoned").get(&key) {
            self.compile.counters.hit();
            return Ok(found.clone());
        }
        self.compile.counters.miss();
        let disk_key = artifact::compile_key(src, tail_call_opt);
        if let Some(bundle) = self.disk_probe(Stage::Compile, &disk_key, |bytes| {
            artifact::decode_compiled(bytes).ok()
        }) {
            let value = Arc::new(bundle);
            self.compile
                .map
                .lock()
                .expect("cache poisoned")
                .insert(key, value.clone());
            return Ok(value);
        }
        let value = Arc::new(compute()?);
        self.disk_save(Stage::Compile, &disk_key, || {
            artifact::encode_compiled(&value)
        });
        self.compile
            .map
            .lock()
            .expect("cache poisoned")
            .insert(key, value.clone());
        Ok(value)
    }

    /// A point-in-time copy of all counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            parse: self.parse.counters.snapshot(),
            check: self.check.counters.snapshot(),
            lower: self.lower.counters.snapshot(),
            compile: self.compile.counters.snapshot(),
        }
    }

    /// Number of distinct artifacts currently cached (all stages).
    pub fn len(&self) -> usize {
        self.parse.map.lock().expect("cache poisoned").len()
            + self.check.map.lock().expect("cache poisoned").len()
            + self.lower.map.lock().expect("cache poisoned").len()
            + self.compile.map.lock().expect("cache poisoned").len()
    }

    /// True when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let cache = ArtifactCache::new();
        let parse = |src: &str| {
            cache.parse(src, || {
                Ok::<_, std::convert::Infallible>((
                    funtal_syntax::build::fint_e(1),
                    SpanTable::default(),
                ))
            })
        };
        parse("1").unwrap();
        parse("1").unwrap();
        parse("2").unwrap();
        let s = cache.stats().parse;
        assert_eq!((s.hits, s.misses), (1, 2));
        assert_eq!(s.lookups(), 3);
    }

    #[test]
    fn errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let r1: Result<_, String> = cache.parse("bad", || Err("nope".to_string()));
        assert!(r1.is_err());
        // The failed computation did not populate the cache.
        let r2 = cache.parse("bad", || {
            Ok::<_, String>((funtal_syntax::build::funit_e(), SpanTable::default()))
        });
        assert!(r2.is_ok());
        let s = cache.stats().parse;
        assert_eq!((s.hits, s.misses), (0, 2));
    }

    #[test]
    fn term_key_agrees_with_interned_stable_hash() {
        // The content address of a term must match what the intern
        // layer memoizes (`IExpr::stable_hash`), so a future interned
        // pipeline can swap the memoized digest in without
        // invalidating any recorded cache addresses.
        let e = funtal_parser::parse_fexpr("(lam[z](x: int). x + 1)(41)").unwrap();
        assert_eq!(
            ArtifactCache::term_key(&e),
            funtal_syntax::intern::IExpr::from_fexpr(&e).stable_hash()
        );
    }

    #[test]
    fn colliding_digests_cannot_alias_entries() {
        // Full-key maps: even if two sources shared a 64-bit digest,
        // the cache must keep them separate. (We cannot forge an FNV
        // collision here; instead assert the map distinguishes keys
        // regardless of digest by probing two distinct sources and
        // checking both artifacts survive independently.)
        let cache = ArtifactCache::new();
        let a = funtal_syntax::build::fint_e(1);
        let b = funtal_syntax::build::fint_e(2);
        cache
            .parse("src-a", || {
                Ok::<_, std::convert::Infallible>((a.clone(), SpanTable::default()))
            })
            .unwrap();
        cache
            .parse("src-b", || {
                Ok::<_, std::convert::Infallible>((b.clone(), SpanTable::default()))
            })
            .unwrap();
        // A compute closure that fails proves the lookup was a hit.
        let got_a = cache.parse("src-a", || Err("expected a hit".to_string()));
        let got_b = cache.parse("src-b", || Err("expected a hit".to_string()));
        assert_eq!(got_a.unwrap().expr, a);
        assert_eq!(got_b.unwrap().expr, b);
    }

    #[test]
    fn corrupted_lower_artifacts_are_rejected_and_recomputed() {
        let cache = ArtifactCache::new();
        let e = funtal_parser::parse_fexpr("FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})")
            .unwrap();
        let key = e.to_string();
        cache.lower_keyed(&key, || funtal::prelower(&e)); // cold: miss
        cache.lower_keyed(&key, || funtal::prelower(&e)); // warm: verified hit

        // Poison the cached artifact with a module the verifier
        // rejects (an out-of-bounds block offset).
        let mut corrupted = funtal::prelower(&e);
        assert!(funtal::bc_verify::corrupt_for_tests(&mut corrupted));
        assert!(funtal::verify_lowered(&corrupted).is_err());
        cache
            .lower
            .map
            .lock()
            .unwrap()
            .insert(key.clone(), Arc::new(corrupted));
        // The next load rejects the poisoned entry and degrades to
        // re-lowering: the caller still gets a verified artifact.
        let reloaded = cache.lower_keyed(&key, || funtal::prelower(&e));
        assert!(funtal::verify_lowered(&reloaded).is_ok());
        let s = cache.stats().lower;
        assert_eq!((s.hits, s.misses, s.rejects), (1, 2, 1));
        // A reject counts as a miss: lookups stays hits + misses.
        assert_eq!(s.lookups(), 3);
        // The recomputed artifact replaced the poisoned one.
        let again = cache.lower_keyed(&key, || panic!("expected a verified hit"));
        assert!(funtal::verify_lowered(&again).is_ok());
        assert_eq!(cache.stats().lower.rejects, 1);
    }

    #[test]
    fn term_key_ignores_formatting() {
        // Differently formatted sources, same parsed term, same key.
        let a = funtal_parser::parse_fexpr("1 + 2").unwrap();
        let b = funtal_parser::parse_fexpr("  1   +   2 ").unwrap();
        assert_eq!(ArtifactCache::term_key(&a), ArtifactCache::term_key(&b));
        assert_ne!(
            ArtifactCache::source_key("1 + 2"),
            ArtifactCache::source_key("  1   +   2 ")
        );
    }
}
