//! The parallel batch execution engine.
//!
//! A [`Batch`] runs many jobs — `check`/`run` over FT sources,
//! `compile` over MiniF sources — concurrently on a pool of worker
//! threads, sharing one content-addressed [`ArtifactCache`] so every
//! distinct program is parsed, typechecked, and compiled exactly once
//! per cache lifetime (racing cold lookups aside). This is the seam
//! the ROADMAP's scaling PRs plug into: the `funtal batch` and
//! `funtal serve` subcommands, the throughput benchmarks, and the
//! differential test corpus all drive this one engine.
//!
//! # Determinism
//!
//! FunTAL evaluation is deterministic and fuel-metered, and jobs share
//! no mutable state (each run gets a fresh `Memory`; cached artifacts
//! are immutable behind `Arc`). The engine therefore promises:
//! **results are a pure function of the job list** — independent of
//! worker count, scheduling order, and cache temperature. Results are
//! reported in submission order, so whole reports are byte-identical
//! across runs; `crates/driver/tests/` proves this differentially
//! against the sequential single-program pipeline.
//!
//! # Protocol
//!
//! Jobs and results are JSON lines (see [`Job::from_json`] and
//! [`JobOutcome::to_json`]); the schema is documented in the README.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;

use funtal::machine::{EvalStrategy, ExecTier, FtOutcome};
use funtal_tal::trace::CountTracer;

use crate::cache::{ArtifactCache, CacheStats};
use crate::error::FunTalError;
use crate::json::{obj, Json};
use crate::report::RunReport;
use crate::Pipeline;

/// Stack size for worker threads: evaluation recurses over the term
/// and the substitution oracle's context depth can be large.
const WORKER_STACK_BYTES: usize = 64 * 1024 * 1024;

/// What a job asks the pipeline to do.
#[derive(Clone, Debug, PartialEq)]
pub enum JobKind {
    /// Parse + typecheck an FT source; report the type.
    Check {
        /// FT concrete syntax.
        src: String,
    },
    /// Parse + typecheck + evaluate an FT source; report the value.
    Run {
        /// FT concrete syntax.
        src: String,
        /// Per-job fuel override (engine default otherwise).
        fuel: Option<u64>,
        /// Per-job execution-tier override (engine default otherwise).
        tier: Option<ExecTier>,
        /// Attach a span-attributed fuel profile to the result.
        profile: bool,
    },
    /// Parse + compile a MiniF source; optionally apply a definition.
    Compile {
        /// MiniF concrete syntax.
        src: String,
        /// Loopify self tail calls.
        tco: bool,
        /// Apply `(name, integer arguments)` after compiling.
        call: Option<(String, Vec<i64>)>,
    },
    /// A job line that failed to parse. Carrying the rejection as a
    /// job keeps one poison line from aborting the rest of the stream:
    /// it executes to its own per-line error result, in order, and
    /// every other job still runs.
    Invalid {
        /// Stage of the error that rejected the line.
        stage: &'static str,
        /// Its bare message.
        message: String,
    },
}

impl JobKind {
    fn cmd(&self) -> &'static str {
        match self {
            JobKind::Check { .. } => "check",
            JobKind::Run { .. } => "run",
            JobKind::Compile { .. } => "compile",
            JobKind::Invalid { .. } => "invalid",
        }
    }
}

/// One unit of batch work.
#[derive(Clone, Debug, PartialEq)]
pub struct Job {
    /// Caller-chosen identifier, echoed in the result line.
    pub id: String,
    /// The work.
    pub kind: JobKind,
}

impl Job {
    /// A `run` job over FT source.
    pub fn run(id: impl Into<String>, src: impl Into<String>) -> Job {
        Job {
            id: id.into(),
            kind: JobKind::Run {
                src: src.into(),
                fuel: None,
                tier: None,
                profile: false,
            },
        }
    }

    /// A `run` job pinned to an execution tier.
    pub fn run_tiered(id: impl Into<String>, src: impl Into<String>, tier: ExecTier) -> Job {
        Job {
            id: id.into(),
            kind: JobKind::Run {
                src: src.into(),
                fuel: None,
                tier: Some(tier),
                profile: false,
            },
        }
    }

    /// A `check` job over FT source.
    pub fn check(id: impl Into<String>, src: impl Into<String>) -> Job {
        Job {
            id: id.into(),
            kind: JobKind::Check { src: src.into() },
        }
    }

    /// A `compile` job over MiniF source.
    pub fn compile(id: impl Into<String>, src: impl Into<String>) -> Job {
        Job {
            id: id.into(),
            kind: JobKind::Compile {
                src: src.into(),
                tco: false,
                call: None,
            },
        }
    }

    /// Parses one job from its JSON-lines form.
    ///
    /// ```json
    /// {"id": "j1", "cmd": "run", "src": "1 + 2"}
    /// {"id": "j2", "cmd": "run", "file": "examples/fact_t.ft", "fuel": 100000}
    /// {"id": "j3", "cmd": "compile", "src": "fn f(n) = n * 2", "tco": true,
    ///  "call": "f", "args": [21]}
    /// ```
    ///
    /// `src` is the program text inline; `file` reads it from disk
    /// (exactly one of the two). `fallback_id` names the job when no
    /// `id` field is given (the CLI passes the line number).
    pub fn from_json(v: &Json, fallback_id: &str) -> Result<Job, FunTalError> {
        let id = match v.get("id") {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::Int(n)) => n.to_string(),
            Some(other) => {
                return Err(FunTalError::driver(format!(
                    "job `id` must be a string or integer, got {other}"
                )))
            }
            None => fallback_id.to_string(),
        };
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| FunTalError::driver(format!("job {id}: missing `cmd` field")))?;
        let src = match (v.get("src").and_then(Json::as_str), v.get("file")) {
            (Some(src), None) => src.to_string(),
            (None, Some(Json::Str(path))) => {
                std::fs::read_to_string(path).map_err(|e| FunTalError::Io {
                    path: path.clone(),
                    cause: e.to_string(),
                })?
            }
            (Some(_), Some(_)) => {
                return Err(FunTalError::driver(format!(
                    "job {id}: give `src` or `file`, not both"
                )))
            }
            (None, Some(other)) => {
                return Err(FunTalError::driver(format!(
                    "job {id}: `file` must be a string path, got {other}"
                )))
            }
            (None, None) => {
                return Err(FunTalError::driver(format!(
                    "job {id}: needs a `src` or `file` field"
                )))
            }
        };
        let kind = match cmd {
            "check" => JobKind::Check { src },
            "run" => JobKind::Run {
                src,
                fuel: match v.get("fuel") {
                    Some(Json::Int(n)) if *n >= 0 => Some(*n as u64),
                    Some(other) => {
                        return Err(FunTalError::driver(format!(
                            "job {id}: `fuel` must be a non-negative integer, got {other}"
                        )))
                    }
                    None => None,
                },
                tier: match v.get("tier") {
                    Some(Json::Str(name)) => Some(crate::parse_tier(name).ok_or_else(|| {
                        FunTalError::driver(format!(
                            "job {id}: unknown tier `{name}` \
                             (use substitution, environment, or bytecode)"
                        ))
                    })?),
                    Some(other) => {
                        return Err(FunTalError::driver(format!(
                            "job {id}: `tier` must be a string, got {other}"
                        )))
                    }
                    None => None,
                },
                profile: match v.get("profile") {
                    Some(j) => j.as_bool().ok_or_else(|| {
                        FunTalError::driver(format!("job {id}: `profile` must be a boolean"))
                    })?,
                    None => false,
                },
            },
            "compile" => {
                let tco = match v.get("tco") {
                    Some(j) => j.as_bool().ok_or_else(|| {
                        FunTalError::driver(format!("job {id}: `tco` must be a boolean"))
                    })?,
                    None => false,
                };
                let call = match (v.get("call"), v.get("args")) {
                    (None, None) => None,
                    (Some(Json::Str(name)), args) => {
                        let args = match args {
                            None => Vec::new(),
                            Some(Json::Arr(items)) => items
                                .iter()
                                .map(|a| {
                                    a.as_i64().ok_or_else(|| {
                                        FunTalError::driver(format!(
                                            "job {id}: `args` must be integers"
                                        ))
                                    })
                                })
                                .collect::<Result<_, _>>()?,
                            Some(other) => {
                                return Err(FunTalError::driver(format!(
                                    "job {id}: `args` must be an array, got {other}"
                                )))
                            }
                        };
                        Some((name.clone(), args))
                    }
                    _ => {
                        return Err(FunTalError::driver(format!(
                            "job {id}: `call` must be a definition name (with optional \
                             integer `args`)"
                        )))
                    }
                };
                JobKind::Compile { src, tco, call }
            }
            other => {
                return Err(FunTalError::driver(format!(
                    "job {id}: unknown cmd `{other}` (use check, run, or compile)"
                )))
            }
        };
        Ok(Job { id, kind })
    }

    /// Parses a JSON-lines job stream (blank lines and `#` comment
    /// lines are skipped; ids default to the 1-based line number).
    ///
    /// Never fails: a malformed line becomes a [`JobKind::Invalid`]
    /// job that executes to its own per-line error result, so one
    /// poison line mid-stream cannot abort the jobs after it. The
    /// invalid job echoes the line's `id` field when one is readable,
    /// and preserves the rejecting error's stage and message so the
    /// result line renders the diagnostic verbatim.
    pub fn parse_jsonl(text: &str) -> Vec<Job> {
        let mut jobs = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fallback = format!("job{}", lineno + 1);
            let job = match Json::parse(line) {
                Err(e) => Job {
                    id: fallback,
                    kind: JobKind::Invalid {
                        stage: "driver",
                        message: format!("jobs line {}: {e}", lineno + 1),
                    },
                },
                Ok(v) => match Job::from_json(&v, &fallback) {
                    Ok(job) => job,
                    Err(e) => Job {
                        id: match v.get("id") {
                            Some(Json::Str(s)) => s.clone(),
                            Some(Json::Int(n)) => n.to_string(),
                            _ => fallback,
                        },
                        kind: JobKind::Invalid {
                            stage: e.stage(),
                            message: e.message(),
                        },
                    },
                },
            };
            jobs.push(job);
        }
        jobs
    }
}

/// The successful payload of a job, ready for rendering.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSuccess {
    /// `check`: the program's type.
    Checked {
        /// Rendered FT type.
        ty: String,
    },
    /// `run`: the program's type, outcome, and step counts.
    Ran {
        /// Rendered FT type.
        ty: String,
        /// `Value` or `Halted` (out-of-fuel reports as an error).
        outcome: FtOutcome,
        /// Step counts by class.
        counts: CountTracer,
        /// The span-attributed fuel profile, when the job asked for
        /// one (`"profile": true`), already in JSON form.
        profile: Option<Json>,
    },
    /// `compile`: the compiled bundle's shape.
    Compiled {
        /// Per definition: name and rendered wrapped type.
        defs: Vec<(String, String)>,
        /// Generated T block count.
        blocks: usize,
        /// `(name, args, rendered value)` when the job asked to call.
        call: Option<(String, Vec<i64>, String)>,
    },
}

/// The result of one job: its id, what ran, and success or the
/// pipeline error (already in canonical rendering via `FunTalError`).
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's id, echoed.
    pub id: String,
    /// Which command ran (`check`/`run`/`compile`).
    pub cmd: &'static str,
    /// The payload or the error.
    pub result: Result<JobSuccess, FunTalError>,
}

// CountTracer has no PartialEq upstream of this crate's needs; compare
// outcomes structurally where tests need it via the JSON rendering.
impl JobOutcome {
    /// Renders the result line. The rendering is a pure function of
    /// the job and the program — no timings, no worker ids — so batch
    /// output is byte-comparable across runs and worker counts.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(&'static str, Json)> = vec![
            ("id", Json::Str(self.id.clone())),
            ("cmd", Json::Str(self.cmd.to_string())),
            ("ok", Json::Bool(self.result.is_ok())),
        ];
        match &self.result {
            Ok(JobSuccess::Checked { ty }) => {
                fields.push(("type", Json::Str(ty.clone())));
            }
            Ok(JobSuccess::Ran {
                ty,
                outcome,
                counts,
                profile,
            }) => {
                fields.push(("type", Json::Str(ty.clone())));
                match outcome {
                    FtOutcome::Value(v) => fields.push(("value", Json::Str(v.to_string()))),
                    FtOutcome::Halted(w) => fields.push(("halted", Json::Str(w.to_string()))),
                    FtOutcome::OutOfFuel => unreachable!("out-of-fuel reports as an error"),
                }
                fields.push((
                    "steps",
                    obj([
                        ("total", Json::Int(counts.total_steps() as i64)),
                        ("t_instrs", Json::Int(counts.instrs as i64)),
                        ("f_steps", Json::Int(counts.f_steps as i64)),
                        ("transfers", Json::Int(counts.transfers as i64)),
                        ("crossings", Json::Int(counts.crossings as i64)),
                    ]),
                ));
                if let Some(p) = profile {
                    fields.push(("profile", p.clone()));
                }
            }
            Ok(JobSuccess::Compiled { defs, blocks, call }) => {
                fields.push((
                    "defs",
                    Json::Arr(
                        defs.iter()
                            .map(|(name, ty)| {
                                obj([
                                    ("name", Json::Str(name.clone())),
                                    ("type", Json::Str(ty.clone())),
                                ])
                            })
                            .collect(),
                    ),
                ));
                fields.push(("blocks", Json::Int(*blocks as i64)));
                if let Some((name, args, value)) = call {
                    fields.push((
                        "call",
                        obj([
                            ("name", Json::Str(name.clone())),
                            (
                                "args",
                                Json::Arr(args.iter().map(|n| Json::Int(*n)).collect()),
                            ),
                            ("value", Json::Str(value.clone())),
                        ]),
                    ));
                }
            }
            Err(e) => {
                fields.push(("stage", Json::Str(e.stage().to_string())));
                fields.push(("error", Json::Str(e.to_string())));
            }
        }
        obj(fields)
    }
}

/// The full result of a batch: per-job outcomes in submission order
/// plus the cache counters over the engine's cache (cumulative across
/// batches when the cache is shared, e.g. under `funtal serve`).
#[derive(Debug)]
pub struct BatchReport {
    /// One outcome per job, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Cache hit/miss counters at batch end.
    pub cache: CacheStats,
    /// Disk-tier counters at batch end, when the engine's cache is
    /// backed by a persistent store (`--store-dir`).
    pub store: Option<funtal_store::StoreStats>,
    /// Worker threads the batch ran on.
    pub workers: usize,
}

impl BatchReport {
    /// Jobs that succeeded.
    pub fn ok_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }

    /// Jobs that failed.
    pub fn err_count(&self) -> usize {
        self.outcomes.len() - self.ok_count()
    }

    /// The result lines, one JSON object per job, submission order.
    pub fn result_lines(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.to_json().to_string());
            out.push('\n');
        }
        out
    }

    /// The summary line: job counts, worker count, cache counters, and
    /// — when a persistent store is configured — its disk counters.
    pub fn summary_json(&self) -> Json {
        render_summary(
            &self.cache,
            self.store.as_ref(),
            self.outcomes.len(),
            self.ok_count(),
            self.err_count(),
            self.workers,
        )
    }
}

/// The one summary-line schema, shared by `funtal batch` (via
/// [`BatchReport::summary_json`]) and `funtal serve`'s parting line.
/// The `"store"` block appears only when a persistent store is
/// configured, so storeless summaries are byte-identical to earlier
/// releases.
pub fn render_summary(
    cache: &CacheStats,
    store: Option<&funtal_store::StoreStats>,
    jobs: usize,
    ok: usize,
    err: usize,
    workers: usize,
) -> Json {
    let stage = |s: crate::cache::StageStats| {
        obj([
            ("hits", Json::Int(s.hits as i64)),
            ("misses", Json::Int(s.misses as i64)),
        ])
    };
    // The lower stage is the one stage with verify-on-load, so it is
    // the one stage whose summary carries a reject counter.
    let lower = obj([
        ("hits", Json::Int(cache.lower.hits as i64)),
        ("misses", Json::Int(cache.lower.misses as i64)),
        ("rejects", Json::Int(cache.lower.rejects as i64)),
    ]);
    let mut fields = vec![
        ("summary", Json::Bool(true)),
        ("jobs", Json::Int(jobs as i64)),
        ("ok", Json::Int(ok as i64)),
        ("err", Json::Int(err as i64)),
        ("workers", Json::Int(workers as i64)),
        (
            "cache",
            obj([
                ("parse", stage(cache.parse)),
                ("check", stage(cache.check)),
                ("lower", lower),
                ("compile", stage(cache.compile)),
            ]),
        ),
    ];
    if let Some(s) = store {
        // Every disk stage verifies on load, so every disk stage
        // carries a reject counter.
        let disk = |d: funtal_store::StageDiskStats| {
            obj([
                ("hits", Json::Int(d.hits as i64)),
                ("misses", Json::Int(d.misses as i64)),
                ("rejects", Json::Int(d.rejects as i64)),
            ])
        };
        fields.push((
            "store",
            obj([
                ("parse", disk(s.parse)),
                ("check", disk(s.check)),
                ("lower", disk(s.lower)),
                ("compile", disk(s.compile)),
            ]),
        ));
    }
    obj(fields)
}

/// The batch execution engine: a [`Pipeline`] configuration, a worker
/// count, and a shared [`ArtifactCache`].
pub struct Batch {
    pipeline: Pipeline,
    workers: usize,
    cache: Arc<ArtifactCache>,
}

// One engine is driven from many worker threads via `&self`.
const _: () = {
    const fn require_send_sync<T: Send + Sync>() {}
    require_send_sync::<Batch>();
    require_send_sync::<Job>();
    require_send_sync::<JobOutcome>();
};

impl Batch {
    /// An engine over the given pipeline configuration, one worker,
    /// fresh cache.
    pub fn new(pipeline: Pipeline) -> Batch {
        Batch {
            pipeline,
            workers: 1,
            cache: Arc::new(ArtifactCache::new()),
        }
    }

    /// Sets the worker count (`0` is treated as `1`).
    pub fn with_workers(mut self, workers: usize) -> Batch {
        self.workers = workers.max(1);
        self
    }

    /// Replaces the cache (to share artifacts across batches).
    pub fn with_cache(mut self, cache: Arc<ArtifactCache>) -> Batch {
        self.cache = cache;
        self
    }

    /// The engine's cache (share it with another engine, or snapshot
    /// its stats).
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job, returning outcomes in submission order.
    ///
    /// Jobs are claimed from a shared counter; each worker loops
    /// claim → execute → report until the list is drained. Every
    /// worker — including a lone one — runs on a spawned thread with
    /// `WORKER_STACK_BYTES` of stack, so whether a deeply recursive
    /// program fits cannot depend on the worker count (results are a
    /// pure function of the job list, and that includes not crashing).
    pub fn run(&self, jobs: &[Job]) -> BatchReport {
        let workers = self.workers.min(jobs.len()).max(1);
        let mut outcomes: Vec<Option<JobOutcome>> = Vec::new();
        outcomes.resize_with(jobs.len(), || None);
        {
            let next = AtomicUsize::new(0);
            let (tx, rx) = mpsc::channel::<(usize, JobOutcome)>();
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    std::thread::Builder::new()
                        .stack_size(WORKER_STACK_BYTES)
                        .spawn_scoped(scope, move || loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(job) = jobs.get(i) else { break };
                            let out = self.run_job(job);
                            if tx.send((i, out)).is_err() {
                                break;
                            }
                        })
                        .expect("spawning a batch worker");
                }
                drop(tx);
                for (i, out) in rx {
                    outcomes[i] = Some(out);
                }
            });
        }
        BatchReport {
            outcomes: outcomes
                .into_iter()
                .map(|o| o.expect("every job produced an outcome"))
                .collect(),
            cache: self.cache.stats(),
            store: self.cache.store_stats(),
            workers,
        }
    }

    /// Runs a single job through the cached pipeline stages. This is
    /// the exact code path workers run, exposed for `funtal serve`.
    pub fn run_job(&self, job: &Job) -> JobOutcome {
        JobOutcome {
            id: job.id.clone(),
            cmd: job.kind.cmd(),
            result: self.execute(&job.kind),
        }
    }

    fn execute(&self, kind: &JobKind) -> Result<JobSuccess, FunTalError> {
        match kind {
            JobKind::Check { src } => {
                let (_, ty) = self.parse_and_check(src)?;
                Ok(JobSuccess::Checked { ty: ty.to_string() })
            }
            JobKind::Run {
                src,
                fuel,
                tier,
                profile,
            } => {
                let (parsed, ty) = self.parse_and_check(src)?;
                let mut pipeline = self.pipeline.clone();
                if let Some(f) = fuel {
                    pipeline = pipeline.with_fuel(*f);
                }
                if let Some(t) = tier {
                    pipeline = pipeline.with_tier(*t);
                }
                // The cache proved the term well-typed; evaluate
                // without re-checking. Bytecode runs go through the
                // lowered-artifact cache, so only the first job per
                // distinct program pays for register allocation.
                let bytecode = pipeline.tier() == EvalStrategy::Bytecode;
                let lowered = bytecode.then(|| {
                    self.cache
                        .lower_keyed(&parsed.check_key, || funtal::prelower(&parsed.expr))
                });
                let (report, profile): (RunReport, Option<Json>) = if *profile {
                    let profiled = match &lowered {
                        Some(lowered) => pipeline.profile_prelowered(
                            lowered,
                            (*ty).clone(),
                            parsed.spans.clone(),
                        )?,
                        None => pipeline.profile_prechecked(
                            &parsed.expr,
                            (*ty).clone(),
                            parsed.spans.clone(),
                        )?,
                    };
                    let json = profiled.profile_json();
                    (profiled.run, Some(json))
                } else {
                    let report = match &lowered {
                        Some(lowered) => pipeline.run_prelowered(lowered, (*ty).clone())?,
                        None => pipeline.run_prechecked(&parsed.expr, (*ty).clone())?,
                    };
                    (report, None)
                };
                if matches!(report.outcome, FtOutcome::OutOfFuel) {
                    return Err(FunTalError::OutOfFuel {
                        fuel: pipeline.fuel(),
                    });
                }
                Ok(JobSuccess::Ran {
                    ty: report.ty.to_string(),
                    outcome: report.outcome,
                    counts: report.counts,
                    profile,
                })
            }
            JobKind::Compile { src, tco, call } => {
                let bundle = self.cache.compile(src, *tco, || {
                    self.pipeline
                        .clone()
                        .with_codegen(funtal_compile::codegen::CodegenOpts {
                            tail_call_opt: *tco,
                        })
                        .compile_minif_source(src)
                })?;
                let call = match call {
                    None => None,
                    Some((name, args)) => {
                        let report = self.pipeline.run_compiled(&bundle, name, args)?;
                        Some((name.clone(), args.clone(), report.value()?.to_string()))
                    }
                };
                Ok(JobSuccess::Compiled {
                    defs: bundle
                        .wrapped
                        .iter()
                        .map(|(name, _, ty)| (name.clone(), ty.to_string()))
                        .collect(),
                    blocks: bundle.block_count(),
                    call,
                })
            }
            JobKind::Invalid { stage, message } => Err(FunTalError::BadJob {
                stage,
                message: message.clone(),
            }),
        }
    }

    /// Parse and typecheck through the content-addressed caches. On a
    /// warm cache this is two map probes: the parse artifact already
    /// carries the typecheck key (its canonical rendering).
    fn parse_and_check(
        &self,
        src: &str,
    ) -> Result<(Arc<crate::cache::Parsed>, Arc<funtal_syntax::FTy>), FunTalError> {
        let parsed = self.cache.parse(src, || self.pipeline.parse_spanned(src))?;
        let ty = self
            .cache
            .check_keyed(&parsed.check_key, || self.pipeline.check(&parsed.expr))?;
        Ok((parsed, ty))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_parse_from_jsonl() {
        let jobs = Job::parse_jsonl(concat!(
            "# comment\n",
            "{\"id\":\"a\",\"cmd\":\"run\",\"src\":\"1 + 2\"}\n",
            "\n",
            "{\"cmd\":\"compile\",\"src\":\"fn f(n) = n\",\"call\":\"f\",\"args\":[7]}\n",
        ));
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].id, "a");
        assert_eq!(jobs[1].id, "job4");
        assert_eq!(
            jobs[1].kind,
            JobKind::Compile {
                src: "fn f(n) = n".to_string(),
                tco: false,
                call: Some(("f".to_string(), vec![7])),
            }
        );
    }

    #[test]
    fn bad_jobs_become_invalid_jobs() {
        for line in [
            "{\"cmd\":\"run\"}",                           // no src
            "{\"src\":\"1\"}",                             // no cmd
            "{\"cmd\":\"frobnicate\",\"src\":\"1\"}",      // unknown cmd
            "{\"cmd\":\"run\",\"src\":\"1\",\"fuel\":-3}", // bad fuel
            "{not json",                                   // not JSON at all
        ] {
            let jobs = Job::parse_jsonl(line);
            assert_eq!(jobs.len(), 1, "line dropped: {line}");
            assert!(
                matches!(jobs[0].kind, JobKind::Invalid { .. }),
                "accepted: {line}"
            );
        }
        // A readable `id` on a malformed line is still echoed.
        let jobs = Job::parse_jsonl("{\"id\":\"keepme\",\"cmd\":\"run\"}");
        assert_eq!(jobs[0].id, "keepme");
    }

    #[test]
    fn poison_line_mid_stream_does_not_abort_later_jobs() {
        let jobs = Job::parse_jsonl(concat!(
            "{\"id\":\"ok1\",\"cmd\":\"run\",\"src\":\"1 + 2\"}\n",
            "{\"id\":\"bad\",\"cmd\":\"run\"}\n",
            "this is not json\n",
            "{\"id\":\"ok2\",\"cmd\":\"run\",\"src\":\"2 * 3\"}\n",
        ));
        assert_eq!(jobs.len(), 4);
        let report = Batch::new(Pipeline::new()).run(&jobs);
        assert_eq!(report.ok_count(), 2);
        assert_eq!(report.err_count(), 2);
        let lines: Vec<String> = report
            .outcomes
            .iter()
            .map(|o| o.to_json().to_string())
            .collect();
        assert!(lines[0].contains("\"value\":\"3\""), "{}", lines[0]);
        // The per-line error preserves the rejecting diagnostic.
        assert!(
            lines[1].contains("\"id\":\"bad\"")
                && lines[1].contains("\"cmd\":\"invalid\"")
                && lines[1].contains("needs a `src` or `file` field"),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"id\":\"job3\"") && lines[2].contains("jobs line 3"),
            "{}",
            lines[2]
        );
        // The job after the poison lines still ran.
        assert!(lines[3].contains("\"value\":\"6\""), "{}", lines[3]);
    }

    #[test]
    fn profiled_jobs_attach_a_profile_field() {
        let batch = Batch::new(Pipeline::new());
        let jobs = Job::parse_jsonl(concat!(
            "{\"id\":\"p\",\"cmd\":\"run\",\"src\":\"1 + 2\",\"profile\":true}\n",
            "{\"id\":\"q\",\"cmd\":\"run\",\"src\":\"1 + 2\"}\n",
        ));
        let report = batch.run(&jobs);
        let p = report.outcomes[0].to_json().to_string();
        let q = report.outcomes[1].to_json().to_string();
        assert!(
            p.contains("\"profile\":{") && p.contains("\"spans\":") && p.contains("\"folded\":"),
            "{p}"
        );
        assert!(!q.contains("\"profile\""), "{q}");
        // The attribution total equals the run's total step count for
        // a pure-F program (every tick is a charging F step).
        assert!(p.contains("\"total\":1"), "{p}");
    }

    #[test]
    fn run_and_check_and_compile_jobs() {
        let batch = Batch::new(Pipeline::new());
        let report = batch.run(&[
            Job::run("r", "6 * 7"),
            Job::check("c", "(lam[z](x: int). x)(3)"),
            Job {
                id: "m".to_string(),
                kind: JobKind::Compile {
                    src: "fn double(n) = n + n".to_string(),
                    tco: false,
                    call: Some(("double".to_string(), vec![21])),
                },
            },
            Job::run("bad", "1 +"),
        ]);
        assert_eq!(report.outcomes.len(), 4);
        assert_eq!(report.ok_count(), 3);
        let lines: Vec<String> = report
            .outcomes
            .iter()
            .map(|o| o.to_json().to_string())
            .collect();
        assert!(lines[0].contains("\"value\":\"42\""), "{}", lines[0]);
        assert!(lines[1].contains("\"type\":\"int\""), "{}", lines[1]);
        assert!(lines[2].contains("\"value\":\"42\""), "{}", lines[2]);
        assert!(
            lines[3].contains("\"stage\":\"parse\"") && lines[3].contains("error[parse]"),
            "{}",
            lines[3]
        );
    }

    #[test]
    fn warm_cache_skips_parse_and_check() {
        let batch = Batch::new(Pipeline::new());
        batch.run(&[Job::run("a", "6 * 7")]);
        let cold = batch.cache().stats();
        assert_eq!((cold.parse.hits, cold.parse.misses), (0, 1));
        assert_eq!((cold.check.hits, cold.check.misses), (0, 1));
        batch.run(&[Job::run("b", "6 * 7")]);
        let warm = batch.cache().stats();
        assert_eq!((warm.parse.hits, warm.parse.misses), (1, 1));
        assert_eq!((warm.check.hits, warm.check.misses), (1, 1));
    }

    #[test]
    fn tier_field_parses_and_bad_tiers_are_rejected() {
        let jobs = Job::parse_jsonl(
            "{\"id\":\"b\",\"cmd\":\"run\",\"src\":\"1 + 2\",\"tier\":\"bytecode\"}\n",
        );
        assert_eq!(
            jobs[0].kind,
            JobKind::Run {
                src: "1 + 2".to_string(),
                fuel: None,
                tier: Some(EvalStrategy::Bytecode),
                profile: false,
            }
        );
        for line in [
            "{\"cmd\":\"run\",\"src\":\"1\",\"tier\":\"jit\"}",
            "{\"cmd\":\"run\",\"src\":\"1\",\"tier\":7}",
        ] {
            assert!(
                matches!(Job::parse_jsonl(line)[0].kind, JobKind::Invalid { .. }),
                "accepted: {line}"
            );
        }
    }

    #[test]
    fn bytecode_jobs_agree_with_default_tier() {
        let batch = Batch::new(Pipeline::new());
        let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
        let report = batch.run(&[
            Job::run("env", src),
            Job::run_tiered("bc", src, EvalStrategy::Bytecode),
        ]);
        let env = report.outcomes[0].to_json().to_string();
        let bc = report.outcomes[1].to_json().to_string();
        // Same value, type, and step counts — only the id differs.
        assert_eq!(
            env.replace("\"id\":\"env\"", ""),
            bc.replace("\"id\":\"bc\"", ""),
            "bytecode tier diverged:\n{env}\n{bc}"
        );
    }

    #[test]
    fn warm_batch_skips_relowering() {
        let batch = Batch::new(Pipeline::new());
        let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
        batch.run(&[Job::run_tiered("a", src, EvalStrategy::Bytecode)]);
        let cold = batch.cache().stats();
        assert_eq!((cold.lower.hits, cold.lower.misses), (0, 1));
        // Second batch over the same program (even formatted
        // differently): the lowering is served from cache.
        let resrc = src.replace("; ", ";  ");
        batch.run(&[
            Job::run_tiered("b", src, EvalStrategy::Bytecode),
            Job::run_tiered("c", &resrc, EvalStrategy::Bytecode),
        ]);
        let warm = batch.cache().stats();
        assert_eq!((warm.lower.hits, warm.lower.misses), (2, 1));
        // Non-bytecode runs never touch the lowering cache.
        batch.run(&[Job::run("d", src)]);
        assert_eq!(batch.cache().stats().lower, warm.lower);
    }

    #[test]
    fn results_are_order_stable_across_worker_counts() {
        let jobs: Vec<Job> = (0..12)
            .map(|i| Job::run(format!("j{i}"), format!("{i} + {i}")))
            .collect();
        let seq = Batch::new(Pipeline::new()).run(&jobs).result_lines();
        let par = Batch::new(Pipeline::new())
            .with_workers(4)
            .run(&jobs)
            .result_lines();
        assert_eq!(seq, par);
    }
}
