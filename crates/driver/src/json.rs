//! A minimal JSON reader/writer for the batch protocol.
//!
//! The build has no network access, so instead of `serde` this module
//! implements exactly the subset the JSON-lines job/result protocol
//! needs: parsing a line into a [`Json`] value and rendering one back
//! out. Objects preserve insertion order (results must be byte-stable
//! across runs), numbers are kept as `i64` when they are integral
//! (job ids and fuel bounds must not round-trip through `f64`), and
//! strings escape exactly the characters RFC 8259 requires.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number.
    Int(i64),
    /// A non-integral number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered so rendering is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string content, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer content, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean content, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value from the whole input (trailing whitespace
    /// allowed, anything else is an error).
    pub fn parse(src: &str) -> Result<Json, String> {
        let bytes = src.as_bytes();
        let mut pos = 0;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(v)
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

/// Reads four hex digits starting at `at`.
fn hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let hex = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
    u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u{hex}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected `\"` at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = hex4(b, *pos + 1)?;
                        *pos += 4;
                        let c = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: RFC 8259 encodes non-BMP
                            // characters as a \uXXXX\uXXXX pair.
                            if b.get(*pos + 1..*pos + 3) != Some(br"\u") {
                                return Err(format!(
                                    "high surrogate \\u{code:04x} without a low surrogate"
                                ));
                            }
                            let low = hex4(b, *pos + 3)?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(format!(
                                    "\\u{code:04x} must be followed by a low surrogate, \
                                     got \\u{low:04x}"
                                ));
                            }
                            *pos += 6;
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(scalar).expect("valid surrogate pair")
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| format!("\\u{code:04x} is not a scalar value"))?
                        };
                        out.push(c);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Bulk-copy up to the next quote or escape: one UTF-8
                // validation per segment, not per character (a large
                // inline `src` would otherwise make parsing O(n²)).
                let seg_end = b[*pos..]
                    .iter()
                    .position(|&c| c == b'"' || c == b'\\')
                    .map(|off| *pos + off)
                    .ok_or("unterminated string")?;
                let seg = std::str::from_utf8(&b[*pos..seg_end]).map_err(|_| "invalid UTF-8")?;
                out.push_str(seg);
                *pos = seg_end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    if let Ok(n) = text.parse::<i64>() {
        return Ok(Json::Int(n));
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("`{text}` is not a number"))
}

/// Writes a string with RFC 8259 escaping.
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => write!(f, "{x}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Builds an object from key/value pairs (the protocol's one-liner).
pub fn obj(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        for src in [
            r#"{"id":"j1","cmd":"run","src":"1 + 2","fuel":1000}"#,
            r#"[1,-2,3.5,true,false,null,"x"]"#,
            r#"{"nested":{"a":[{"b":"c"}]},"s":"line\nbreak \"quoted\""}"#,
        ] {
            let v = Json::parse(src).unwrap();
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        }
    }

    #[test]
    fn integers_stay_integers() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9007199254740993));
        assert_eq!(v.to_string(), "9007199254740993");
    }

    #[test]
    fn escapes() {
        let v = Json::Str("tab\there \"q\" \\ \u{1}".to_string());
        assert_eq!(v.to_string(), r#""tab\there \"q\" \\ \u0001""#);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse(r#"{"a":}"#).is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Standard producers (e.g. json.dumps with ensure_ascii=True)
        // encode non-BMP characters as \u pairs.
        assert_eq!(
            Json::parse(r#""\ud83d\ude00""#).unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        // The raw character also passes straight through.
        assert_eq!(
            Json::parse("\"\u{1F600}\"").unwrap(),
            Json::Str("\u{1F600}".to_string())
        );
        // Lone or malformed surrogates are rejected, not mis-decoded.
        assert!(Json::parse(r#""\ud83d""#).is_err());
        assert!(Json::parse(r#""\ud83dA""#).is_err());
        assert!(Json::parse(r#""\udc00""#).is_err());
    }

    #[test]
    fn long_strings_parse_fast_and_faithfully() {
        // The bulk-copy segment path: a multi-hundred-KB src must
        // round-trip (and not take quadratic time — this test is the
        // canary; it would run for minutes per-char).
        let big = "lam[z](x: int). x + 1 // α β γ\n".repeat(20_000);
        let line = obj([("src", Json::Str(big.clone()))]).to_string();
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("src").unwrap().as_str(), Some(big.as_str()));
    }
}
