//! The unified FunTAL driver: one [`Pipeline`] that composes every
//! layer of the workspace —
//!
//! ```text
//! lex → parse → FT typecheck → (optional MiniF compile) → evaluate → report
//! ```
//!
//! — over a single diagnostics type, [`FunTalError`], and the `funtal`
//! CLI binary built on top of it (`check`, `run`, `compile`, `equiv`,
//! `trace` subcommands over concrete-syntax files).
//!
//! The stages are also exposed individually ([`Pipeline::parse`],
//! [`Pipeline::check`], [`Pipeline::run`], [`Pipeline::trace`],
//! [`Pipeline::compile_minif`], [`Pipeline::equiv`]) so examples and
//! tests can enter and leave the pipeline at any point.
//!
//! # Example
//!
//! ```
//! use funtal_driver::Pipeline;
//!
//! let report = Pipeline::new()
//!     .with_fuel(10_000)
//!     .run_source("FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})")?;
//! assert_eq!(report.ty.to_string(), "int");
//! assert_eq!(report.value()?.to_string(), "42");
//! # Ok::<(), funtal_driver::FunTalError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod batch;
pub mod cache;
pub mod corpus;
pub mod error;
pub mod json;
pub mod minif;
pub mod report;

use std::sync::Arc;

use funtal::machine::{run, run_fexpr, EvalStrategy, ExecTier, FtOutcome, RunCfg};
use funtal::{LoweredProgram, SpanScope};
use funtal_compile::codegen::{compile_program, CodegenOpts, Compiled};
use funtal_compile::lang::Program;
use funtal_equiv::{equivalent, EquivCfg, Verdict};
use funtal_parser::lex::Tok;
use funtal_syntax::alpha::alpha_eq_fty;
use funtal_syntax::build::{app, fint_e};
use funtal_syntax::span::SpanTable;
use funtal_syntax::{Component, FExpr, FTy};
use funtal_tal::trace::{CountTracer, Tracer, VecTracer};
use funtal_tal::{Profiler, RootLang};

pub use batch::{Batch, BatchReport, Job, JobKind, JobOutcome, JobSuccess};
pub use cache::{ArtifactCache, CacheStats};
pub use error::FunTalError;
pub use funtal_store::{DiskStore, StoreStats};
pub use report::{Checked, CompiledMiniF, ProfileReport, RunReport, TraceReport};

/// Builds the span table attributing compiled MiniF block labels to
/// their source definitions: every generated block is named `<def>` or
/// `<def>_<hint><n>`, so blocks attribute to the longest
/// definition-name prefix. Shared by the profiler and the linter; the
/// boundary wrapper is generated code and keeps a synthetic root span.
fn minif_span_table(
    compiled: &CompiledMiniF,
    def_spans: &[(String, funtal_syntax::span::Span)],
) -> SpanTable {
    let mut table = SpanTable::new();
    for (label, _) in &compiled.compiled.heap {
        let l = label.as_str();
        let best = def_spans
            .iter()
            .filter(|(n, _)| {
                l == n.as_str()
                    || (l.starts_with(n.as_str()) && l.as_bytes().get(n.len()) == Some(&b'_'))
            })
            .max_by_key(|(n, _)| n.len());
        if let Some((_, span)) = best {
            table.record(l, *span);
        }
    }
    table
}

/// Parses an execution-tier (= evaluation-strategy) name as the CLI
/// flags and the batch job protocol spell them.
pub fn parse_tier(name: &str) -> Option<ExecTier> {
    match name {
        "substitution" | "subst" => Some(EvalStrategy::Substitution),
        "environment" | "env" => Some(EvalStrategy::Environment),
        "bytecode" | "bc" => Some(EvalStrategy::Bytecode),
        _ => None,
    }
}

/// A configured lex → parse → typecheck → compile → evaluate pipeline.
///
/// `Pipeline` is cheap to construct and `Copy`-free but `Clone`; every
/// stage borrows it immutably, so one pipeline can drive many programs.
#[derive(Clone, Debug)]
pub struct Pipeline {
    /// Maximum machine steps per evaluation.
    fuel: u64,
    /// Run the dynamic type-safety guard at every T jump.
    guard: bool,
    /// Which evaluator runs programs (environment-passing by default).
    strategy: EvalStrategy,
    /// Code-generation options for the MiniF stage.
    codegen: CodegenOpts,
    /// Configuration for the bounded equivalence stage.
    equiv: EquivCfg,
}

impl Default for Pipeline {
    fn default() -> Self {
        Pipeline {
            fuel: 1_000_000,
            guard: false,
            strategy: EvalStrategy::default(),
            codegen: CodegenOpts::default(),
            equiv: EquivCfg::default(),
        }
    }
}

impl Pipeline {
    /// A pipeline with default fuel (1M steps), no guard, no TCO.
    pub fn new() -> Pipeline {
        Pipeline::default()
    }

    /// Sets the evaluation fuel bound. The bounded-equivalence stage
    /// keeps its own per-experiment fuel (see
    /// [`with_equiv_cfg`](Pipeline::with_equiv_cfg)).
    pub fn with_fuel(mut self, fuel: u64) -> Pipeline {
        self.fuel = fuel;
        self
    }

    /// Enables the dynamic type-safety guard during evaluation.
    pub fn with_guard(mut self, guard: bool) -> Pipeline {
        self.guard = guard;
        self
    }

    /// Selects the evaluation strategy (environment-passing by
    /// default; substitution is the paper-literal oracle; bytecode is
    /// the direct-threaded tier below the compiled cursor).
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Pipeline {
        self.strategy = strategy;
        self
    }

    /// Selects the execution tier. `ExecTier` is the strategy enum
    /// viewed as a performance ladder (substitution → environment →
    /// bytecode), so this is [`with_strategy`](Pipeline::with_strategy)
    /// under the tier vocabulary the CLI and batch protocol use.
    pub fn with_tier(self, tier: ExecTier) -> Pipeline {
        self.with_strategy(tier)
    }

    /// Sets MiniF code-generation options (e.g. tail-call
    /// loopification).
    pub fn with_codegen(mut self, opts: CodegenOpts) -> Pipeline {
        self.codegen = opts;
        self
    }

    /// Sets the bounded-equivalence configuration.
    pub fn with_equiv_cfg(mut self, cfg: EquivCfg) -> Pipeline {
        self.equiv = cfg;
        self
    }

    /// The configured fuel bound.
    pub fn fuel(&self) -> u64 {
        self.fuel
    }

    /// The configured execution tier (= evaluation strategy).
    pub fn tier(&self) -> ExecTier {
        self.strategy
    }

    /// The configured codegen options.
    pub fn codegen_opts(&self) -> CodegenOpts {
        self.codegen
    }

    fn run_cfg(&self) -> RunCfg {
        RunCfg {
            fuel: self.fuel,
            guard: self.guard,
            strategy: self.strategy,
        }
    }

    // --- stage 1: lex -----------------------------------------------------

    /// Tokenizes FT concrete syntax (exposed for tooling; [`parse`]
    /// lexes internally).
    ///
    /// [`parse`]: Pipeline::parse
    pub fn lex(&self, src: &str) -> Result<Vec<Tok>, FunTalError> {
        Ok(funtal_parser::lex(src)?)
    }

    // --- stage 2: parse ---------------------------------------------------

    /// Parses an FT expression from concrete syntax.
    pub fn parse(&self, src: &str) -> Result<FExpr, FunTalError> {
        Ok(funtal_parser::parse_fexpr(src)?)
    }

    /// Parses an FT expression together with the side table of source
    /// spans for its heap labels — the attribution table the profiler
    /// resolves block names through.
    pub fn parse_spanned(&self, src: &str) -> Result<(FExpr, SpanTable), FunTalError> {
        Ok(funtal_parser::parse_fexpr_spanned(src)?)
    }

    // --- stage 3: typecheck -----------------------------------------------

    /// Type-checks a closed FT expression (Fig 7) and returns its type.
    pub fn check(&self, e: &FExpr) -> Result<FTy, FunTalError> {
        Ok(funtal::typecheck(e)?)
    }

    /// Parse + typecheck in one step.
    pub fn check_source(&self, src: &str) -> Result<Checked, FunTalError> {
        let expr = self.parse(src)?;
        let ty = self.check(&expr)?;
        Ok(Checked { expr, ty })
    }

    /// Type-checks either kind of component — an F expression or a
    /// whole T program — against an optional expected F type.
    pub fn check_component(
        &self,
        comp: &Component,
        expected: Option<&FTy>,
    ) -> Result<FTy, FunTalError> {
        Ok(funtal::typecheck_component(comp, expected)?)
    }

    // --- stage 4 (optional): MiniF compile --------------------------------

    /// Compiles a validated MiniF program to T code with the pipeline's
    /// [`CodegenOpts`], returning the heap fragment plus
    /// boundary-wrapped (and type-checked) entry points.
    pub fn compile_minif(&self, program: &Program) -> Result<CompiledMiniF, FunTalError> {
        program.validate()?;
        let compiled: Compiled = compile_program(program, self.codegen);
        let mut wrapped = Vec::new();
        for name in program.defs.keys() {
            let f = compiled.wrap(name);
            let ty = self.check(&f)?;
            wrapped.push((name.clone(), f, ty));
        }
        Ok(CompiledMiniF {
            program: program.clone(),
            compiled,
            wrapped,
        })
    }

    /// Parses MiniF concrete syntax (see [`minif`]) and compiles it.
    pub fn compile_minif_source(&self, src: &str) -> Result<CompiledMiniF, FunTalError> {
        self.compile_minif(&minif::parse_minif(src)?)
    }

    // --- stage 5: evaluate ------------------------------------------------

    /// Type-checks and evaluates an FT expression with step counting.
    pub fn run(&self, e: &FExpr) -> Result<RunReport, FunTalError> {
        let ty = self.check(e)?;
        let mut counts = CountTracer::new();
        let outcome = run_fexpr(e, self.run_cfg(), &mut counts)?;
        Ok(RunReport {
            ty,
            outcome,
            counts,
            fuel: self.fuel,
        })
    }

    /// Parse + typecheck + evaluate in one step.
    pub fn run_source(&self, src: &str) -> Result<RunReport, FunTalError> {
        let e = self.parse(src)?;
        self.run(&e)
    }

    /// Evaluates an expression whose type is already known, skipping
    /// the typecheck stage. The batch engine calls this when its
    /// content-addressed cache already holds the type — a warm-cache
    /// `run` is hash lookups plus evaluation, nothing else.
    ///
    /// The caller is responsible for `ty` actually being the type of
    /// `e` (the cache guarantees this: the key is the term itself).
    pub fn run_prechecked(&self, e: &FExpr, ty: FTy) -> Result<RunReport, FunTalError> {
        let mut counts = CountTracer::new();
        let outcome = run_fexpr(e, self.run_cfg(), &mut counts)?;
        Ok(RunReport {
            ty,
            outcome,
            counts,
            fuel: self.fuel,
        })
    }

    /// Evaluates a pre-lowered bytecode program whose type is already
    /// known — the bytecode-tier analogue of
    /// [`run_prechecked`](Pipeline::run_prechecked). The batch engine
    /// calls this when its cache already holds both the type and the
    /// lowered artifact, so a warm `--tier bytecode` run is hash
    /// lookups plus the dispatch loop: no re-parse, no re-check, no
    /// re-lowering.
    pub fn run_prelowered(
        &self,
        lowered: &LoweredProgram,
        ty: FTy,
    ) -> Result<RunReport, FunTalError> {
        let mut counts = CountTracer::new();
        let outcome = funtal::run_prelowered(lowered, self.run_cfg(), &mut counts)?;
        Ok(RunReport {
            ty,
            outcome,
            counts,
            fuel: self.fuel,
        })
    }

    /// Profiles an expression whose type is already known: evaluates
    /// it with a [`Profiler`] tracer that charges every fuel tick to
    /// the source span responsible for it.
    ///
    /// The profile is a pure function of the program — the three
    /// execution tiers emit byte-identical renderings (certified by
    /// the differential tests), so a profile taken on the fast tier
    /// speaks for the paper-literal oracle too. The span scope is
    /// installed for the duration so blocks compiled during the run
    /// also bake their spans for the introspection APIs.
    pub fn profile_prechecked(
        &self,
        e: &FExpr,
        ty: FTy,
        spans: Arc<SpanTable>,
    ) -> Result<ProfileReport, FunTalError> {
        let mut profiler = Profiler::new(spans.clone(), RootLang::F);
        let outcome = {
            let _scope = SpanScope::install(spans);
            run_fexpr(e, self.run_cfg(), &mut profiler)?
        };
        let counts = profiler.counts;
        Ok(ProfileReport {
            run: RunReport {
                ty,
                outcome,
                counts,
                fuel: self.fuel,
            },
            profiler,
        })
    }

    /// Profiles a pre-lowered bytecode program — the bytecode-tier
    /// analogue of [`profile_prechecked`](Pipeline::profile_prechecked).
    /// An enabled tracer makes the bytecode VM take its faithful
    /// per-instruction route through fused superinstructions, so every
    /// constituent's tick is attributed to its own span.
    pub fn profile_prelowered(
        &self,
        lowered: &LoweredProgram,
        ty: FTy,
        spans: Arc<SpanTable>,
    ) -> Result<ProfileReport, FunTalError> {
        let mut profiler = Profiler::new(spans.clone(), RootLang::F);
        let outcome = {
            let _scope = SpanScope::install(spans);
            funtal::run_prelowered(lowered, self.run_cfg(), &mut profiler)?
        };
        let counts = profiler.counts;
        Ok(ProfileReport {
            run: RunReport {
                ty,
                outcome,
                counts,
                fuel: self.fuel,
            },
            profiler,
        })
    }

    /// Parse (with spans) + typecheck + profiled evaluation in one
    /// step — what `funtal profile` runs on `.ft` files.
    pub fn profile_source(&self, src: &str) -> Result<ProfileReport, FunTalError> {
        let (e, spans) = self.parse_spanned(src)?;
        let ty = self.check(&e)?;
        self.profile_prechecked(&e, ty, Arc::new(spans))
    }

    /// Profiles a compiled MiniF definition applied to integer
    /// arguments. `def_spans` comes from
    /// [`minif::parse_minif_spanned`]; every generated block is named
    /// `<def>` or `<def>_<hint><n>`, so blocks attribute to the
    /// longest definition-name prefix. The boundary wrapper is
    /// generated code and keeps a synthetic root span.
    pub fn profile_compiled(
        &self,
        compiled: &CompiledMiniF,
        name: &str,
        args: &[i64],
        def_spans: &[(String, funtal_syntax::span::Span)],
    ) -> Result<ProfileReport, FunTalError> {
        let f = compiled
            .wrapped_fexpr(name)
            .ok_or_else(|| FunTalError::driver(format!("no definition named `{name}`")))?;
        let call = app(f.clone(), args.iter().map(|n| fint_e(*n)).collect());
        let ty = self.check(&call)?;
        let table = minif_span_table(compiled, def_spans);
        self.profile_prechecked(&call, ty, Arc::new(table))
    }

    // --- stage 5½: static analysis ----------------------------------------

    /// Lints an FT source — what `funtal lint` runs on `.ft` files:
    /// parse (with spans), typecheck, lower to bytecode under the span
    /// table, then run every analysis rule over both the source term
    /// and the lowered IR. Diagnostics come back in the deterministic
    /// normal form (sorted by file/span/rule, deduplicated).
    pub fn lint_source(
        &self,
        file: &str,
        src: &str,
    ) -> Result<Vec<funtal::Diagnostic>, FunTalError> {
        let (e, spans) = self.parse_spanned(src)?;
        self.check(&e)?;
        let lowered = funtal::prelower_spanned(&e, Arc::new(spans));
        Ok(funtal::lint_program(file, &e, &lowered))
    }

    /// Lints a MiniF source — what `funtal lint` runs on `.mf` files:
    /// compile the program, then lower and lint every boundary-wrapped
    /// definition under the definition span table (generated blocks
    /// attribute to the `fn` that produced them, exactly as in
    /// [`profile_compiled`](Pipeline::profile_compiled)). Findings
    /// from all definitions are merged into one normal form.
    pub fn lint_minif_source(
        &self,
        file: &str,
        src: &str,
    ) -> Result<Vec<funtal::Diagnostic>, FunTalError> {
        let (program, def_spans) = minif::parse_minif_spanned(src)?;
        let bundle = self.compile_minif(&program)?;
        let table = Arc::new(minif_span_table(&bundle, &def_spans));
        let mut diags = Vec::new();
        // Every wrapped definition embeds the *whole* compiled heap,
        // so from any one entry point the other definitions' blocks
        // look unreachable. An entry-dependent finding therefore only
        // stands when every entry point agrees on it.
        let defs = bundle.wrapped.len();
        let mut entry_dependent: std::collections::HashMap<funtal::Diagnostic, usize> =
            std::collections::HashMap::new();
        for (_, f, _) in &bundle.wrapped {
            let lowered = funtal::prelower_spanned(f, table.clone());
            for d in funtal::lint_program(file, f, &lowered) {
                if d.rule == "unreachable-block" {
                    *entry_dependent.entry(d).or_insert(0) += 1;
                } else {
                    diags.push(d);
                }
            }
        }
        diags.extend(
            entry_dependent
                .into_iter()
                .filter(|(_, votes)| *votes == defs)
                .map(|(d, _)| d),
        );
        funtal::normalize(&mut diags);
        Ok(diags)
    }

    /// Like [`run`](Pipeline::run), with a caller-supplied tracer
    /// observing every machine event.
    pub fn run_with_tracer(
        &self,
        e: &FExpr,
        tracer: &mut dyn Tracer,
    ) -> Result<(FTy, FtOutcome), FunTalError> {
        let ty = self.check(e)?;
        let outcome = run_fexpr(e, self.run_cfg(), tracer)?;
        Ok((ty, outcome))
    }

    // --- stage 6: trace / equiv reporting ---------------------------------

    /// Type-checks and evaluates an FT expression, recording the full
    /// control-flow event stream (the Fig 4 / Fig 12 shape).
    pub fn trace(&self, e: &FExpr) -> Result<TraceReport, FunTalError> {
        let ty = self.check(e)?;
        let mut tracer = VecTracer::new();
        let outcome = run_fexpr(e, self.run_cfg(), &mut tracer)?;
        Ok(TraceReport {
            ty,
            outcome,
            events: tracer.events,
            fuel: self.fuel,
        })
    }

    /// Parse + typecheck + traced evaluation in one step.
    pub fn trace_source(&self, src: &str) -> Result<TraceReport, FunTalError> {
        let e = self.parse(src)?;
        self.trace(&e)
    }

    /// Type-checks and evaluates an F or T component in a fresh
    /// memory, recording the control-flow event stream.
    pub fn trace_component(
        &self,
        comp: &Component,
        expected: Option<&FTy>,
    ) -> Result<TraceReport, FunTalError> {
        let ty = self.check_component(comp, expected)?;
        let mut tracer = VecTracer::new();
        let mut mem = funtal_tal::machine::Memory::new();
        let outcome = run(&mut mem, comp, self.run_cfg(), &mut tracer)?;
        Ok(TraceReport {
            ty,
            outcome,
            events: tracer.events,
            fuel: self.fuel,
        })
    }

    /// Checks both expressions at a common type, then compares them
    /// with the bounded logical relation of `funtal-equiv`.
    ///
    /// The operands must have alpha-equal types; the common type is the
    /// one the experiments are generated at.
    pub fn equiv(&self, lhs: &FExpr, rhs: &FExpr) -> Result<(FTy, Verdict), FunTalError> {
        let lt = self.check(lhs)?;
        let rt = self.check(rhs)?;
        if !alpha_eq_fty(&lt, &rt) {
            return Err(FunTalError::driver(format!(
                "equiv operands have different types: {lt} vs {rt}"
            )));
        }
        Ok((lt.clone(), equivalent(lhs, rhs, &lt, &self.equiv)))
    }

    /// Parse + typecheck + bounded equivalence over two sources.
    pub fn equiv_source(&self, lhs: &str, rhs: &str) -> Result<(FTy, Verdict), FunTalError> {
        let l = self.parse(lhs)?;
        let r = self.parse(rhs)?;
        self.equiv(&l, &r)
    }

    // --- conveniences over compiled MiniF ---------------------------------

    /// Applies a compiled MiniF definition to integer arguments and
    /// runs it (the compiled analogue of [`Program::eval`]).
    pub fn run_compiled(
        &self,
        compiled: &CompiledMiniF,
        name: &str,
        args: &[i64],
    ) -> Result<RunReport, FunTalError> {
        let f = compiled
            .wrapped_fexpr(name)
            .ok_or_else(|| FunTalError::driver(format!("no definition named `{name}`")))?;
        let call = app(f.clone(), args.iter().map(|n| fint_e(*n)).collect());
        self.run(&call)
    }
}
