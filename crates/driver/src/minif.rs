//! Concrete syntax for MiniF, the first-order source language of the
//! §6 compiler (`funtal-compile`), so `.mf` files can be fed to the
//! `compile` stage of the pipeline.
//!
//! The grammar reuses the FunTAL lexer (`funtal-parser`) and mirrors
//! the FT expression syntax where the languages overlap:
//!
//! ```text
//! program := def+
//! def     := "fn" name "(" [name ("," name)*] ")" "=" expr
//! expr    := "if0" expr "{" expr "}" "{" expr "}" | arith
//! arith   := term (("+" | "-") term)*
//! term    := atom ("*" atom)*
//! atom    := int | "-" int | name "(" [expr ("," expr)*] ")" | name
//!          | "(" expr ")"
//! ```
//!
//! # Example
//!
//! ```
//! let p = funtal_driver::minif::parse_minif(
//!     "fn fact(n) = if0 n { 1 } { fact(n - 1) * n }",
//! )?;
//! assert_eq!(p.eval("fact", &[5], 100)?, 120);
//! # Ok::<(), funtal_driver::FunTalError>(())
//! ```

use funtal_compile::lang::{Def, MExpr, Program};
use funtal_parser::lex::{lex, Tok, TokKind};
use funtal_parser::parse::ParseError;
use funtal_syntax::span::Span;
use funtal_syntax::ArithOp;

use crate::error::FunTalError;

/// Names that cannot be used as MiniF identifiers.
const KEYWORDS: &[&str] = &["fn", "if0"];

struct P {
    toks: Vec<Tok>,
    pos: usize,
}

impl P {
    fn peek(&self) -> &TokKind {
        &self.toks[self.pos].kind
    }

    fn here(&self) -> (u32, u32) {
        let t = &self.toks[self.pos];
        (t.line, t.col)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            msg: msg.into(),
            line,
            col,
        }
    }

    fn bump(&mut self) -> TokKind {
        let k = self.toks[self.pos].kind.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        k
    }

    fn expect(&mut self, want: TokKind) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek().clone() {
            TokKind::Ident(name) if !KEYWORDS.contains(&name.as_str()) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.err(format!("expected {what}, found {other}"))),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), TokKind::Ident(s) if s == kw)
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.at_keyword(kw) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {}", self.peek())))
        }
    }

    fn def(&mut self) -> Result<Def, ParseError> {
        self.keyword("fn")?;
        let name = self.ident("a function name")?;
        self.expect(TokKind::LParen)?;
        let mut params = Vec::new();
        if *self.peek() != TokKind::RParen {
            loop {
                params.push(self.ident("a parameter name")?);
                if *self.peek() == TokKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(TokKind::RParen)?;
        self.expect(TokKind::Eq)?;
        let body = self.expr()?;
        let param_refs: Vec<&str> = params.iter().map(|s| s.as_str()).collect();
        Ok(Def::new(&name, &param_refs, body))
    }

    fn expr(&mut self) -> Result<MExpr, ParseError> {
        if self.at_keyword("if0") {
            self.bump();
            let cond = self.expr()?;
            self.expect(TokKind::LBrace)?;
            let then_branch = self.expr()?;
            self.expect(TokKind::RBrace)?;
            self.expect(TokKind::LBrace)?;
            let else_branch = self.expr()?;
            self.expect(TokKind::RBrace)?;
            return Ok(MExpr::if0(cond, then_branch, else_branch));
        }
        self.arith()
    }

    fn arith(&mut self) -> Result<MExpr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            let op = match self.peek() {
                TokKind::Plus => ArithOp::Add,
                TokKind::Minus => ArithOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.term()?;
            lhs = MExpr::bin(op, lhs, rhs);
        }
    }

    fn term(&mut self) -> Result<MExpr, ParseError> {
        let mut lhs = self.atom()?;
        while *self.peek() == TokKind::Star {
            self.bump();
            let rhs = self.atom()?;
            lhs = MExpr::bin(ArithOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn atom(&mut self) -> Result<MExpr, ParseError> {
        match self.peek().clone() {
            TokKind::Int(n) => {
                self.bump();
                Ok(MExpr::Int(n))
            }
            TokKind::Minus => {
                self.bump();
                match self.peek().clone() {
                    TokKind::Int(n) => {
                        self.bump();
                        Ok(MExpr::Int(-n))
                    }
                    other => Err(self.err(format!("expected an integer after `-`, found {other}"))),
                }
            }
            TokKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokKind::RParen)?;
                Ok(e)
            }
            TokKind::Ident(_) => {
                let name = self.ident("a variable or function name")?;
                if *self.peek() == TokKind::LParen {
                    self.bump();
                    let mut args = Vec::new();
                    if *self.peek() != TokKind::RParen {
                        loop {
                            args.push(self.expr()?);
                            if *self.peek() == TokKind::Comma {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(TokKind::RParen)?;
                    Ok(MExpr::Call { callee: name, args })
                } else {
                    Ok(MExpr::v(&name))
                }
            }
            other => Err(self.err(format!("expected a MiniF expression, found {other}"))),
        }
    }
}

/// Parses and validates a MiniF program (one or more `fn` definitions).
pub fn parse_minif(src: &str) -> Result<Program, FunTalError> {
    Ok(parse_minif_spanned(src)?.0)
}

/// Like [`parse_minif`], but also returns the source span of each
/// definition (its `fn` keyword through the start of its last token),
/// keyed by function name. The §6 compiler names every generated block
/// after the definition it came from, so these spans let the profiler
/// attribute assembly ticks back to `.mf` source lines.
pub fn parse_minif_spanned(src: &str) -> Result<(Program, Vec<(String, Span)>), FunTalError> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut defs = Vec::new();
    let mut spans = Vec::new();
    while p.at_keyword("fn") {
        let (line, col) = p.here();
        let def = p.def()?;
        // `pos` now sits on the token after the body; the previous
        // token is the last one the definition consumed.
        let last = &p.toks[p.pos.saturating_sub(1)];
        spans.push((
            def.name.clone(),
            Span {
                line,
                col,
                end_line: last.line,
                end_col: last.col,
            },
        ));
        defs.push(def);
    }
    if *p.peek() != TokKind::Eof {
        return Err(p.err("expected `fn` or end of input").into());
    }
    if defs.is_empty() {
        return Err(p
            .err("a MiniF program needs at least one `fn` definition")
            .into());
    }
    Ok((Program::new(defs)?, spans))
}
