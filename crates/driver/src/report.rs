//! Pipeline stage outputs: checked programs, run reports, trace
//! reports, and compiled MiniF bundles.

use std::fmt;

use funtal::machine::FtOutcome;
use funtal_compile::codegen::Compiled;
use funtal_compile::lang::Program;
use funtal_syntax::{FExpr, FTy};
use funtal_tal::trace::{CountTracer, Event};
use funtal_tal::Profiler;

use crate::error::FunTalError;
use crate::json::{obj, Json};

/// A parsed and type-checked FT expression.
#[derive(Clone, Debug)]
pub struct Checked {
    /// The expression.
    pub expr: FExpr,
    /// Its FT type (Fig 7).
    pub ty: FTy,
}

/// The result of running a program through the full pipeline.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The program's FT type.
    pub ty: FTy,
    /// The machine outcome (value, halt word, or out of fuel).
    pub outcome: FtOutcome,
    /// Step counts by class (T instructions, F steps, transfers,
    /// boundary crossings).
    pub counts: CountTracer,
    /// The fuel bound the run was given.
    pub fuel: u64,
}

impl RunReport {
    /// The resulting F value, or an error if the program halted in T
    /// or ran out of fuel.
    pub fn value(&self) -> Result<&FExpr, FunTalError> {
        match &self.outcome {
            FtOutcome::Value(v) => Ok(v),
            FtOutcome::Halted(w) => Err(FunTalError::driver(format!(
                "program halted in T with {w} instead of producing an F value"
            ))),
            FtOutcome::OutOfFuel => Err(FunTalError::OutOfFuel { fuel: self.fuel }),
        }
    }

    /// Renders the outcome the way the CLI prints it.
    pub fn outcome_line(&self) -> String {
        match &self.outcome {
            FtOutcome::Value(v) => format!("value:  {v}"),
            FtOutcome::Halted(w) => format!("halted: {w}"),
            FtOutcome::OutOfFuel => format!("out of fuel after {} steps", self.fuel),
        }
    }

    /// Renders the step-count summary line.
    pub fn counts_line(&self) -> String {
        format_counts_line(&self.counts)
    }
}

/// The one step-summary format shared by `run --steps` and `trace`.
fn format_counts_line(c: &CountTracer) -> String {
    format!(
        "steps:  {} total ({} T instrs, {} F steps, {} transfers, {} crossings)",
        c.total_steps(),
        c.instrs,
        c.f_steps,
        c.transfers,
        c.crossings,
    )
}

/// The result of a profiled run: everything in a [`RunReport`] plus
/// the span-attributed fuel profile.
#[derive(Clone, Debug)]
pub struct ProfileReport {
    /// The ordinary run report (type, outcome, counts, fuel bound).
    pub run: RunReport,
    /// The attribution state after the run: per-span tick buckets,
    /// folded stacks, and boundary-crossing counters.
    pub profiler: Profiler,
}

impl ProfileReport {
    /// The JSON payload embedded as the `"profile"` field of batch and
    /// serve result lines, and printed by `funtal profile --format
    /// json`. Purely a function of the program, so byte-comparable
    /// across runs, worker counts, and execution tiers.
    pub fn profile_json(&self) -> Json {
        obj([
            ("total", Json::Int(self.profiler.total() as i64)),
            (
                "spans",
                Json::Arr(
                    self.profiler
                        .entries()
                        .iter()
                        .map(|row| {
                            obj([
                                ("name", Json::Str(row.name.clone())),
                                ("source", Json::Str(row.span.to_string())),
                                ("ticks", Json::Int(row.ticks as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "folded",
                Json::Arr(
                    self.profiler
                        .folded_lines()
                        .into_iter()
                        .map(Json::Str)
                        .collect(),
                ),
            ),
            (
                "crossings",
                obj([
                    (
                        "boundary_in",
                        Json::Int(self.profiler.boundary_enters as i64),
                    ),
                    (
                        "boundary_out",
                        Json::Int(self.profiler.boundary_exits as i64),
                    ),
                    ("import_in", Json::Int(self.profiler.import_enters as i64)),
                    ("import_out", Json::Int(self.profiler.import_exits as i64)),
                ]),
            ),
        ])
    }
}

/// The result of a traced run: everything in a [`RunReport`] plus the
/// ordered control-flow events.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// The program's FT type.
    pub ty: FTy,
    /// The machine outcome.
    pub outcome: FtOutcome,
    /// Every event the machines emitted, in order.
    pub events: Vec<Event>,
    /// The fuel bound the run was given.
    pub fuel: u64,
}

impl TraceReport {
    /// Only the control-transfer and boundary events (drops the
    /// per-instruction `Instr`/`FStep` noise) — the Fig 4 / Fig 12
    /// shape.
    pub fn transfers(&self) -> impl Iterator<Item = &Event> {
        self.events
            .iter()
            .filter(|e| !matches!(e, Event::Instr | Event::FStep | Event::FBeta))
    }

    /// Renders the trace as an indented control-flow diagram: boundary
    /// crossings indent/dedent (Fig 12), transfers print one per line
    /// (Fig 4).
    ///
    /// The machine emits `BoundaryEnter` only when a boundary has a
    /// local heap fragment to merge, and never emits `ImportEnter`, so
    /// exit events are not guaranteed a matching opener; an unmatched
    /// exit renders as a flat completed-crossing line instead of
    /// dedenting past the opens actually seen.
    pub fn render(&self) -> String {
        #[derive(PartialEq)]
        enum Open {
            Boundary,
            Import,
        }
        let mut out = String::new();
        let mut opens: Vec<Open> = Vec::new();
        for ev in &self.events {
            let depth = opens.len();
            let line = match ev {
                Event::BoundaryEnter { ty } => {
                    let l = format!("{:indent$}FT[{ty}] {{", "", indent = depth * 2);
                    opens.push(Open::Boundary);
                    l
                }
                Event::BoundaryExit { ty } => {
                    if opens.last() == Some(&Open::Boundary) {
                        opens.pop();
                        format!("{:indent$}}} -> F", "", indent = (depth - 1) * 2)
                    } else {
                        format!("{:indent$}FT[{ty}] -> F", "", indent = depth * 2)
                    }
                }
                Event::ImportEnter => {
                    let l = format!("{:indent$}import {{", "", indent = depth * 2);
                    opens.push(Open::Import);
                    l
                }
                Event::ImportExit { rd } => {
                    if opens.last() == Some(&Open::Import) {
                        opens.pop();
                        format!("{:indent$}}} import -> {rd}", "", indent = (depth - 1) * 2)
                    } else {
                        format!("{:indent$}import -> {rd}", "", indent = depth * 2)
                    }
                }
                Event::Call { to } => format!("{:indent$}call {to}", "", indent = depth * 2),
                Event::Jmp { to } => format!("{:indent$}jmp {to}", "", indent = depth * 2),
                Event::BnzTaken { to } => format!("{:indent$}bnz {to}", "", indent = depth * 2),
                Event::Ret { to, val } => {
                    format!(
                        "{:indent$}ret {to} (result in {val})",
                        "",
                        indent = depth * 2
                    )
                }
                Event::Halt { reg } => format!("{:indent$}halt ({reg})", "", indent = depth * 2),
                Event::FBeta => format!("{:indent$}beta (F)", "", indent = depth * 2),
                Event::Instr | Event::FStep => continue,
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Condenses the events into class counts.
    pub fn counts(&self) -> CountTracer {
        use funtal_tal::trace::Tracer;
        let mut c = CountTracer::new();
        for e in &self.events {
            c.event(e);
        }
        c
    }

    /// Renders the step-count summary line (same format as
    /// [`RunReport::counts_line`]).
    pub fn counts_line(&self) -> String {
        format_counts_line(&self.counts())
    }
}

/// A MiniF program compiled to T, with each definition wrapped as a
/// type-checked F-level function.
#[derive(Clone, Debug)]
pub struct CompiledMiniF {
    /// The validated source program.
    pub program: Program,
    /// The raw compilation output (heap fragment + entry labels).
    pub compiled: Compiled,
    /// Per definition: name, boundary-wrapped F expression, and its
    /// checked FT type.
    pub wrapped: Vec<(String, FExpr, FTy)>,
}

impl CompiledMiniF {
    /// The boundary-wrapped expression for a definition, if present.
    pub fn wrapped_fexpr(&self, name: &str) -> Option<&FExpr> {
        self.wrapped
            .iter()
            .find(|(n, _, _)| n == name)
            .map(|(_, e, _)| e)
    }

    /// Total number of generated T blocks.
    pub fn block_count(&self) -> usize {
        self.compiled.block_count()
    }
}

impl fmt::Display for CompiledMiniF {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, e, ty) in &self.wrapped {
            writeln!(f, "// {name} : {ty}")?;
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}
