//! Payload codecs for the persistent artifact store's four stages.
//!
//! The disk tier ([`funtal_store::DiskStore`]) moves opaque byte
//! payloads; this module is where the driver's artifact types meet
//! those bytes. Per stage:
//!
//! | stage   | store key bytes              | payload                        |
//! |---------|------------------------------|--------------------------------|
//! | parse   | the source text              | term + span table              |
//! | check   | the term's canonical rendering | the F type                   |
//! | lower   | the term's canonical rendering | [`funtal::encode_lowered`]   |
//! | compile | `[tco] ++ source text`       | program + heap + wrapped defs  |
//!
//! Decode is **total** (it returns `WireError`, never panics) and
//! conservative: a decoded parse artifact recomputes its `check_key`
//! from the decoded term (so a stale rendering cannot be resurrected),
//! a decoded MiniF program re-validates, and callers of
//! [`decode_lowered`](funtal::decode_lowered) re-verify with
//! [`funtal::verify_lowered`] before serving. Any failure on this path
//! is a store *reject*: the entry is deleted and the stage recomputes.

use std::sync::Arc;

use funtal_store::{decode_from_slice, encode_to_vec, Reader, Wire, WireError, Writer};
use funtal_syntax::span::SpanTable;
use funtal_syntax::FTy;

use crate::cache::Parsed;
use crate::report::CompiledMiniF;

/// The store key for a MiniF compilation: the codegen option byte
/// followed by the source text (the disk analogue of the in-memory
/// `(src, tco)` tuple key).
pub fn compile_key(src: &str, tail_call_opt: bool) -> Vec<u8> {
    let mut key = Vec::with_capacity(1 + src.len());
    key.push(tail_call_opt as u8);
    key.extend_from_slice(src.as_bytes());
    key
}

/// Encodes a parse artifact (term + span table). The canonical
/// rendering is *not* stored: decode recomputes it, so the typecheck
/// key always agrees with the term actually served.
pub fn encode_parsed(p: &Parsed) -> Vec<u8> {
    let mut w = Writer::new();
    p.expr.encode(&mut w);
    p.spans.encode(&mut w);
    w.into_vec()
}

/// Decodes a parse artifact; inverse of [`encode_parsed`].
pub fn decode_parsed(bytes: &[u8]) -> Result<Parsed, WireError> {
    let mut r = Reader::new(bytes);
    let expr = Wire::decode(&mut r)?;
    let spans: SpanTable = Wire::decode(&mut r)?;
    r.finish()?;
    Ok(Parsed {
        check_key: funtal_syntax::FExpr::to_string(&expr),
        expr,
        spans: Arc::new(spans),
    })
}

/// Encodes a typecheck artifact (the program's F type).
pub fn encode_checked(ty: &FTy) -> Vec<u8> {
    encode_to_vec(ty)
}

/// Decodes a typecheck artifact; inverse of [`encode_checked`].
pub fn decode_checked(bytes: &[u8]) -> Result<FTy, WireError> {
    decode_from_slice(bytes)
}

/// Encodes a MiniF compilation artifact: the validated source program,
/// the generated T heap, and the boundary-wrapped definitions.
pub fn encode_compiled(bundle: &CompiledMiniF) -> Vec<u8> {
    let mut w = Writer::new();
    bundle.program.encode(&mut w);
    bundle.compiled.encode(&mut w);
    bundle.wrapped.encode(&mut w);
    w.into_vec()
}

/// Decodes a MiniF compilation artifact; inverse of
/// [`encode_compiled`]. The embedded program re-validates during
/// decode (see `funtal_compile::wire`).
pub fn decode_compiled(bytes: &[u8]) -> Result<CompiledMiniF, WireError> {
    let mut r = Reader::new(bytes);
    let program = Wire::decode(&mut r)?;
    let compiled = Wire::decode(&mut r)?;
    let wrapped = Wire::decode(&mut r)?;
    r.finish()?;
    Ok(CompiledMiniF {
        program,
        compiled,
        wrapped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pipeline;

    #[test]
    fn parse_artifact_round_trips_and_recomputes_its_key() {
        let p = Pipeline::new();
        let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
        let (expr, spans) = p.parse_spanned(src).expect("parse");
        let parsed = Parsed {
            check_key: expr.to_string(),
            expr,
            spans: Arc::new(spans),
        };
        let bytes = encode_parsed(&parsed);
        let back = decode_parsed(&bytes).expect("decode");
        assert_eq!(back.expr, parsed.expr);
        assert_eq!(back.check_key, parsed.check_key);
        assert_eq!(*back.spans, *parsed.spans);
    }

    #[test]
    fn checked_artifact_round_trips() {
        let p = Pipeline::new();
        let expr = p.parse("(lam[z](x: int). x + 1)(41)").expect("parse");
        let ty = p.check(&expr).expect("check");
        let bytes = encode_checked(&ty);
        assert_eq!(decode_checked(&bytes).expect("decode"), ty);
    }

    #[test]
    fn compiled_artifact_round_trips_for_both_tco_modes() {
        for tco in [false, true] {
            let p = Pipeline::new()
                .with_codegen(funtal_compile::codegen::CodegenOpts { tail_call_opt: tco });
            let bundle = p
                .compile_minif_source("fn fact(n) = if0 n { 1 } { fact(n - 1) * n }")
                .expect("compile");
            let bytes = encode_compiled(&bundle);
            let back = decode_compiled(&bytes).expect("decode");
            assert_eq!(back.program, bundle.program);
            assert_eq!(back.compiled.entries, bundle.compiled.entries);
            assert_eq!(back.block_count(), bundle.block_count());
            assert_eq!(back.wrapped.len(), bundle.wrapped.len());
            for ((n1, e1, t1), (n2, e2, t2)) in bundle.wrapped.iter().zip(back.wrapped.iter()) {
                assert_eq!(n1, n2);
                assert_eq!(e1, e2);
                assert_eq!(t1, t2);
            }
        }
    }

    #[test]
    fn truncated_payloads_reject() {
        let p = Pipeline::new();
        let (expr, spans) = p.parse_spanned("1 + 2").expect("parse");
        let parsed = Parsed {
            check_key: expr.to_string(),
            expr,
            spans: Arc::new(spans),
        };
        let bytes = encode_parsed(&parsed);
        for cut in 0..bytes.len() {
            assert!(
                decode_parsed(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn compile_keys_distinguish_options_and_sources() {
        assert_ne!(
            compile_key("fn f(n) = n", false),
            compile_key("fn f(n) = n", true)
        );
        assert_ne!(
            compile_key("fn f(n) = n", false),
            compile_key("fn g(n) = n", false)
        );
    }
}
