//! The shared paper corpus for tests and benchmarks.
//!
//! One list of `(name, FT source)` programs — both Fig 17 factorials,
//! the boundary-wrapped Fig 3 call-to-call component, the Fig 11 JIT
//! example, and the committed `.ft` examples — used by the batch
//! stress tests (which prove the engine deterministic on it) and the
//! `batch_throughput` benchmarks (which measure it). Keeping it in one
//! place means the measured workload is exactly the proven-correct
//! one.
//!
//! The example files are read from this repository's `examples/`
//! directory, located relative to the crate's compile-time manifest
//! path — this is development tooling for in-repo tests and benches,
//! not a runtime API for installed binaries.

use funtal_syntax::build::{app, boundary, fint, fint_e};

/// `(name, FT source)` for every corpus program. Panics if the
/// repository's example files are unreadable (tests and benches want
/// loud failure, not skipped coverage).
pub fn paper_corpus() -> Vec<(String, String)> {
    let read = |p: &str| {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .ancestors()
            .nth(2)
            .expect("repo root")
            .join(p);
        std::fs::read_to_string(&root).unwrap_or_else(|e| panic!("{}: {e}", root.display()))
    };
    vec![
        ("fact_t_ft".to_string(), read("examples/fact_t.ft")),
        (
            "double_twice_ft".to_string(),
            read("examples/double_twice.ft"),
        ),
        (
            "fig17_factT_6".to_string(),
            app(funtal::figures::fig17_fact_t(), vec![fint_e(6)]).to_string(),
        ),
        (
            "fig17_factF_5".to_string(),
            app(funtal::figures::fig17_fact_f(), vec![fint_e(5)]).to_string(),
        ),
        (
            "fig3_boundary".to_string(),
            boundary(fint(), funtal_tal::figures::fig3_call_to_call()).to_string(),
        ),
        (
            "fig11_jit".to_string(),
            funtal::figures::fig11_jit().to_string(),
        ),
    ]
}
