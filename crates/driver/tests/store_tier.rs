//! The persistent artifact store as a cache tier: cross-process warm
//! starts, counter accounting, and the summary JSON contract.
//!
//! "Cross-process" is simulated with two independent [`ArtifactCache`]
//! instances sharing one store directory — exactly what two `funtal
//! batch` invocations with the same `--store-dir` do (the CI workflow
//! runs the real two-process version).

use std::sync::Arc;

use funtal_driver::{ArtifactCache, Batch, DiskStore, Job, Pipeline};
use funtal_store::Stage;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("funtal_store_tier_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A job mix that exercises all four stages: parse + check (every FT
/// job), lower (the bytecode-tier job), and compile (the MiniF job).
fn all_stage_jobs() -> Vec<Job> {
    vec![
        Job::run("plain", "6 * 7"),
        Job::run_tiered(
            "bc",
            "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})",
            funtal::machine::EvalStrategy::Bytecode,
        ),
        Job::compile("mf", "fn double(n) = n + n"),
    ]
}

fn engine_on(dir: &std::path::Path) -> Batch {
    let store = Arc::new(DiskStore::open(dir, 0).expect("open store"));
    Batch::new(Pipeline::new()).with_cache(Arc::new(ArtifactCache::with_store(store)))
}

#[test]
fn second_process_warm_starts_every_stage() {
    let dir = temp_dir("warm");
    let jobs = all_stage_jobs();

    let cold = engine_on(&dir).run(&jobs);
    let cold_store = cold.store.expect("store stats present");
    for stage in Stage::ALL {
        let s = cold_store.stage(stage);
        assert_eq!(s.hits, 0, "{stage:?} hit on a cold store");
        assert_eq!(s.rejects, 0, "{stage:?} reject on a cold store");
    }
    // Every exercised stage wrote through.
    assert!(cold_store.parse.misses >= 2);
    assert_eq!(cold_store.lower.misses, 1);
    assert_eq!(cold_store.compile.misses, 1);

    // A second, memory-cold engine on the same directory: identical
    // results, every stage served from disk.
    let warm = engine_on(&dir).run(&jobs);
    assert_eq!(cold.result_lines(), warm.result_lines());
    let warm_store = warm.store.expect("store stats present");
    assert!(warm_store.parse.hits >= 2, "{warm_store:?}");
    assert!(warm_store.check.hits >= 2, "{warm_store:?}");
    assert_eq!(warm_store.lower.hits, 1, "{warm_store:?}");
    assert_eq!(warm_store.compile.hits, 1, "{warm_store:?}");
    assert_eq!(warm_store.total_rejects(), 0, "{warm_store:?}");
    // The in-memory tier keeps its storeless semantics: a disk hit is
    // still a memory miss.
    assert_eq!(warm.cache.parse.hits, 0);
    assert!(warm.cache.parse.misses >= 2);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_block_appears_only_when_configured() {
    let jobs = [Job::run("j", "1 + 2")];
    let plain = Batch::new(Pipeline::new()).run(&jobs);
    assert!(plain.store.is_none());
    assert!(
        !plain.summary_json().to_string().contains("\"store\""),
        "storeless summary grew a store block"
    );

    let dir = temp_dir("summary");
    let with_store = engine_on(&dir).run(&jobs);
    let summary = with_store.summary_json().to_string();
    assert!(
        summary.contains("\"store\":{\"parse\":{\"hits\":0,\"misses\":1,\"rejects\":0}"),
        "{summary}"
    );
    assert!(summary.contains("\"cache\":{"), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn errors_are_not_written_through() {
    let dir = temp_dir("errs");
    let engine = engine_on(&dir);
    let report = engine.run(&[Job::run("bad", "1 +")]);
    assert_eq!(report.err_count(), 1);
    let store = engine.cache().store().expect("store configured");
    assert_eq!(
        store.entries(Stage::Parse).expect("entries").len(),
        0,
        "a failed parse must not persist an artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn formatting_changes_share_check_and_lower_entries() {
    // Disk keys mirror the in-memory keys: check/lower key on the
    // term's canonical rendering, so a reformatted source re-parses
    // but reuses the persisted typecheck and lowering.
    let dir = temp_dir("fmt");
    let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
    let resrc = src.replace("; ", ";  ");
    engine_on(&dir).run(&[Job::run_tiered(
        "a",
        src,
        funtal::machine::EvalStrategy::Bytecode,
    )]);
    let warm = engine_on(&dir).run(&[Job::run_tiered(
        "b",
        &resrc,
        funtal::machine::EvalStrategy::Bytecode,
    )]);
    let stats = warm.store.expect("store stats");
    assert_eq!(stats.parse.hits, 0, "different source text: parse is cold");
    assert_eq!(stats.check.hits, 1, "same term: typecheck served from disk");
    assert_eq!(stats.lower.hits, 1, "same term: lowering served from disk");
    let _ = std::fs::remove_dir_all(&dir);
}
