//! The compiled-MiniF half of the static fuel-bound certification.
//!
//! `crates/core/tests/fuel_bounds.rs` certifies [`funtal::infer_fuel`]
//! against the span profiler on every loop-free paper figure; this
//! suite extends the same exactness claim across the §6 compiler: for
//! the loop-free `examples/poly.mf`, the statically inferred bound of
//! every compiled call equals the profiler's dynamically measured
//! total *exactly*, while the recursive `examples/fact.mf` is refused
//! with `Unknown` (its compiled T code has back edges), never
//! mis-measured.

use std::path::Path;
use std::sync::Arc;

use funtal::machine::{run, EvalStrategy, RunCfg};
use funtal::{infer_fuel, prelower, FuelBound};
use funtal_driver::Pipeline;
use funtal_syntax::build::{app, fint_e};
use funtal_syntax::span::SpanTable;
use funtal_syntax::{Component, FExpr};
use funtal_tal::machine::Memory;
use funtal_tal::{Profiler, RootLang};

fn example(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .join("examples")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// The dynamically measured fuel total, via the span profiler (every
/// tick is charged to exactly one span, so the attributed total is the
/// run's step count).
fn measured_total(e: &FExpr) -> u64 {
    let mut profiler = Profiler::new(Arc::new(SpanTable::default()), RootLang::F);
    let mut mem = Memory::new();
    run(
        &mut mem,
        &Component::F(e.clone()),
        RunCfg::with_fuel(10_000_000).with_strategy(EvalStrategy::Bytecode),
        &mut profiler,
    )
    .unwrap();
    profiler.total()
}

#[test]
fn compiled_poly_calls_get_exact_bounds() {
    let bundle = Pipeline::new()
        .compile_minif_source(&example("poly.mf"))
        .unwrap();
    let f = bundle.wrapped_fexpr("poly").unwrap();
    for (a, b) in [(0i64, 0i64), (3, 4), (-2, 5), (10, -10), (100, 1)] {
        let call = app(f.clone(), vec![fint_e(a), fint_e(b)]);
        let inferred = infer_fuel(&prelower(&call));
        let measured = measured_total(&call);
        assert_eq!(
            inferred,
            FuelBound::Exact(measured),
            "poly({a}, {b}): inferred bound != profiled total"
        );
    }
}

#[test]
fn compiled_recursion_is_refused() {
    for tco in [false, true] {
        let bundle = Pipeline::new()
            .with_codegen(funtal_compile::codegen::CodegenOpts { tail_call_opt: tco })
            .compile_minif_source(&example("fact.mf"))
            .unwrap();
        let f = bundle.wrapped_fexpr("fact").unwrap();
        let call = app(f.clone(), vec![fint_e(5)]);
        assert_eq!(
            infer_fuel(&prelower(&call)),
            FuelBound::Unknown,
            "fact(5) tco={tco}: a looping module must not get a static bound"
        );
    }
}

/// The `.mf` lint path: each wrapped definition embeds the whole
/// compiled heap, so sibling definitions must not be flagged as
/// unreachable (a finding only stands when every entry point agrees),
/// and the loop-free example carries its certified-bound note.
#[test]
fn minif_lint_does_not_flag_sibling_definitions() {
    let p = Pipeline::new();
    let diags = p
        .lint_minif_source("examples/fact.mf", &example("fact.mf"))
        .unwrap();
    assert!(
        diags.iter().all(|d| d.severity < funtal::Severity::Warning),
        "fact.mf should lint clean at warning level: {diags:?}"
    );
    let diags = p
        .lint_minif_source("examples/poly.mf", &example("poly.mf"))
        .unwrap();
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "static-fuel-bound" && d.severity == funtal::Severity::Note),
        "poly.mf should carry its certified static fuel bound: {diags:?}"
    );
}
