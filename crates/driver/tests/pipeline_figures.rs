//! End-to-end pipeline coverage over the paper's figures: Fig 3 (pure
//! T), Fig 11 (the JIT example), and both Fig 17 factorials, each fed
//! through [`Pipeline`] with typed results and halting values asserted.

use funtal::machine::FtOutcome;
use funtal_driver::{FunTalError, Pipeline};
use funtal_syntax::build::*;
use funtal_syntax::{Component, WordVal};
use funtal_tal::trace::Event;

#[test]
fn fig3_through_pipeline() {
    let prog = funtal_tal::figures::fig3_call_to_call();
    let report = Pipeline::new()
        .with_fuel(1_000)
        .trace_component(&Component::T(prog), Some(&fint()))
        .unwrap();
    assert_eq!(report.ty, fint());
    assert_eq!(report.outcome, FtOutcome::Halted(WordVal::Int(2)));
    // The Figure 4 control-flow shape: two calls, one jmp, two rets,
    // then the halt.
    let calls = report
        .events
        .iter()
        .filter(|e| matches!(e, Event::Call { .. }))
        .count();
    let jmps = report
        .events
        .iter()
        .filter(|e| matches!(e, Event::Jmp { .. }))
        .count();
    let rets = report
        .events
        .iter()
        .filter(|e| matches!(e, Event::Ret { .. }))
        .count();
    let halts = report
        .events
        .iter()
        .filter(|e| matches!(e, Event::Halt { .. }))
        .count();
    assert_eq!((calls, jmps, rets, halts), (2, 1, 2, 1), "Fig 4 shape");
    assert!(!report.render().is_empty());
}

#[test]
fn fig11_through_pipeline() {
    let e = funtal::figures::fig11_jit();
    let p = Pipeline::new().with_fuel(1_000_000);
    let report = p.run(&e).unwrap();
    assert_eq!(report.ty, fint());
    assert_eq!(report.value().unwrap(), &fint_e(2));
    // The example crosses the F/T boundary (compiled code calls back
    // into interpreted F), so crossings must show up in the counts.
    assert!(report.counts.crossings > 0, "{:?}", report.counts);

    // And the traced run must show the boundary structure of Fig 12.
    let trace = p.trace(&e).unwrap();
    assert!(trace
        .events
        .iter()
        .any(|ev| matches!(ev, Event::BoundaryEnter { .. } | Event::ImportExit { .. })));
}

#[test]
fn fig17_factorials_through_pipeline() {
    let p = Pipeline::new().with_fuel(1_000_000);
    for (name, f) in [
        ("factF", funtal::figures::fig17_fact_f()),
        ("factT", funtal::figures::fig17_fact_t()),
    ] {
        let ty = p.check(&f).unwrap();
        assert_eq!(ty, arrow(vec![fint()], fint()), "{name} type");
        for (n, expected) in [(0i64, 1i64), (1, 1), (5, 120), (8, 40_320)] {
            let report = p.run(&app(f.clone(), vec![fint_e(n)])).unwrap();
            assert_eq!(report.ty, fint(), "{name}({n}) result type");
            assert_eq!(report.value().unwrap(), &fint_e(expected), "{name}({n})");
        }
    }
}

#[test]
fn fig17_factorials_equivalent_via_pipeline() {
    let p = Pipeline::new().with_equiv_cfg(funtal_equiv::EquivCfg {
        fuel: 4_000,
        samples: 6,
        depth: 2,
        seed: 1,
    });
    let (ty, verdict) = p
        .equiv(
            &funtal::figures::fig17_fact_f(),
            &funtal::figures::fig17_fact_t(),
        )
        .unwrap();
    assert_eq!(ty, arrow(vec![fint()], fint()));
    assert!(verdict.is_equiv(), "{verdict}");
}

#[test]
fn ft_example_files_run_through_pipeline() {
    // The same programs the CLI acceptance check uses, via the library.
    let p = Pipeline::new().with_fuel(100_000);
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let double = std::fs::read_to_string(format!("{root}/examples/double_twice.ft")).unwrap();
    let report = p.run_source(&double).unwrap();
    assert_eq!(report.ty, fint());
    assert_eq!(report.value().unwrap(), &fint_e(40));

    let fact = std::fs::read_to_string(format!("{root}/examples/fact_t.ft")).unwrap();
    let report = p.run_source(&fact).unwrap();
    assert_eq!(report.value().unwrap(), &fint_e(720));

    let mf = std::fs::read_to_string(format!("{root}/examples/fact.mf")).unwrap();
    let bundle = p.compile_minif_source(&mf).unwrap();
    assert_eq!(bundle.program.defs.len(), 2);
    let run = p.run_compiled(&bundle, "sum_to", &[10, 0]).unwrap();
    assert_eq!(run.value().unwrap(), &fint_e(55));
}

#[test]
fn minif_parse_errors_are_positioned() {
    let err = funtal_driver::minif::parse_minif("fn f(x) = x +").unwrap_err();
    assert_eq!(err.stage(), "parse");
    assert!(err.span().is_some());
    let err = funtal_driver::minif::parse_minif("fn f(x) = g(x)").unwrap_err();
    assert!(matches!(err, FunTalError::MiniF(_)), "{err}");
}
