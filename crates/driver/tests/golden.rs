//! Golden snapshot tests for the `funtal` CLI.
//!
//! Every subcommand runs over the committed `examples/` corpus (plus
//! the fixtures under `tests/golden/`); stdout, stderr, and the exit
//! code are captured and compared byte-for-byte against the committed
//! snapshots in `tests/golden/*.golden`.
//!
//! To refresh after an intentional output change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p funtal-driver --test golden
//! ```
//!
//! then review the diff like any other code change. The snapshots pin
//! the CLI's user-visible surface: value renderings, trace diagrams,
//! step-count lines, the JSON-lines batch protocol, and the canonical
//! `error[stage][ at l:c]: message` diagnostics.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// One golden case: a snapshot name, CLI arguments, optional stdin,
/// and an optional directory to delete before the run (so cases that
/// share a persistent store directory start from a pinned cold state).
struct Case {
    name: &'static str,
    args: &'static [&'static str],
    stdin: Option<&'static str>,
    pre_clean: Option<&'static str>,
}

const fn case(name: &'static str, args: &'static [&'static str]) -> Case {
    Case {
        name,
        args,
        stdin: None,
        pre_clean: None,
    }
}

/// The fixed store directory the persistent-tier cases share. The
/// first case pre-cleans it, so the cold → warm → stats → verify
/// sequence is deterministic regardless of prior runs.
const GOLDEN_STORE: &str = "/tmp/funtal_golden_store";

/// The full matrix: all five original subcommands plus `batch` and
/// `serve`, over every committed example, plus the error paths.
const CASES: &[Case] = &[
    // check: every example, one invocation (order pins multi-file output).
    case(
        "check_all",
        &["check", "examples/double_twice.ft", "examples/fact_t.ft"],
    ),
    // run: each .ft example, with and without --steps.
    case("run_double_twice", &["run", "examples/double_twice.ft"]),
    case(
        "run_double_twice_steps",
        &["run", "examples/double_twice.ft", "--steps"],
    ),
    case("run_fact_t", &["run", "examples/fact_t.ft"]),
    case(
        "run_fact_t_steps",
        &["run", "examples/fact_t.ft", "--steps"],
    ),
    case(
        "run_fact_t_subst",
        &[
            "run",
            "examples/fact_t.ft",
            "--strategy",
            "substitution",
            "--steps",
        ],
    ),
    // The bytecode tier: same value and step counts as the other
    // snapshots of this file, just a different machine underneath.
    case(
        "run_fact_t_bytecode",
        &["run", "examples/fact_t.ft", "--tier", "bytecode", "--steps"],
    ),
    // trace: the Fig 12-style diagrams.
    case("trace_double_twice", &["trace", "examples/double_twice.ft"]),
    case("trace_fact_t", &["trace", "examples/fact_t.ft"]),
    // profile: the span-attributed fuel tables, all three formats,
    // over .ft (parser spans) and .mf (definition spans) sources.
    case("profile_fact_t", &["profile", "examples/fact_t.ft"]),
    case(
        "profile_fact_t_folded",
        &["profile", "examples/fact_t.ft", "--format", "folded"],
    ),
    case(
        "profile_double_twice_json",
        &["profile", "examples/double_twice.ft", "--format", "json"],
    ),
    case(
        "profile_fact_mf",
        &[
            "profile",
            "examples/fact.mf",
            "--tco",
            "--call",
            "fact",
            "5",
        ],
    ),
    // run with the on-demand bytecode verifier: the verify line, then
    // the byte-identical run output.
    case(
        "run_fact_t_verify",
        &[
            "run",
            "examples/fact_t.ft",
            "--verify-bytecode",
            "--tier",
            "bytecode",
            "--steps",
        ],
    ),
    // lint: the static-analysis diagnostics over every example at
    // once (the CI gate invocation: clean at warning level), plus the
    // JSON rendering and a single-file table.
    case(
        "lint_examples",
        &[
            "lint",
            "examples/double_twice.ft",
            "examples/fact_t.ft",
            "examples/fact.mf",
            "examples/poly.mf",
            "--deny",
            "warnings",
        ],
    ),
    case(
        "lint_poly_json",
        &["lint", "examples/poly.mf", "--format", "json"],
    ),
    case("lint_fact_mf", &["lint", "examples/fact.mf"]),
    // compile: plain, TCO, and applied.
    case("compile_fact", &["compile", "examples/fact.mf"]),
    case(
        "compile_poly_call",
        &["compile", "examples/poly.mf", "--call", "poly", "3", "4"],
    ),
    case(
        "compile_fact_tco_call",
        &[
            "compile",
            "examples/fact.mf",
            "--tco",
            "--call",
            "fact",
            "5",
        ],
    ),
    // equiv: reflexivity and an observable difference.
    case(
        "equiv_self",
        &[
            "equiv",
            "examples/double_twice.ft",
            "examples/double_twice.ft",
        ],
    ),
    case(
        "equiv_differs",
        &["equiv", "examples/double_twice.ft", "examples/fact_t.ft"],
    ),
    // error paths: the canonical rendering, pinned.
    case("error_parse", &["run", "crates/driver/tests/golden/bad.ft"]),
    case("error_missing_file", &["run", "no/such/file.ft"]),
    case("error_unknown_cmd", &["frobnicate"]),
    case(
        "error_bad_tier",
        &["run", "examples/fact_t.ft", "--tier", "jit"],
    ),
    // batch: the protocol corpus, cold and warm (one worker so the
    // cache counters in the summary are deterministic), plus direct
    // .ft/.mf file jobs on two workers (all-distinct keys, so the
    // counters are deterministic even racing).
    case(
        "batch_jobs",
        &["batch", "crates/driver/tests/golden/jobs.jsonl"],
    ),
    case(
        "batch_jobs_warm",
        &[
            "batch",
            "crates/driver/tests/golden/jobs.jsonl",
            "--repeat",
            "2",
        ],
    ),
    // batch on the bytecode tier: per-job `tier` fields, one worker so
    // the lower-stage cache counters in the summary are deterministic
    // (the repeated program must report a lower-cache hit).
    case(
        "batch_jobs_bytecode",
        &["batch", "crates/driver/tests/golden/jobs_bytecode.jsonl"],
    ),
    // batch resilience: malformed lines mid-stream become per-line
    // error results; the jobs after them still run (and the batch
    // exits non-zero because some jobs failed).
    case(
        "batch_jobs_poison",
        &["batch", "crates/driver/tests/golden/jobs_poison.jsonl"],
    ),
    case(
        "batch_files",
        &[
            "batch",
            "examples/double_twice.ft",
            "examples/fact_t.ft",
            "examples/fact.mf",
            "--workers",
            "2",
        ],
    ),
    // serve: same corpus through the long-lived loop (stdin → stdout).
    Case {
        name: "serve_session",
        args: &["serve"],
        stdin: Some(include_str!("golden/jobs.jsonl")),
        pre_clean: None,
    },
    // The persistent tier, as a cross-process sequence over one shared
    // store directory. Cold: every stage computes and writes through
    // (the summary's "store" block shows only misses). Warm: a new
    // process, so the memory cache is cold but every artifact loads
    // from disk (hits, zero rejects). The bytecode corpus then adds
    // lower-stage entries, and stats/verify read the populated store
    // back. Error jobs in the corpus pin that failures are never
    // written through.
    Case {
        name: "batch_store_cold",
        args: &[
            "batch",
            "crates/driver/tests/golden/jobs.jsonl",
            "--store-dir",
            GOLDEN_STORE,
        ],
        stdin: None,
        pre_clean: Some(GOLDEN_STORE),
    },
    case(
        "batch_store_warm",
        &[
            "batch",
            "crates/driver/tests/golden/jobs.jsonl",
            "--store-dir",
            GOLDEN_STORE,
        ],
    ),
    case(
        "batch_store_bytecode",
        &[
            "batch",
            "crates/driver/tests/golden/jobs_bytecode.jsonl",
            "--store-dir",
            GOLDEN_STORE,
        ],
    ),
    case(
        "store_stats",
        &["store", "stats", "--store-dir", GOLDEN_STORE],
    ),
    case(
        "store_verify",
        &["store", "verify", "--store-dir", GOLDEN_STORE],
    ),
];

fn repo_root() -> PathBuf {
    // crates/driver → repo root is two levels up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root")
        .to_path_buf()
}

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Runs the binary and renders the observation in the snapshot format.
fn observe(case: &Case) -> String {
    if let Some(dir) = case.pre_clean {
        let _ = std::fs::remove_dir_all(dir);
    }
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_funtal"));
    cmd.args(case.args)
        .current_dir(repo_root())
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawning funtal");
    if let Some(stdin) = case.stdin {
        use std::io::Write;
        child
            .stdin
            .take()
            .expect("piped stdin")
            .write_all(stdin.as_bytes())
            .expect("writing stdin");
    } else {
        drop(child.stdin.take());
    }
    let out = child.wait_with_output().expect("running funtal");
    format!(
        "# funtal {}\n# exit: {}\n--- stdout ---\n{}--- stderr ---\n{}",
        case.args.join(" "),
        out.status.code().expect("exit code"),
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        String::from_utf8(out.stderr).expect("utf-8 stderr"),
    )
}

#[test]
fn cli_output_matches_golden_snapshots() {
    let update = std::env::var("UPDATE_GOLDEN").is_ok_and(|v| v == "1");
    let mut failures = Vec::new();
    for case in CASES {
        let got = observe(case);
        let path = golden_dir().join(format!("{}.golden", case.name));
        if update {
            std::fs::write(&path, &got).expect("writing golden");
            continue;
        }
        match std::fs::read_to_string(&path) {
            Ok(want) if want == got => {}
            Ok(want) => failures.push(format!(
                "snapshot `{}` differs\n--- want ---\n{want}\n--- got ---\n{got}",
                case.name
            )),
            Err(_) => failures.push(format!(
                "snapshot `{}` missing (run with UPDATE_GOLDEN=1 to create)\n--- got ---\n{got}",
                case.name
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} golden mismatch(es):\n\n{}\n\nIf the change is intentional, refresh with \
         UPDATE_GOLDEN=1 cargo test -p funtal-driver --test golden",
        failures.len(),
        failures.join("\n\n")
    );
}

/// The profile a user sees must not depend on the tier that produced
/// it: `funtal profile --tier X` prints byte-identical output for all
/// three. (The library-level certification lives in the core crate's
/// strategy_equiv suite; this pins the full CLI path, spans included.)
#[test]
fn profile_output_is_tier_independent() {
    for (file, format) in [
        ("examples/fact_t.ft", "table"),
        ("examples/fact_t.ft", "folded"),
        ("examples/double_twice.ft", "json"),
    ] {
        let outputs: Vec<_> = ["substitution", "environment", "bytecode"]
            .iter()
            .map(|tier| {
                let out = Command::new(env!("CARGO_BIN_EXE_funtal"))
                    .args(["profile", file, "--tier", tier, "--format", format])
                    .current_dir(repo_root())
                    .output()
                    .expect("running funtal");
                assert!(out.status.success(), "{file} {format} --tier {tier}");
                String::from_utf8(out.stdout).expect("utf-8 stdout")
            })
            .collect();
        assert_eq!(outputs[0], outputs[1], "{file} {format}: environment tier");
        assert_eq!(outputs[0], outputs[2], "{file} {format}: bytecode tier");
    }
}

/// Snapshot names must be unique — a duplicate silently overwrites a
/// sibling in UPDATE_GOLDEN mode.
#[test]
fn snapshot_names_are_unique() {
    let mut names: Vec<&str> = CASES.iter().map(|c| c.name).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate snapshot names");
}

/// Every .ft/.mf file under examples/ is covered by at least one case,
/// so adding an example forces a golden decision.
#[test]
fn all_examples_are_covered() {
    let mut uncovered = Vec::new();
    for entry in std::fs::read_dir(repo_root().join("examples")).expect("examples/") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        if !(name.ends_with(".ft") || name.ends_with(".mf")) {
            continue;
        }
        let covered = CASES.iter().any(|c| {
            c.args.iter().any(|a| a.ends_with(&name)) || c.stdin.is_some_and(|s| s.contains(&name))
        });
        if !covered {
            uncovered.push(name);
        }
    }
    assert!(
        uncovered.is_empty(),
        "examples without golden coverage: {uncovered:?}"
    );
}
