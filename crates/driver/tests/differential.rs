//! Driver-level differential property tests.
//!
//! The core crate already proves (in `strategy_equiv.rs`) that the
//! Fig 8 substitution oracle and the environment-passing machine agree
//! on the figures. This suite pushes that property up through the
//! driver over a *generated* corpus of well-typed programs — pure F,
//! pure-T boundaries, Fig 9/10-style import/export lambdas, and the
//! paper's figures at sampled inputs (`funtal_equiv::gen::gen_program`)
//! — and adds the bytecode tier and the batch engine as further
//! contenders:
//!
//! - **Substitution vs Environment vs Bytecode** through
//!   [`Pipeline::trace`]: identical outcomes, identical event streams,
//!   identical step/fuel accounting — the direct-threaded tier is held
//!   to the exact observable behavior of the paper-literal oracle.
//! - **Batch vs sequential**: the batch engine consumes each program's
//!   canonical *rendering* as a source job and must reproduce the
//!   in-memory pipeline's outcome, type, and counts exactly — and its
//!   rendered result lines must be byte-identical across worker counts.
//!   Bytecode-tier batch jobs (through the lowered-artifact cache) must
//!   agree with all of the above.
//!
//! The committed corpus (`tests/corpus/differential_seeds.txt`) keeps a
//! fixed seed list so failures reproduce; the proptest below samples
//! fresh seeds on every run.

use funtal::machine::{EvalStrategy, FtOutcome};
use funtal_driver::{Batch, Job, JobSuccess, Pipeline};
use funtal_equiv::gen::{gen_program, GenProgram, SplitMix};
use proptest::prelude::*;

const FUEL: u64 = 300_000;

/// Programs per seed drawn from the generator grammar.
const PROGRAMS_PER_SEED: usize = 8;

fn base_pipeline() -> Pipeline {
    Pipeline::new().with_fuel(FUEL)
}

/// The four-way differential assertion for one generated program.
fn assert_differential_clean(p: &GenProgram) {
    let subst = base_pipeline()
        .with_strategy(EvalStrategy::Substitution)
        .trace(&p.expr)
        .unwrap_or_else(|e| panic!("{}: substitution failed: {e}\n{}", p.describe, p.expr));
    let env = base_pipeline()
        .with_strategy(EvalStrategy::Environment)
        .trace(&p.expr)
        .unwrap_or_else(|e| panic!("{}: environment failed: {e}\n{}", p.describe, p.expr));

    // Strategy equivalence at the driver level: outcome, event stream,
    // and fuel accounting all match the oracle.
    assert_eq!(
        subst.outcome, env.outcome,
        "{}: outcomes diverge\n{}",
        p.describe, p.expr
    );
    assert_eq!(
        subst.events, env.events,
        "{}: event streams diverge\n{}",
        p.describe, p.expr
    );
    assert_eq!(
        subst.counts(),
        env.counts(),
        "{}: step counts diverge\n{}",
        p.describe,
        p.expr
    );

    // The bytecode tier is a fourth contender held to the same bar:
    // outcome, event stream, and fuel accounting all match the oracle.
    let bc = base_pipeline()
        .with_tier(EvalStrategy::Bytecode)
        .trace(&p.expr)
        .unwrap_or_else(|e| panic!("{}: bytecode failed: {e}\n{}", p.describe, p.expr));
    assert_eq!(
        subst.outcome, bc.outcome,
        "{}: bytecode outcome diverges\n{}",
        p.describe, p.expr
    );
    assert_eq!(
        subst.events, bc.events,
        "{}: bytecode event stream diverges\n{}",
        p.describe, p.expr
    );
    assert_eq!(
        subst.counts(),
        bc.counts(),
        "{}: bytecode step counts diverge\n{}",
        p.describe,
        p.expr
    );

    // The batch engine consumes the canonical rendering as source and
    // must agree with the in-memory pipeline...
    let jobs = vec![Job::run("p", p.expr.to_string())];
    let one = Batch::new(base_pipeline()).run(&jobs);
    let (ty, outcome, counts) = match &one.outcomes[0].result {
        Ok(JobSuccess::Ran {
            ty,
            outcome,
            counts,
            profile: _,
        }) => (ty.clone(), outcome.clone(), *counts),
        other => panic!("{}: batch failed: {other:?}\n{}", p.describe, p.expr),
    };
    assert_eq!(ty, env.ty.to_string(), "{}: batch type", p.describe);
    assert_eq!(outcome, env.outcome, "{}: batch outcome", p.describe);
    assert_eq!(counts, env.counts(), "{}: batch fuel", p.describe);

    // ...as must a bytecode-tier batch job, which additionally routes
    // through the lowered-artifact cache.
    let bc_jobs = vec![Job::run_tiered(
        "p",
        p.expr.to_string(),
        EvalStrategy::Bytecode,
    )];
    let one_bc = Batch::new(base_pipeline()).run(&bc_jobs);
    match &one_bc.outcomes[0].result {
        Ok(JobSuccess::Ran {
            ty: bty,
            outcome: boutcome,
            counts: bcounts,
            profile: _,
        }) => {
            assert_eq!(bty, &ty, "{}: bytecode batch type", p.describe);
            assert_eq!(boutcome, &outcome, "{}: bytecode batch outcome", p.describe);
            assert_eq!(bcounts, &counts, "{}: bytecode batch fuel", p.describe);
        }
        other => panic!(
            "{}: bytecode batch failed: {other:?}\n{}",
            p.describe, p.expr
        ),
    }

    // ...and its report must be byte-identical across worker counts
    // (here over copies of the same job; the stress test covers big
    // mixed corpora).
    let many: Vec<Job> = (0..6)
        .map(|i| Job::run(format!("p{i}"), p.expr.to_string()))
        .collect();
    let seq_lines = Batch::new(base_pipeline()).run(&many).result_lines();
    let par_lines = Batch::new(base_pipeline())
        .with_workers(8)
        .run(&many)
        .result_lines();
    assert_eq!(
        seq_lines, par_lines,
        "{}: parallel batch diverged from sequential",
        p.describe
    );
}

/// A cheap sanity floor: every generated program the corpus relies on
/// converges to a value (never halts in T at the top level, never runs
/// out of the generous test fuel).
fn assert_converges(p: &GenProgram) {
    let report = base_pipeline()
        .run(&p.expr)
        .unwrap_or_else(|e| panic!("{}: {e}", p.describe));
    assert!(
        matches!(report.outcome, FtOutcome::Value(_)),
        "{}: non-value outcome {:?}",
        p.describe,
        report.outcome
    );
}

#[test]
fn committed_corpus_is_differential_clean() {
    let seeds: Vec<u64> = include_str!("corpus/differential_seeds.txt")
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(|l| l.parse().expect("corpus seeds are integers"))
        .collect();
    assert!(seeds.len() >= 16, "corpus shrank: {} seeds", seeds.len());
    for seed in seeds {
        let mut rng = SplitMix::new(seed);
        for _ in 0..PROGRAMS_PER_SEED {
            let p = gen_program(&mut rng, 2);
            assert_converges(&p);
            assert_differential_clean(&p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Fresh seeds every run: the differential property is not an
    /// artifact of the committed corpus.
    #[test]
    fn random_programs_are_differential_clean(seed in 0i64..1_000_000_000) {
        let mut rng = SplitMix::new(seed as u64);
        let p = gen_program(&mut rng, 2);
        assert_differential_clean(&p);
    }
}
