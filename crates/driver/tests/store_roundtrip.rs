//! Serialize → deserialize identity over generated programs: every
//! artifact kind's codec must reproduce the artifact exactly (and the
//! decoded lowering must still pass the bytecode verifier), for
//! programs drawn from the same generator that feeds the differential
//! evaluation suite.

use std::sync::Arc;

use funtal_driver::artifact;
use funtal_driver::cache::Parsed;
use funtal_equiv::gen::{gen_program, SplitMix};
use funtal_syntax::span::SpanTable;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_artifacts_round_trip(seed in 0i64..1_000_000_000) {
        let mut rng = SplitMix::new(seed as u64);
        let gp = gen_program(&mut rng, 2);

        // Parse artifact: term + spans; the typecheck key is
        // recomputed on decode and must agree.
        let parsed = Parsed {
            check_key: gp.expr.to_string(),
            expr: gp.expr.clone(),
            spans: Arc::new(SpanTable::default()),
        };
        let bytes = artifact::encode_parsed(&parsed);
        let back = artifact::decode_parsed(&bytes).expect("parse artifact decodes");
        prop_assert_eq!(&back.expr, &gp.expr, "{}", gp.describe);
        prop_assert_eq!(&back.check_key, &parsed.check_key);

        // Typecheck artifact: the generated program's type.
        let ty_bytes = artifact::encode_checked(&gp.ty);
        let ty_back = artifact::decode_checked(&ty_bytes).expect("type decodes");
        prop_assert_eq!(&ty_back, &gp.ty, "{}", gp.describe);

        // Lowering artifact: module count preserved, verifier still
        // green on the decoded program.
        let lowered = funtal::prelower(&gp.expr);
        let l_bytes = funtal::encode_lowered(&lowered);
        let l_back = funtal::decode_lowered(&l_bytes).expect("lowering decodes");
        prop_assert_eq!(l_back.module_count(), lowered.module_count());
        prop_assert!(
            funtal::verify_lowered(&l_back).is_ok(),
            "decoded lowering fails verification: {}",
            gp.describe
        );
    }
}
