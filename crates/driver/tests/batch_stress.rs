//! Concurrency stress test for the batch engine.
//!
//! The paper corpus — both Fig 17 factorials, the Fig 3 call-to-call
//! component (boundary-wrapped), the Fig 11 JIT example, and the two
//! committed `.ft` examples — is submitted 100× across 8 workers, and
//! the whole report must be **byte-identical** to the sequential
//! single-worker run of the same job list. A third run submits the
//! jobs in a shuffled order and must produce the same per-id results,
//! proving nothing depends on submission order. Cache counters are
//! checked for the cross-thread invariants the engine guarantees.
//!
//! (This machine may have any number of cores; the assertions are
//! about determinism, not speedup — the throughput claims live in
//! `crates/bench/benches/batch.rs`.)

use std::collections::BTreeMap;

use funtal_driver::corpus::paper_corpus as corpus;
use funtal_driver::{Batch, Job, Pipeline};
use funtal_equiv::gen::SplitMix;

const REPEATS: usize = 100;
const WORKERS: usize = 8;

/// The full job list: the corpus repeated `REPEATS` times with
/// round-tagged ids (distinct ids, identical programs — exactly the
/// serving workload the caches exist for).
fn jobs() -> Vec<Job> {
    let corpus = corpus();
    (0..REPEATS)
        .flat_map(|round| {
            corpus
                .iter()
                .map(move |(name, src)| Job::run(format!("{name}@{round}"), src.clone()))
        })
        .collect()
}

fn engine(workers: usize) -> Batch {
    Batch::new(Pipeline::new().with_fuel(1_000_000)).with_workers(workers)
}

#[test]
fn eight_workers_match_sequential_byte_for_byte() {
    let jobs = jobs();
    let sequential = engine(1).run(&jobs);
    let parallel = engine(WORKERS).run(&jobs);

    assert_eq!(sequential.err_count(), 0, "sequential run had failures");
    assert_eq!(
        sequential.result_lines(),
        parallel.result_lines(),
        "parallel results diverge from the sequential pipeline"
    );
    assert_eq!(sequential.workers, 1);
    assert_eq!(parallel.workers, WORKERS);

    let distinct = corpus().len() as u64;
    // The check cache keys on the *term*, and the corpus deliberately
    // contains one aliased pair: `examples/fact_t.ft` parses to the
    // same term as the rendered `fig17_fact_t()` applied to 6, so the
    // typecheck stage sees one fewer distinct key than the parse stage.
    let distinct_terms = {
        let p = Pipeline::new();
        let keys: std::collections::BTreeSet<u64> = corpus()
            .iter()
            .map(|(_, src)| funtal_driver::ArtifactCache::term_key(&p.parse(src).unwrap()))
            .collect();
        keys.len() as u64
    };
    assert_eq!(
        distinct_terms,
        distinct - 1,
        "expected exactly one aliased pair"
    );
    let runs = jobs.len() as u64;
    for (name, stats) in [
        ("sequential", sequential.cache),
        ("parallel", parallel.cache),
    ] {
        // Every run job probes parse and check exactly once.
        assert_eq!(stats.parse.lookups(), runs, "{name}: parse lookups");
        assert_eq!(stats.check.lookups(), runs, "{name}: check lookups");
        assert_eq!(stats.compile.lookups(), 0, "{name}: compile lookups");
        // Each distinct key misses at least once; racing cold lookups
        // can add at most one extra miss per worker per key.
        for (stage, floor, s) in [
            ("parse", distinct, stats.parse),
            ("check", distinct_terms, stats.check),
        ] {
            assert!(
                (floor..=floor * WORKERS as u64).contains(&s.misses),
                "{name}: {stage} misses {} outside [{floor}, {}]",
                s.misses,
                floor * WORKERS as u64
            );
            assert_eq!(s.hits + s.misses, runs, "{name}: {stage} accounting");
        }
    }
    // The sequential run is perfectly warm after round one.
    assert_eq!(sequential.cache.parse.misses, distinct);
    assert_eq!(sequential.cache.check.misses, distinct_terms);
}

#[test]
fn results_do_not_depend_on_submission_order() {
    let ordered = jobs();
    // Deterministic Fisher–Yates shuffle.
    let mut shuffled = ordered.clone();
    let mut rng = SplitMix::new(0xfeed);
    for i in (1..shuffled.len()).rev() {
        shuffled.swap(i, rng.below(i + 1));
    }
    assert_ne!(
        ordered.iter().map(|j| &j.id).collect::<Vec<_>>(),
        shuffled.iter().map(|j| &j.id).collect::<Vec<_>>(),
        "shuffle was a no-op"
    );

    let by_id = |report: funtal_driver::BatchReport| -> BTreeMap<String, String> {
        report
            .outcomes
            .into_iter()
            .map(|o| (o.id.clone(), o.to_json().to_string()))
            .collect()
    };
    let base = by_id(engine(WORKERS).run(&ordered));
    let perm = by_id(engine(WORKERS).run(&shuffled));
    assert_eq!(base.len(), ordered.len(), "duplicate ids in the corpus");
    assert_eq!(
        base, perm,
        "per-job results changed when submission order changed"
    );
}

/// A shared cache across engines (the `serve` configuration): a warm
/// second batch does zero parse/check work and still matches the cold
/// run byte-for-byte.
#[test]
fn warm_cache_reuses_artifacts_and_preserves_results() {
    let jobs = jobs();
    let cold_engine = engine(WORKERS);
    let cold = cold_engine.run(&jobs);
    let after_cold = cold_engine.cache().stats();

    let warm_engine = engine(WORKERS).with_cache(cold_engine.cache().clone());
    let warm = warm_engine.run(&jobs);

    assert_eq!(cold.result_lines(), warm.result_lines());
    // The warm pass added zero misses: every artifact was shared.
    assert_eq!(warm.cache.parse.misses, after_cold.parse.misses);
    assert_eq!(warm.cache.check.misses, after_cold.check.misses);
    assert_eq!(
        warm.cache.parse.hits,
        after_cold.parse.hits + jobs.len() as u64
    );
    assert_eq!(
        warm.cache.check.hits,
        after_cold.check.hits + jobs.len() as u64
    );
}
