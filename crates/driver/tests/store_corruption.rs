//! Corruption injection against the persistent store: every mutated
//! entry must be rejected on load (counted in `rejects`), the stage
//! must recompute the correct artifact, and nothing may panic.
//!
//! Four container-level mutations (truncation, bit flip, version bump,
//! simulated digest collision) are applied to every artifact kind, plus
//! two payload-level corruptions that keep the container checksum valid
//! (garbage payload bytes; a lowering that decodes but fails the
//! bytecode verifier) to prove the decode/verify layer rejects what the
//! container layer cannot see.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use funtal_driver::{ArtifactCache, Batch, DiskStore, Job, Pipeline};
use funtal_store::Stage;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("funtal_store_corrupt_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One job per artifact kind; two parse-stage sources so the
/// collision simulation has a pair of entries to swap.
fn jobs() -> Vec<Job> {
    vec![
        Job::run("plain", "6 * 7"),
        Job::run_tiered(
            "bc",
            "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})",
            funtal::machine::EvalStrategy::Bytecode,
        ),
        Job::compile("mf", "fn double(n) = n + n"),
    ]
}

fn engine_on(dir: &Path) -> Batch {
    let store = Arc::new(DiskStore::open(dir, 0).expect("open store"));
    Batch::new(Pipeline::new()).with_cache(Arc::new(ArtifactCache::with_store(store)))
}

/// Populates a fresh store, applies `mutate` to every entry, then runs
/// a memory-cold engine over the same jobs and asserts: identical
/// results, zero disk hits, every probed entry rejected, no panics.
fn assert_mutation_rejects(tag: &str, mutate: impl Fn(&Path)) {
    let dir = temp_dir(tag);
    let baseline = engine_on(&dir).run(&jobs());
    assert_eq!(baseline.err_count(), 0);

    let store = DiskStore::open(&dir, 0).expect("reopen");
    let entries = store.all_entries().expect("entries");
    assert!(
        entries.len() >= 4,
        "expected all stages populated: {entries:?}"
    );
    for e in &entries {
        mutate(&e.path);
    }

    let recovered = engine_on(&dir).run(&jobs());
    assert_eq!(
        baseline.result_lines(),
        recovered.result_lines(),
        "{tag}: corruption changed results"
    );
    let stats = recovered.store.expect("store stats");
    assert_eq!(stats.total_hits(), 0, "{tag}: a corrupt entry was served");
    // Every stage that was probed rejected its corrupt entry. (100%
    // rejection: rejects == lookups that found a file.)
    assert!(stats.total_rejects() >= 4, "{tag}: {stats:?}");
    for stage in Stage::ALL {
        let s = stats.stage(stage);
        assert_eq!(s.hits, 0, "{tag}/{stage:?}: {s:?}");
        assert_eq!(s.lookups(), s.misses, "{tag}/{stage:?}: {s:?}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_entries_reject_on_every_stage() {
    assert_mutation_rejects("truncate", |path| {
        let bytes = std::fs::read(path).expect("read");
        std::fs::write(path, &bytes[..bytes.len() / 2]).expect("write");
    });
}

#[test]
fn bit_flipped_entries_reject_on_every_stage() {
    assert_mutation_rejects("bitflip", |path| {
        let mut bytes = std::fs::read(path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(path, &bytes).expect("write");
    });
}

#[test]
fn version_bumped_entries_reject_on_every_stage() {
    assert_mutation_rejects("version", |path| {
        let mut bytes = std::fs::read(path).expect("read");
        // Bytes 4..6 are the little-endian format version.
        bytes[4] = bytes[4].wrapping_add(1);
        std::fs::write(path, &bytes).expect("write");
    });
}

#[test]
fn simulated_digest_collisions_reject() {
    // Serve entry A's container under entry B's path — what a 64-bit
    // digest collision (or a renamed file) would look like. The
    // embedded full key must catch it.
    let dir = temp_dir("collide");
    engine_on(&dir).run(&[Job::run("a", "6 * 7"), Job::run("b", "7 * 8")]);
    let store = DiskStore::open(&dir, 0).expect("reopen");
    let parse = store.entries(Stage::Parse).expect("entries");
    assert_eq!(parse.len(), 2);
    std::fs::copy(&parse[0].path, &parse[1].path).expect("copy");

    let recovered = engine_on(&dir).run(&[Job::run("a", "6 * 7"), Job::run("b", "7 * 8")]);
    assert_eq!(recovered.err_count(), 0);
    let stats = recovered.store.expect("store stats");
    // One of the two sources still loads fine; the clobbered one is a
    // key mismatch and must reject.
    assert_eq!(stats.parse.hits, 1, "{stats:?}");
    assert_eq!(stats.parse.rejects, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn valid_containers_with_garbage_payloads_reject_at_decode() {
    // `DiskStore::save` writes a perfectly valid container (magic,
    // version, checksum over the garbage) — only the payload decoder
    // can reject it. This exercises the `store.reject` path in the
    // cache rather than the container parser.
    let dir = temp_dir("garbage");
    let baseline = engine_on(&dir).run(&jobs());
    let store = DiskStore::open(&dir, 0).expect("reopen");

    let src_plain = "6 * 7";
    let src_bc = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
    let src_mf = "fn double(n) = n + n";
    let check_key = |src: &str| Pipeline::new().parse(src).expect("parse").to_string();
    let garbage = b"not an artifact".as_slice();
    store
        .save(Stage::Parse, src_plain.as_bytes(), garbage)
        .expect("save");
    store
        .save(Stage::Check, check_key(src_plain).as_bytes(), garbage)
        .expect("save");
    store
        .save(Stage::Lower, check_key(src_bc).as_bytes(), garbage)
        .expect("save");
    store
        .save(
            Stage::Compile,
            &funtal_driver::artifact::compile_key(src_mf, false),
            garbage,
        )
        .expect("save");

    let recovered = engine_on(&dir).run(&jobs());
    assert_eq!(baseline.result_lines(), recovered.result_lines());
    let stats = recovered.store.expect("store stats");
    assert_eq!(stats.parse.rejects, 1, "{stats:?}");
    assert_eq!(stats.check.rejects, 1, "{stats:?}");
    assert_eq!(stats.lower.rejects, 1, "{stats:?}");
    assert_eq!(stats.compile.rejects, 1, "{stats:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn lowerings_that_decode_but_fail_verification_reject() {
    // The strongest corruption: a payload that round-trips the wire
    // format but whose bytecode no longer verifies (an out-of-bounds
    // jump target). Only the `verify_lowered` gate catches this one.
    let dir = temp_dir("unverifiable");
    let src = "FT[int](mv r1, 6; mul r1, r1, 7; halt int, * {r1})";
    let job = [Job::run_tiered(
        "bc",
        src,
        funtal::machine::EvalStrategy::Bytecode,
    )];
    let baseline = engine_on(&dir).run(&job);

    let expr = Pipeline::new().parse(src).expect("parse");
    let mut corrupted = funtal::prelower(&expr);
    assert!(funtal::bc_verify::corrupt_for_tests(&mut corrupted));
    assert!(funtal::verify_lowered(&corrupted).is_err());
    let store = DiskStore::open(&dir, 0).expect("reopen");
    store
        .save(
            Stage::Lower,
            expr.to_string().as_bytes(),
            &funtal::encode_lowered(&corrupted),
        )
        .expect("save");

    let recovered = engine_on(&dir).run(&job);
    assert_eq!(baseline.result_lines(), recovered.result_lines());
    let stats = recovered.store.expect("store stats");
    assert_eq!(stats.lower.hits, 0, "{stats:?}");
    assert_eq!(stats.lower.rejects, 1, "{stats:?}");
    // The recompute replaced the bad entry: a third engine hits.
    let third = engine_on(&dir).run(&job);
    assert_eq!(third.store.expect("store stats").lower.hits, 1);
    let _ = std::fs::remove_dir_all(&dir);
}
